//! Workspace umbrella crate for `entromine`: the examples under `examples/`
//! and the cross-crate integration tests under `tests/` are attached here.
//! See the `entromine` crate for the library itself.
