//! Property-based tests for the clustering layer.

use entromine_cluster::{agglomerative, variation, KMeans, Linkage};
use entromine_linalg::Mat;
use proptest::prelude::*;

fn points(n: usize, d: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-5.0f64..5.0, n * d).prop_map(move |v| Mat::from_vec(n, d, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kmeans_assignments_in_range(pts in points(30, 3), k in 1usize..6) {
        let c = KMeans::new(k).with_seed(1).fit(&pts);
        prop_assert_eq!(c.assignments.len(), 30);
        prop_assert!(c.assignments.iter().all(|&a| a < k));
    }

    #[test]
    fn kmeans_assigns_each_point_to_nearest_center(pts in points(25, 3), k in 1usize..5) {
        let c = KMeans::new(k).with_seed(2).fit(&pts);
        for i in 0..25 {
            let my = c.assignments[i];
            let my_d: f64 = pts.row(i).iter().zip(c.centers.row(my)).map(|(a, b)| (a - b).powi(2)).sum();
            for j in 0..k {
                let dj: f64 = pts.row(i).iter().zip(c.centers.row(j)).map(|(a, b)| (a - b).powi(2)).sum();
                prop_assert!(my_d <= dj + 1e-9, "point {} closer to {} than {}", i, j, my);
            }
        }
    }

    #[test]
    fn hierarchical_produces_exactly_k_nonempty_clusters(pts in points(20, 2), k in 1usize..8) {
        let c = agglomerative(&pts, k, Linkage::Single);
        let sizes = c.sizes();
        prop_assert_eq!(sizes.len(), k);
        prop_assert!(sizes.iter().all(|&s| s > 0), "empty cluster: {:?}", sizes);
        prop_assert_eq!(sizes.iter().sum::<usize>(), 20);
    }

    #[test]
    fn linkages_agree_on_k_equals_n_and_one(pts in points(12, 2)) {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let singletons = agglomerative(&pts, 12, linkage);
            let mut sorted = singletons.sizes();
            sorted.sort_unstable();
            prop_assert!(sorted.iter().all(|&s| s == 1));
            let all = agglomerative(&pts, 1, linkage);
            prop_assert!(all.assignments.iter().all(|&a| a == 0));
        }
    }

    #[test]
    fn within_variation_decreases_with_k(pts in points(24, 3)) {
        let mut prev = f64::INFINITY;
        for k in [1usize, 2, 4, 8, 16, 24] {
            let c = agglomerative(&pts, k, Linkage::Average);
            let (w, _) = variation(&pts, &c);
            prop_assert!(w <= prev + 1e-9, "within grew at k={}", k);
            prev = w;
        }
    }

    #[test]
    fn t_decomposition_holds_for_any_clustering(pts in points(20, 3), k in 1usize..6) {
        let c = KMeans::new(k).with_seed(3).fit(&pts);
        let (w, b) = variation(&pts, &c);
        let t: f64 = pts.row_iter().map(|r| r.iter().map(|v| v * v).sum::<f64>()).sum();
        prop_assert!((w + b - t).abs() < 1e-7 * t.abs().max(1.0));
        prop_assert!(w >= 0.0);
        prop_assert!(b >= 0.0);
    }

    #[test]
    fn kmeans_deterministic(pts in points(15, 2), seed in 0u64..1000) {
        let a = KMeans::new(3).with_seed(seed).fit(&pts);
        let b = KMeans::new(3).with_seed(seed).fit(&pts);
        prop_assert_eq!(a.assignments, b.assignments);
    }
}
