//! Hierarchical agglomerative clustering.
//!
//! The paper (§4.3): "it begins with each data point belonging to its own
//! cluster. The algorithm then joins the nearest two points to form new
//! clusters ... until one cluster contains all variables (or we have k
//! clusters). The joining procedure is based on nearest-neighbors Euclidean
//! distance" — i.e. single linkage, which is the default here. Complete and
//! average linkage are provided for the ablation benches; all three use the
//! Lance–Williams recurrence to update inter-cluster distances after each
//! merge.

use crate::Clustering;
use entromine_linalg::Mat;

/// Inter-cluster distance definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Linkage {
    /// Nearest-neighbour distance (the paper's joining rule).
    #[default]
    Single,
    /// Farthest-neighbour distance.
    Complete,
    /// Unweighted average pairwise distance (UPGMA).
    Average,
}

/// Clusters the rows of `points` into `k` clusters bottom-up.
///
/// Runs in `O(n^2)` memory and `O(n^2 · n_merges)` time with cached row
/// minima — comfortably fast for the paper's anomaly counts (hundreds to a
/// few thousand points).
///
/// # Panics
///
/// Panics if `k == 0` or `k > n` (with `n` the number of points).
pub fn agglomerative(points: &Mat, k: usize, linkage: Linkage) -> Clustering {
    let n = points.rows();
    assert!(k > 0, "k must be positive");
    assert!(k <= n, "cannot form {k} clusters from {n} points");

    // Pairwise distance matrix (Euclidean, not squared: Lance–Williams for
    // single/complete linkage is exact on plain distances).
    let mut dist = vec![f64::INFINITY; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = crate::dist_sq(points.row(i), points.row(j)).sqrt();
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }

    // active[i]: cluster i still exists; size[i]: its cardinality;
    // membership tracked through a representative forest.
    let mut active: Vec<bool> = vec![true; n];
    let mut size: Vec<usize> = vec![1; n];
    let mut parent: Vec<usize> = (0..n).collect();

    let mut clusters = n;
    while clusters > k {
        // Find the closest active pair. A full scan is O(n^2); cached row
        // minima would shave a constant factor but n here is small.
        let mut best = (0usize, 0usize, f64::INFINITY);
        for i in 0..n {
            if !active[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !active[j] {
                    continue;
                }
                let d = dist[i * n + j];
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        let (a, b, _) = best;
        debug_assert!(active[a] && active[b]);

        // Merge b into a; update distances by Lance–Williams.
        for m in 0..n {
            if !active[m] || m == a || m == b {
                continue;
            }
            let dam = dist[a * n + m];
            let dbm = dist[b * n + m];
            let new_d = match linkage {
                Linkage::Single => dam.min(dbm),
                Linkage::Complete => dam.max(dbm),
                Linkage::Average => {
                    let (sa, sb) = (size[a] as f64, size[b] as f64);
                    (sa * dam + sb * dbm) / (sa + sb)
                }
            };
            dist[a * n + m] = new_d;
            dist[m * n + a] = new_d;
        }
        active[b] = false;
        parent[b] = a;
        size[a] += size[b];
        clusters -= 1;
    }

    // Resolve representatives and compact to 0..k labels.
    fn find(parent: &[usize], mut i: usize) -> usize {
        while parent[i] != i {
            i = parent[i];
        }
        i
    }
    let mut label_of_rep: Vec<Option<usize>> = vec![None; n];
    let mut next = 0usize;
    let mut assignments = vec![0usize; n];
    for (i, slot) in assignments.iter_mut().enumerate() {
        let rep = find(&parent, i);
        *slot = *label_of_rep[rep].get_or_insert_with(|| {
            let l = next;
            next += 1;
            l
        });
    }
    debug_assert_eq!(next, k);

    let mut clustering = Clustering {
        k,
        assignments,
        centers: Mat::zeros(k, points.cols()),
    };
    clustering.recompute_centers(points);
    clustering
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Mat, Vec<usize>) {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut truth = Vec::new();
        let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        let offsets = [(0.1, 0.2), (-0.2, 0.1), (0.3, -0.1), (-0.1, -0.3)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for &(dx, dy) in &offsets {
                rows.push(vec![cx + dx, cy + dy]);
                truth.push(c);
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Mat::from_rows(&refs), truth)
    }

    fn rand_index(a: &[usize], b: &[usize]) -> f64 {
        let n = a.len();
        let mut agree = 0;
        let mut total = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                if (a[i] == a[j]) == (b[i] == b[j]) {
                    agree += 1;
                }
                total += 1;
            }
        }
        agree as f64 / total as f64
    }

    #[test]
    fn all_linkages_recover_blobs() {
        let (points, truth) = blobs();
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let c = agglomerative(&points, 3, linkage);
            assert_eq!(
                rand_index(&c.assignments, &truth),
                1.0,
                "linkage {linkage:?} failed"
            );
        }
    }

    #[test]
    fn k_equals_n_is_singletons() {
        let (points, _) = blobs();
        let n = points.rows();
        let c = agglomerative(&points, n, Linkage::Single);
        let mut sorted = c.assignments.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n);
    }

    #[test]
    fn k_one_merges_everything() {
        let (points, _) = blobs();
        let c = agglomerative(&points, 1, Linkage::Average);
        assert!(c.assignments.iter().all(|&a| a == 0));
        assert_eq!(c.sizes(), vec![points.rows()]);
    }

    #[test]
    fn single_linkage_chains_bridge_points() {
        // Two tight pairs plus a chain of stepping stones between them:
        // single linkage follows the chain (its hallmark), complete linkage
        // refuses to.
        let points = Mat::from_rows(&[
            &[0.0, 0.0],
            &[0.5, 0.0],
            // chain
            &[2.0, 0.0],
            &[3.5, 0.0],
            &[5.0, 0.0],
            // far pair
            &[6.5, 0.0],
            &[7.0, 0.0],
            // outlier far away
            &[0.0, 50.0],
        ]);
        let single = agglomerative(&points, 2, Linkage::Single);
        // Single linkage: everything on the x-axis chains into one cluster;
        // the outlier is alone.
        assert_eq!(single.assignments[0], single.assignments[6]);
        assert_ne!(single.assignments[0], single.assignments[7]);
    }

    #[test]
    fn deterministic() {
        let (points, _) = blobs();
        let a = agglomerative(&points, 3, Linkage::Average);
        let b = agglomerative(&points, 3, Linkage::Average);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn two_points() {
        let points = Mat::from_rows(&[&[0.0], &[1.0]]);
        let c = agglomerative(&points, 1, Linkage::Single);
        assert_eq!(c.assignments, vec![0, 0]);
        let c2 = agglomerative(&points, 2, Linkage::Single);
        assert_ne!(c2.assignments[0], c2.assignments[1]);
    }

    #[test]
    #[should_panic(expected = "cannot form")]
    fn k_larger_than_n_panics() {
        let points = Mat::from_rows(&[&[0.0]]);
        let _ = agglomerative(&points, 2, Linkage::Single);
    }

    #[test]
    fn centers_are_cluster_means() {
        let points = Mat::from_rows(&[&[0.0, 0.0], &[2.0, 0.0], &[100.0, 100.0]]);
        let c = agglomerative(&points, 2, Linkage::Single);
        // The pair {0,1} merges; its center is (1, 0).
        let pair_label = c.assignments[0];
        assert_eq!(c.assignments[1], pair_label);
        assert_eq!(c.centers.row(pair_label), &[1.0, 0.0]);
    }
}
