//! Cluster-count selection: intra- and inter-cluster variation.
//!
//! §4.3 of the paper defines, for `n` points in `d` dimensions clustered
//! into `k` groups:
//!
//! * `T = XᵀX` — total sum of squares and cross products,
//! * `B = X̄ᵀ Zᵀ Z X̄` — between-cluster sum of squares (`X̄` the `k x d`
//!   cluster means, `Z` the `n x k` indicator matrix),
//! * `W = T − B` — within-cluster sum of squares,
//!
//! and uses `trace(W)` (intra-cluster variation, to be minimized) and
//! `trace(B)` (inter-cluster variation, to be maximized) as functions of
//! `k` to pick the number of clusters; the knee of these curves fell at
//! 8–12 clusters for both networks (Figure 10), so the paper fixes k = 10.

use crate::{agglomerative, Clustering, KMeans, Linkage};
use entromine_linalg::Mat;

/// Intra- (`trace(W)`) and inter- (`trace(B)`) cluster variation of one
/// clustering of `points`.
pub fn variation(points: &Mat, clustering: &Clustering) -> (f64, f64) {
    // trace(T) = Σ_i ||x_i||².
    let trace_t: f64 = points
        .row_iter()
        .map(|r| r.iter().map(|v| v * v).sum::<f64>())
        .sum();
    // trace(B) = Σ_j n_j ||mean_j||² (Z ᵀZ is diag(n_j)).
    let sizes = clustering.sizes();
    let trace_b: f64 = sizes
        .iter()
        .enumerate()
        .map(|(j, &nj)| {
            let c = clustering.centers.row(j);
            nj as f64 * c.iter().map(|v| v * v).sum::<f64>()
        })
        .sum();
    let trace_w = (trace_t - trace_b).max(0.0);
    (trace_w, trace_b)
}

/// One point of the Figure-10 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationPoint {
    /// Number of clusters.
    pub k: usize,
    /// Intra-cluster variation `trace(W)` (normalized per point).
    pub within: f64,
    /// Inter-cluster variation `trace(B)` (normalized per point).
    pub between: f64,
}

/// Which algorithm to sweep in [`variation_curve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CurveAlgorithm {
    /// k-means with the given seed.
    KMeans {
        /// RNG seed.
        seed: u64,
    },
    /// Hierarchical agglomerative with the given linkage.
    Hierarchical(Linkage),
}

/// Sweeps cluster counts and reports `trace(W)` / `trace(B)` per `k`,
/// normalized by the number of points (matching the scale of the paper's
/// Figure 10, which plots average distances).
pub fn variation_curve(
    points: &Mat,
    ks: impl IntoIterator<Item = usize>,
    algorithm: CurveAlgorithm,
) -> Vec<VariationPoint> {
    let n = points.rows().max(1) as f64;
    ks.into_iter()
        .map(|k| {
            let clustering = match algorithm {
                CurveAlgorithm::KMeans { seed } => KMeans::new(k).with_seed(seed).fit(points),
                CurveAlgorithm::Hierarchical(linkage) => agglomerative(points, k, linkage),
            };
            let (w, b) = variation(points, &clustering);
            VariationPoint {
                k,
                within: w / n,
                between: b / n,
            }
        })
        .collect()
}

/// Heuristic knee of a decreasing `within` curve: the first k after which
/// adding a cluster stops explaining a material share of the *total*
/// variation (improvement relative to the curve's starting value drops
/// below `rel_improvement`, e.g. 0.05). Normalizing by the initial value —
/// not the current one — keeps the heuristic stable once the curve has
/// collapsed to near zero.
pub fn knee(curve: &[VariationPoint], rel_improvement: f64) -> Option<usize> {
    if curve.len() < 2 {
        return curve.first().map(|p| p.k);
    }
    let scale = curve[0].within;
    if scale <= 0.0 {
        return curve.first().map(|p| p.k);
    }
    for w in curve.windows(2) {
        let (prev, next) = (w[0], w[1]);
        let improvement = (prev.within - next.within) / scale;
        if improvement < rel_improvement {
            return Some(prev.k);
        }
    }
    curve.last().map(|p| p.k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(k: usize, per: usize, spread: f64) -> Mat {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for c in 0..k {
            let cx = (c as f64) * 20.0;
            let cy = (c as f64 % 3.0) * 15.0;
            for i in 0..per {
                let dx = spread * ((i as f64 * 0.37).sin());
                let dy = spread * ((i as f64 * 0.73).cos());
                rows.push(vec![cx + dx, cy + dy]);
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Mat::from_rows(&refs)
    }

    #[test]
    fn t_equals_w_plus_b() {
        let points = blobs(3, 10, 1.0);
        let c = KMeans::new(3).with_seed(1).fit(&points);
        let (w, b) = variation(&points, &c);
        let t: f64 = points
            .row_iter()
            .map(|r| r.iter().map(|v| v * v).sum::<f64>())
            .sum();
        assert!((w + b - t).abs() < 1e-6 * t.abs().max(1.0));
    }

    #[test]
    fn perfect_clustering_minimizes_within() {
        let points = blobs(3, 10, 0.5);
        let perfect = KMeans::new(3).with_seed(1).fit(&points);
        let coarse = KMeans::new(1).fit(&points);
        let (w3, b3) = variation(&points, &perfect);
        let (w1, b1) = variation(&points, &coarse);
        assert!(w3 < w1);
        assert!(b3 > b1);
    }

    #[test]
    fn singleton_clusters_have_zero_within() {
        let points = blobs(2, 3, 1.0);
        let n = points.rows();
        let c = agglomerative(&points, n, Linkage::Single);
        let (w, _) = variation(&points, &c);
        assert!(w < 1e-9);
    }

    #[test]
    fn curve_within_decreases_with_k() {
        let points = blobs(4, 12, 1.0);
        let curve = variation_curve(
            &points,
            [1, 2, 4, 8],
            CurveAlgorithm::Hierarchical(Linkage::Average),
        );
        for w in curve.windows(2) {
            assert!(
                w[1].within <= w[0].within + 1e-9,
                "within must not increase: {curve:?}"
            );
        }
    }

    #[test]
    fn knee_found_at_true_cluster_count() {
        // 4 well-separated blobs: within-variation collapses at k=4 and
        // flattens after.
        let points = blobs(4, 15, 0.5);
        let curve = variation_curve(
            &points,
            2..=8,
            CurveAlgorithm::Hierarchical(Linkage::Complete),
        );
        let k = knee(&curve, 0.05).unwrap();
        assert!((3..=5).contains(&k), "knee at {k}, curve {curve:?}");
    }

    #[test]
    fn knee_of_trivial_curves() {
        assert_eq!(knee(&[], 0.1), None);
        let single = [VariationPoint {
            k: 2,
            within: 1.0,
            between: 1.0,
        }];
        assert_eq!(knee(&single, 0.1), Some(2));
    }

    #[test]
    fn kmeans_and_hier_curves_agree_qualitatively() {
        let points = blobs(3, 10, 0.5);
        // A single random seeding can drop two centers in one blob (a
        // legitimate Lloyd's local optimum for any particular RNG stream),
        // so use the multi-restart fit the crate recommends for exactly
        // this situation rather than betting on one lucky seed.
        let km = KMeans::new(3).with_seed(2).fit_restarts(&points, 8);
        let (km_within, km_between) = variation(&points, &km);
        let ha = variation_curve(&points, [3], CurveAlgorithm::Hierarchical(Linkage::Single));
        // Both should essentially nail the 3 blobs: within variation tiny
        // compared to between.
        assert!(km_within < 0.05 * km_between);
        assert!(ha[0].within < 0.05 * ha[0].between);
    }
}
