//! Cluster and label signatures in entropy space.
//!
//! The paper summarizes where groups of anomalies live along the four
//! residual-entropy axes:
//!
//! * **Table 6** gives, per manual label, the mean ± standard deviation on
//!   each axis, with one asterisk when the mean is more than one standard
//!   deviation from zero and two asterisks beyond two.
//! * **Tables 7–8** give, per cluster, a `+ / 0 / −` code on each axis:
//!   `0` if the cluster mean is within `s` standard deviations of zero
//!   (s = 3 for the Abilene table, 2 for Geant), `+`/`−` otherwise by the
//!   sign of the mean.

use entromine_linalg::stats::{mean, std_dev};
use entromine_linalg::Mat;
use std::fmt;

/// Sign code of one axis of a cluster signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxisSign {
    /// Mean significantly positive.
    Plus,
    /// Mean not significantly different from zero.
    Zero,
    /// Mean significantly negative.
    Minus,
}

impl fmt::Display for AxisSign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxisSign::Plus => write!(f, "+"),
            AxisSign::Zero => write!(f, "0"),
            AxisSign::Minus => write!(f, "-"),
        }
    }
}

/// Per-axis statistics of a set of points (a cluster or a label group).
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    /// Mean along each axis.
    pub mean: Vec<f64>,
    /// Sample standard deviation along each axis.
    pub std: Vec<f64>,
    /// `+ / 0 / −` code along each axis.
    pub signs: Vec<AxisSign>,
    /// Significance stars per axis: 0, 1 (`|mean| > std`), or
    /// 2 (`|mean| > 2·std`) — Table 6's asterisks.
    pub stars: Vec<u8>,
}

impl Signature {
    /// Computes the signature of the given member rows of `points`.
    ///
    /// `sd_threshold` is the number of standard deviations the mean must
    /// clear for a `+`/`−` code (3 in Table 7, 2 in Table 8). Degenerate
    /// axes (zero spread) code by the raw sign of the mean.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or contains an out-of-range row.
    pub fn of(points: &Mat, members: &[usize], sd_threshold: f64) -> Signature {
        assert!(!members.is_empty(), "signature of an empty set");
        let d = points.cols();
        let mut means = Vec::with_capacity(d);
        let mut stds = Vec::with_capacity(d);
        let mut signs = Vec::with_capacity(d);
        let mut stars = Vec::with_capacity(d);
        for axis in 0..d {
            let values: Vec<f64> = members.iter().map(|&i| points.row(i)[axis]).collect();
            let m = mean(&values);
            let s = std_dev(&values);
            means.push(m);
            stds.push(s);
            let sign = if s > 0.0 {
                if m > sd_threshold * s {
                    AxisSign::Plus
                } else if m < -sd_threshold * s {
                    AxisSign::Minus
                } else {
                    AxisSign::Zero
                }
            } else if m > 1e-12 {
                AxisSign::Plus
            } else if m < -1e-12 {
                AxisSign::Minus
            } else {
                AxisSign::Zero
            };
            signs.push(sign);
            let star = if s > 0.0 {
                if m.abs() > 2.0 * s {
                    2
                } else if m.abs() > s {
                    1
                } else {
                    0
                }
            } else if m.abs() > 1e-12 {
                2
            } else {
                0
            };
            stars.push(star);
        }
        Signature {
            mean: means,
            std: stds,
            signs,
            stars,
        }
    }

    /// The compact sign string, e.g. `"-0+0"`.
    pub fn sign_string(&self) -> String {
        self.signs.iter().map(|s| s.to_string()).collect()
    }

    /// Formats one axis as the paper's Table 6 does:
    /// `"-0.38 ± 0.32 *"`.
    pub fn axis_display(&self, axis: usize) -> String {
        let stars = match self.stars[axis] {
            0 => "",
            1 => " *",
            _ => " **",
        };
        format!("{:+.2} ± {:.2}{}", self.mean[axis], self.std[axis], stars)
    }

    /// Squared Euclidean distance between the mean vectors of two
    /// signatures — used to match clusters across datasets (Table 8's
    /// "corresponding Abilene cluster" column).
    pub fn mean_distance_sq(&self, other: &Signature) -> f64 {
        self.mean
            .iter()
            .zip(&other.mean)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// `true` if the sign codes agree on every axis.
    pub fn same_region(&self, other: &Signature) -> bool {
        self.signs == other.signs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tight_positive_cluster_codes_plus() {
        let points = Mat::from_rows(&[
            &[1.0, -1.0, 0.01],
            &[1.1, -0.9, -0.02],
            &[0.9, -1.1, 0.00],
            &[1.05, -1.0, 0.01],
        ]);
        let sig = Signature::of(&points, &[0, 1, 2, 3], 3.0);
        assert_eq!(sig.signs[0], AxisSign::Plus);
        assert_eq!(sig.signs[1], AxisSign::Minus);
        assert_eq!(sig.signs[2], AxisSign::Zero);
        assert_eq!(sig.sign_string(), "+-0");
        assert_eq!(sig.stars[0], 2);
        assert_eq!(sig.stars[2], 0);
    }

    #[test]
    fn loose_cluster_codes_zero() {
        // Mean 0.5 but std ~1: mean < 3 std => 0.
        let points = Mat::from_rows(&[&[2.0], &[-1.0], &[0.5], &[0.5]]);
        let sig = Signature::of(&points, &[0, 1, 2, 3], 3.0);
        assert_eq!(sig.signs[0], AxisSign::Zero);
    }

    #[test]
    fn threshold_changes_code() {
        // Mean = 2.5 std: + at threshold 2, 0 at threshold 3.
        let points = Mat::from_rows(&[&[2.0], &[3.0]]);
        // mean 2.5, std ~0.707; mean = 3.53 std -> plus at both. Make wider:
        let points2 = Mat::from_rows(&[&[1.0], &[4.0]]);
        // mean 2.5, std ~2.12: 1.18 std from zero.
        let tight = Signature::of(&points, &[0, 1], 3.0);
        assert_eq!(tight.signs[0], AxisSign::Plus);
        let loose = Signature::of(&points2, &[0, 1], 2.0);
        assert_eq!(loose.signs[0], AxisSign::Zero);
        let looser = Signature::of(&points2, &[0, 1], 1.0);
        assert_eq!(looser.signs[0], AxisSign::Plus);
    }

    #[test]
    fn singleton_cluster_uses_raw_sign() {
        let points = Mat::from_rows(&[&[0.7, -0.7, 0.0]]);
        let sig = Signature::of(&points, &[0], 3.0);
        assert_eq!(sig.sign_string(), "+-0");
        assert_eq!(sig.stars, vec![2, 2, 0]);
    }

    #[test]
    fn subset_membership() {
        let points = Mat::from_rows(&[&[1.0], &[100.0], &[1.1]]);
        let sig = Signature::of(&points, &[0, 2], 3.0);
        assert!((sig.mean[0] - 1.05).abs() < 1e-12);
    }

    #[test]
    fn axis_display_formats() {
        let points = Mat::from_rows(&[&[-0.38], &[-0.38]]);
        let sig = Signature::of(&points, &[0, 1], 3.0);
        let s = sig.axis_display(0);
        assert!(s.starts_with("-0.38"), "{s}");
        assert!(s.contains('±'));
    }

    #[test]
    fn signature_distance_and_region() {
        let points = Mat::from_rows(&[&[1.0, 0.0], &[1.0, 0.0], &[-1.0, 0.0], &[-1.0, 0.0]]);
        let a = Signature::of(&points, &[0, 1], 3.0);
        let b = Signature::of(&points, &[2, 3], 3.0);
        assert!(a.mean_distance_sq(&b) > 3.9);
        assert!(!a.same_region(&b));
        let a2 = Signature::of(&points, &[0, 1], 3.0);
        assert!(a.same_region(&a2));
        assert_eq!(a.mean_distance_sq(&a2), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn empty_membership_panics() {
        let points = Mat::from_rows(&[&[1.0]]);
        let _ = Signature::of(&points, &[], 3.0);
    }
}
