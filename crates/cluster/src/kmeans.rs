//! k-means clustering (Lloyd's algorithm).
//!
//! The paper (§4.3): "Given a choice of k desired clusters as input, the
//! algorithm begins with k initial random seeds, which are the initial
//! cluster centers. It then alternates between assigning each point in the
//! dataset to the nearest cluster center, and updating the mean of each
//! cluster. It iterates until further re-assignments are possible."
//!
//! Random seeding is therefore the default; k-means++ is available for the
//! ablation benches ("k-means random seeding vs k-means++", DESIGN.md §7).

use crate::{dist_sq, Clustering};
use entromine_linalg::Mat;
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::{Rng, SeedableRng};

/// Seeding strategy for the initial cluster centers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Seeding {
    /// k distinct points chosen uniformly at random (the paper's method).
    #[default]
    Random,
    /// k-means++: points chosen with probability proportional to squared
    /// distance from the nearest already-chosen center.
    PlusPlus,
}

/// Configuration for a k-means run.
#[derive(Debug, Clone, Copy)]
pub struct KMeans {
    /// Number of clusters.
    pub k: usize,
    /// Iteration cap (Lloyd's converges long before this in practice).
    pub max_iter: usize,
    /// Seeding strategy.
    pub seeding: Seeding,
    /// RNG seed: identical seeds give identical clusterings.
    pub seed: u64,
}

impl KMeans {
    /// A default configuration for `k` clusters.
    pub fn new(k: usize) -> Self {
        KMeans {
            k,
            max_iter: 300,
            seeding: Seeding::Random,
            seed: 0,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the seeding strategy.
    pub fn with_seeding(mut self, seeding: Seeding) -> Self {
        self.seeding = seeding;
        self
    }

    /// Runs Lloyd's algorithm on the rows of `points`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or there are fewer points than clusters.
    pub fn fit(&self, points: &Mat) -> Clustering {
        let n = points.rows();
        let d = points.cols();
        assert!(self.k > 0, "k must be positive");
        assert!(n >= self.k, "need at least k points ({} < {})", n, self.k);

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut centers = self.initial_centers(points, &mut rng);
        let mut assignments = vec![usize::MAX; n];

        for _ in 0..self.max_iter {
            // Assignment step.
            let mut changed = false;
            for (i, slot) in assignments.iter_mut().enumerate() {
                let x = points.row(i);
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for j in 0..self.k {
                    let dj = dist_sq(x, centers.row(j));
                    if dj < best_d {
                        best_d = dj;
                        best = j;
                    }
                }
                if *slot != best {
                    *slot = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            // Update step.
            let mut sums = Mat::zeros(self.k, d);
            let mut counts = vec![0usize; self.k];
            for (i, &a) in assignments.iter().enumerate() {
                counts[a] += 1;
                for (s, &v) in sums.row_mut(a).iter_mut().zip(points.row(i)) {
                    *s += v;
                }
            }
            for (j, &count) in counts.iter().enumerate() {
                if count > 0 {
                    for v in sums.row_mut(j) {
                        *v /= count as f64;
                    }
                    centers.row_mut(j).copy_from_slice(sums.row(j));
                } else {
                    // Empty cluster: re-seed at the point farthest from its
                    // current center, a standard Lloyd's repair.
                    let far = (0..n)
                        .max_by(|&a, &b| {
                            let da = dist_sq(points.row(a), centers.row(assignments[a]));
                            let db = dist_sq(points.row(b), centers.row(assignments[b]));
                            da.partial_cmp(&db).expect("distances are finite")
                        })
                        .expect("n >= k >= 1");
                    centers.row_mut(j).copy_from_slice(points.row(far));
                }
            }
        }

        let mut clustering = Clustering {
            k: self.k,
            assignments,
            centers,
        };
        clustering.recompute_centers(points);
        clustering
    }

    /// Runs `restarts` independent fits (seeds `self.seed`,
    /// `self.seed + 1`, ...) and keeps the clustering with the lowest
    /// within-cluster sum of squares — the standard remedy for Lloyd's
    /// sensitivity to its random initial centers.
    ///
    /// # Panics
    ///
    /// Panics if `restarts == 0`, or as [`fit`](Self::fit) does.
    pub fn fit_restarts(&self, points: &Mat, restarts: usize) -> Clustering {
        assert!(restarts > 0, "need at least one restart");
        let mut best: Option<(f64, Clustering)> = None;
        for r in 0..restarts {
            let mut cfg = *self;
            cfg.seed = self.seed.wrapping_add(r as u64);
            let c = cfg.fit(points);
            let inertia = Self::inertia(points, &c);
            if best.as_ref().is_none_or(|(bi, _)| inertia < *bi) {
                best = Some((inertia, c));
            }
        }
        best.expect("restarts > 0").1
    }

    /// Total within-cluster sum of squared distances (the k-means
    /// objective) of a clustering over `points`.
    pub fn inertia(points: &Mat, clustering: &Clustering) -> f64 {
        clustering
            .assignments
            .iter()
            .enumerate()
            .map(|(i, &a)| dist_sq(points.row(i), clustering.centers.row(a)))
            .sum()
    }

    fn initial_centers(&self, points: &Mat, rng: &mut StdRng) -> Mat {
        let n = points.rows();
        let d = points.cols();
        let mut centers = Mat::zeros(self.k, d);
        match self.seeding {
            Seeding::Random => {
                let chosen = sample(rng, n, self.k);
                for (j, i) in chosen.into_iter().enumerate() {
                    centers.row_mut(j).copy_from_slice(points.row(i));
                }
            }
            Seeding::PlusPlus => {
                let first = rng.random_range(0..n);
                centers.row_mut(0).copy_from_slice(points.row(first));
                let mut d2: Vec<f64> = (0..n)
                    .map(|i| dist_sq(points.row(i), centers.row(0)))
                    .collect();
                for j in 1..self.k {
                    let total: f64 = d2.iter().sum();
                    let pick = if total <= 0.0 {
                        rng.random_range(0..n)
                    } else {
                        let mut target = rng.random::<f64>() * total;
                        let mut pick = n - 1;
                        for (i, &w) in d2.iter().enumerate() {
                            if target < w {
                                pick = i;
                                break;
                            }
                            target -= w;
                        }
                        pick
                    };
                    centers.row_mut(j).copy_from_slice(points.row(pick));
                    for (i, d) in d2.iter_mut().enumerate() {
                        let nd = dist_sq(points.row(i), centers.row(j));
                        if nd < *d {
                            *d = nd;
                        }
                    }
                }
            }
        }
        centers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated Gaussian-ish blobs in 2-D.
    fn blobs() -> (Mat, Vec<usize>) {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut truth = Vec::new();
        let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        let offsets = [
            (0.1, 0.2),
            (-0.2, 0.1),
            (0.3, -0.1),
            (-0.1, -0.3),
            (0.0, 0.25),
            (0.2, 0.0),
        ];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for &(dx, dy) in &offsets {
                rows.push(vec![cx + dx, cy + dy]);
                truth.push(c);
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Mat::from_rows(&refs), truth)
    }

    /// Fraction of point pairs on whose co-membership two clusterings agree
    /// (Rand index).
    fn rand_index(a: &[usize], b: &[usize]) -> f64 {
        let n = a.len();
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let same_a = a[i] == a[j];
                let same_b = b[i] == b[j];
                if same_a == same_b {
                    agree += 1;
                }
                total += 1;
            }
        }
        agree as f64 / total as f64
    }

    #[test]
    fn recovers_separated_blobs_with_restarts() {
        // A single random seeding can land two centers in one blob (a
        // legitimate Lloyd's local optimum); multi-restart always recovers.
        let (points, truth) = blobs();
        for seed in 0..5 {
            let c = KMeans::new(3).with_seed(seed).fit_restarts(&points, 8);
            assert_eq!(rand_index(&c.assignments, &truth), 1.0, "seed {seed}");
        }
    }

    #[test]
    fn single_random_seeding_is_usually_decent() {
        let (points, truth) = blobs();
        let mut perfect = 0;
        for seed in 0..10 {
            let c = KMeans::new(3).with_seed(seed).fit(&points);
            let ri = rand_index(&c.assignments, &truth);
            assert!(ri >= 0.6, "seed {seed} catastrophically bad: {ri}");
            if ri == 1.0 {
                perfect += 1;
            }
        }
        assert!(perfect >= 3, "only {perfect}/10 seeds recovered the blobs");
    }

    #[test]
    fn plusplus_recovers_blobs_too() {
        let (points, truth) = blobs();
        let c = KMeans::new(3)
            .with_seeding(Seeding::PlusPlus)
            .with_seed(7)
            .fit(&points);
        assert_eq!(rand_index(&c.assignments, &truth), 1.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (points, _) = blobs();
        let a = KMeans::new(3).with_seed(42).fit(&points);
        let b = KMeans::new(3).with_seed(42).fit(&points);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn k_equals_n_puts_every_point_alone() {
        let points = Mat::from_rows(&[&[0.0], &[5.0], &[10.0]]);
        let c = KMeans::new(3).with_seed(1).fit(&points);
        let mut sizes = c.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 1]);
    }

    #[test]
    fn k_one_groups_everything() {
        let (points, _) = blobs();
        let c = KMeans::new(1).fit(&points);
        assert!(c.assignments.iter().all(|&a| a == 0));
        // Center is the global mean.
        let mean_x: f64 =
            (0..points.rows()).map(|i| points.row(i)[0]).sum::<f64>() / points.rows() as f64;
        assert!((c.centers[(0, 0)] - mean_x).abs() < 1e-9);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let (points, _) = blobs();
        let i1 = KMeans::inertia(&points, &KMeans::new(1).with_seed(3).fit(&points));
        let i3 = KMeans::inertia(&points, &KMeans::new(3).with_seed(3).fit(&points));
        let i6 = KMeans::inertia(&points, &KMeans::new(6).with_seed(3).fit(&points));
        assert!(i1 > i3, "{i1} !> {i3}");
        assert!(i3 >= i6, "{i3} !>= {i6}");
    }

    #[test]
    fn duplicate_points_are_fine() {
        let row: &[f64] = &[1.0, 1.0];
        let points = Mat::from_rows(&[row; 10]);
        let c = KMeans::new(2).with_seed(5).fit(&points);
        assert_eq!(c.assignments.len(), 10);
        // All duplicates in one cluster (the other may be empty-reseeded to
        // the same coordinates; either way assignments are consistent).
        let first = c.assignments[0];
        assert!(c.assignments.iter().all(|&a| a == first));
    }

    #[test]
    #[should_panic(expected = "need at least k points")]
    fn too_few_points_panics() {
        let points = Mat::from_rows(&[&[1.0]]);
        let _ = KMeans::new(2).fit(&points);
    }
}
