//! Unsupervised classification of anomalies in entropy space.
//!
//! §4.3 / §7 of the paper: every detected anomaly is a point
//! `h̃ = [H̃(srcIP), H̃(srcPort), H̃(dstIP), H̃(dstPort)]`, rescaled to unit
//! norm; structurally similar anomalies land near each other, and simple
//! clustering recovers semantically meaningful groups without any a-priori
//! anomaly taxonomy.
//!
//! * [`KMeans`] — Lloyd's algorithm with seeded random initialization (the
//!   paper's choice) or k-means++ (ablation).
//! * [`agglomerative`] — hierarchical agglomerative clustering with
//!   nearest-neighbour (single) linkage as in the paper, plus complete and
//!   average linkage for ablation, via Lance–Williams updates.
//! * [`validity`] — the cluster-count selection metrics of §4.3:
//!   intra-cluster variation `trace(W)` and inter-cluster variation
//!   `trace(B)` as functions of the number of clusters (Figure 10), plus a
//!   knee heuristic.
//! * [`signature`] — the `+ / 0 / −` per-axis cluster signatures of
//!   Tables 7–8 and the per-label mean ± std summaries of Table 6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hier;
mod kmeans;
pub mod signature;
pub mod validity;

pub use hier::{agglomerative, Linkage};
pub use kmeans::{KMeans, Seeding};
pub use signature::{AxisSign, Signature};
pub use validity::{variation, variation_curve, CurveAlgorithm, VariationPoint};

use entromine_linalg::Mat;

/// The result of a clustering run: an assignment of every point to one of
/// `k` clusters, plus the cluster means.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Number of clusters `k`.
    pub k: usize,
    /// `assignments[i]` is the cluster of point `i` (`< k`).
    pub assignments: Vec<usize>,
    /// `k x d` matrix of cluster means (centroid of an empty cluster is the
    /// zero vector).
    pub centers: Mat,
}

impl Clustering {
    /// Number of points in each cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// Indices of the points assigned to cluster `j`.
    pub fn members(&self, j: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == j)
            .map(|(i, _)| i)
            .collect()
    }

    /// Clusters ordered by decreasing size (as the paper's tables list
    /// them); returns the cluster indices.
    pub fn by_size_desc(&self) -> Vec<usize> {
        let sizes = self.sizes();
        let mut order: Vec<usize> = (0..self.k).collect();
        order.sort_by_key(|&j| std::cmp::Reverse(sizes[j]));
        order
    }

    /// Recomputes centers from assignments (used after external edits and
    /// by the agglomerative path, which merges without tracking means).
    pub fn recompute_centers(&mut self, points: &Mat) {
        let d = points.cols();
        let mut centers = Mat::zeros(self.k, d);
        let mut counts = vec![0usize; self.k];
        for (i, &a) in self.assignments.iter().enumerate() {
            counts[a] += 1;
            for (slot, &v) in centers.row_mut(a).iter_mut().zip(points.row(i)) {
                *slot += v;
            }
        }
        for (j, &c) in counts.iter().enumerate() {
            if c > 0 {
                for v in centers.row_mut(j) {
                    *v /= c as f64;
                }
            }
        }
        self.centers = centers;
    }
}

/// Squared Euclidean distance between two equal-length slices.
pub(crate) fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_members_and_order() {
        let c = Clustering {
            k: 3,
            assignments: vec![0, 1, 1, 2, 1],
            centers: Mat::zeros(3, 2),
        };
        assert_eq!(c.sizes(), vec![1, 3, 1]);
        assert_eq!(c.members(1), vec![1, 2, 4]);
        assert_eq!(c.by_size_desc()[0], 1);
    }

    #[test]
    fn recompute_centers_averages_members() {
        let points = Mat::from_rows(&[&[0.0, 0.0], &[2.0, 2.0], &[10.0, 0.0]]);
        let mut c = Clustering {
            k: 2,
            assignments: vec![0, 0, 1],
            centers: Mat::zeros(2, 2),
        };
        c.recompute_centers(&points);
        assert_eq!(c.centers.row(0), &[1.0, 1.0]);
        assert_eq!(c.centers.row(1), &[10.0, 0.0]);
    }

    #[test]
    fn empty_cluster_center_is_zero() {
        let points = Mat::from_rows(&[&[1.0, 1.0]]);
        let mut c = Clustering {
            k: 2,
            assignments: vec![0],
            centers: Mat::zeros(2, 2),
        };
        c.recompute_centers(&points);
        assert_eq!(c.centers.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn dist_sq_works() {
        assert_eq!(dist_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist_sq(&[1.0], &[1.0]), 0.0);
    }
}
