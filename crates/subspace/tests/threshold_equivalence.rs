//! Partial-spectrum ↔ full-QL threshold equivalence.
//!
//! The partial-spectrum engine never sees the residual eigenvalues: it
//! reconstructs their power sums from trace identities and subtraction.
//! That substitution is only admissible if the detection thresholds it
//! produces are indistinguishable from the dense oracle's — which this
//! suite pins at `1e-8` relative (with an absolute floor at the round-off
//! scale of the spectrum) across random traffic-like data, normal-subspace
//! dimensions, and confidence levels, including the degenerate
//! zero-residual and `h₀ ≤ 0` fallback branches of the Jackson–Mudholkar
//! formula.

use entromine_linalg::{top_k_eigen_detailed, FitStrategy, Mat};
use entromine_subspace::{DimSelection, SubspaceModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `|a - b|` within `1e-8` relative, floored at the spectrum's round-off
/// scale (`trace` carries the units of every threshold).
fn assert_threshold_close(oracle: f64, other: f64, trace: f64, what: &str) {
    let tol = 1e-8 * oracle.abs() + 1e-10 * trace.abs() + 1e-12;
    assert!(
        (oracle - other).abs() <= tol,
        "{what}: oracle {oracle} vs {other} (tol {tol})"
    );
}

/// Low-rank-plus-noise data: the structure the subspace method models.
fn traffic_like(t: usize, n: usize, noise: f64, seed: u64) -> Mat {
    let mut rng = StdRng::seed_from_u64(seed);
    let gains: Vec<f64> = (0..n).map(|_| 0.5 + 2.0 * rng.random::<f64>()).collect();
    let phases: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
    Mat::from_fn(t, n, |i, j| {
        let s = ((i as f64 / 37.0 + phases[j]) * std::f64::consts::TAU).sin();
        gains[j] * (2.0 + s) + noise * (rng.random::<f64>() - 0.5)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance property: `FitStrategy::Partial` thresholds agree
    /// with the full-QL oracle within 1e-8 relative, across data, m, and
    /// alpha — and the Gram engine ties the same knot from the other side.
    #[test]
    fn partial_thresholds_match_full_ql_oracle(
        seed in 0u64..10_000,
        t in 40usize..120,
        n in 24usize..56,
        m in 1usize..8,
        alpha_mil in 900usize..1000,
        noise in 0.0f64..0.3,
    ) {
        let alpha = alpha_mil as f64 / 1000.0;
        let x = traffic_like(t, n, noise, seed);
        let dim = DimSelection::Fixed(m);
        let full = SubspaceModel::fit_with(&x, dim, FitStrategy::Full).unwrap();
        let partial = SubspaceModel::fit_with(&x, dim, FitStrategy::Partial).unwrap();
        let gram = SubspaceModel::fit_with(&x, dim, FitStrategy::Gram).unwrap();
        let trace = full.pca().total_variance();
        let oracle = full.threshold(alpha).unwrap();
        assert_threshold_close(
            oracle,
            partial.threshold(alpha).unwrap(),
            trace,
            "partial vs full",
        );
        assert_threshold_close(
            oracle,
            gram.threshold(alpha).unwrap(),
            trace,
            "gram vs full",
        );
        // The partial engine really ran when it had room to pay off
        // (m + margin < n): this guards against the fallback silently
        // converting the whole property into Full-vs-Full.
        if m + 8 < n {
            prop_assert_eq!(partial.pca().strategy(), FitStrategy::Partial);
        }
    }

    /// Degenerate branch: exact low-rank data (residual spectrum all zero
    /// past the rank). Every engine must land on a ~zero threshold rather
    /// than amplifying round-off.
    #[test]
    fn zero_residual_branch_agrees(
        seed in 0u64..10_000,
        rank in 1usize..4,
        m in 4usize..8,
        alpha_mil in 900usize..1000,
    ) {
        let alpha = alpha_mil as f64 / 1000.0;
        let (t, n) = (60usize, 30usize);
        let mut rng = StdRng::seed_from_u64(seed);
        // X = sum of `rank` outer products: rank(X_c) <= rank < m.
        let coeffs: Vec<Vec<f64>> = (0..rank)
            .map(|_| (0..t).map(|_| rng.random::<f64>() - 0.5).collect())
            .collect();
        let loads: Vec<Vec<f64>> = (0..rank)
            .map(|_| (0..n).map(|_| 2.0 * rng.random::<f64>()).collect())
            .collect();
        let x = Mat::from_fn(t, n, |i, j| {
            (0..rank).map(|r| coeffs[r][i] * loads[r][j]).sum()
        });
        let dim = DimSelection::Fixed(m);
        let full = SubspaceModel::fit_with(&x, dim, FitStrategy::Full).unwrap();
        let partial = SubspaceModel::fit_with(&x, dim, FitStrategy::Partial).unwrap();
        let trace = full.pca().total_variance();
        let oracle = full.threshold(alpha).unwrap();
        let other = partial.threshold(alpha).unwrap();
        // Both are round-off of an exactly-zero residual spectrum.
        prop_assert!(oracle.abs() <= 1e-9 * (1.0 + trace), "oracle {}", oracle);
        assert_threshold_close(oracle, other, trace, "zero-residual");
    }
}

/// The `h₀ ≤ 0` fallback branch, end to end through both engines: one
/// moderate residual variance above a sea of tiny ones makes
/// `h₀ = 1 − 2φ₁φ₃/(3φ₂²)` negative, exercising the first-order normal
/// approximation fallback.
#[test]
fn h0_fallback_branch_agrees_between_engines() {
    let (t, n) = (400usize, 96usize);
    let mut rng = StdRng::seed_from_u64(77);
    // Independent columns with variances [100, 1, 0.01, 0.01, ...]: the
    // residual spectrum past m = 1 is heavy-tailed in exactly the way
    // that drives h0 negative.
    let sigma: Vec<f64> = (0..n)
        .map(|j| match j {
            0 => 10.0,
            1 => 1.0,
            _ => 0.1,
        })
        .collect();
    let x = Mat::from_fn(t, n, |_, j| sigma[j] * (rng.random::<f64>() - 0.5));
    let dim = DimSelection::Fixed(1);
    let full = SubspaceModel::fit_with(&x, dim, FitStrategy::Full).unwrap();
    let partial = SubspaceModel::fit_with(&x, dim, FitStrategy::Partial).unwrap();
    assert_eq!(partial.pca().strategy(), FitStrategy::Partial);

    // Confirm the fixture actually reaches the fallback branch.
    let sums = full.pca().residual_power_sums(1).unwrap();
    let h0 = 1.0 - 2.0 * sums.phi1 * sums.phi3 / (3.0 * sums.phi2 * sums.phi2);
    assert!(h0 <= 0.0, "fixture must drive h0 negative, got {h0}");

    let trace = full.pca().total_variance();
    for alpha in [0.95, 0.995, 0.999] {
        assert_threshold_close(
            full.threshold(alpha).unwrap(),
            partial.threshold(alpha).unwrap(),
            trace,
            "h0 fallback",
        );
    }
}

/// The blocked tridiagonal eigensolver (`sym_eigen`) against the retained
/// QL reference (`sym_eigen_ql`), pinned where it matters operationally:
/// the Jackson–Mudholkar detection threshold consumes the residual
/// spectrum, so if the two solvers' spectra induce the same `δ²_α` the
/// eigensolver swap cannot move an alarm. Sizes are chosen so the blocked
/// fast path actually engages (n ≥ 32).
#[test]
fn blocked_and_ql_spectra_give_same_thresholds() {
    use entromine_subspace::q_statistic_threshold;
    for (n, seed) in [(36usize, 11u64), (48, 12), (64, 13)] {
        let x = traffic_like(3 * n, n, 0.2, seed);
        // A PSD matrix with traffic-like spectral decay.
        let a = x.transpose().matmul(&x).unwrap();
        let fast = entromine_linalg::sym_eigen(&a).unwrap();
        let ql = entromine_linalg::sym_eigen_ql(&a).unwrap();
        let trace: f64 = ql.values.iter().sum();
        for m in [1usize, 3, 6] {
            for alpha in [0.95, 0.999] {
                let oracle = q_statistic_threshold(&ql.values, m, alpha).unwrap();
                let got = q_statistic_threshold(&fast.values, m, alpha).unwrap();
                assert_threshold_close(
                    oracle,
                    got,
                    trace,
                    &format!("sym_eigen vs ql threshold, n={n} m={m} alpha={alpha}"),
                );
            }
        }
    }
}

/// Clustered-eigenvalue stress for the hardened `top_k_eigen`: a spectrum
/// with exactly repeated leading values (the worst case for per-pair
/// convergence tests) must still lock, stay orthonormal, and reproduce
/// the values — with the cut's vanishing gap reported, not hidden.
#[test]
fn top_k_survives_clustered_spectra() {
    let n = 48;
    // An orthogonal basis from an unrelated eigenproblem.
    let mut rng = StdRng::seed_from_u64(5);
    let b = Mat::from_fn(n, n, |_, _| rng.random::<f64>() - 0.5);
    let q = entromine_linalg::sym_eigen(&b.transpose().matmul(&b).unwrap())
        .unwrap()
        .vectors;
    // Clusters: a triple at 10, a pair split by 1e-9, then a flat tail.
    let mut values = vec![10.0, 10.0, 10.0, 7.0, 7.0 - 1e-9, 4.0];
    values.extend((0..n - 6).map(|i| 0.5 - 1e-3 * i as f64));
    let mut lam = Mat::zeros(n, n);
    for (i, &v) in values.iter().enumerate() {
        lam[(i, i)] = v;
    }
    let a = q.matmul(&lam).unwrap().matmul(&q.transpose()).unwrap();
    // Symmetrize round-off before the solvers look at it.
    let a = Mat::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));

    for k in [3usize, 5, 6] {
        let (eigen, info) = top_k_eigen_detailed(&a, k, 42).unwrap();
        assert!(info.converged, "k={k} failed to converge: {info:?}");
        assert!(info.max_residual <= 1e-9 * values[0], "k={k}: {info:?}");
        for (i, v) in eigen.values.iter().enumerate() {
            assert!(
                (v - values[i]).abs() <= 1e-8 * values[0],
                "k={k} pair {i}: {v} vs {}",
                values[i]
            );
        }
        // Orthonormal axes, each an approximate eigenvector.
        let vtv = eigen.vectors.transpose().matmul(&eigen.vectors).unwrap();
        assert!(vtv.max_abs_diff(&Mat::identity(k)).unwrap() < 1e-8);
        // Cutting inside the triple reports a vanishing relative gap;
        // cutting at the 7 -> 4 edge reports a healthy one.
        if k == 3 {
            // lambda_3 = 10 vs lambda_4 = 7: healthy.
            let gap = info.trailing_gap.expect("oversampled run knows the gap");
            assert!(gap > 0.2, "gap {gap}");
        }
        if k == 5 {
            // lambda_5 = 7 - 1e-9 vs lambda_6 = 4: healthy again.
            let gap = info.trailing_gap.expect("gap");
            assert!(gap > 0.2, "gap {gap}");
        }
    }
    // A cut straight through the exact triple: the subspace itself is
    // still delivered (values right, vectors orthonormal) even though
    // individual axes inside the cluster are arbitrary.
    let (eigen, info) = top_k_eigen_detailed(&a, 2, 43).unwrap();
    assert!(info.converged);
    let gap = info.trailing_gap.expect("gap");
    assert!(
        gap < 1e-6,
        "cut inside a cluster must report ~zero gap: {gap}"
    );
    for v in &eigen.values {
        assert!((v - 10.0).abs() < 1e-8 * 10.0);
    }
}
