//! Property-based tests for the subspace method.

use entromine_linalg::Mat;
use entromine_subspace::{q_statistic_threshold, DimSelection, SubspaceModel};
use proptest::prelude::*;

/// Strategy: a low-rank-plus-noise data matrix (t x n), the structure the
/// subspace method is built for.
fn traffic_like(t: usize, n: usize) -> impl Strategy<Value = Mat> {
    (
        proptest::collection::vec(0.5f64..3.0, n),
        proptest::collection::vec(-0.05f64..0.05, t * n),
        0.0f64..std::f64::consts::TAU,
    )
        .prop_map(move |(gains, noise, phase)| {
            Mat::from_fn(t, n, |i, j| {
                let s = ((i as f64 / 24.0) * std::f64::consts::TAU + phase).sin();
                gains[j] * (2.0 + s) + noise[i * n + j]
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn spe_nonnegative_everywhere(x in traffic_like(60, 8)) {
        let model = SubspaceModel::fit(&x, DimSelection::Fixed(2)).unwrap();
        for row in x.row_iter() {
            prop_assert!(model.spe(row).unwrap() >= 0.0);
        }
    }

    #[test]
    fn residual_orthogonal_to_normal_subspace(x in traffic_like(60, 8), row in 0usize..60) {
        let model = SubspaceModel::fit(&x, DimSelection::Fixed(2)).unwrap();
        let r = model.residual(x.row(row)).unwrap();
        // Project the residual back onto each normal axis: must be ~0.
        let comp = model.pca().components();
        for j in 0..model.normal_dim() {
            let dot: f64 = (0..8).map(|i| r[i] * comp[(i, j)]).sum();
            prop_assert!(dot.abs() < 1e-8, "axis {} leak: {}", j, dot);
        }
    }

    #[test]
    fn threshold_monotone_in_alpha(x in traffic_like(50, 6)) {
        let model = SubspaceModel::fit(&x, DimSelection::Fixed(2)).unwrap();
        let t1 = model.threshold(0.95).unwrap();
        let t2 = model.threshold(0.99).unwrap();
        let t3 = model.threshold(0.999).unwrap();
        prop_assert!(t1 <= t2 + 1e-15);
        prop_assert!(t2 <= t3 + 1e-15);
    }

    #[test]
    fn detections_shrink_with_alpha(x in traffic_like(80, 6)) {
        let model = SubspaceModel::fit(&x, DimSelection::Fixed(2)).unwrap();
        let lo = model.detect(&x, 0.99).unwrap().len();
        let hi = model.detect(&x, 0.9999).unwrap().len();
        prop_assert!(hi <= lo);
    }

    #[test]
    fn larger_subspace_never_raises_spe(x in traffic_like(60, 8), row in 0usize..60) {
        let m2 = SubspaceModel::fit(&x, DimSelection::Fixed(2)).unwrap();
        let m5 = SubspaceModel::fit(&x, DimSelection::Fixed(5)).unwrap();
        let spe2 = m2.spe(x.row(row)).unwrap();
        let spe5 = m5.spe(x.row(row)).unwrap();
        prop_assert!(spe5 <= spe2 + 1e-12);
    }

    #[test]
    fn qstat_scale_equivariance(scale in 0.1f64..100.0) {
        // Scaling the covariance spectrum by c scales δ² by c.
        let eigs = [10.0, 4.0, 1.0, 0.5, 0.25, 0.1];
        let scaled: Vec<f64> = eigs.iter().map(|&l| l * scale).collect();
        let base = q_statistic_threshold(&eigs, 2, 0.999).unwrap();
        let big = q_statistic_threshold(&scaled, 2, 0.999).unwrap();
        prop_assert!((big / base - scale).abs() < 1e-9 * scale.max(1.0));
    }

    #[test]
    fn t2_nonnegative_and_detects_score_outliers(x in traffic_like(60, 8)) {
        let model = SubspaceModel::fit(&x, DimSelection::Fixed(2)).unwrap();
        for row in x.row_iter() {
            prop_assert!(model.t2(row).unwrap() >= 0.0);
        }
        // An observation far along the FIRST principal axis has huge T2
        // but modest SPE.
        let comp = model.pca().components();
        let spread = model.pca().eigenvalues()[0].sqrt().max(1e-6);
        let mut extreme: Vec<f64> = model.pca().mean().to_vec();
        for i in 0..8 {
            extreme[i] += 50.0 * spread * comp[(i, 0)];
        }
        let t2 = model.t2(&extreme).unwrap();
        prop_assert!(t2 > model.t2_threshold(0.999), "t2 {} too small", t2);
    }
}
