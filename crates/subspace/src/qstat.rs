//! Detection thresholds for the squared prediction error.
//!
//! # The Q-statistic (Jackson & Mudholkar 1979)
//!
//! Given the eigenvalue spectrum `λ_1 >= λ_2 >= ... >= λ_n` of the sample
//! covariance and a normal subspace of dimension `m`, the squared residual
//! norm of a multivariate-normal observation exceeds
//!
//! ```text
//! δ²_α = φ₁ · [ c_α·sqrt(2·φ₂·h₀²)/φ₁ + 1 + φ₂·h₀·(h₀-1)/φ₁² ]^(1/h₀)
//! ```
//!
//! with probability `1 - α`, where `φ_i = Σ_{j>m} λ_j^i`,
//! `h₀ = 1 - 2φ₁φ₃/(3φ₂²)`, and `c_α` is the `α` standard-normal quantile.
//! This is the threshold the paper uses to turn a residual magnitude into a
//! detection at a desired false-alarm rate (α = 0.995, 0.999 in §6).
//!
//! Crucially, the residual spectrum enters **only** through the power sums
//! `φ₁, φ₂, φ₃` — which is why the partial-spectrum fit engine never needs
//! the residual eigenvalues themselves (see
//! [`Spectrum`](entromine_linalg::Spectrum)). The core entry point here is
//! [`q_threshold_from_power_sums`]; [`q_statistic_threshold`] remains as a
//! thin adapter over an explicit eigenvalue slice.
//!
//! # The empirical alternative
//!
//! The Jackson–Mudholkar formula assumes Gaussian residuals. Entropy
//! residuals at small traffic scales are markedly heteroskedastic (Poisson
//! sampling noise scales with rate), and the Gaussian threshold then
//! *under-covers*: a clean training week can alarm on ~17% of its own bins
//! at `α = 0.999`. [`ThresholdPolicy::Empirical`] sidesteps the
//! distributional assumption entirely by calibrating `δ²_α` as the `α`
//! order statistic of the *training-window SPE distribution* — by
//! construction, a fraction `1 − α` of training bins exceeds it. Prefer it
//! when training data is plentiful and residuals are visibly non-Gaussian;
//! prefer Jackson–Mudholkar when the training window is short (an
//! empirical `α = 0.999` quantile needs thousands of bins to be sharp) or
//! when an analytic, model-derived threshold is required.

use crate::SubspaceError;
use entromine_linalg::stats::inv_norm_cdf;
use entromine_linalg::ResidualPowerSums;

/// How a fitted model turns a confidence level `α` into an SPE threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThresholdPolicy {
    /// The analytic Jackson–Mudholkar threshold from the residual power
    /// sums — the paper's choice, exact under Gaussian residuals.
    #[default]
    JacksonMudholkar,
    /// The `α` quantile of the training-window SPE order statistics —
    /// assumption-free coverage of the training distribution itself.
    /// Requires a calibrated model (matrix fits calibrate automatically;
    /// streamed fits need an explicit calibration pass).
    Empirical,
}

/// Computes the Q-statistic threshold `δ²_α` from an eigenvalue slice.
///
/// * `eigenvalues` — full covariance spectrum, descending.
/// * `m` — dimension of the normal subspace (`m < eigenvalues.len()`).
/// * `alpha` — confidence level in `(0, 1)`; detections fire when
///   `SPE > δ²_α`, giving false-alarm probability `1 - alpha` under the
///   null model.
///
/// This is the historical entry point, kept as a thin adapter: it clamps
/// the residual eigenvalues at zero (round-off from the solver), forms
/// their power sums, and delegates to [`q_threshold_from_power_sums`].
pub fn q_statistic_threshold(
    eigenvalues: &[f64],
    m: usize,
    alpha: f64,
) -> Result<f64, SubspaceError> {
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(SubspaceError::BadAlpha(alpha));
    }
    if m >= eigenvalues.len() {
        return Err(SubspaceError::BadDimension {
            requested: m,
            available: eigenvalues.len(),
        });
    }
    q_threshold_from_power_sums(&ResidualPowerSums::from_slice(&eigenvalues[m..]), alpha)
}

/// Computes the Q-statistic threshold `δ²_α` from residual power sums —
/// the core of the detection threshold, consumed directly by the
/// partial-spectrum fit path (which obtains exact `φ_i` from trace
/// identities without ever holding the residual eigenvalues).
///
/// Degenerate inputs are handled conservatively:
///
/// * If the residual power sums are ~0 (the data is perfectly modeled
///   by the normal subspace), the threshold is 0 — any measurable residual
///   is anomalous.
/// * If `h₀` is non-positive (possible for extremely heavy-tailed residual
///   spectra), the threshold falls back to the first-order normal
///   approximation `φ₁ + c_α·sqrt(2·φ₂)`.
///
/// # Errors
///
/// [`SubspaceError::BadAlpha`] unless `0 < alpha < 1`.
pub fn q_threshold_from_power_sums(
    sums: &ResidualPowerSums,
    alpha: f64,
) -> Result<f64, SubspaceError> {
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(SubspaceError::BadAlpha(alpha));
    }
    let (phi1, phi2, phi3) = (sums.phi1, sums.phi2, sums.phi3);

    if phi1 <= 0.0 || phi2 <= 0.0 {
        // Residual space carries no variance: any residual is anomalous.
        return Ok(0.0);
    }

    let c_alpha = inv_norm_cdf(alpha);
    let h0 = 1.0 - 2.0 * phi1 * phi3 / (3.0 * phi2 * phi2);

    if h0 <= 0.0 {
        // Fall back to the first-order normal approximation.
        return Ok(phi1 + c_alpha * (2.0 * phi2).sqrt());
    }

    let term = c_alpha * (2.0 * phi2 * h0 * h0).sqrt() / phi1
        + 1.0
        + phi2 * h0 * (h0 - 1.0) / (phi1 * phi1);
    // `term` can go (slightly) negative at extreme alpha; the residual
    // distribution's support is nonnegative, so clamp.
    if term <= 0.0 {
        return Ok(0.0);
    }
    Ok(phi1 * term.powf(1.0 / h0))
}

/// A structured warning that an empirical threshold is under-resolved:
/// the calibration sample is too small for the requested `α` quantile to
/// be sharp.
///
/// The `α` order statistic of a `t`-bin sample is only resolved by the
/// data when the sample is expected to put mass above it — i.e. when
/// `t · (1 − α) ≥ 1`. Below that ([`required_bins`] bins, e.g. 1000 bins
/// at `α = 0.999`), [`empirical_quantile`] interpolates against (or
/// saturates at) the sample maximum: the threshold becomes an extreme
/// value estimate with high variance, and the realized false-alarm rate
/// can sit well off `1 − α`. This is a *warning*, not an error — the
/// threshold is still the best available order statistic — so callers
/// surface it (structured, never a panic) and operators decide whether to
/// lengthen the window or fall back to Jackson–Mudholkar.
///
/// [`required_bins`]: EmpiricalSharpness::required_bins
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmpiricalSharpness {
    /// Bins in the calibration sample.
    pub training_bins: usize,
    /// The confidence level the threshold was requested at.
    pub alpha: f64,
    /// Minimum sample size at which the `alpha` quantile is resolved by
    /// the data: `ceil(1 / (1 − alpha))`.
    pub required_bins: usize,
}

impl std::fmt::Display for EmpiricalSharpness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "empirical alpha={} quantile is under-resolved: {} training bins < {} required \
             (threshold rides the sample maximum; lengthen the window or use Jackson-Mudholkar)",
            self.alpha, self.training_bins, self.required_bins
        )
    }
}

/// Checks whether a `training_bins`-sized calibration sample resolves the
/// `alpha` quantile, returning the structured warning when it does not.
/// Returns `None` for sufficient samples and for out-of-range `alpha`
/// (which the threshold call itself rejects as an error).
pub fn empirical_sharpness(training_bins: usize, alpha: f64) -> Option<EmpiricalSharpness> {
    if !(alpha > 0.0 && alpha < 1.0) {
        return None;
    }
    let required = (1.0 / (1.0 - alpha)).ceil();
    // Guard the cast: alpha within a few ULP of 1.0 demands an absurd
    // sample; saturate rather than overflow.
    let required_bins = if required.is_finite() && required < usize::MAX as f64 {
        required as usize
    } else {
        usize::MAX
    };
    (training_bins < required_bins).then_some(EmpiricalSharpness {
        training_bins,
        alpha,
        required_bins,
    })
}

/// The `alpha` quantile of a **sorted ascending** SPE sample, by linear
/// interpolation of the order statistics: the empirical threshold `δ²_α`.
///
/// A fraction `1 − alpha` of the calibration sample exceeds the returned
/// value (up to interpolation), regardless of the residual distribution.
///
/// # Errors
///
/// [`SubspaceError::BadAlpha`] unless `0 < alpha < 1`;
/// [`SubspaceError::BadInput`] on an empty sample.
pub fn empirical_quantile(sorted_spe: &[f64], alpha: f64) -> Result<f64, SubspaceError> {
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(SubspaceError::BadAlpha(alpha));
    }
    let t = sorted_spe.len();
    if t == 0 {
        return Err(SubspaceError::BadInput(
            "empirical threshold needs a non-empty calibration sample",
        ));
    }
    let pos = alpha * (t - 1) as f64;
    let lo = pos.floor() as usize;
    if lo + 1 >= t {
        return Ok(sorted_spe[t - 1]);
    }
    let frac = pos - lo as f64;
    Ok(sorted_spe[lo] + frac * (sorted_spe[lo + 1] - sorted_spe[lo]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_increases_with_alpha() {
        let eigs = vec![10.0, 5.0, 2.0, 1.0, 0.5, 0.25];
        let t95 = q_statistic_threshold(&eigs, 2, 0.95).unwrap();
        let t99 = q_statistic_threshold(&eigs, 2, 0.99).unwrap();
        let t999 = q_statistic_threshold(&eigs, 2, 0.999).unwrap();
        assert!(t95 < t99, "{t95} !< {t99}");
        assert!(t99 < t999, "{t99} !< {t999}");
    }

    #[test]
    fn threshold_scales_with_residual_variance() {
        let small = vec![10.0, 5.0, 0.1, 0.05, 0.02];
        let large = vec![10.0, 5.0, 1.0, 0.5, 0.2];
        let ts = q_statistic_threshold(&small, 2, 0.999).unwrap();
        let tl = q_statistic_threshold(&large, 2, 0.999).unwrap();
        assert!(ts < tl);
    }

    #[test]
    fn threshold_near_phi1_at_alpha_half() {
        // At alpha = 0.5, c_alpha = 0 and δ² = φ₁·(1 + correction)^(1/h₀).
        // The correction term is not small for heavy residual spectra (it is
        // ~-30% here), but the threshold must stay on φ₁'s scale.
        let eigs = vec![10.0, 1.0, 0.5, 0.25];
        let t = q_statistic_threshold(&eigs, 1, 0.5).unwrap();
        let phi1 = 1.75;
        assert!(t > 0.5 * phi1 && t < 1.5 * phi1, "t = {t}, phi1 = {phi1}");
    }

    #[test]
    fn zero_residual_spectrum_gives_zero_threshold() {
        let eigs = vec![10.0, 5.0, 0.0, 0.0];
        assert_eq!(q_statistic_threshold(&eigs, 2, 0.999).unwrap(), 0.0);
        // Tiny negative round-off eigenvalues behave the same.
        let eigs = vec![10.0, 5.0, -1e-18, -1e-19];
        assert_eq!(q_statistic_threshold(&eigs, 2, 0.999).unwrap(), 0.0);
    }

    #[test]
    fn slice_adapter_equals_power_sum_core() {
        // The adapter must be a pure repackaging: same inputs, same bits.
        let eigs = [12.0f64, 6.0, 3.0, 1.5, 0.75, 0.3, 0.1];
        for m in 0..6 {
            for alpha in [0.5, 0.95, 0.999] {
                let sums = ResidualPowerSums::from_slice(&eigs[m..]);
                assert_eq!(
                    q_statistic_threshold(&eigs, m, alpha).unwrap(),
                    q_threshold_from_power_sums(&sums, alpha).unwrap(),
                );
            }
        }
    }

    #[test]
    fn h0_fallback_branch_reached_and_finite() {
        // One moderate residual eigenvalue plus a sea of tiny ones drives
        // h₀ = 1 − 2φ₁φ₃/(3φ₂²) negative: φ₂, φ₃ ≈ 1 while φ₁ ≈ 1 + Nε.
        let mut eigs = vec![100.0, 1.0];
        eigs.extend(vec![1e-3; 1000]);
        let sums = {
            let residual = &eigs[1..];
            ResidualPowerSums {
                phi1: residual.iter().sum(),
                phi2: residual.iter().map(|l| l * l).sum(),
                phi3: residual.iter().map(|l| l * l * l).sum(),
            }
        };
        let h0 = 1.0 - 2.0 * sums.phi1 * sums.phi3 / (3.0 * sums.phi2 * sums.phi2);
        assert!(h0 <= 0.0, "fixture must exercise the fallback (h0 = {h0})");
        let t = q_threshold_from_power_sums(&sums, 0.999).unwrap();
        let first_order = sums.phi1 + inv_norm_cdf(0.999) * (2.0 * sums.phi2).sqrt();
        assert_eq!(t, first_order);
        assert!(t.is_finite() && t > 0.0);
    }

    #[test]
    fn invalid_arguments_rejected() {
        let eigs = vec![1.0, 0.5];
        assert!(matches!(
            q_statistic_threshold(&eigs, 0, 0.0),
            Err(SubspaceError::BadAlpha(_))
        ));
        assert!(matches!(
            q_statistic_threshold(&eigs, 0, 1.0),
            Err(SubspaceError::BadAlpha(_))
        ));
        assert!(matches!(
            q_statistic_threshold(&eigs, 2, 0.9),
            Err(SubspaceError::BadDimension { .. })
        ));
        assert!(matches!(
            q_statistic_threshold(&[], 0, 0.9),
            Err(SubspaceError::BadDimension { .. })
        ));
        let sums = ResidualPowerSums {
            phi1: 1.0,
            phi2: 1.0,
            phi3: 1.0,
        };
        assert!(q_threshold_from_power_sums(&sums, 0.0).is_err());
        assert!(q_threshold_from_power_sums(&sums, f64::NAN).is_err());
    }

    #[test]
    fn empirical_quantile_interpolates_order_statistics() {
        let sorted: Vec<f64> = (0..101).map(|i| i as f64).collect();
        // Exact order statistics at the grid points...
        assert!((empirical_quantile(&sorted, 0.5).unwrap() - 50.0).abs() < 1e-12);
        assert!((empirical_quantile(&sorted, 0.99).unwrap() - 99.0).abs() < 1e-12);
        // ...interpolation between them...
        let q = empirical_quantile(&sorted, 0.995).unwrap();
        assert!((q - 99.5).abs() < 1e-12, "q = {q}");
        // ...and saturation at the sample maximum.
        assert!(empirical_quantile(&sorted, 0.9999).unwrap() <= 100.0);
        assert_eq!(empirical_quantile(&[7.0], 0.9).unwrap(), 7.0);
        assert!(empirical_quantile(&[], 0.9).is_err());
        assert!(empirical_quantile(&sorted, 1.0).is_err());
    }

    #[test]
    fn sharpness_guard_flags_small_samples() {
        // The satellite example: alpha = 0.999 needs >= 1000 bins.
        let warn = empirical_sharpness(300, 0.999).expect("must warn");
        assert_eq!(warn.required_bins, 1000);
        assert_eq!(warn.training_bins, 300);
        assert!(warn.to_string().contains("300"));
        assert!(warn.to_string().contains("1000"));
        assert!(empirical_sharpness(999, 0.999).is_some());
        assert!(empirical_sharpness(1000, 0.999).is_none());
        // Lower alpha is satisfied by modest windows.
        assert!(empirical_sharpness(300, 0.99).is_none());
        assert!(empirical_sharpness(50, 0.99).is_some());
        // Out-of-range alpha is the threshold call's error, not a warning.
        assert!(empirical_sharpness(10, 1.0).is_none());
        assert!(empirical_sharpness(10, -0.5).is_none());
        assert!(empirical_sharpness(10, f64::NAN).is_none());
        // Alpha pathologically close to 1 stays finite and sane.
        let extreme = empirical_sharpness(10, 1.0 - 1e-12).expect("must warn");
        assert!(extreme.required_bins > 100_000_000_000);
    }

    #[test]
    fn empirical_quantile_covers_its_own_sample() {
        // By construction ~ (1 - alpha) of the calibration sample exceeds
        // the threshold.
        let mut spes: Vec<f64> = (0..2000).map(|i| ((i * 7919) % 4001) as f64).collect();
        spes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for alpha in [0.9, 0.99, 0.999] {
            let t = empirical_quantile(&spes, alpha).unwrap();
            let exceed = spes.iter().filter(|&&s| s > t).count() as f64 / spes.len() as f64;
            assert!(
                (exceed - (1.0 - alpha)).abs() < 2.0 / spes.len() as f64 + 1e-3,
                "alpha {alpha}: exceedance {exceed}"
            );
        }
    }

    #[test]
    fn monte_carlo_false_alarm_rate() {
        // Draw residuals from the model the Q-statistic assumes (independent
        // normals with variances = residual eigenvalues) and check the
        // empirical exceedance probability is close to 1 - alpha.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let residual_eigs = [1.0f64, 0.6, 0.3, 0.2, 0.1, 0.05];
        let mut eigs = vec![50.0, 20.0]; // normal-subspace eigenvalues
        eigs.extend_from_slice(&residual_eigs);
        let alpha = 0.99;
        let threshold = q_statistic_threshold(&eigs, 2, alpha).unwrap();

        let mut rng = StdRng::seed_from_u64(2005);
        let trials = 200_000;
        let mut exceed = 0usize;
        for _ in 0..trials {
            // Sum of lambda_j * z_j^2 via Box-Muller pairs.
            let mut spe = 0.0;
            for &l in &residual_eigs {
                let u1: f64 = rng.random::<f64>().max(1e-12);
                let u2: f64 = rng.random();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                spe += l * z * z;
            }
            if spe > threshold {
                exceed += 1;
            }
        }
        let rate = exceed as f64 / trials as f64;
        let expected = 1.0 - alpha;
        // The JM approximation is not exact; accept a factor-2 band.
        assert!(
            rate > expected / 2.0 && rate < expected * 2.0,
            "false alarm rate {rate} too far from {expected}"
        );
    }
}
