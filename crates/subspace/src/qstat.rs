//! The Q-statistic detection threshold of Jackson & Mudholkar (1979).
//!
//! Given the eigenvalue spectrum `λ_1 >= λ_2 >= ... >= λ_n` of the sample
//! covariance and a normal subspace of dimension `m`, the squared residual
//! norm of a multivariate-normal observation exceeds
//!
//! ```text
//! δ²_α = φ₁ · [ c_α·sqrt(2·φ₂·h₀²)/φ₁ + 1 + φ₂·h₀·(h₀-1)/φ₁² ]^(1/h₀)
//! ```
//!
//! with probability `1 - α`, where `φ_i = Σ_{j>m} λ_j^i`,
//! `h₀ = 1 - 2φ₁φ₃/(3φ₂²)`, and `c_α` is the `α` standard-normal quantile.
//! This is the threshold the paper uses to turn a residual magnitude into a
//! detection at a desired false-alarm rate (α = 0.995, 0.999 in §6).

use crate::SubspaceError;
use entromine_linalg::stats::inv_norm_cdf;

/// Computes the Q-statistic threshold `δ²_α`.
///
/// * `eigenvalues` — full covariance spectrum, descending.
/// * `m` — dimension of the normal subspace (`m < eigenvalues.len()`).
/// * `alpha` — confidence level in `(0, 1)`; detections fire when
///   `SPE > δ²_α`, giving false-alarm probability `1 - alpha` under the
///   null model.
///
/// Degenerate spectra are handled conservatively:
///
/// * If the residual eigenvalues are all ~0 (the data is perfectly modeled
///   by the normal subspace), the threshold is 0 — any measurable residual
///   is anomalous.
/// * If `h₀` is non-positive (possible for extremely heavy-tailed residual
///   spectra), the threshold falls back to the first-order normal
///   approximation `φ₁ + c_α·sqrt(2·φ₂)`.
pub fn q_statistic_threshold(
    eigenvalues: &[f64],
    m: usize,
    alpha: f64,
) -> Result<f64, SubspaceError> {
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(SubspaceError::BadAlpha(alpha));
    }
    if m >= eigenvalues.len() {
        return Err(SubspaceError::BadDimension {
            requested: m,
            available: eigenvalues.len(),
        });
    }

    let residual = &eigenvalues[m..];
    // Numerically tiny negative eigenvalues (round-off from the solver) are
    // clamped to zero before the power sums.
    let phi1: f64 = residual.iter().map(|&l| l.max(0.0)).sum();
    let phi2: f64 = residual.iter().map(|&l| l.max(0.0).powi(2)).sum();
    let phi3: f64 = residual.iter().map(|&l| l.max(0.0).powi(3)).sum();

    if phi1 <= 0.0 || phi2 <= 0.0 {
        // Residual space carries no variance: any residual is anomalous.
        return Ok(0.0);
    }

    let c_alpha = inv_norm_cdf(alpha);
    let h0 = 1.0 - 2.0 * phi1 * phi3 / (3.0 * phi2 * phi2);

    if h0 <= 0.0 {
        // Fall back to the first-order normal approximation.
        return Ok(phi1 + c_alpha * (2.0 * phi2).sqrt());
    }

    let term = c_alpha * (2.0 * phi2 * h0 * h0).sqrt() / phi1
        + 1.0
        + phi2 * h0 * (h0 - 1.0) / (phi1 * phi1);
    // `term` can go (slightly) negative at extreme alpha; the residual
    // distribution's support is nonnegative, so clamp.
    if term <= 0.0 {
        return Ok(0.0);
    }
    Ok(phi1 * term.powf(1.0 / h0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_increases_with_alpha() {
        let eigs = vec![10.0, 5.0, 2.0, 1.0, 0.5, 0.25];
        let t95 = q_statistic_threshold(&eigs, 2, 0.95).unwrap();
        let t99 = q_statistic_threshold(&eigs, 2, 0.99).unwrap();
        let t999 = q_statistic_threshold(&eigs, 2, 0.999).unwrap();
        assert!(t95 < t99, "{t95} !< {t99}");
        assert!(t99 < t999, "{t99} !< {t999}");
    }

    #[test]
    fn threshold_scales_with_residual_variance() {
        let small = vec![10.0, 5.0, 0.1, 0.05, 0.02];
        let large = vec![10.0, 5.0, 1.0, 0.5, 0.2];
        let ts = q_statistic_threshold(&small, 2, 0.999).unwrap();
        let tl = q_statistic_threshold(&large, 2, 0.999).unwrap();
        assert!(ts < tl);
    }

    #[test]
    fn threshold_near_phi1_at_alpha_half() {
        // At alpha = 0.5, c_alpha = 0 and δ² = φ₁·(1 + correction)^(1/h₀).
        // The correction term is not small for heavy residual spectra (it is
        // ~-30% here), but the threshold must stay on φ₁'s scale.
        let eigs = vec![10.0, 1.0, 0.5, 0.25];
        let t = q_statistic_threshold(&eigs, 1, 0.5).unwrap();
        let phi1 = 1.75;
        assert!(t > 0.5 * phi1 && t < 1.5 * phi1, "t = {t}, phi1 = {phi1}");
    }

    #[test]
    fn zero_residual_spectrum_gives_zero_threshold() {
        let eigs = vec![10.0, 5.0, 0.0, 0.0];
        assert_eq!(q_statistic_threshold(&eigs, 2, 0.999).unwrap(), 0.0);
        // Tiny negative round-off eigenvalues behave the same.
        let eigs = vec![10.0, 5.0, -1e-18, -1e-19];
        assert_eq!(q_statistic_threshold(&eigs, 2, 0.999).unwrap(), 0.0);
    }

    #[test]
    fn invalid_arguments_rejected() {
        let eigs = vec![1.0, 0.5];
        assert!(matches!(
            q_statistic_threshold(&eigs, 0, 0.0),
            Err(SubspaceError::BadAlpha(_))
        ));
        assert!(matches!(
            q_statistic_threshold(&eigs, 0, 1.0),
            Err(SubspaceError::BadAlpha(_))
        ));
        assert!(matches!(
            q_statistic_threshold(&eigs, 2, 0.9),
            Err(SubspaceError::BadDimension { .. })
        ));
        assert!(matches!(
            q_statistic_threshold(&[], 0, 0.9),
            Err(SubspaceError::BadDimension { .. })
        ));
    }

    #[test]
    fn monte_carlo_false_alarm_rate() {
        // Draw residuals from the model the Q-statistic assumes (independent
        // normals with variances = residual eigenvalues) and check the
        // empirical exceedance probability is close to 1 - alpha.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let residual_eigs = [1.0f64, 0.6, 0.3, 0.2, 0.1, 0.05];
        let mut eigs = vec![50.0, 20.0]; // normal-subspace eigenvalues
        eigs.extend_from_slice(&residual_eigs);
        let alpha = 0.99;
        let threshold = q_statistic_threshold(&eigs, 2, alpha).unwrap();

        let mut rng = StdRng::seed_from_u64(2005);
        let trials = 200_000;
        let mut exceed = 0usize;
        for _ in 0..trials {
            // Sum of lambda_j * z_j^2 via Box-Muller pairs.
            let mut spe = 0.0;
            for &l in &residual_eigs {
                let u1: f64 = rng.random::<f64>().max(1e-12);
                let u2: f64 = rng.random();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                spe += l * z * z;
            }
            if spe > threshold {
                exceed += 1;
            }
        }
        let rate = exceed as f64 / trials as f64;
        let expected = 1.0 - alpha;
        // The JM approximation is not exact; accept a factor-2 band.
        assert!(
            rate > expected / 2.0 && rate < expected * 2.0,
            "false alarm rate {rate} too far from {expected}"
        );
    }
}
