//! Error type for the subspace method.

use entromine_linalg::LinalgError;
use std::fmt;

/// Errors produced while fitting or applying a subspace model.
#[derive(Debug, Clone, PartialEq)]
pub enum SubspaceError {
    /// An underlying linear-algebra operation failed.
    Linalg(LinalgError),
    /// The requested normal-subspace dimension is invalid for the data.
    BadDimension {
        /// Requested dimension.
        requested: usize,
        /// Number of variables available.
        available: usize,
    },
    /// `alpha` must lie strictly inside `(0, 1)`.
    BadAlpha(f64),
    /// The input matrix is unusable (empty, or too few rows to model).
    BadInput(&'static str),
    /// An empirical threshold was requested from a model without a
    /// training-SPE calibration (streamed fits stay uncalibrated until
    /// an explicit calibration pass).
    NotCalibrated,
}

impl fmt::Display for SubspaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubspaceError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            SubspaceError::BadDimension {
                requested,
                available,
            } => write!(
                f,
                "normal subspace dimension {requested} invalid for {available} variables"
            ),
            SubspaceError::BadAlpha(a) => {
                write!(f, "confidence level alpha={a} must be in (0, 1)")
            }
            SubspaceError::BadInput(what) => write!(f, "bad input: {what}"),
            SubspaceError::NotCalibrated => write!(
                f,
                "empirical threshold requires a training-SPE calibration \
                 (matrix fits calibrate automatically; streamed fits need \
                 calibrate_with_rows)"
            ),
        }
    }
}

impl std::error::Error for SubspaceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SubspaceError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for SubspaceError {
    fn from(e: LinalgError) -> Self {
        SubspaceError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = SubspaceError::BadAlpha(1.5);
        assert!(e.to_string().contains("1.5"));
        let inner = LinalgError::NotSymmetric;
        let e = SubspaceError::from(inner);
        assert!(std::error::Error::source(&e).is_some());
        let e = SubspaceError::BadDimension {
            requested: 10,
            available: 4,
        };
        assert!(e.to_string().contains("10"));
    }
}
