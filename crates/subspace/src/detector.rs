//! The single-way subspace method (Lakhina et al., SIGCOMM 2004).

use crate::qstat::{empirical_quantile, q_threshold_from_power_sums, ThresholdPolicy};
use crate::SubspaceError;
use entromine_linalg::{
    reference_score_forced, AxisRequest, FitStrategy, Mat, MomentAccumulator, Pca, ScorePlan,
};

/// How the dimension of the normal subspace is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DimSelection {
    /// Use exactly this many principal components.
    ///
    /// The paper found "a knee in the amount of variance captured at
    /// m ≈ 10 (which accounted for 85% of the total variance)" and fixed
    /// m = 10 for both networks.
    Fixed(usize),
    /// Use the smallest dimension capturing at least this variance
    /// fraction (e.g. `0.85`).
    VarianceFraction(f64),
}

impl Default for DimSelection {
    fn default() -> Self {
        DimSelection::Fixed(10)
    }
}

impl DimSelection {
    /// Rejects a non-finite or out-of-`(0, 1)` variance fraction before
    /// any fitting work happens.
    fn validate(self) -> Result<(), SubspaceError> {
        if let DimSelection::VarianceFraction(f) = self {
            if !f.is_finite() || f <= 0.0 || f >= 1.0 {
                return Err(SubspaceError::BadInput(
                    "variance fraction must be finite and lie strictly inside (0, 1)",
                ));
            }
        }
        Ok(())
    }

    /// The axis request this selection poses to the fit dispatcher.
    fn request(self) -> AxisRequest {
        match self {
            DimSelection::Fixed(m) => AxisRequest::Components(m),
            DimSelection::VarianceFraction(f) => AxisRequest::VarianceFraction(f),
        }
    }
}

/// One detection: a time bin whose squared residual exceeded the threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Index of the offending time bin (row of the measurement matrix).
    pub bin: usize,
    /// The squared prediction error `||x̃||²` at that bin.
    pub spe: f64,
    /// The Q-statistic threshold the SPE exceeded.
    pub threshold: f64,
}

/// A fitted subspace model over a `t x n` measurement matrix.
///
/// Rows are timepoints; columns are the correlated variables (OD-flow byte
/// counts, packet counts, or unfolded entropy). The leading `m` principal
/// axes span the normal subspace; everything else is residual.
///
/// Matrix fits additionally **calibrate** the model: the training rows'
/// SPE order statistics are retained (sorted), which is what the
/// [`ThresholdPolicy::Empirical`] threshold consumes. Streamed fits have
/// no rows to score and stay uncalibrated until
/// [`calibrate_with_rows`](Self::calibrate_with_rows) runs.
#[derive(Debug, Clone)]
pub struct SubspaceModel {
    pca: Pca,
    m: usize,
    /// The fused scoring plane over the leading `m` axes, built once at
    /// fit time. Every SPE/T² consumer scores through it (allocation-free
    /// norm identity) unless `ENTROMINE_FORCE_REFERENCE_SCORE` pins the
    /// process to the reference chain.
    plan: ScorePlan,
    /// Sorted (ascending) SPEs of the training rows, when known.
    calibration: Option<Vec<f64>>,
}

impl SubspaceModel {
    /// Fits the model to `x` and selects the normal-subspace dimension,
    /// with the fit engine chosen by [`FitStrategy::Auto`] — wide
    /// training windows dispatch to the Gram path, thin requests against
    /// wide covariances to the partial-spectrum path, everything else to
    /// the dense oracle. Thresholds agree across engines to round-off.
    ///
    /// # Errors
    ///
    /// Fails on degenerate input (fewer than two rows, zero columns), on a
    /// non-finite or out-of-`(0, 1)` variance fraction, or if the
    /// requested dimension does not leave a non-empty residual space (or
    /// exceeds the axes the chosen engine can support).
    pub fn fit(x: &Mat, dim: DimSelection) -> Result<Self, SubspaceError> {
        Self::fit_with(x, dim, FitStrategy::Auto)
    }

    /// Like [`fit`](Self::fit) with an explicit engine choice. Use
    /// [`FitStrategy::Full`] to force the dense reference oracle.
    pub fn fit_with(
        x: &Mat,
        dim: DimSelection,
        strategy: FitStrategy,
    ) -> Result<Self, SubspaceError> {
        dim.validate()?;
        if x.rows() < 2 {
            return Err(SubspaceError::BadInput(
                "need at least two timepoints to model variation",
            ));
        }
        let pca = Pca::fit_with(x, strategy, dim.request())?;
        let mut model = Self::from_pca(pca, dim)?;
        // Matrix fits calibrate for free: one O(t·n·m) scoring pass over
        // data already in hand, batched through the scoring plane.
        let mut spes = Vec::with_capacity(x.rows());
        model.spe_batch(x.row_iter(), &mut spes)?;
        spes.sort_by(|a, b| a.partial_cmp(b).expect("SPEs are finite"));
        model.calibration = Some(spes);
        Ok(model)
    }

    /// Fits the model from streamed moments instead of a materialized
    /// matrix — the fit phase of the streaming pipeline. Rows are absorbed
    /// into a [`MomentAccumulator`] as bins finalize; when the training
    /// window closes this turns the running mean/covariance into the same
    /// model `fit` would have produced (up to round-off in the streamed
    /// covariance).
    ///
    /// The streamed model is **uncalibrated** (no rows were retained):
    /// Jackson–Mudholkar thresholds work immediately, the empirical policy
    /// needs a [`calibrate_with_rows`](Self::calibrate_with_rows) pass.
    ///
    /// # Errors
    ///
    /// Same conditions as [`fit`](Self::fit); fewer than two absorbed rows
    /// is `BadInput`.
    pub fn fit_from_moments(
        moments: &MomentAccumulator,
        dim: DimSelection,
    ) -> Result<Self, SubspaceError> {
        Self::fit_from_moments_with(moments, dim, FitStrategy::Auto)
    }

    /// Like [`fit_from_moments`](Self::fit_from_moments) with an explicit
    /// engine choice. The Gram engine needs raw rows and is rejected here.
    pub fn fit_from_moments_with(
        moments: &MomentAccumulator,
        dim: DimSelection,
        strategy: FitStrategy,
    ) -> Result<Self, SubspaceError> {
        Self::fit_from_moments_warm(moments, dim, strategy, None)
    }

    /// [`fit_from_moments_with`](Self::fit_from_moments_with)
    /// **warm-started** from a previous model: the old eigenbasis seeds
    /// the partial engine's subspace iteration, so a model refitted over
    /// a slightly drifted window converges in a couple of Rayleigh–Ritz
    /// cycles instead of a cold iteration. `None` — and every engine
    /// without an iteration to seed — reproduces the cold fit bit for
    /// bit; [`Pca::diagnostics`] on the result reports what actually
    /// happened.
    ///
    /// # Errors
    ///
    /// Same as [`fit_from_moments_with`](Self::fit_from_moments_with).
    pub fn fit_from_moments_warm(
        moments: &MomentAccumulator,
        dim: DimSelection,
        strategy: FitStrategy,
        warm: Option<&SubspaceModel>,
    ) -> Result<Self, SubspaceError> {
        dim.validate()?;
        if moments.count() < 2 {
            return Err(SubspaceError::BadInput(
                "need at least two timepoints to model variation",
            ));
        }
        let basis = warm.map(|model| model.pca.spectrum().vectors());
        Self::from_pca(
            Pca::fit_from_moments_warm(moments, strategy, dim.request(), basis)?,
            dim,
        )
    }

    /// Shared back half of every fit path: dimension selection and
    /// residual-space validation over an already-fitted PCA.
    fn from_pca(pca: Pca, dim: DimSelection) -> Result<Self, SubspaceError> {
        dim.validate()?;
        let n = pca.dim();
        let m = match dim {
            DimSelection::Fixed(m) => m,
            DimSelection::VarianceFraction(f) => pca.dims_for_variance(f),
        };
        if m >= n {
            return Err(SubspaceError::BadDimension {
                requested: m,
                available: n,
            });
        }
        // Rank-limited engines (Gram on short windows, partial spectra)
        // must actually carry the axes the projection needs.
        if m > pca.n_axes() {
            return Err(SubspaceError::BadDimension {
                requested: m,
                available: pca.n_axes(),
            });
        }
        let plan = pca.score_plan(m)?;
        Ok(SubspaceModel {
            pca,
            m,
            plan,
            calibration: None,
        })
    }

    /// The eigenvalue floor below which an axis counts as zero-variance
    /// for T² (shared by the plan and reference paths).
    fn t2_floor(&self) -> f64 {
        1e-12 * self.pca.total_variance().max(1e-300)
    }

    /// Installs an externally computed, already-sorted calibration sample.
    /// The multiway wrapper uses this to calibrate from raw rows it scored
    /// through its own divisor-folded plan.
    pub(crate) fn set_calibration(&mut self, sorted_spes: Vec<f64>) {
        self.calibration = Some(sorted_spes);
    }

    /// Supplies (or replaces) the empirical calibration of a streamed fit
    /// by scoring an iterator of training rows — the second pass a
    /// streaming deployment runs when it wants
    /// [`ThresholdPolicy::Empirical`] thresholds.
    ///
    /// # Errors
    ///
    /// `BadInput` when `rows` is empty; shape errors from scoring.
    pub fn calibrate_with_rows<'r>(
        &mut self,
        rows: impl IntoIterator<Item = &'r [f64]>,
    ) -> Result<(), SubspaceError> {
        let mut spes = Vec::new();
        self.spe_batch(rows, &mut spes)?;
        if spes.is_empty() {
            return Err(SubspaceError::BadInput(
                "empirical calibration needs at least one training row",
            ));
        }
        spes.sort_by(|a, b| a.partial_cmp(b).expect("SPEs are finite"));
        self.calibration = Some(spes);
        Ok(())
    }

    /// The sorted training-SPE sample behind the empirical threshold, if
    /// the model is calibrated.
    pub fn calibration(&self) -> Option<&[f64]> {
        self.calibration.as_deref()
    }

    /// Structured sharpness warning for an empirical threshold at `alpha`:
    /// `Some` when the calibration sample is too small to resolve the
    /// requested quantile (see
    /// [`EmpiricalSharpness`](crate::EmpiricalSharpness)), `None` when the
    /// sample suffices or the model carries no calibration at all (the
    /// threshold call reports that case as
    /// [`SubspaceError::NotCalibrated`]).
    pub fn empirical_sharpness(&self, alpha: f64) -> Option<crate::EmpiricalSharpness> {
        self.calibration
            .as_deref()
            .and_then(|sample| crate::qstat::empirical_sharpness(sample.len(), alpha))
    }

    /// Dimension of the normal subspace.
    pub fn normal_dim(&self) -> usize {
        self.m
    }

    /// Number of variables (columns) the model was fitted on.
    pub fn n_vars(&self) -> usize {
        self.pca.dim()
    }

    /// The underlying PCA (means, axes, spectrum).
    pub fn pca(&self) -> &Pca {
        &self.pca
    }

    /// Fraction of variance the normal subspace captures.
    pub fn explained_variance(&self) -> f64 {
        self.pca.explained_variance_ratio(self.m)
    }

    /// Squared prediction error of one observation row, via the fused
    /// scoring plane (norm identity, allocation-free, cancellation-guarded)
    /// — or the reference project–reconstruct–residual chain when
    /// `ENTROMINE_FORCE_REFERENCE_SCORE` pins the process.
    pub fn spe(&self, row: &[f64]) -> Result<f64, SubspaceError> {
        if reference_score_forced() {
            return Ok(self.pca.spe_reference(row, self.m)?);
        }
        Ok(self.plan.spe(row)?)
    }

    /// SPEs of a batch of rows through the scoring plane's batch entry
    /// (shared warm scratch, axis panel hot across consecutive rows —
    /// bitwise identical to calling [`spe`](Self::spe) per row). `out` is
    /// cleared first; one SPE per row in order.
    ///
    /// # Errors
    ///
    /// Shape errors from scoring, on the first offending row.
    pub fn spe_batch<'r>(
        &self,
        rows: impl IntoIterator<Item = &'r [f64]>,
        out: &mut Vec<f64>,
    ) -> Result<(), SubspaceError> {
        if reference_score_forced() {
            out.clear();
            for row in rows {
                out.push(self.pca.spe_reference(row, self.m)?);
            }
            return Ok(());
        }
        self.plan.spe_batch(rows, out)?;
        Ok(())
    }

    /// SPE and T² of one row from a single axis-matrix pass — the
    /// refit-trimming gate's statistic pair at a third of the scans the
    /// separate calls pay.
    ///
    /// # Errors
    ///
    /// Shape errors from scoring.
    pub fn spe_t2(&self, row: &[f64]) -> Result<(f64, f64), SubspaceError> {
        if reference_score_forced() {
            return Ok((self.spe(row)?, self.t2(row)?));
        }
        Ok(self
            .plan
            .spe_t2(row, self.pca.eigenvalues(), self.t2_floor())?)
    }

    /// Batched [`spe_t2`](Self::spe_t2): one `(SPE, T²)` pair per row
    /// appended to `out` (cleared first) — the refit-trimming scan, one
    /// fused axis pass per row over shared scratch.
    ///
    /// # Errors
    ///
    /// Shape errors from scoring, on the first offending row.
    pub fn spe_t2_batch<'r>(
        &self,
        rows: impl IntoIterator<Item = &'r [f64]>,
        out: &mut Vec<(f64, f64)>,
    ) -> Result<(), SubspaceError> {
        if reference_score_forced() {
            out.clear();
            for row in rows {
                out.push((self.spe(row)?, self.t2(row)?));
            }
            return Ok(());
        }
        self.plan
            .spe_t2_batch(rows, self.pca.eigenvalues(), self.t2_floor(), out)?;
        Ok(())
    }

    /// The residual vector `x̃` of one observation row.
    pub fn residual(&self, row: &[f64]) -> Result<Vec<f64>, SubspaceError> {
        Ok(self.pca.residual(row, self.m)?)
    }

    /// The detection threshold `δ²_α` for this model under the default
    /// (Jackson–Mudholkar) policy.
    pub fn threshold(&self, alpha: f64) -> Result<f64, SubspaceError> {
        self.threshold_with(alpha, ThresholdPolicy::JacksonMudholkar)
    }

    /// The detection threshold `δ²_α` under an explicit
    /// [`ThresholdPolicy`].
    ///
    /// The Jackson–Mudholkar policy consumes the model's residual power
    /// sums — exact on every fit engine, including partial spectra that
    /// never saw the residual eigenvalues. The empirical policy reads the
    /// `α` order statistic of the training-SPE calibration.
    ///
    /// # Errors
    ///
    /// `BadAlpha` outside `(0, 1)`; [`SubspaceError::NotCalibrated`] for
    /// the empirical policy on an uncalibrated (streamed, uncalibrated)
    /// model.
    pub fn threshold_with(
        &self,
        alpha: f64,
        policy: ThresholdPolicy,
    ) -> Result<f64, SubspaceError> {
        match policy {
            ThresholdPolicy::JacksonMudholkar => {
                let sums = self.pca.residual_power_sums(self.m).map_err(|_| {
                    SubspaceError::BadDimension {
                        requested: self.m,
                        available: self.pca.dim(),
                    }
                })?;
                q_threshold_from_power_sums(&sums, alpha)
            }
            ThresholdPolicy::Empirical => {
                if !(alpha > 0.0 && alpha < 1.0) {
                    return Err(SubspaceError::BadAlpha(alpha));
                }
                let sample = self
                    .calibration
                    .as_deref()
                    .ok_or(SubspaceError::NotCalibrated)?;
                empirical_quantile(sample, alpha)
            }
        }
    }

    /// Hotelling's T² statistic of one observation: the variance-weighted
    /// squared magnitude of its normal-subspace scores,
    /// `Σ_{j<m} score_j² / λ_j`.
    ///
    /// SPE is blind to anomalies whose direction the PCA absorbed into the
    /// normal subspace; such observations instead show an extreme score
    /// along the stolen axis, which T² exposes. The diagnosis pipeline
    /// uses T² (against a `χ²_m` quantile, [`t2_threshold`](Self::t2_threshold))
    /// for robust training-data trimming only — reported detections remain
    /// pure SPE exceedances as in the paper.
    ///
    /// Axes with (numerically) zero variance are skipped.
    pub fn t2(&self, row: &[f64]) -> Result<f64, SubspaceError> {
        let floor = self.t2_floor();
        if reference_score_forced() {
            let scores = self.pca.project(row, self.m)?;
            return Ok(scores
                .iter()
                .zip(self.pca.eigenvalues())
                .filter(|(_, &l)| l > floor)
                .map(|(s, &l)| s * s / l)
                .sum());
        }
        Ok(self.plan.t2(row, self.pca.eigenvalues(), floor)?)
    }

    /// The `χ²_m` quantile used as the T² trimming threshold.
    pub fn t2_threshold(&self, alpha: f64) -> f64 {
        entromine_linalg::stats::chi2_quantile(self.m, alpha)
    }

    /// Scores one observation row against a precomputed threshold: the
    /// **score half** of the fit/score split. Returns the [`Detection`]
    /// if the row's SPE exceeds `threshold`, tagged with `bin`.
    ///
    /// Cost is one fused axis-matrix pass — `O(n·m)` with contiguous
    /// access and zero allocations — so a live monitor can afford it on
    /// every arriving bin without ever refitting. Batch detection
    /// ([`detect`](Self::detect)) pushes rows through the same per-row
    /// plan arithmetic via [`spe_batch`](Self::spe_batch), which is what
    /// guarantees batch and streaming agree exactly (bitwise).
    pub fn score_row(
        &self,
        bin: usize,
        row: &[f64],
        threshold: f64,
    ) -> Result<Option<Detection>, SubspaceError> {
        let spe = self.spe(row)?;
        Ok((spe > threshold).then_some(Detection {
            bin,
            spe,
            threshold,
        }))
    }

    /// A scoring head with the Q-threshold for `alpha` precomputed: the
    /// artifact the fit phase hands to the streaming score path.
    pub fn scorer(&self, alpha: f64) -> Result<RowScorer<'_>, SubspaceError> {
        self.scorer_with(alpha, ThresholdPolicy::JacksonMudholkar)
    }

    /// A scoring head under an explicit [`ThresholdPolicy`].
    pub fn scorer_with(
        &self,
        alpha: f64,
        policy: ThresholdPolicy,
    ) -> Result<RowScorer<'_>, SubspaceError> {
        Ok(RowScorer {
            model: self,
            threshold: self.threshold_with(alpha, policy)?,
        })
    }

    /// Evaluates every row of `x` and returns the bins whose SPE exceeds
    /// `δ²_α`, in time order — one [`spe_batch`](Self::spe_batch) pass
    /// (bitwise equal to replaying [`score_row`](Self::score_row), since
    /// both run the same per-row plan arithmetic).
    pub fn detect(&self, x: &Mat, alpha: f64) -> Result<Vec<Detection>, SubspaceError> {
        let threshold = self.threshold(alpha)?;
        let mut spes = Vec::with_capacity(x.rows());
        self.spe_batch(x.row_iter(), &mut spes)?;
        Ok(spes
            .iter()
            .enumerate()
            .filter(|&(_, &spe)| spe > threshold)
            .map(|(bin, &spe)| Detection {
                bin,
                spe,
                threshold,
            })
            .collect())
    }

    /// SPE of every row (the full residual timeseries, for scatter plots
    /// like the paper's Figure 4) — one batch pass over shared scratch.
    pub fn spe_series(&self, x: &Mat) -> Result<Vec<f64>, SubspaceError> {
        let mut out = Vec::with_capacity(x.rows());
        self.spe_batch(x.row_iter(), &mut out)?;
        Ok(out)
    }
}

/// The score half of a fitted [`SubspaceModel`]: a borrow of the model
/// plus its precomputed Q-statistic threshold.
///
/// Constructed once per confidence level by [`SubspaceModel::scorer`];
/// thereafter each arriving observation costs one `O(n·m)` projection and
/// a comparison — no eigenwork, no threshold recomputation, no refit.
#[derive(Debug, Clone, Copy)]
pub struct RowScorer<'a> {
    model: &'a SubspaceModel,
    threshold: f64,
}

impl RowScorer<'_> {
    /// The precomputed threshold `δ²_α`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The model being scored against.
    pub fn model(&self) -> &SubspaceModel {
        self.model
    }

    /// Scores one observation row, tagging any detection with `bin`.
    pub fn score(&self, bin: usize, row: &[f64]) -> Result<Option<Detection>, SubspaceError> {
        self.model.score_row(bin, row, self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// t x p matrix driven by two latent diurnal patterns plus noise — the
    /// low-rank-plus-noise structure the subspace method assumes.
    fn synthetic_traffic(t: usize, p: usize, noise: f64, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        let weights: Vec<(f64, f64)> = (0..p)
            .map(|_| (rng.random::<f64>() * 4.0, rng.random::<f64>() * 2.0))
            .collect();
        Mat::from_fn(t, p, |i, j| {
            let phase = i as f64 / 288.0 * std::f64::consts::TAU;
            let (w1, w2) = weights[j];
            10.0 + w1 * phase.sin() + w2 * (2.0 * phase).cos() + noise * (rng.random::<f64>() - 0.5)
        })
    }

    #[test]
    fn low_rank_data_explained_by_few_components() {
        let x = synthetic_traffic(500, 20, 0.01, 1);
        let model = SubspaceModel::fit(&x, DimSelection::Fixed(4)).unwrap();
        assert!(model.explained_variance() > 0.99);
        assert_eq!(model.normal_dim(), 4);
        assert_eq!(model.n_vars(), 20);
    }

    #[test]
    fn variance_fraction_selection() {
        let x = synthetic_traffic(500, 20, 0.01, 2);
        let model = SubspaceModel::fit(&x, DimSelection::VarianceFraction(0.85)).unwrap();
        // Two latent patterns dominate.
        assert!(model.normal_dim() <= 4, "dim = {}", model.normal_dim());
        assert!(model.explained_variance() >= 0.85);
    }

    #[test]
    fn clean_data_produces_no_detections_at_high_alpha() {
        let x = synthetic_traffic(400, 15, 0.5, 3);
        let model = SubspaceModel::fit(&x, DimSelection::Fixed(4)).unwrap();
        let detections = model.detect(&x, 0.9999).unwrap();
        // A handful of false alarms is expected statistically; the bulk of
        // bins must be clean.
        assert!(
            detections.len() < 10,
            "too many false alarms: {}",
            detections.len()
        );
    }

    #[test]
    fn injected_spike_is_detected_and_localized() {
        let mut x = synthetic_traffic(400, 15, 0.5, 4);
        let model = SubspaceModel::fit(&x, DimSelection::Fixed(4)).unwrap();
        // Inject a volume spike into one flow at bin 123.
        x[(123, 7)] += 40.0;
        let detections = model.detect(&x, 0.999).unwrap();
        assert!(
            detections.iter().any(|d| d.bin == 123),
            "injected bin not detected: {detections:?}"
        );
        for d in &detections {
            assert!(d.spe > d.threshold);
        }
    }

    #[test]
    fn spe_series_has_one_value_per_bin() {
        let x = synthetic_traffic(50, 8, 0.3, 5);
        let model = SubspaceModel::fit(&x, DimSelection::Fixed(3)).unwrap();
        let series = model.spe_series(&x).unwrap();
        assert_eq!(series.len(), 50);
        assert!(series.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn residual_matches_spe() {
        let x = synthetic_traffic(60, 6, 0.4, 6);
        let model = SubspaceModel::fit(&x, DimSelection::Fixed(2)).unwrap();
        let row = x.row(10);
        let r = model.residual(row).unwrap();
        let spe = model.spe(row).unwrap();
        let norm2: f64 = r.iter().map(|v| v * v).sum();
        assert!((norm2 - spe).abs() < 1e-10);
    }

    #[test]
    fn score_row_matches_detect() {
        let mut x = synthetic_traffic(300, 12, 0.4, 8);
        let model = SubspaceModel::fit(&x, DimSelection::Fixed(3)).unwrap();
        x[(200, 5)] += 35.0;
        let alpha = 0.999;
        let batch = model.detect(&x, alpha).unwrap();
        let scorer = model.scorer(alpha).unwrap();
        let streamed: Vec<Detection> = x
            .row_iter()
            .enumerate()
            .filter_map(|(bin, row)| scorer.score(bin, row).unwrap())
            .collect();
        assert_eq!(batch, streamed, "replaying score_row must equal detect");
        assert!(streamed.iter().any(|d| d.bin == 200));
        assert_eq!(scorer.threshold(), model.threshold(alpha).unwrap());
    }

    #[test]
    fn moments_fit_matches_batch_fit() {
        let x = synthetic_traffic(400, 10, 0.3, 9);
        let batch = SubspaceModel::fit(&x, DimSelection::Fixed(3)).unwrap();
        let mut acc = entromine_linalg::MomentAccumulator::new(10);
        for row in x.row_iter() {
            acc.push(row).unwrap();
        }
        let streamed = SubspaceModel::fit_from_moments(&acc, DimSelection::Fixed(3)).unwrap();
        assert_eq!(streamed.normal_dim(), 3);
        // Same spectrum, same thresholds, same residual magnitudes — to
        // round-off (the streamed covariance is Welford, not two-pass).
        let ta = batch.threshold(0.999).unwrap();
        let tb = streamed.threshold(0.999).unwrap();
        assert!((ta - tb).abs() < 1e-6 * (1.0 + ta), "{ta} vs {tb}");
        for bin in [0usize, 123, 399] {
            let a = batch.spe(x.row(bin)).unwrap();
            let b = streamed.spe(x.row(bin)).unwrap();
            assert!((a - b).abs() < 1e-6 * (1.0 + a), "{a} vs {b}");
        }
        // Too few rows is rejected like a too-short matrix.
        let short = entromine_linalg::MomentAccumulator::new(10);
        assert!(SubspaceModel::fit_from_moments(&short, DimSelection::Fixed(2)).is_err());
    }

    #[test]
    fn variance_fraction_validated_at_fit_time() {
        let x = synthetic_traffic(100, 6, 0.2, 10);
        for bad in [0.0, 1.0, -0.3, 1.5, f64::NAN, f64::INFINITY] {
            assert!(
                SubspaceModel::fit(&x, DimSelection::VarianceFraction(bad)).is_err(),
                "variance fraction {bad} must be rejected"
            );
        }
        assert!(SubspaceModel::fit(&x, DimSelection::VarianceFraction(0.5)).is_ok());
    }

    #[test]
    fn bad_inputs_rejected() {
        let x = synthetic_traffic(50, 5, 0.1, 7);
        // Dimension as large as the variable count leaves no residual.
        assert!(matches!(
            SubspaceModel::fit(&x, DimSelection::Fixed(5)),
            Err(SubspaceError::BadDimension { .. })
        ));
        assert!(SubspaceModel::fit(&x, DimSelection::VarianceFraction(1.5)).is_err());
        let one_row = Mat::zeros(1, 5);
        assert!(SubspaceModel::fit(&one_row, DimSelection::Fixed(2)).is_err());
        // Wrong row width at evaluation time.
        let model = SubspaceModel::fit(&x, DimSelection::Fixed(2)).unwrap();
        assert!(model.spe(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn empirical_threshold_covers_its_training_window() {
        let x = synthetic_traffic(500, 12, 0.5, 21);
        let model = SubspaceModel::fit(&x, DimSelection::Fixed(3)).unwrap();
        assert_eq!(model.calibration().map(<[f64]>::len), Some(500));
        for alpha in [0.95, 0.99] {
            let t = model
                .threshold_with(alpha, ThresholdPolicy::Empirical)
                .unwrap();
            let exceed = x
                .row_iter()
                .filter(|row| model.spe(row).unwrap() > t)
                .count() as f64
                / 500.0;
            // By construction the training exceedance tracks 1 - alpha.
            assert!(
                (exceed - (1.0 - alpha)).abs() < 0.01,
                "alpha {alpha}: training exceedance {exceed}"
            );
        }
        // Monotone in alpha, like the analytic policy.
        let lo = model
            .threshold_with(0.9, ThresholdPolicy::Empirical)
            .unwrap();
        let hi = model
            .threshold_with(0.999, ThresholdPolicy::Empirical)
            .unwrap();
        assert!(lo <= hi);
        assert!(model
            .threshold_with(1.5, ThresholdPolicy::Empirical)
            .is_err());
    }

    #[test]
    fn streamed_fit_needs_explicit_calibration_for_empirical() {
        let x = synthetic_traffic(300, 10, 0.3, 22);
        let mut acc = entromine_linalg::MomentAccumulator::new(10);
        for row in x.row_iter() {
            acc.push(row).unwrap();
        }
        let mut model = SubspaceModel::fit_from_moments(&acc, DimSelection::Fixed(3)).unwrap();
        assert!(model.calibration().is_none());
        // JM works immediately; the empirical policy refuses honestly...
        assert!(model.threshold(0.999).is_ok());
        assert!(matches!(
            model.threshold_with(0.999, ThresholdPolicy::Empirical),
            Err(SubspaceError::NotCalibrated)
        ));
        // ...until a calibration pass replays the training rows.
        model.calibrate_with_rows(x.row_iter()).unwrap();
        let t = model
            .threshold_with(0.99, ThresholdPolicy::Empirical)
            .unwrap();
        assert!(t.is_finite() && t > 0.0);
        // The streamed-then-calibrated threshold matches the matrix fit's.
        let batch = SubspaceModel::fit(&x, DimSelection::Fixed(3)).unwrap();
        let tb = batch
            .threshold_with(0.99, ThresholdPolicy::Empirical)
            .unwrap();
        assert!((t - tb).abs() < 1e-6 * (1.0 + tb), "{t} vs {tb}");
        // Empty calibration input is rejected.
        let mut fresh = SubspaceModel::fit_from_moments(&acc, DimSelection::Fixed(3)).unwrap();
        assert!(fresh.calibrate_with_rows(std::iter::empty()).is_err());
    }

    #[test]
    fn sharpness_warning_reflects_calibration_size() {
        let x = synthetic_traffic(300, 8, 0.4, 30);
        let model = SubspaceModel::fit(&x, DimSelection::Fixed(2)).unwrap();
        // 300 training bins resolve alpha = 0.99 but not 0.999.
        assert!(model.empirical_sharpness(0.99).is_none());
        let warn = model.empirical_sharpness(0.999).expect("must warn");
        assert_eq!(warn.training_bins, 300);
        assert_eq!(warn.required_bins, 1000);
        // Uncalibrated streamed fits have nothing to warn about — the
        // empirical threshold itself errors with NotCalibrated.
        let mut acc = entromine_linalg::MomentAccumulator::new(8);
        for row in x.row_iter() {
            acc.push(row).unwrap();
        }
        let streamed = SubspaceModel::fit_from_moments(&acc, DimSelection::Fixed(2)).unwrap();
        assert!(streamed.empirical_sharpness(0.999).is_none());
    }

    #[test]
    fn strategy_fit_paths_agree_on_thresholds() {
        let x = synthetic_traffic(200, 48, 0.4, 23);
        let dim = DimSelection::Fixed(4);
        let full = SubspaceModel::fit_with(&x, dim, FitStrategy::Full).unwrap();
        let partial = SubspaceModel::fit_with(&x, dim, FitStrategy::Partial).unwrap();
        let gram = SubspaceModel::fit_with(&x, dim, FitStrategy::Gram).unwrap();
        assert_eq!(partial.pca().strategy(), FitStrategy::Partial);
        let oracle = full.threshold(0.999).unwrap();
        for (name, model) in [("partial", &partial), ("gram", &gram)] {
            let t = model.threshold(0.999).unwrap();
            assert!(
                (t - oracle).abs() < 1e-8 * (1.0 + oracle),
                "{name}: {t} vs {oracle}"
            );
            // Same SPEs, so same detections.
            let probe = x.row(17);
            let a = full.spe(probe).unwrap();
            let b = model.spe(probe).unwrap();
            assert!((a - b).abs() < 1e-8 * (1.0 + a), "{name}: spe {a} vs {b}");
        }
    }

    #[test]
    fn constant_traffic_has_zero_thresholds_and_zero_spe() {
        // Zero-variance data: the model is degenerate but must not panic.
        let x = Mat::from_fn(30, 4, |_, _| 5.0);
        let model = SubspaceModel::fit(&x, DimSelection::Fixed(1)).unwrap();
        let t = model.threshold(0.999).unwrap();
        assert_eq!(t, 0.0);
        // All rows equal the mean: zero SPE, no detections (SPE > 0 required).
        let detections = model.detect(&x, 0.999).unwrap();
        assert!(detections.is_empty());
    }
}
