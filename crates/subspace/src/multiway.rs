//! The multiway subspace method (paper §4.2).
//!
//! Unfolds the three-way entropy tensor `H(t, p, 4)` into the merged
//! `t x 4p` matrix, normalizes each feature submatrix to unit energy ("so
//! that no one feature dominates our analysis"), and applies the standard
//! subspace method to the result. Detections are correlated distributional
//! changes across OD flows *and* traffic features.

use crate::detector::{Detection, DimSelection, SubspaceModel};
use crate::ident::{identify_greedy, FlowContribution};
use crate::qstat::ThresholdPolicy;
use crate::SubspaceError;
use entromine_entropy::EntropyTensor;
use entromine_linalg::{reference_score_forced, FitStrategy, Mat, MomentAccumulator, ScorePlan};

/// A fitted multiway subspace model over an entropy tensor.
#[derive(Debug, Clone)]
pub struct MultiwayModel {
    model: SubspaceModel,
    /// Per-feature normalization divisors (Frobenius norm of each
    /// submatrix at fit time). Applied to every row evaluated later, so a
    /// model fitted on clean data can score injected rows consistently.
    divisors: [f64; 4],
    n_flows: usize,
    /// The inner model's scoring plane with the unit-energy divisors
    /// folded into its centering pass (`c = raw/d − μ`, bitwise identical
    /// to normalizing first), so raw unfolded rows score allocation-free
    /// without materializing the normalized row.
    plan: ScorePlan,
}

/// Builds the divisor-folded scoring plane and assembles the model — the
/// shared back half of the batch ([`MultiwayModel::fit_on_rows_with`]) and
/// streamed ([`MultiwayFitter::finish_warm`]) construction sites.
fn assemble(
    model: SubspaceModel,
    divisors: [f64; 4],
    n_flows: usize,
) -> Result<MultiwayModel, SubspaceError> {
    let mut per_col = vec![0.0; 4 * n_flows];
    for (k, &d) in divisors.iter().enumerate() {
        per_col[k * n_flows..(k + 1) * n_flows].fill(d);
    }
    let plan = model
        .pca()
        .score_plan(model.normal_dim())?
        .with_divisors(per_col)?;
    Ok(MultiwayModel {
        model,
        divisors,
        n_flows,
        plan,
    })
}

impl MultiwayModel {
    /// Unfolds, normalizes, and fits.
    ///
    /// The paper's wording is "dividing each element in a submatrix by the
    /// total energy of that submatrix"; dividing by the energy itself does
    /// not produce unit energy, so — as noted in DESIGN.md — we divide by
    /// the square root of the energy (the Frobenius norm), after which each
    /// submatrix has energy exactly 1.
    pub fn fit(tensor: &EntropyTensor, dim: DimSelection) -> Result<Self, SubspaceError> {
        Self::fit_with(tensor, dim, FitStrategy::Auto)
    }

    /// Like [`fit`](Self::fit) with an explicit fit engine (the unfolded
    /// `t × 4p` matrix is the widest in the pipeline — at Geant width the
    /// Gram and partial-spectrum engines are what make refits routine).
    pub fn fit_with(
        tensor: &EntropyTensor,
        dim: DimSelection,
        strategy: FitStrategy,
    ) -> Result<Self, SubspaceError> {
        let all: Vec<usize> = (0..tensor.n_bins()).collect();
        Self::fit_on_rows_with(tensor, dim, &all, strategy)
    }

    /// Fits the model using only the given time bins.
    ///
    /// The clean-training iteration of the diagnosis pipeline uses this to
    /// refit with detected bins excluded, preventing a strong anomaly from
    /// polluting the normal subspace (a known failure mode of PCA-based
    /// detectors). Normalization energies are computed over the same rows.
    pub fn fit_on_rows(
        tensor: &EntropyTensor,
        dim: DimSelection,
        rows: &[usize],
    ) -> Result<Self, SubspaceError> {
        Self::fit_on_rows_with(tensor, dim, rows, FitStrategy::Auto)
    }

    /// [`fit_on_rows`](Self::fit_on_rows) with an explicit fit engine.
    pub fn fit_on_rows_with(
        tensor: &EntropyTensor,
        dim: DimSelection,
        rows: &[usize],
        strategy: FitStrategy,
    ) -> Result<Self, SubspaceError> {
        let p = tensor.n_flows();
        if p == 0 {
            return Err(SubspaceError::BadInput("tensor has no OD flows"));
        }
        if rows.is_empty() {
            return Err(SubspaceError::BadInput("no rows to fit on"));
        }
        let mut unfolded = Mat::zeros(rows.len(), 4 * p);
        for (dst, &bin) in rows.iter().enumerate() {
            unfolded
                .row_mut(dst)
                .copy_from_slice(&tensor.unfolded_row(bin));
        }
        let mut divisors = [1.0f64; 4];
        for (k, d) in divisors.iter_mut().enumerate() {
            let mut energy = 0.0;
            for bin in 0..unfolded.rows() {
                let block = &unfolded.row(bin)[k * p..(k + 1) * p];
                energy += block.iter().map(|v| v * v).sum::<f64>();
            }
            // A feature with zero energy everywhere (e.g. ICMP-only traffic
            // has all-zero ports) is left unscaled rather than divided by 0.
            *d = if energy > 0.0 { energy.sqrt() } else { 1.0 };
        }
        for bin in 0..unfolded.rows() {
            let row = unfolded.row_mut(bin);
            for (k, &d) in divisors.iter().enumerate() {
                for v in &mut row[k * p..(k + 1) * p] {
                    *v /= d;
                }
            }
        }
        let model = SubspaceModel::fit_with(&unfolded, dim, strategy)?;
        assemble(model, divisors, p)
    }

    /// Number of OD flows `p`.
    pub fn n_flows(&self) -> usize {
        self.n_flows
    }

    /// The fitted single-way model over the normalized unfolding.
    pub fn inner(&self) -> &SubspaceModel {
        &self.model
    }

    /// The per-feature Frobenius-norm divisors applied before analysis.
    pub fn divisors(&self) -> [f64; 4] {
        self.divisors
    }

    /// Applies the stored unit-energy normalization to a raw unfolded row.
    pub fn normalize_row(&self, raw: &[f64]) -> Result<Vec<f64>, SubspaceError> {
        if raw.len() != 4 * self.n_flows {
            return Err(SubspaceError::BadInput(
                "row length must be 4p (one value per feature per flow)",
            ));
        }
        let p = self.n_flows;
        let mut out = raw.to_vec();
        for (k, &d) in self.divisors.iter().enumerate() {
            for v in &mut out[k * p..(k + 1) * p] {
                *v /= d;
            }
        }
        Ok(out)
    }

    /// SPE of a raw (un-normalized) unfolded row, through the
    /// divisor-folded scoring plane (allocation-free; the fold `raw/d − μ`
    /// is bitwise identical to normalizing first). The
    /// `ENTROMINE_FORCE_REFERENCE_SCORE` pin routes through
    /// [`normalize_row`](Self::normalize_row) plus the inner model's
    /// reference chain instead.
    pub fn spe(&self, raw: &[f64]) -> Result<f64, SubspaceError> {
        if reference_score_forced() {
            let normalized = self.normalize_row(raw)?;
            return self.model.spe(&normalized);
        }
        self.check_width(raw)?;
        Ok(self.plan.spe(raw)?)
    }

    /// SPEs of a batch of raw unfolded rows through the plan's batch
    /// entry — bitwise identical to per-row [`spe`](Self::spe). `out` is
    /// cleared first.
    ///
    /// # Errors
    ///
    /// Shape errors from scoring, on the first offending row.
    pub fn spe_batch<'r>(
        &self,
        rows: impl IntoIterator<Item = &'r [f64]>,
        out: &mut Vec<f64>,
    ) -> Result<(), SubspaceError> {
        if reference_score_forced() {
            out.clear();
            for raw in rows {
                let normalized = self.normalize_row(raw)?;
                out.push(self.model.spe(&normalized)?);
            }
            return Ok(());
        }
        self.plan.spe_batch(rows, out)?;
        Ok(())
    }

    /// SPE and T² of one raw unfolded row from a single axis pass (see
    /// [`SubspaceModel::spe_t2`]).
    ///
    /// # Errors
    ///
    /// Shape errors from scoring.
    pub fn spe_t2(&self, raw: &[f64]) -> Result<(f64, f64), SubspaceError> {
        if reference_score_forced() {
            return Ok((self.spe(raw)?, self.t2(raw)?));
        }
        self.check_width(raw)?;
        let pca = self.model.pca();
        let floor = 1e-12 * pca.total_variance().max(1e-300);
        Ok(self.plan.spe_t2(raw, pca.eigenvalues(), floor)?)
    }

    /// Batched [`spe_t2`](Self::spe_t2) over raw unfolded rows: one
    /// `(SPE, T²)` pair per row appended to `out` (cleared first).
    ///
    /// # Errors
    ///
    /// Shape errors from scoring, on the first offending row.
    pub fn spe_t2_batch<'r>(
        &self,
        rows: impl IntoIterator<Item = &'r [f64]>,
        out: &mut Vec<(f64, f64)>,
    ) -> Result<(), SubspaceError> {
        if reference_score_forced() {
            out.clear();
            for raw in rows {
                out.push((self.spe(raw)?, self.t2(raw)?));
            }
            return Ok(());
        }
        let pca = self.model.pca();
        let floor = 1e-12 * pca.total_variance().max(1e-300);
        self.plan
            .spe_t2_batch(rows, pca.eigenvalues(), floor, out)?;
        Ok(())
    }

    /// The multiway wording of the `4p` width check (the plan would report
    /// a bare shape mismatch).
    fn check_width(&self, raw: &[f64]) -> Result<(), SubspaceError> {
        if raw.len() != 4 * self.n_flows {
            return Err(SubspaceError::BadInput(
                "row length must be 4p (one value per feature per flow)",
            ));
        }
        Ok(())
    }

    /// Residual vector `h̃` of a raw unfolded row (in normalized units).
    pub fn residual(&self, raw: &[f64]) -> Result<Vec<f64>, SubspaceError> {
        let normalized = self.normalize_row(raw)?;
        self.model.residual(&normalized)
    }

    /// The detection threshold `δ²_α` (Jackson–Mudholkar policy).
    pub fn threshold(&self, alpha: f64) -> Result<f64, SubspaceError> {
        self.model.threshold(alpha)
    }

    /// The detection threshold under an explicit [`ThresholdPolicy`].
    /// The empirical policy reads the inner model's training-SPE
    /// calibration, which matrix fits populate automatically (in
    /// normalized entropy units — the same units every scored row is
    /// normalized into).
    pub fn threshold_with(
        &self,
        alpha: f64,
        policy: ThresholdPolicy,
    ) -> Result<f64, SubspaceError> {
        self.model.threshold_with(alpha, policy)
    }

    /// Calibrates the model for [`ThresholdPolicy::Empirical`] from raw
    /// (un-normalized) unfolded training rows — the post-hoc pass a
    /// streamed fit runs over replayed training bins.
    ///
    /// # Errors
    ///
    /// `BadInput` when `rows` is empty or a row is not `4p` long.
    pub fn calibrate_with_raw_rows<'r>(
        &mut self,
        rows: impl IntoIterator<Item = &'r [f64]>,
    ) -> Result<(), SubspaceError> {
        // One divisor-folded batch pass — no normalized copies of the
        // training window are ever materialized.
        let mut spes = Vec::new();
        self.spe_batch(rows, &mut spes)?;
        if spes.is_empty() {
            return Err(SubspaceError::BadInput(
                "empirical calibration needs at least one training row",
            ));
        }
        spes.sort_by(|a, b| a.partial_cmp(b).expect("SPEs are finite"));
        self.model.set_calibration(spes);
        Ok(())
    }

    /// Structured sharpness warning for an empirical threshold at
    /// `alpha`, read from the inner model's calibration (see
    /// [`SubspaceModel::empirical_sharpness`]).
    pub fn empirical_sharpness(&self, alpha: f64) -> Option<crate::EmpiricalSharpness> {
        self.model.empirical_sharpness(alpha)
    }

    /// Hotelling's T² of a raw unfolded row (see
    /// [`SubspaceModel::t2`](crate::SubspaceModel::t2)).
    pub fn t2(&self, raw: &[f64]) -> Result<f64, SubspaceError> {
        if reference_score_forced() {
            let normalized = self.normalize_row(raw)?;
            return self.model.t2(&normalized);
        }
        self.check_width(raw)?;
        let pca = self.model.pca();
        let floor = 1e-12 * pca.total_variance().max(1e-300);
        Ok(self.plan.t2(raw, pca.eigenvalues(), floor)?)
    }

    /// Scores one raw (un-normalized) unfolded row against a precomputed
    /// threshold — the multiway score path. Normalization uses the
    /// divisors stored at fit time, so a bin arriving months after
    /// training is scored in the same units the model was fitted in.
    pub fn score_row(
        &self,
        bin: usize,
        raw: &[f64],
        threshold: f64,
    ) -> Result<Option<Detection>, SubspaceError> {
        let spe = self.spe(raw)?;
        Ok((spe > threshold).then_some(Detection {
            bin,
            spe,
            threshold,
        }))
    }

    /// A scoring head with the Q-threshold for `alpha` precomputed.
    pub fn scorer(&self, alpha: f64) -> Result<MultiwayScorer<'_>, SubspaceError> {
        Ok(MultiwayScorer {
            model: self,
            threshold: self.threshold(alpha)?,
        })
    }

    /// Detects anomalous bins across the whole tensor — one
    /// [`spe_batch`](Self::spe_batch) pass, bitwise equal to replaying
    /// [`score_row`](Self::score_row) per bin.
    pub fn detect(
        &self,
        tensor: &EntropyTensor,
        alpha: f64,
    ) -> Result<Vec<Detection>, SubspaceError> {
        let threshold = self.threshold(alpha)?;
        let spes = self.spe_series(tensor)?;
        Ok(spes
            .iter()
            .enumerate()
            .filter(|&(_, &spe)| spe > threshold)
            .map(|(bin, &spe)| Detection {
                bin,
                spe,
                threshold,
            })
            .collect())
    }

    /// SPE of every bin (for residual scatter plots, Figure 4) — one
    /// batch pass over shared scratch.
    pub fn spe_series(&self, tensor: &EntropyTensor) -> Result<Vec<f64>, SubspaceError> {
        let rows: Vec<Vec<f64>> = (0..tensor.n_bins())
            .map(|bin| tensor.unfolded_row(bin))
            .collect();
        let mut out = Vec::with_capacity(rows.len());
        self.spe_batch(rows.iter().map(Vec::as_slice), &mut out)?;
        Ok(out)
    }

    /// The residual entropy 4-vector of one OD flow at one bin:
    /// `[H̃(srcIP), H̃(srcPort), H̃(dstIP), H̃(dstPort)]` (FEATURES order),
    /// extracted from the full residual of the raw row.
    pub fn anomaly_vector(&self, raw: &[f64], flow: usize) -> Result<[f64; 4], SubspaceError> {
        if flow >= self.n_flows {
            return Err(SubspaceError::BadInput("flow index out of range"));
        }
        let r = self.residual(raw)?;
        let p = self.n_flows;
        Ok([r[flow], r[p + flow], r[2 * p + flow], r[3 * p + flow]])
    }

    /// Multi-attribute identification (§4.2): which OD flows carry the
    /// anomaly in this row?
    ///
    /// Greedily removes the per-flow 4-feature contribution `θ_k f_k` that
    /// best explains the residual, recursing "until the resulting state
    /// vector is below the detection threshold", or until `max_flows`
    /// flows have been blamed.
    pub fn identify(
        &self,
        raw: &[f64],
        alpha: f64,
        max_flows: usize,
    ) -> Result<Vec<FlowContribution>, SubspaceError> {
        let threshold = self.threshold(alpha)?;
        let normalized = self.normalize_row(raw)?;
        let residual = self.model.residual(&normalized)?;
        identify_greedy(
            &residual,
            components(&self.model),
            self.model.normal_dim(),
            self.n_flows,
            threshold,
            max_flows,
        )
    }
}

/// Borrow the principal-axis matrix of the fitted model.
fn components(model: &SubspaceModel) -> &Mat {
    model.pca().components()
}

/// The score half of a fitted [`MultiwayModel`]: a borrow of the model
/// plus its precomputed Q-statistic threshold, for scoring raw unfolded
/// rows as they finalize.
#[derive(Debug, Clone, Copy)]
pub struct MultiwayScorer<'a> {
    model: &'a MultiwayModel,
    threshold: f64,
}

impl MultiwayScorer<'_> {
    /// The precomputed threshold `δ²_α`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The model being scored against.
    pub fn model(&self) -> &MultiwayModel {
        self.model
    }

    /// Scores one raw unfolded row, tagging any detection with `bin`.
    pub fn score(&self, bin: usize, raw: &[f64]) -> Result<Option<Detection>, SubspaceError> {
        self.model.score_row(bin, raw, self.threshold)
    }
}

/// Streaming fit phase for the multiway model: raw unfolded rows are
/// absorbed one at a time and the `t × 4p` training matrix never exists.
///
/// The batch fit normalizes each feature submatrix to unit energy before
/// forming the covariance; a stream cannot do that up front because the
/// divisors are only known once the window closes. The trick is that
/// unit-energy normalization is a per-column *scaling*, and scaling
/// commutes with moment accumulation: raw moments plus per-feature energy
/// sums are accumulated online, and [`finish`](Self::finish) rescales the
/// moments by the final divisors before the eigensolve. The resulting
/// model matches [`MultiwayModel::fit`] to round-off.
#[derive(Debug, Clone)]
pub struct MultiwayFitter {
    moments: MomentAccumulator,
    /// Running per-feature energies `Σ_rows Σ_block v²`.
    energies: [f64; 4],
    n_flows: usize,
    dim: DimSelection,
    strategy: FitStrategy,
}

impl MultiwayFitter {
    /// A fitter for `n_flows` OD flows with the given dimension selection.
    ///
    /// The eventual eigensolve uses [`FitStrategy::Auto`] — which, for
    /// wide accumulators and thin requests, is the partial-spectrum
    /// engine: exactly the frequent-refit path the streaming pipeline
    /// needs at scale. Use [`with_strategy`](Self::with_strategy) to pin
    /// an engine (the Gram engine is unavailable without raw rows).
    ///
    /// # Errors
    ///
    /// `BadInput` if `n_flows` is zero.
    pub fn new(n_flows: usize, dim: DimSelection) -> Result<Self, SubspaceError> {
        if n_flows == 0 {
            return Err(SubspaceError::BadInput("tensor has no OD flows"));
        }
        Ok(MultiwayFitter {
            moments: MomentAccumulator::new(4 * n_flows),
            energies: [0.0; 4],
            n_flows,
            dim,
            strategy: FitStrategy::Auto,
        })
    }

    /// Pins the fit engine used by [`finish`](Self::finish).
    pub fn with_strategy(mut self, strategy: FitStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Re-selects the normal-subspace dimension used by
    /// [`fit`](Self::fit) / [`finish`](Self::finish). Rolling-window
    /// monitors accumulate chunks long before fitting; this lets the
    /// dimension be chosen at fit time without re-absorbing the window.
    pub fn with_dim(mut self, dim: DimSelection) -> Self {
        self.dim = dim;
        self
    }

    /// Number of rows absorbed so far.
    pub fn count(&self) -> usize {
        self.moments.count()
    }

    /// Number of OD flows `p` the fitter was built for.
    pub fn n_flows(&self) -> usize {
        self.n_flows
    }

    /// Merges another fitter over a **disjoint** row set into this one:
    /// Chan's pairwise moment combination plus energy sums. This is the
    /// window-roll primitive of a rolling-model monitor — each window
    /// chunk streams into its own fitter, and a refit merges the
    /// surviving chunks instead of replaying their rows.
    ///
    /// The merged fitter keeps `self`'s dimension selection and engine.
    ///
    /// # Errors
    ///
    /// `BadInput` if the flow counts differ.
    pub fn merge(&mut self, other: &MultiwayFitter) -> Result<(), SubspaceError> {
        if other.n_flows != self.n_flows {
            return Err(SubspaceError::BadInput(
                "cannot merge fitters over different flow counts",
            ));
        }
        self.moments.merge(&other.moments)?;
        for (e, &o) in self.energies.iter_mut().zip(&other.energies) {
            *e += o;
        }
        Ok(())
    }

    /// Absorbs one raw (un-normalized) unfolded row of length `4p`.
    ///
    /// # Errors
    ///
    /// `BadInput` on a wrong row length or a non-finite value — rejected
    /// before the energy sums are touched, so a refused row leaves the
    /// fitter exactly as it was (energies and moments always describe
    /// the same row set).
    pub fn push_row(&mut self, raw: &[f64]) -> Result<(), SubspaceError> {
        let p = self.n_flows;
        if raw.len() != 4 * p {
            return Err(SubspaceError::BadInput(
                "row length must be 4p (one value per feature per flow)",
            ));
        }
        if !raw.iter().all(|v| v.is_finite()) {
            return Err(SubspaceError::BadInput("non-finite value in unfolded row"));
        }
        for (k, e) in self.energies.iter_mut().enumerate() {
            *e += raw[k * p..(k + 1) * p].iter().map(|v| v * v).sum::<f64>();
        }
        self.moments.push(raw).map_err(SubspaceError::from)
    }

    /// Closes the training window: computes the unit-energy divisors,
    /// rescales the streamed moments, and fits the subspace model.
    ///
    /// # Errors
    ///
    /// `BadInput` with fewer than two absorbed rows; otherwise the same
    /// conditions as [`MultiwayModel::fit`].
    pub fn finish(self) -> Result<MultiwayModel, SubspaceError> {
        self.finish_warm(None)
    }

    /// [`finish`](Self::finish) **warm-started** from a previously fitted
    /// multiway model: its eigenbasis seeds the subspace iteration of
    /// this fit's eigensolve. The basis lives in the unit-energy
    /// normalized coordinates both fits share (each fit rescales its raw
    /// moments before the eigensolve), so the old axes are directly
    /// reusable even though the two windows' divisors differ slightly.
    /// `None` is the cold fit, bit for bit.
    ///
    /// # Errors
    ///
    /// Same as [`finish`](Self::finish); a warm model over a different
    /// flow count is `BadInput`.
    pub fn finish_warm(
        mut self,
        warm: Option<&MultiwayModel>,
    ) -> Result<MultiwayModel, SubspaceError> {
        if self.moments.count() < 2 {
            return Err(SubspaceError::BadInput(
                "need at least two timepoints to model variation",
            ));
        }
        if let Some(prev) = warm {
            if prev.n_flows != self.n_flows {
                return Err(SubspaceError::BadInput(
                    "warm-start model covers a different flow count",
                ));
            }
        }
        let p = self.n_flows;
        let mut divisors = [1.0f64; 4];
        for (d, &energy) in divisors.iter_mut().zip(&self.energies) {
            // Zero-energy features are left unscaled, as in the batch fit.
            *d = if energy > 0.0 { energy.sqrt() } else { 1.0 };
        }
        let mut scales = vec![0.0; 4 * p];
        for (k, &d) in divisors.iter().enumerate() {
            for s in &mut scales[k * p..(k + 1) * p] {
                *s = 1.0 / d;
            }
        }
        self.moments.scale_cols(&scales)?;
        let model = SubspaceModel::fit_from_moments_warm(
            &self.moments,
            self.dim,
            self.strategy,
            warm.map(|prev| &prev.model),
        )?;
        assemble(model, divisors, p)
    }

    /// Removes a previously merged-in fitter's rows — the inverse of
    /// [`merge`](Self::merge), built on
    /// [`MomentAccumulator::try_downdate`]. Energy sums subtract exactly
    /// (clamped at zero against round-off); the moment downdate carries
    /// the numerical-safety guard, and a refusal (`Ok(false)`) leaves
    /// `self` fully untouched so the caller can re-accumulate instead.
    ///
    /// This is the trimming-round primitive: round 0's merged window
    /// minus this round's flagged bins, in `O(p²)` instead of
    /// `O(bins·p²)`.
    ///
    /// # Errors
    ///
    /// `BadInput` if the flow counts differ; moment-downdate domain
    /// errors (removing every row) pass through.
    pub fn try_downdate(&mut self, removed: &MultiwayFitter) -> Result<bool, SubspaceError> {
        if removed.n_flows != self.n_flows {
            return Err(SubspaceError::BadInput(
                "cannot downdate fitters over different flow counts",
            ));
        }
        if !self.moments.try_downdate(&removed.moments)? {
            return Ok(false);
        }
        for (e, &o) in self.energies.iter_mut().zip(&removed.energies) {
            *e = (*e - o).max(0.0);
        }
        Ok(true)
    }

    /// Like [`finish`](Self::finish) without consuming the fitter — the
    /// rolling-window entry point, where the same accumulated window must
    /// survive to be merged into the *next* refit. Costs one clone of the
    /// accumulated moments; callers done with the fitter should prefer
    /// `finish`.
    pub fn fit(&self) -> Result<MultiwayModel, SubspaceError> {
        self.clone().finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entromine_entropy::{BinSummary, TensorBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds a tensor whose entropy timeseries follow a shared diurnal
    /// pattern per feature, plus noise: the low-rank structure the method
    /// expects. Optionally plants a port-scan-shaped anomaly.
    fn build_tensor(
        t: usize,
        p: usize,
        noise: f64,
        seed: u64,
        anomaly: Option<(usize, usize)>,
    ) -> EntropyTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let gains: Vec<[f64; 4]> = (0..p)
            .map(|_| {
                [
                    3.0 + rng.random::<f64>(),
                    4.0 + rng.random::<f64>(),
                    3.5 + rng.random::<f64>(),
                    2.5 + rng.random::<f64>(),
                ]
            })
            .collect();
        let mut b = TensorBuilder::new(t, p);
        for bin in 0..t {
            let phase = (bin as f64 / 288.0) * std::f64::consts::TAU;
            for (flow, gain) in gains.iter().enumerate() {
                let mut e = [0.0f64; 4];
                for (k, ek) in e.iter_mut().enumerate() {
                    *ek = gain[k] * (1.0 + 0.2 * phase.sin()) + noise * (rng.random::<f64>() - 0.5);
                }
                if let Some((abin, aflow)) = anomaly {
                    if bin == abin && flow == aflow {
                        // Port scan: dstPort entropy up, dstIP entropy down.
                        e[3] += 3.0;
                        e[2] -= 2.0;
                    }
                }
                b.set(
                    bin,
                    flow,
                    &BinSummary {
                        packets: 1000,
                        bytes: 100_000,
                        entropy: e,
                    },
                );
            }
        }
        let (tensor, _) = b.finish();
        tensor
    }

    #[test]
    fn unit_energy_normalization_holds() {
        let tensor = build_tensor(100, 6, 0.1, 1, None);
        let model = MultiwayModel::fit(&tensor, DimSelection::Fixed(3)).unwrap();
        // Re-normalize the unfolding with the stored divisors and verify
        // each block has energy 1.
        let p = 6;
        let mut energies = [0.0f64; 4];
        for bin in 0..tensor.n_bins() {
            let row = model.normalize_row(&tensor.unfolded_row(bin)).unwrap();
            for k in 0..4 {
                energies[k] += row[k * p..(k + 1) * p].iter().map(|v| v * v).sum::<f64>();
            }
        }
        for e in energies {
            assert!((e - 1.0).abs() < 1e-9, "block energy {e} != 1");
        }
    }

    #[test]
    fn clean_tensor_mostly_clean() {
        let tensor = build_tensor(300, 8, 0.2, 2, None);
        let model = MultiwayModel::fit(&tensor, DimSelection::Fixed(5)).unwrap();
        let det = model.detect(&tensor, 0.9999).unwrap();
        assert!(det.len() < 8, "too many false alarms: {}", det.len());
    }

    #[test]
    fn port_scan_shape_detected_and_identified() {
        // The synthetic tensor has one latent temporal pattern, so the
        // normal subspace must be kept small: a generous m would absorb the
        // single injected anomaly into the model itself (the same reason
        // the paper fixes m = 10 on real data rather than letting variance
        // criteria chase the tail).
        let tensor = build_tensor(300, 8, 0.2, 3, Some((150, 4)));
        let model = MultiwayModel::fit(&tensor, DimSelection::Fixed(1)).unwrap();
        let det = model.detect(&tensor, 0.999).unwrap();
        assert!(
            det.iter().any(|d| d.bin == 150),
            "anomalous bin not flagged: {det:?}"
        );
        // Identification must blame flow 4.
        let row = tensor.unfolded_row(150);
        let blamed = model.identify(&row, 0.999, 3).unwrap();
        assert!(!blamed.is_empty());
        assert_eq!(blamed[0].flow, 4, "wrong flow blamed: {blamed:?}");
    }

    #[test]
    fn anomaly_vector_sign_structure() {
        let tensor = build_tensor(300, 8, 0.2, 4, Some((150, 4)));
        let model = MultiwayModel::fit(&tensor, DimSelection::Fixed(1)).unwrap();
        let v = model.anomaly_vector(&tensor.unfolded_row(150), 4).unwrap();
        // Port scan: residual dstPort entropy strongly positive, dstIP
        // strongly negative (FEATURES order: srcIP, srcPort, dstIP, dstPort).
        assert!(v[3] > 0.0, "dstPort residual should rise: {v:?}");
        assert!(v[2] < 0.0, "dstIP residual should fall: {v:?}");
        assert!(v[3].abs() > v[0].abs());
    }

    #[test]
    fn spe_matches_detect_threshold_semantics() {
        let tensor = build_tensor(200, 5, 0.3, 5, None);
        let model = MultiwayModel::fit(&tensor, DimSelection::Fixed(4)).unwrap();
        let alpha = 0.995;
        let threshold = model.threshold(alpha).unwrap();
        let series = model.spe_series(&tensor).unwrap();
        let manual: Vec<usize> = series
            .iter()
            .enumerate()
            .filter(|(_, &s)| s > threshold)
            .map(|(i, _)| i)
            .collect();
        let det: Vec<usize> = model
            .detect(&tensor, alpha)
            .unwrap()
            .iter()
            .map(|d| d.bin)
            .collect();
        assert_eq!(manual, det);
    }

    #[test]
    fn scorer_replay_equals_detect() {
        let tensor = build_tensor(250, 6, 0.25, 8, Some((100, 2)));
        let model = MultiwayModel::fit(&tensor, DimSelection::Fixed(1)).unwrap();
        let alpha = 0.999;
        let batch = model.detect(&tensor, alpha).unwrap();
        let scorer = model.scorer(alpha).unwrap();
        let streamed: Vec<Detection> = (0..tensor.n_bins())
            .filter_map(|bin| scorer.score(bin, &tensor.unfolded_row(bin)).unwrap())
            .collect();
        assert_eq!(batch, streamed);
        assert!(streamed.iter().any(|d| d.bin == 100));
    }

    #[test]
    fn streaming_fit_matches_batch_fit() {
        let tensor = build_tensor(200, 5, 0.2, 9, None);
        let batch = MultiwayModel::fit(&tensor, DimSelection::Fixed(2)).unwrap();
        let mut fitter = MultiwayFitter::new(5, DimSelection::Fixed(2)).unwrap();
        for bin in 0..tensor.n_bins() {
            fitter.push_row(&tensor.unfolded_row(bin)).unwrap();
        }
        assert_eq!(fitter.count(), 200);
        let streamed = fitter.finish().unwrap();
        // Identical divisors (bit-for-bit: same sums in the same order).
        assert_eq!(streamed.divisors(), batch.divisors());
        // Thresholds and residuals agree to streamed-covariance round-off.
        let ta = batch.threshold(0.999).unwrap();
        let tb = streamed.threshold(0.999).unwrap();
        assert!((ta - tb).abs() < 1e-6 * (1.0 + ta), "{ta} vs {tb}");
        for bin in [0usize, 77, 199] {
            let row = tensor.unfolded_row(bin);
            let a = batch.spe(&row).unwrap();
            let b = streamed.spe(&row).unwrap();
            assert!((a - b).abs() < 1e-6 * (1.0 + a), "{a} vs {b}");
        }
    }

    #[test]
    fn merged_chunk_fitters_match_one_big_fitter() {
        // The window-roll primitive: three chunk fitters over disjoint row
        // ranges, Chan-merged, must agree with a single fitter that
        // absorbed every row — same divisors bit-for-bit (energy sums are
        // associative enough to test to round-off) and matching models.
        let tensor = build_tensor(240, 6, 0.2, 11, None);
        let mut whole = MultiwayFitter::new(6, DimSelection::Fixed(2)).unwrap();
        let mut chunks: Vec<MultiwayFitter> = (0..3)
            .map(|_| MultiwayFitter::new(6, DimSelection::Fixed(2)).unwrap())
            .collect();
        for bin in 0..tensor.n_bins() {
            let row = tensor.unfolded_row(bin);
            whole.push_row(&row).unwrap();
            chunks[bin / 80].push_row(&row).unwrap();
        }
        let mut merged = chunks[0].clone();
        merged.merge(&chunks[1]).unwrap();
        merged.merge(&chunks[2]).unwrap();
        assert_eq!(merged.count(), 240);
        assert_eq!(merged.n_flows(), 6);

        let a = whole.fit().unwrap();
        let b = merged.fit().unwrap();
        for (da, db) in a.divisors().iter().zip(b.divisors()) {
            assert!((da - db).abs() < 1e-9 * da.abs().max(1.0));
        }
        let ta = a.threshold(0.999).unwrap();
        let tb = b.threshold(0.999).unwrap();
        assert!((ta - tb).abs() < 1e-6 * (1.0 + ta), "{ta} vs {tb}");
        for bin in [0usize, 100, 239] {
            let row = tensor.unfolded_row(bin);
            let sa = a.spe(&row).unwrap();
            let sb = b.spe(&row).unwrap();
            assert!((sa - sb).abs() < 1e-6 * (1.0 + sa), "{sa} vs {sb}");
        }
        // Mismatched widths refuse to merge.
        let narrow = MultiwayFitter::new(3, DimSelection::Fixed(1)).unwrap();
        assert!(merged.merge(&narrow).is_err());
    }

    #[test]
    fn fit_does_not_consume_and_equals_finish() {
        let tensor = build_tensor(60, 4, 0.3, 12, None);
        let mut fitter = MultiwayFitter::new(4, DimSelection::Fixed(1)).unwrap();
        for bin in 0..tensor.n_bins() {
            fitter.push_row(&tensor.unfolded_row(bin)).unwrap();
        }
        let via_fit = fitter.fit().unwrap();
        // The fitter survives `fit` and keeps absorbing.
        fitter.push_row(&tensor.unfolded_row(0)).unwrap();
        assert_eq!(fitter.count(), 61);
        let via_finish = {
            let mut clone = MultiwayFitter::new(4, DimSelection::Fixed(1)).unwrap();
            for bin in 0..tensor.n_bins() {
                clone.push_row(&tensor.unfolded_row(bin)).unwrap();
            }
            clone.finish().unwrap()
        };
        assert_eq!(via_fit.divisors(), via_finish.divisors());
        let row = tensor.unfolded_row(30);
        assert_eq!(
            via_fit.spe(&row).unwrap(),
            via_finish.spe(&row).unwrap(),
            "fit and finish must be the same computation"
        );
    }

    #[test]
    fn fitter_validates_inputs() {
        assert!(MultiwayFitter::new(0, DimSelection::Fixed(1)).is_err());
        let mut fitter = MultiwayFitter::new(3, DimSelection::Fixed(1)).unwrap();
        assert!(fitter.push_row(&[0.0; 7]).is_err());
        fitter.push_row(&[1.0; 12]).unwrap();
        assert!(fitter.finish().is_err(), "one row cannot be fitted");
    }

    #[test]
    fn row_length_validated() {
        let tensor = build_tensor(50, 4, 0.2, 6, None);
        let model = MultiwayModel::fit(&tensor, DimSelection::Fixed(3)).unwrap();
        assert!(model.spe(&[0.0; 7]).is_err());
        assert!(model.anomaly_vector(&tensor.unfolded_row(0), 9).is_err());
    }

    #[test]
    fn zero_energy_feature_does_not_poison_model() {
        // All-zero dstPort entropy (e.g. ICMP-only network): divisor
        // falls back to 1, model still fits and detects nothing odd.
        let mut b = TensorBuilder::new(60, 3);
        let mut rng = StdRng::seed_from_u64(7);
        for bin in 0..60 {
            for flow in 0..3 {
                b.set(
                    bin,
                    flow,
                    &BinSummary {
                        packets: 10,
                        bytes: 1000,
                        entropy: [1.0 + 0.1 * rng.random::<f64>(), 2.0, 1.5, 0.0],
                    },
                );
            }
        }
        let (tensor, _) = b.finish();
        let model = MultiwayModel::fit(&tensor, DimSelection::Fixed(1)).unwrap();
        assert_eq!(model.divisors()[3], 1.0);
        let det = model.detect(&tensor, 0.999).unwrap();
        assert!(det.len() < 5);
    }
}
