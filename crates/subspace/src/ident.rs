//! Multi-attribute anomaly identification (paper §4.2).
//!
//! Detection says *when*; identification says *which OD flow(s)*. The
//! paper models the anomalous state vector as `h = h* + θ_k f_k`, where the
//! binary matrix `θ_k` selects the four feature columns of flow `k` and
//! `f_k` is the entropy displacement the anomaly caused. The flow blamed is
//!
//! ```text
//! ℓ = argmin_k  min_{f_k} || h - θ_k f_k ||
//! ```
//!
//! and the method is re-applied "recursively until the resulting state
//! vector is below the detection threshold" — catching anomalies that span
//! multiple OD flows.
//!
//! # How the math reduces
//!
//! Working in the residual subspace (residual `r = C̃ h`, `C̃ = I - P Pᵀ`):
//! removing hypothesis `θ_k f` changes the residual to `r - C̃ θ_k f`, so
//! the best `f` solves the 4x4 normal equations `G f = b` with
//!
//! * `b = (C̃ θ_k)ᵀ r = θ_kᵀ r` (because `Pᵀ r = 0`): simply the residual
//!   at flow `k`'s four columns;
//! * `G = θ_kᵀ C̃ θ_k = I₄ - P_k P_kᵀ`, where `P_k` is the 4 x m block of
//!   the principal-axis matrix at those rows (using `Pᵀ P = I`).
//!
//! The SPE drop achieved by blaming flow `k` is `bᵀ f`. This makes each
//! identification round `O(p · m)` instead of `O(p · (4p) · m)`.

use crate::SubspaceError;
use entromine_linalg::{solve_regularized, Mat};

/// One identified flow: its index, the fitted 4-feature entropy
/// displacement, and how much of the squared residual it explained.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowContribution {
    /// The blamed OD flow (dense index).
    pub flow: usize,
    /// Fitted displacement `f_k` in normalized entropy units,
    /// `[srcIP, srcPort, dstIP, dstPort]` order.
    pub f: [f64; 4],
    /// Squared residual norm before this flow was removed.
    pub spe_before: f64,
    /// Drop in squared residual achieved by removing this flow.
    pub spe_drop: f64,
}

/// Ridge added to the 4x4 normal equations; guards against flows whose
/// feature columns lie (numerically) inside the normal subspace.
const RIDGE: f64 = 1e-12;

/// Greedy multi-flow identification over a residual vector.
///
/// * `residual` — `r = C̃ h`, length `4p`.
/// * `components` — the full principal-axis matrix (columns are axes).
/// * `m` — normal subspace dimension (first `m` columns of `components`).
/// * `threshold` — stop once the remaining SPE is at or below this.
/// * `max_flows` — hard cap on the recursion (guards pathological inputs).
pub(crate) fn identify_greedy(
    residual: &[f64],
    components: &Mat,
    m: usize,
    n_flows: usize,
    threshold: f64,
    max_flows: usize,
) -> Result<Vec<FlowContribution>, SubspaceError> {
    if residual.len() != 4 * n_flows {
        return Err(SubspaceError::BadInput("residual length must be 4p"));
    }
    let mut r = residual.to_vec();
    let mut out = Vec::new();
    let mut spe: f64 = r.iter().map(|v| v * v).sum();

    while spe > threshold && out.len() < max_flows {
        // Score every not-yet-blamed flow.
        let mut best: Option<(usize, [f64; 4], f64)> = None;
        for flow in 0..n_flows {
            if out.iter().any(|c: &FlowContribution| c.flow == flow) {
                continue;
            }
            let cols = flow_columns(flow, n_flows);
            let b = [r[cols[0]], r[cols[1]], r[cols[2]], r[cols[3]]];
            let g = normal_equations(components, m, &cols);
            let f = match solve_regularized(&g, &b, RIDGE) {
                Ok(f) => f,
                Err(_) => continue, // degenerate flow; skip
            };
            let drop: f64 = b.iter().zip(&f).map(|(bi, fi)| bi * fi).sum();
            if drop <= 0.0 {
                continue;
            }
            if best.is_none_or(|(_, _, d)| drop > d) {
                best = Some((flow, [f[0], f[1], f[2], f[3]], drop));
            }
        }
        let Some((flow, f, drop)) = best else {
            break; // nothing explains any residual — stop rather than loop
        };

        out.push(FlowContribution {
            flow,
            f,
            spe_before: spe,
            spe_drop: drop,
        });

        // r <- r - C̃ θ_k f  =  r - θ_k f + P (P_kᵀ f).
        let cols = flow_columns(flow, n_flows);
        for (j, &col) in cols.iter().enumerate() {
            r[col] -= f[j];
        }
        // pkt_f = P_kᵀ f  (m-vector).
        let mut pkt_f = vec![0.0; m];
        for (j, &col) in cols.iter().enumerate() {
            for (i, slot) in pkt_f.iter_mut().enumerate() {
                *slot += components[(col, i)] * f[j];
            }
        }
        // r += P · pkt_f.
        for row in 0..r.len() {
            let mut acc = 0.0;
            for (i, &pf) in pkt_f.iter().enumerate() {
                acc += components[(row, i)] * pf;
            }
            r[row] += acc;
        }
        spe = r.iter().map(|v| v * v).sum();
    }
    Ok(out)
}

/// The four unfolded column indices of a flow.
fn flow_columns(flow: usize, n_flows: usize) -> [usize; 4] {
    [flow, n_flows + flow, 2 * n_flows + flow, 3 * n_flows + flow]
}

/// `G = I₄ - P_k P_kᵀ` for the four rows `cols` of the axis matrix.
fn normal_equations(components: &Mat, m: usize, cols: &[usize; 4]) -> Mat {
    let mut g = Mat::identity(4);
    for a in 0..4 {
        for b in 0..4 {
            let mut dot = 0.0;
            for i in 0..m {
                dot += components[(cols[a], i)] * components[(cols[b], i)];
            }
            g[(a, b)] -= dot;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{DimSelection, SubspaceModel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds a model over correlated data and returns (model, clean row).
    fn fitted_model(p: usize, seed: u64) -> (SubspaceModel, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 4 * p;
        let t = 400;
        let gains: Vec<f64> = (0..n).map(|_| 1.0 + rng.random::<f64>()).collect();
        let x = Mat::from_fn(t, n, |i, j| {
            let phase = i as f64 / 100.0 * std::f64::consts::TAU;
            gains[j] * (5.0 + phase.sin()) + 0.05 * (rng.random::<f64>() - 0.5)
        });
        let model = SubspaceModel::fit(&x, DimSelection::Fixed(2)).unwrap();
        (model, x.row(17).to_vec())
    }

    #[test]
    fn injected_flow_is_identified() {
        let p = 9;
        let (model, mut row) = fitted_model(p, 1);
        // Displace flow 3 across its four features.
        let cols = flow_columns(3, p);
        for (j, &c) in cols.iter().enumerate() {
            row[c] += [2.0, -1.5, 1.0, 2.5][j];
        }
        let residual = model.residual(&row).unwrap();
        let found = identify_greedy(
            &residual,
            model.pca().components(),
            model.normal_dim(),
            p,
            model.threshold(0.999).unwrap(),
            4,
        )
        .unwrap();
        assert!(!found.is_empty());
        assert_eq!(found[0].flow, 3);
        assert!(found[0].spe_drop > 0.0);
        assert!(found[0].spe_before >= found[0].spe_drop);
    }

    #[test]
    fn two_colluding_flows_both_identified() {
        let p = 9;
        let (model, mut row) = fitted_model(p, 2);
        for flow in [2usize, 6] {
            let cols = flow_columns(flow, p);
            for &c in &cols {
                row[c] += 2.0;
            }
        }
        let residual = model.residual(&row).unwrap();
        let found = identify_greedy(
            &residual,
            model.pca().components(),
            model.normal_dim(),
            p,
            model.threshold(0.999).unwrap(),
            5,
        )
        .unwrap();
        let flows: Vec<usize> = found.iter().map(|c| c.flow).collect();
        assert!(flows.contains(&2), "flows blamed: {flows:?}");
        assert!(flows.contains(&6), "flows blamed: {flows:?}");
    }

    #[test]
    fn clean_row_identifies_nothing() {
        let p = 6;
        let (model, row) = fitted_model(p, 3);
        let residual = model.residual(&row).unwrap();
        let found = identify_greedy(
            &residual,
            model.pca().components(),
            model.normal_dim(),
            p,
            model.threshold(0.995).unwrap(),
            4,
        )
        .unwrap();
        assert!(found.is_empty(), "clean row blamed flows: {found:?}");
    }

    #[test]
    fn recursion_respects_max_flows() {
        let p = 8;
        let (model, mut row) = fitted_model(p, 4);
        for flow in 0..p {
            let cols = flow_columns(flow, p);
            for &c in &cols {
                row[c] += 3.0;
            }
        }
        let residual = model.residual(&row).unwrap();
        let found = identify_greedy(
            &residual,
            model.pca().components(),
            model.normal_dim(),
            p,
            0.0, // impossible threshold: only max_flows stops it
            3,
        )
        .unwrap();
        assert_eq!(found.len(), 3);
        // Each round must strictly reduce the SPE.
        for w in found.windows(2) {
            assert!(w[1].spe_before < w[0].spe_before);
        }
    }

    #[test]
    fn residual_length_validated() {
        let p = 4;
        let (model, _) = fitted_model(p, 5);
        let bad = vec![0.0; 7];
        assert!(identify_greedy(
            &bad,
            model.pca().components(),
            model.normal_dim(),
            p,
            0.1,
            2
        )
        .is_err());
    }

    #[test]
    fn normal_equations_match_brute_force() {
        let p = 5;
        let (model, _) = fitted_model(p, 6);
        let comp = model.pca().components();
        let m = model.normal_dim();
        let n = 4 * p;
        let cols = flow_columns(2, p);

        // Brute force: build C = I - P Pᵀ and compute θᵀ C θ.
        let mut c = Mat::identity(n);
        for i in 0..n {
            for j in 0..n {
                let mut dot = 0.0;
                for k in 0..m {
                    dot += comp[(i, k)] * comp[(j, k)];
                }
                c[(i, j)] -= dot;
            }
        }
        let brute = Mat::from_fn(4, 4, |a, b| c[(cols[a], cols[b])]);
        let fast = normal_equations(comp, m, &cols);
        assert!(brute.max_abs_diff(&fast).unwrap() < 1e-10);
    }
}
