//! The (multiway) subspace method for network-wide anomaly detection.
//!
//! This crate implements §4.1–4.2 of the paper:
//!
//! * [`SubspaceModel`] — the single-way subspace method of Lakhina et al.
//!   (SIGCOMM 2004), originally from statistical process control: PCA over a
//!   `t x p` measurement matrix splits each observation into a component in
//!   the low-dimensional **normal subspace** (typical variation shared by
//!   the ensemble of OD flows) and a **residual**; the squared residual norm
//!   (SPE) flags anomalies when it exceeds the **Q-statistic** threshold at
//!   confidence `1 - alpha` ([`q_statistic_threshold`], Jackson & Mudholkar
//!   1979).
//! * [`MultiwayModel`] — the paper's extension: the three-way entropy
//!   tensor `H(t, p, 4)` is unfolded into `t x 4p` (submatrices per feature
//!   normalized to unit energy so no feature dominates) and the subspace
//!   method is applied to the merged matrix, detecting correlated
//!   distributional changes across features *and* across OD flows.
//! * [`MultiwayModel::identify`] — multi-attribute identification: a greedy
//!   search for the OD flow(s) whose 4-feature contribution `θ_k f_k` best
//!   explains the residual displacement, recursing until the state drops
//!   below the detection threshold.
//!
//! The detector is deliberately split into a **fit phase** and a **score
//! phase**:
//!
//! * Fit once — from a materialized matrix ([`SubspaceModel::fit`],
//!   [`MultiwayModel::fit`]) or from a row stream without ever holding the
//!   matrix ([`SubspaceModel::fit_from_moments`], [`MultiwayFitter`]).
//! * Score cheaply — [`SubspaceModel::score_row`] /
//!   [`MultiwayModel::score_row`] evaluate one observation against a
//!   precomputed Q-threshold in `O(n·m)`, and the [`RowScorer`] /
//!   [`MultiwayScorer`] heads package a model borrow with that threshold.
//!   Batch detection replays the same score path over stored rows, so the
//!   two modes cannot disagree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detector;
mod error;
mod ident;
mod multiway;
mod qstat;

pub use detector::{Detection, DimSelection, RowScorer, SubspaceModel};
pub use error::SubspaceError;
pub use ident::FlowContribution;
pub use multiway::{MultiwayFitter, MultiwayModel, MultiwayScorer};
pub use qstat::{
    empirical_quantile, empirical_sharpness, q_statistic_threshold, q_threshold_from_power_sums,
    EmpiricalSharpness, ThresholdPolicy,
};

/// Re-export of the fit-engine selector threaded through every fit path.
pub use entromine_linalg::FitStrategy;
