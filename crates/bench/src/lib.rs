//! Benchmark support crate.
//!
//! The Criterion benchmarks live under `benches/`; this library provides
//! the tiny shared fixtures they use (pre-generated datasets sized so a
//! bench iteration is milliseconds, not minutes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use entromine::net::Topology;
use entromine::synth::{Dataset, DatasetConfig, Schedule, SyntheticNetwork};

/// A small Abilene-shaped dataset fixture: 6 hours of bins at reduced
/// traffic scale. Deterministic for a given seed.
pub fn small_abilene(seed: u64) -> Dataset {
    let cfg = DatasetConfig {
        seed,
        n_bins: 72,
        sample_rate: 100,
        traffic_scale: 0.05,
        rate_noise: 0.02,
        anonymize: false,
    };
    Dataset::clean(Topology::abilene(), cfg)
}

/// Like [`small_abilene`] but with a mixed anomaly schedule injected.
pub fn small_abilene_with_anomalies(seed: u64) -> Dataset {
    let cfg = DatasetConfig {
        seed,
        n_bins: 72,
        sample_rate: 100,
        traffic_scale: 0.05,
        rate_noise: 0.02,
        anonymize: false,
    };
    let net = SyntheticNetwork::new(Topology::abilene(), cfg.clone());
    let events = Schedule::uniform(seed ^ 0xBEEF, 1).materialize(&net);
    Dataset::generate(Topology::abilene(), cfg, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let d = small_abilene(1);
        assert_eq!(d.n_flows(), 121);
        assert_eq!(d.n_bins(), 72);
        let d = small_abilene_with_anomalies(1);
        assert!(!d.truth.is_empty());
    }
}
