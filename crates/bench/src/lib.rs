//! Benchmark support crate.
//!
//! The Criterion benchmarks live under `benches/`; this library provides
//! the tiny shared fixtures they use (pre-generated datasets sized so a
//! bench iteration is milliseconds, not minutes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use entromine::linalg::Mat;
use entromine::net::Topology;
use entromine::synth::{Dataset, DatasetConfig, Schedule, SyntheticNetwork};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic low-rank-diurnal-plus-noise traffic matrix — the shape
/// the detectors actually see. Shared by the Criterion benches and the
/// `bench_pipeline` snapshot runner so both measure the same inputs.
pub fn traffic_matrix(t: usize, n: usize, seed: u64) -> Mat {
    let mut rng = SmallRng::seed_from_u64(seed);
    let gains: Vec<f64> = (0..n).map(|_| 1.0 + 4.0 * rng.random::<f64>()).collect();
    Mat::from_fn(t, n, |i, j| {
        let phase = i as f64 / 288.0 * std::f64::consts::TAU;
        gains[j] * (5.0 + phase.sin()) + 0.3 * (rng.random::<f64>() - 0.5)
    })
}

/// A small Abilene-shaped dataset fixture: 6 hours of bins at reduced
/// traffic scale. Deterministic for a given seed.
pub fn small_abilene(seed: u64) -> Dataset {
    let cfg = DatasetConfig {
        seed,
        n_bins: 72,
        sample_rate: 100,
        traffic_scale: 0.05,
        rate_noise: 0.02,
        anonymize: false,
    };
    Dataset::clean(Topology::abilene(), cfg)
}

/// Like [`small_abilene`] but with a mixed anomaly schedule injected.
pub fn small_abilene_with_anomalies(seed: u64) -> Dataset {
    let cfg = DatasetConfig {
        seed,
        n_bins: 72,
        sample_rate: 100,
        traffic_scale: 0.05,
        rate_noise: 0.02,
        anonymize: false,
    };
    let net = SyntheticNetwork::new(Topology::abilene(), cfg.clone());
    let events = Schedule::uniform(seed ^ 0xBEEF, 1).materialize(&net);
    Dataset::generate(Topology::abilene(), cfg, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let d = small_abilene(1);
        assert_eq!(d.n_flows(), 121);
        assert_eq!(d.n_bins(), 72);
        let d = small_abilene_with_anomalies(1);
        assert!(!d.truth.is_empty());
    }
}
