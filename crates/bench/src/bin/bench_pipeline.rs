//! Perf-snapshot runner: times the streaming-pipeline hot paths and
//! writes `results/BENCH_pipeline.json` so the performance trajectory is
//! tracked across PRs (the Criterion benches give interactive numbers;
//! this bin gives a committed artifact).
//!
//! ```sh
//! cargo run --release -p entromine-bench --bin bench_pipeline [-- OUT.json] [--full-ql]
//! ```
//!
//! Measured, best-of-3 wall clock:
//!
//! * `kernel_tier` — per-kernel scalar-vs-dispatched within-run rows for
//!   the SIMD tier (`axpy`, `dot4`, the flat histogram's probe, the
//!   entropy `Σ n·log2 n` reduction), plus the CPU features detected at
//!   startup and the backend each kernel family latched.
//! * `covariance` — the blocked scoped-thread kernel against the serial
//!   row-at-a-time baseline it replaced (`Mat::covariance_serial`), on a
//!   paper-shaped `500 × 484` matrix (one week-ish of bins × `4p` unfolded
//!   entropy columns of Abilene).
//! * `gram` — the Gram product behind `Pca::fit_gram`.
//! * `sym_eigen` — the blocked tridiagonal eigensolver against the
//!   retained QL reference on the same covariance, within-run (best-of-5
//!   each): the acceptance row for the eigensolver rewrite.
//! * `fit_geant` — the headline of the partial-spectrum engine: a full
//!   PCA fit at Geant width (`4p = 1936`) under each `FitStrategy`
//!   (partial-spectrum vs Gram always; the ~50 s dense QL oracle only
//!   under `--full-ql`), with the resulting Q-thresholds cross-checked —
//!   against the oracle when it ran, against each other otherwise.
//! * `streaming_ingest` — packets offered through `StreamingGridBuilder`
//!   to finalized bins, in bins/sec and packets/sec.
//! * `ingest_combining` — the map-side combining data plane against the
//!   per-packet serial path over one feed: per-packet offers vs
//!   `offer_packets` batches vs pre-aggregated flow-record batches, with
//!   the feed's distinct-run ratio recorded so the speedup is
//!   interpretable. All paths' `FinalizedBin` outputs are asserted
//!   bit-identical before timing.
//! * `ingest_sharded` — the sharded ingest plane (`ShardedGridBuilder`)
//!   against the serial builder: per-packet serial baseline vs batched
//!   shard counts 1/2/8. The fan-out is thread-bound, so per-shard
//!   scaling only shows on multi-core hosts (`threads_available` is
//!   recorded alongside). Includes the scratch-reuse comparison: the
//!   per-shard sort buffers recycled across batches vs allocated fresh
//!   every batch.
//! * `ingest_sketched` — the bounded-memory sketched tier
//!   (`AccumulatorPolicy::Sketched`) against the exact plane: a
//!   2^20-distinct-source scale feed where the exact tier's accumulator
//!   heap blows far past the sketch's documented ceiling while the
//!   sketched plane stays under it, with the entropy error pinned inside
//!   the documented bound; plus a whole-plane per-store bound check over
//!   the abilene ingest feed at a deliberately tight budget.
//! * `block_matvec` — the subspace-iteration block multiply at Geant
//!   width: serial reference vs the scoped-thread row fan-out.
//! * `refit_warm` — the Monitor's warm-started refit path: the partial
//!   eigensolve at Geant width seeded cold (random block) vs warm (the
//!   serving model's basis), and a whole `TrainingWindow` refit cold vs
//!   warm with the per-round `RefitTrace` (downdated trimming rounds,
//!   cycles to converge) recorded. Warm and cold fits are asserted
//!   equivalent before timing.
//! * `score_plane` — the fused scoring plane against the reference
//!   project–reconstruct–residual chain it replaced on the serve path:
//!   per-row `spe_reference` vs per-row `ScorePlan` vs the batched
//!   `spe_batch` entry at Abilene (`4p = 484`) and Geant (`4p = 1936`)
//!   entropy widths, plus an Empirical calibration pass + one trimming
//!   round scored per-row-reference vs batched. Every probe row's fused
//!   SPE is asserted within 1e-10 relative of the reference (plus a
//!   rounding floor scaled by the centered energy) and the batch entry
//!   asserted bitwise equal to per-row scoring before anything is timed.
//!
//! `--refit-smoke` runs only the warm-refit comparison — a cold
//! `TrainingWindow` fit against a warm fit seeded from a serving model,
//! with their Q-thresholds asserted to agree to 1e-10 relative before
//! any number is printed — and returns; nothing is written.
//!
//! `--ingest-smoke` runs only the ingest comparison — per-packet,
//! combining, flow-record, and sharded paths, with their outputs asserted
//! bit-identical, the scratch-reuse ratio, and the sketched tier with
//! every emitted entropy asserted within its documented error bound —
//! and prints it to stdout (the CI regression probe); nothing is written.
//!
//! `--score-smoke` runs only the scoring-plane comparison — fused vs
//! reference SPEs over every probe row at both widths with the
//! equivalence asserts above, then the calibrate+trim pass — and prints
//! it to stdout (the CI regression probe); nothing is written. Under
//! `ENTROMINE_FORCE_REFERENCE_SCORE` the plan routes to the reference
//! chain, so the smoke's ratios degrade to ~1x there by design; only the
//! full run asserts the speedup gates, and only under auto dispatch.

use entromine::linalg::kernel as lk;
use entromine::linalg::{
    block_matvec, block_matvec_serial, sym_eigen, sym_eigen_ql, FitStrategy, MomentAccumulator,
    Pca, Spectrum,
};
use entromine::net::flow::{aggregate_bin, FlowRecord};
use entromine::net::{PacketHeader, Topology};
use entromine::subspace::{DimSelection, SubspaceModel};
use entromine::synth::{Dataset, DatasetConfig};
use entromine::{DiagnoserConfig, RefitTrace, TrainingWindow};
use entromine_bench::traffic_matrix;
use entromine_entropy::kernel as ek;
use entromine_entropy::{
    AccumulatorPolicy, DistributionAccumulator, FeatureHistogram, FinalizedBin, ShardedGridBuilder,
    SketchHistogram, SketchParams, StreamConfig, StreamingGridBuilder, DEFAULT_BUDGET,
};
use std::time::Instant;

/// Best-of-`reps` wall-clock milliseconds of `f`.
fn best_ms_n<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Best-of-3 wall-clock milliseconds of `f`.
fn best_ms<T>(f: impl FnMut() -> T) -> f64 {
    best_ms_n(3, f)
}

/// One sharded-ingest measurement: shard count, wall time, throughputs.
struct IngestRun {
    shards: usize,
    ms: f64,
    bins_per_sec: f64,
    packets_per_sec: f64,
}

/// Results of the ingest-plane comparison: the per-packet serial
/// baseline, the map-side combining batch paths (packet batches and
/// flow-record batches), and the sharded plane at each requested shard
/// count — all over the same traffic, all verified to finalize
/// bit-identical `FinalizedBin` rows before anything is timed.
struct IngestBench {
    flows: usize,
    bins: usize,
    packets: usize,
    /// Distinct (flow, bin, feature-tuple) groups in the feed — the
    /// packets-per-run ratio is what makes the combining speedup
    /// interpretable.
    distinct_runs: usize,
    /// Flow records in the pre-aggregated view of the same traffic.
    records: usize,
    serial_ms: f64,
    combined_ms: f64,
    records_ms: f64,
    runs: Vec<IngestRun>,
    /// Shard count the scratch-reuse comparison ran at (the widest).
    scratch_shards: usize,
    /// Sharded plane with per-shard sort/keys buffers recycled across
    /// batches (the production default).
    scratch_reuse_ms: f64,
    /// Same plane with reuse off — fresh buffers every batch, the
    /// behavior the recycling replaced.
    scratch_alloc_ms: f64,
    /// Budget the sketched-tier equivalence check ran at.
    sketch_budget: usize,
    /// Max per-store sketched-entropy error over the feed, in bits.
    sketch_err_bits: f64,
    /// Max documented per-store error bound over the feed, in bits.
    sketch_bound_bits: f64,
    burst: BurstBench,
}

/// The burst-shaped variant: the same generator's traffic with each
/// sampled packet standing for a back-to-back burst of its flow — the
/// unsampled-feed shape, where the combining ratio is real instead of
/// the synthetic sampler's ~1 packet per distinct tuple.
struct BurstBench {
    factor: usize,
    bins: usize,
    packets: usize,
    distinct_runs: usize,
    per_packet_ms: f64,
    combined_ms: f64,
}

/// Drives the per-packet serial path over the feed, collecting output.
fn ingest_per_packet(feed: &[Vec<(usize, PacketHeader)>], p: usize) -> Vec<FinalizedBin> {
    let mut grid = StreamingGridBuilder::new(StreamConfig::new(p)).unwrap();
    let mut out = Vec::new();
    for (bin, batch) in feed.iter().enumerate() {
        for (flow, pkt) in batch {
            grid.offer_packet(*flow, pkt).unwrap();
        }
        out.extend(grid.advance_watermark((bin + 1) as u64 * DatasetConfig::BIN_SECS));
    }
    out
}

/// Drives the combining batch path over the feed, collecting output.
fn ingest_combined(feed: &[Vec<(usize, PacketHeader)>], p: usize) -> Vec<FinalizedBin> {
    let mut grid = StreamingGridBuilder::new(StreamConfig::new(p)).unwrap();
    let mut out = Vec::new();
    for (bin, batch) in feed.iter().enumerate() {
        grid.offer_packets(batch).unwrap();
        out.extend(grid.advance_watermark((bin + 1) as u64 * DatasetConfig::BIN_SECS));
    }
    out
}

/// Drives the combining path with pre-aggregated flow-record batches.
fn ingest_records(rec_feed: &[Vec<(usize, FlowRecord)>], p: usize) -> Vec<FinalizedBin> {
    let mut grid = StreamingGridBuilder::new(StreamConfig::new(p)).unwrap();
    let mut out = Vec::new();
    for (bin, batch) in rec_feed.iter().enumerate() {
        grid.offer_flows(batch).unwrap();
        out.extend(grid.advance_watermark((bin + 1) as u64 * DatasetConfig::BIN_SECS));
    }
    out
}

/// Drives the sharded plane, collecting output. `scratch_reuse` toggles
/// the per-shard sort/keys scratch recycling (on by default in
/// production; off reproduces the allocate-per-batch behavior it
/// replaced).
fn ingest_sharded_with(
    feed: &[Vec<(usize, PacketHeader)>],
    p: usize,
    shards: usize,
    scratch_reuse: bool,
) -> Vec<FinalizedBin> {
    let mut grid = ShardedGridBuilder::new(StreamConfig::new(p), shards).unwrap();
    grid.set_scratch_reuse(scratch_reuse);
    let mut out = Vec::new();
    for (bin, batch) in feed.iter().enumerate() {
        grid.offer_packets(batch).unwrap();
        out.extend(grid.advance_watermark((bin + 1) as u64 * DatasetConfig::BIN_SECS));
    }
    out
}

/// Drives the sharded plane with its production defaults.
fn ingest_sharded(
    feed: &[Vec<(usize, PacketHeader)>],
    p: usize,
    shards: usize,
) -> Vec<FinalizedBin> {
    ingest_sharded_with(feed, p, shards, true)
}

/// Runs the sketched serial plane over the feed, then replays the same
/// traffic into direct per-(flow, feature) accumulator pairs — one exact
/// histogram and one sketch per store — and asserts every plane-emitted
/// entropy (a) equals direct sketch accumulation bit for bit and (b)
/// sits within the sketch's documented error bound of the exact value.
/// Returns `(max_abs_err_bits, max_bound_bits)` over every store.
fn check_sketched_ingest(
    feed: &[Vec<(usize, PacketHeader)>],
    p: usize,
    budget: usize,
) -> (f64, f64) {
    let mut plane = AccumulatorPolicy::Sketched { budget }
        .streaming(StreamConfig::new(p))
        .unwrap();
    let mut sealed = Vec::new();
    for (bin, batch) in feed.iter().enumerate() {
        plane.offer_packets(batch).unwrap();
        sealed.extend(plane.advance_watermark((bin + 1) as u64 * DatasetConfig::BIN_SECS));
    }
    assert_eq!(sealed.len(), feed.len());

    let (mut max_err, mut max_bound) = (0.0f64, 0.0f64);
    for (bin, fb) in sealed.iter().enumerate() {
        let mut exact: Vec<[FeatureHistogram; 4]> = (0..p).map(|_| Default::default()).collect();
        let mut sketch: Vec<[SketchHistogram; 4]> = (0..p)
            .map(|_| std::array::from_fn(|_| SketchHistogram::new(SketchParams { budget })))
            .collect();
        for (flow, pkt) in &feed[bin] {
            let keys = [
                pkt.src_ip.0,
                pkt.src_port as u32,
                pkt.dst_ip.0,
                pkt.dst_port as u32,
            ];
            for (k, &key) in keys.iter().enumerate() {
                exact[*flow][k].add(key);
                sketch[*flow][k].offer_n(key, 1);
            }
        }
        for flow in 0..p {
            for k in 0..4 {
                let emitted = fb.summaries[flow].entropy[k];
                let direct = sketch[flow][k].entropy();
                assert_eq!(
                    emitted.to_bits(),
                    direct.to_bits(),
                    "bin {bin} flow {flow} feature {k}: plane-emitted sketched entropy \
                     diverged from direct accumulation"
                );
                let bound = sketch[flow][k].error_bound_against(&exact[flow][k]);
                let err = (emitted - exact[flow][k].entropy()).abs();
                assert!(
                    err <= bound,
                    "bin {bin} flow {flow} feature {k}: sketched entropy error {err:.4} bits \
                     exceeds the documented bound {bound:.4}"
                );
                max_err = max_err.max(err);
                max_bound = max_bound.max(bound);
            }
        }
    }
    (max_err, max_bound)
}

/// Results of the bounded-memory scale-tier comparison: the sketched
/// plane against the exact plane on a feed wide enough (>= 1e6 distinct
/// source addresses in one bin) that the exact tier's accumulator heap
/// blows far past the sketch budget's documented ceiling.
struct SketchedBench {
    budget: usize,
    distinct_keys: usize,
    packets: usize,
    exact_ms: f64,
    sketched_ms: f64,
    exact_peak_heap: usize,
    sketched_peak_heap: usize,
    /// `4 * SketchHistogram::heap_ceiling(budget)`: the documented
    /// worst-case accumulator heap of the single open (flow, bin) cell.
    sketched_ceiling: usize,
    /// Measured srcIP entropy error of the sketched plane, in bits.
    err_bits: f64,
    /// The documented bound the error must sit under, in bits.
    bound_bits: f64,
    exact_entropy: f64,
    sketched_entropy: f64,
}

/// Benchmarks the sketched tier on the scale feed: one OD flow, one bin,
/// `1 << 20` distinct source addresses (well past any practical exact
/// budget), offered in production-sized batches.
fn bench_ingest_sketched(budget: usize) -> SketchedBench {
    let distinct: usize = 1 << 20;
    println!("sketched scale tier ({distinct} distinct source addresses, budget {budget}) ...");
    // Knuth-stride keys spread over the whole address space; each key's
    // packet count cycles 1..=8 so the count multiset is non-uniform and
    // the entropy term sum genuinely exercises the estimator (identical
    // back-to-back packets collapse in the combining path, so the
    // repeats cost runs, not probes). Ports/dst stay narrow — the memory
    // story is the srcIP store.
    let batches: Vec<Vec<(usize, PacketHeader)>> = (0..distinct)
        .collect::<Vec<_>>()
        .chunks(1 << 16)
        .map(|chunk| {
            chunk
                .iter()
                .flat_map(|&i| {
                    let key = (i as u32).wrapping_mul(2_654_435_761);
                    let pkt = PacketHeader::tcp(
                        entromine::net::Ipv4(key),
                        (i % 1021) as u16,
                        entromine::net::Ipv4(0x0A00_0001),
                        80,
                        400,
                        0,
                    );
                    std::iter::repeat_n((0usize, pkt), 1 + (i & 7))
                })
                .collect()
        })
        .collect();
    let packets: usize = batches.iter().map(Vec::len).sum();

    // Drive each tier through the policy facade; peak accumulator heap is
    // gauged while the bin is still open, right after the last batch.
    let run_tier = |policy: AccumulatorPolicy| -> (Vec<FinalizedBin>, usize) {
        let mut plane = policy.streaming(StreamConfig::new(1)).unwrap();
        for batch in &batches {
            plane.offer_packets(batch).unwrap();
        }
        let peak = plane.accumulator_heap_bytes();
        (plane.finish(), peak)
    };
    let (exact_bins, exact_peak_heap) = run_tier(AccumulatorPolicy::Exact);
    let (sketched_bins, sketched_peak_heap) = run_tier(AccumulatorPolicy::Sketched { budget });
    let sketched_ceiling = 4 * SketchHistogram::heap_ceiling(budget);
    assert!(
        sketched_peak_heap <= sketched_ceiling,
        "sketched plane heap {sketched_peak_heap} exceeded its documented ceiling \
         {sketched_ceiling}"
    );
    assert!(
        exact_peak_heap > 8 * sketched_ceiling,
        "scale feed failed to push the exact tier ({exact_peak_heap} B) well past the \
         sketch ceiling ({sketched_ceiling} B)"
    );

    // Pin the srcIP entropy error against the documented bound by direct
    // accumulation of the same key stream.
    let mut exact_hist = FeatureHistogram::new();
    let mut sketch = SketchHistogram::new(SketchParams { budget });
    for batch in &batches {
        for (_, pkt) in batch {
            exact_hist.add(pkt.src_ip.0);
            sketch.offer_n(pkt.src_ip.0, 1);
        }
    }
    let exact_entropy = exact_hist.entropy();
    let sketched_entropy = sketch.entropy();
    assert_eq!(
        sketched_entropy.to_bits(),
        sketched_bins[0].summaries[0].entropy[0].to_bits(),
        "plane-emitted srcIP entropy diverged from direct sketch accumulation"
    );
    assert_eq!(
        exact_entropy.to_bits(),
        exact_bins[0].summaries[0].entropy[0].to_bits(),
        "plane-emitted srcIP entropy diverged from direct exact accumulation"
    );
    let bound_bits = sketch.error_bound_against(&exact_hist);
    let err_bits = (sketched_entropy - exact_entropy).abs();
    assert!(
        err_bits <= bound_bits,
        "scale-feed entropy error {err_bits:.4} bits exceeds the documented bound \
         {bound_bits:.4}"
    );

    let exact_ms = best_ms_n(2, || {
        assert_eq!(run_tier(AccumulatorPolicy::Exact).0.len(), 1);
    });
    let sketched_ms = best_ms_n(2, || {
        assert_eq!(run_tier(AccumulatorPolicy::Sketched { budget }).0.len(), 1);
    });
    println!(
        "  exact    : {exact_ms:.1} ms ({:.2e} packets/s, peak heap {:.1} MiB)",
        packets as f64 / (exact_ms / 1e3),
        exact_peak_heap as f64 / (1 << 20) as f64
    );
    println!(
        "  sketched : {sketched_ms:.1} ms ({:.2e} packets/s, peak heap {:.1} KiB, \
         ceiling {:.1} KiB)",
        packets as f64 / (sketched_ms / 1e3),
        sketched_peak_heap as f64 / 1024.0,
        sketched_ceiling as f64 / 1024.0
    );
    println!(
        "  srcIP entropy: exact {exact_entropy:.4}, sketched {sketched_entropy:.4} \
         (err {err_bits:.4} <= bound {bound_bits:.4} bits)"
    );

    SketchedBench {
        budget,
        distinct_keys: distinct,
        packets,
        exact_ms,
        sketched_ms,
        exact_peak_heap,
        sketched_peak_heap,
        sketched_ceiling,
        err_bits,
        bound_bits,
        exact_entropy,
        sketched_entropy,
    }
}

/// Benchmarks the ingest planes on one shared pre-materialized feed. All
/// paths are first run once, unmeasured, and their `FinalizedBin` output
/// asserted bit-identical — the bench doubles as the CI smoke check that
/// combining is invisible in the output.
fn bench_ingest(shard_counts: &[usize]) -> IngestBench {
    // A heavier feed than the serial `streaming_ingest` snapshot: batch
    // combining amortizes its sort over per-bin batches, so the
    // comparison needs production-sized bins (~150k packets each).
    let config = DatasetConfig {
        seed: 9,
        n_bins: 10,
        sample_rate: 100,
        traffic_scale: 0.2,
        rate_noise: 0.02,
        anonymize: false,
    };
    let dataset = Dataset::clean(Topology::abilene(), config);
    let p = dataset.n_flows();
    let bins = dataset.n_bins();
    println!("ingest planes (abilene, {bins} bins, 0.2 scale) ...");
    let feed: Vec<Vec<(usize, PacketHeader)>> = (0..bins)
        .map(|bin| {
            (0..p)
                .flat_map(|flow| {
                    dataset
                        .net
                        .cell_packets(bin, flow, &[])
                        .into_iter()
                        .map(move |pkt| (flow, pkt))
                })
                .collect()
        })
        .collect();
    let packets: usize = feed.iter().map(Vec::len).sum();

    // The same traffic as per-cell aggregated flow records — the
    // NetFlow-shaped front door — and the distinct-run census.
    let rec_feed: Vec<Vec<(usize, FlowRecord)>> = (0..bins)
        .map(|bin| {
            (0..p)
                .flat_map(|flow| {
                    let cell = dataset.net.cell_packets(bin, flow, &[]);
                    aggregate_bin(&cell).into_iter().map(move |r| (flow, r))
                })
                .collect()
        })
        .collect();
    let records: usize = rec_feed.iter().map(Vec::len).sum();
    let distinct_per_bin: Vec<usize> = feed
        .iter()
        .map(|batch| {
            let set: std::collections::HashSet<(usize, u32, u16, u32, u16)> = batch
                .iter()
                .map(|(f, pk)| (*f, pk.src_ip.0, pk.src_port, pk.dst_ip.0, pk.dst_port))
                .collect();
            set.len()
        })
        .collect();
    let distinct_runs: usize = distinct_per_bin.iter().sum();

    // Equivalence gate before any timing: every path must emit the
    // per-packet serial builder's rows bit for bit.
    let reference = ingest_per_packet(&feed, p);
    assert_eq!(reference.len(), bins);
    assert_eq!(
        reference,
        ingest_combined(&feed, p),
        "combining batch path diverged from per-packet offers"
    );
    assert_eq!(
        reference,
        ingest_records(&rec_feed, p),
        "flow-record combining path diverged from per-packet offers"
    );
    for &shards in shard_counts {
        assert_eq!(
            reference,
            ingest_sharded(&feed, p, shards),
            "{shards}-shard plane diverged from per-packet offers"
        );
    }

    let serial_ms = best_ms(|| {
        assert_eq!(ingest_per_packet(&feed, p).len(), bins);
    });
    println!(
        "  per-packet serial : {serial_ms:.1} ms ({:.2e} packets/s)",
        packets as f64 / (serial_ms / 1e3)
    );
    let combined_ms = best_ms(|| {
        assert_eq!(ingest_combined(&feed, p).len(), bins);
    });
    println!(
        "  combined batches  : {combined_ms:.1} ms ({:.2e} packets/s, {:.2}x per-packet)",
        packets as f64 / (combined_ms / 1e3),
        serial_ms / combined_ms
    );
    let records_ms = best_ms(|| {
        assert_eq!(ingest_records(&rec_feed, p).len(), bins);
    });
    println!(
        "  flow-record batches: {records_ms:.1} ms ({:.2e} represented packets/s, {} records)",
        packets as f64 / (records_ms / 1e3),
        records
    );

    let runs = shard_counts
        .iter()
        .map(|&shards| {
            let ms = best_ms(|| {
                assert_eq!(ingest_sharded(&feed, p, shards).len(), bins);
            });
            let run = IngestRun {
                shards,
                ms,
                bins_per_sec: bins as f64 / (ms / 1e3),
                packets_per_sec: packets as f64 / (ms / 1e3),
            };
            println!(
                "  {shards} shard(s): {ms:.1} ms ({:.2e} packets/s, {:.2}x serial)",
                run.packets_per_sec,
                serial_ms / ms
            );
            run
        })
        .collect();

    // Scratch-buffer reuse: the per-shard sort/keys buffers are recycled
    // across batches by default; turning reuse off reproduces the
    // allocate-per-batch plane it replaced. Same feed, widest shard
    // count, output equivalence gated like every other path.
    let scratch_shards = *shard_counts.last().unwrap();
    assert_eq!(
        reference,
        ingest_sharded_with(&feed, p, scratch_shards, false),
        "scratch-reuse-off plane diverged from per-packet offers"
    );
    let scratch_reuse_ms = best_ms(|| {
        assert_eq!(
            ingest_sharded_with(&feed, p, scratch_shards, true).len(),
            bins
        );
    });
    let scratch_alloc_ms = best_ms(|| {
        assert_eq!(
            ingest_sharded_with(&feed, p, scratch_shards, false).len(),
            bins
        );
    });
    println!(
        "  scratch reuse ({scratch_shards} shards): {scratch_reuse_ms:.1} ms vs \
         allocate-per-batch {scratch_alloc_ms:.1} ms ({:.2}x)",
        scratch_alloc_ms / scratch_reuse_ms
    );

    // Sketched tier over the same feed: every plane-emitted entropy must
    // sit within the documented per-store error bound of the exact tier
    // (and match direct sketch accumulation bit for bit). The budget is
    // deliberately small so the larger cells genuinely subsample.
    let sketch_budget = 1024;
    let (sketch_err_bits, sketch_bound_bits) = check_sketched_ingest(&feed, p, sketch_budget);
    println!(
        "  sketched tier (budget {sketch_budget}): max entropy err {sketch_err_bits:.4} bits \
         (documented bound <= {sketch_bound_bits:.4})"
    );

    // Burst-shaped feed: every sampled packet expanded into a burst of 8
    // identical-tuple packets (fewer bins to bound the feed's memory).
    const BURST: usize = 8;
    let burst_bins = 4.min(bins);
    let burst_feed: Vec<Vec<(usize, PacketHeader)>> = feed[..burst_bins]
        .iter()
        .map(|batch| {
            batch
                .iter()
                .flat_map(|&(flow, pkt)| std::iter::repeat_n((flow, pkt), BURST))
                .collect()
        })
        .collect();
    let burst_packets: usize = burst_feed.iter().map(Vec::len).sum();
    let burst_distinct: usize = distinct_per_bin[..burst_bins].iter().sum();
    println!("  burst x{BURST} feed ({burst_bins} bins, {burst_packets} packets) ...");
    assert_eq!(
        ingest_per_packet(&burst_feed, p),
        ingest_combined(&burst_feed, p),
        "combining diverged from per-packet offers on the burst feed"
    );
    let burst_pp_ms = best_ms(|| {
        assert_eq!(ingest_per_packet(&burst_feed, p).len(), burst_bins);
    });
    let burst_cb_ms = best_ms(|| {
        assert_eq!(ingest_combined(&burst_feed, p).len(), burst_bins);
    });
    println!(
        "  burst per-packet {burst_pp_ms:.1} ms ({:.2e} pkts/s) vs combined {burst_cb_ms:.1} ms \
         ({:.2e} pkts/s, {:.2}x)",
        burst_packets as f64 / (burst_pp_ms / 1e3),
        burst_packets as f64 / (burst_cb_ms / 1e3),
        burst_pp_ms / burst_cb_ms
    );

    IngestBench {
        flows: p,
        bins,
        packets,
        distinct_runs,
        records,
        serial_ms,
        combined_ms,
        records_ms,
        runs,
        scratch_shards,
        scratch_reuse_ms,
        scratch_alloc_ms,
        sketch_budget,
        sketch_err_bits,
        sketch_bound_bits,
        burst: BurstBench {
            factor: BURST,
            bins: burst_bins,
            packets: burst_packets,
            distinct_runs: burst_distinct,
            per_packet_ms: burst_pp_ms,
            combined_ms: burst_cb_ms,
        },
    }
}

/// Deterministic synthetic window feed for the warm-refit comparison:
/// per-flow gains, a slow diurnal phase, hash jitter, and (optionally)
/// one spiked bin so the trimming round has something to flag. RNG-free,
/// so repeated calls with the same arguments build bit-identical windows.
fn refit_window(
    p: usize,
    bins: std::ops::Range<usize>,
    spike_bin: Option<usize>,
) -> TrainingWindow {
    let mut w = TrainingWindow::new(p, 64, 16).unwrap();
    let gain = |i: usize| 1.0 + ((i * 37 + 11) % 101) as f64 / 101.0;
    for bin in bins {
        let phase = (bin as f64 / 48.0) * std::f64::consts::TAU;
        let jit = |i: usize| {
            let x = (bin as u64)
                .wrapping_mul(0x5851_F42D_4C95_7F2D)
                .wrapping_add((i as u64).wrapping_mul(0x1405_7B7E_F767_814F));
            ((x >> 33) % 1009) as f64 / 1009.0
        };
        let spike = if spike_bin == Some(bin) { 6.0 } else { 0.0 };
        let bytes: Vec<f64> = (0..p)
            .map(|i| {
                1e5 * gain(i) * (1.0 + 0.1 * phase.sin())
                    + 300.0 * jit(i)
                    + if i == 3 { spike * 1e5 } else { 0.0 }
            })
            .collect();
        let packets: Vec<f64> = bytes.iter().map(|b| b / 100.0).collect();
        let entropy: Vec<f64> = (0..4 * p)
            .map(|i| {
                gain(i % p) * (2.0 + 0.2 * phase.cos())
                    + 0.02 * jit(i)
                    + if i % p == 3 { spike } else { 0.0 }
            })
            .collect();
        w.push_bin(bin, &bytes, &packets, &entropy).unwrap();
    }
    w
}

/// Cold vs warm `TrainingWindow` refit with the per-round traces kept.
struct RefitWindowBench {
    flows: usize,
    cold_ms: f64,
    warm_ms: f64,
    cold_trace: RefitTrace,
    warm_trace: RefitTrace,
    threshold_rel_max: f64,
}

/// Times a cold window fit against a warm fit seeded from a serving
/// model one slide earlier, over the same 64-bin window with one spiked
/// bin (so the trimming round exercises the moment downdate). Asserts
/// the two fits' Q-thresholds agree to 1e-10 relative — and that the
/// warm trace actually took the warm-seed and downdate paths — before
/// returning, so a correctness regression fails the bench rather than
/// skewing a number.
fn bench_refit_window(p: usize, reps: usize) -> RefitWindowBench {
    // Pin the partial engine: it is what the Monitor's Auto strategy
    // dispatches to at production widths, and the only engine with a
    // warm-seeded eigensolve (the dense fallbacks are cold by design).
    let config = DiagnoserConfig {
        dim: DimSelection::Fixed(10),
        strategy: FitStrategy::Partial,
        refit_rounds: 1,
        ..DiagnoserConfig::default()
    };
    let serving = refit_window(p, 0..64, None).fit(&config).unwrap();
    let target = refit_window(p, 16..80, Some(40));
    let mut cold = None;
    let cold_ms = best_ms_n(reps, || {
        cold = Some(target.fit_warm(&config, None).unwrap())
    });
    let mut warm = None;
    let warm_ms = best_ms_n(reps, || {
        warm = Some(target.fit_warm(&config, Some(&serving)).unwrap());
    });
    let (cold_fit, cold_trace) = cold.unwrap();
    let (warm_fit, warm_trace) = warm.unwrap();
    let rel = |w: f64, c: f64| ((w - c) / c).abs();
    let alpha = config.alpha;
    let threshold_rel_max = [
        rel(
            warm_fit.bytes_model().threshold(alpha).unwrap(),
            cold_fit.bytes_model().threshold(alpha).unwrap(),
        ),
        rel(
            warm_fit.packets_model().threshold(alpha).unwrap(),
            cold_fit.packets_model().threshold(alpha).unwrap(),
        ),
        rel(
            warm_fit.entropy_model().threshold(alpha).unwrap(),
            cold_fit.entropy_model().threshold(alpha).unwrap(),
        ),
    ]
    .into_iter()
    .fold(0.0, f64::max);
    assert!(
        threshold_rel_max <= 1e-10,
        "warm window refit drifted from the cold spec: max Q-threshold rel err {threshold_rel_max:.2e}"
    );
    assert!(
        warm_trace.any_warm(),
        "partial-strategy warm refit must seed from the serving basis"
    );
    assert!(
        warm_trace.rounds.iter().any(|r| r.downdated),
        "the warm trimming round must take the downdate path on this feed"
    );
    RefitWindowBench {
        flows: p,
        cold_ms,
        warm_ms,
        cold_trace,
        warm_trace,
        threshold_rel_max,
    }
}

/// `RefitTrace` rounds as a JSON array body.
fn rounds_json(trace: &RefitTrace) -> String {
    trace
        .rounds
        .iter()
        .map(|r| {
            format!(
                "{{ \"training_bins\": {}, \"flagged_bins\": {}, \"warm_start\": {}, \
                 \"downdated\": {}, \"cycles\": {}, \"ms\": {:.3} }}",
                r.training_bins, r.flagged_bins, r.warm_start, r.downdated, r.cycles, r.ms
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// One width's scoring comparison: the reference
/// project–reconstruct–residual chain vs the fused plan, per-row and
/// batched, over the same probe rows in the same process.
struct ScorePlaneWidth {
    name: &'static str,
    cols: usize,
    m: usize,
    rows: usize,
    reference_ms: f64,
    plan_ms: f64,
    batch_ms: f64,
    max_rel_err: f64,
    guard_fallbacks: usize,
}

/// Results of the scoring-plane comparison: per-width serve-path rows
/// plus the Empirical-calibration-and-trim pass at Geant width.
struct ScorePlaneBench {
    widths: Vec<ScorePlaneWidth>,
    calib_cols: usize,
    calib_rows: usize,
    calib_reference_ms: f64,
    calib_batch_ms: f64,
    calib_threshold_rel: f64,
}

/// Times the fused scoring plane against the reference chain it
/// replaced, at Abilene (484) and Geant (1936) entropy widths: per-row
/// `spe_reference` vs per-row plan vs `spe_batch`, best-of-`reps`
/// within-run, plus an Empirical calibration (score every training row,
/// sort, take the quantile) and one trimming round (re-score every row
/// against the threshold) reference vs batched at Geant width. Before
/// any number is taken, every probe row's fused SPE is asserted within
/// 1e-10 relative of the reference (plus a rounding floor scaled by the
/// centered energy `‖x−μ‖²`, which is what the norm identity's
/// subtraction is conditioned on), the batch entry is asserted bitwise
/// equal to per-row scoring, and the two calibrate+trim passes are
/// asserted to land the same threshold and the same flag set — so a
/// scoring regression fails the bench rather than skewing a number.
fn bench_score_plane(reps: usize) -> ScorePlaneBench {
    let (t, m) = (300usize, 10usize);
    let mut widths = Vec::new();
    let mut calib = None;
    for (name, cols) in [("abilene", 484usize), ("geant", 1936)] {
        let x = traffic_matrix(t, cols, 0x5C09E ^ (cols as u64));
        let model =
            SubspaceModel::fit_with(&x, DimSelection::Fixed(m), FitStrategy::Partial).unwrap();
        let plan = model.pca().score_plan(model.normal_dim()).unwrap();
        let rows: Vec<&[f64]> = (0..t).map(|i| x.row(i)).collect();

        // -- equivalence before timing --
        let mut max_rel = 0.0f64;
        let mut guard_fallbacks = 0usize;
        for row in &rows {
            let reference = model.pca().spe_reference(row, m).unwrap();
            let (fused, fell_back) = plan.spe_checked(row).unwrap();
            guard_fallbacks += usize::from(fell_back);
            let c2: f64 = row
                .iter()
                .zip(model.pca().mean())
                .map(|(v, mu)| (v - mu) * (v - mu))
                .sum();
            let tol = 1e-10 * reference.abs() + 1e-13 * c2;
            assert!(
                (fused - reference).abs() <= tol,
                "fused SPE drifted from the reference chain at {name} width: \
                 fused {fused} vs reference {reference} (c2 {c2})"
            );
            if reference != 0.0 {
                max_rel = max_rel.max(((fused - reference) / reference).abs());
            }
        }
        let mut batch = Vec::new();
        model.spe_batch(rows.iter().copied(), &mut batch).unwrap();
        for (row, &b) in rows.iter().zip(&batch) {
            assert_eq!(
                model.spe(row).unwrap().to_bits(),
                b.to_bits(),
                "batch and per-row scoring must be the same arithmetic ({name})"
            );
        }

        // -- serve path: per-row reference vs per-row plan vs batch --
        let reference_ms = best_ms_n(reps, || {
            let mut acc = 0.0;
            for row in &rows {
                acc += model.pca().spe_reference(row, m).unwrap();
            }
            acc
        });
        let plan_ms = best_ms_n(reps, || {
            let mut acc = 0.0;
            for row in &rows {
                acc += model.spe(row).unwrap();
            }
            acc
        });
        let mut out = Vec::new();
        let batch_ms = best_ms_n(reps, || {
            model.spe_batch(rows.iter().copied(), &mut out).unwrap();
            out.last().copied()
        });
        widths.push(ScorePlaneWidth {
            name,
            cols,
            m,
            rows: rows.len(),
            reference_ms,
            plan_ms,
            batch_ms,
            max_rel_err: max_rel,
            guard_fallbacks,
        });

        if cols != 1936 {
            continue;
        }
        // -- calibration + one trimming round at Geant width --
        // Mirrors what Empirical calibration and a SuspicionGate trim
        // scan pay per model: score every training row, sort, take the
        // 0.999 quantile, then re-score every row against it.
        let quantile_idx = ((rows.len() - 1) as f64 * 0.999).ceil() as usize;
        let reference_pass = || {
            let mut spes: Vec<f64> = rows
                .iter()
                .map(|row| model.pca().spe_reference(row, m).unwrap())
                .collect();
            spes.sort_unstable_by(f64::total_cmp);
            let thr = spes[quantile_idx];
            let flags: Vec<bool> = rows
                .iter()
                .map(|row| model.pca().spe_reference(row, m).unwrap() > thr)
                .collect();
            (thr, flags)
        };
        let mut spes = Vec::new();
        let mut sorted = Vec::new();
        let mut batch_pass = || {
            model.spe_batch(rows.iter().copied(), &mut spes).unwrap();
            sorted.clear();
            sorted.extend_from_slice(&spes);
            sorted.sort_unstable_by(f64::total_cmp);
            let thr = sorted[quantile_idx];
            model.spe_batch(rows.iter().copied(), &mut spes).unwrap();
            let flags: Vec<bool> = spes.iter().map(|&s| s > thr).collect();
            (thr, flags)
        };
        let (ref_thr, ref_flags) = reference_pass();
        let (batch_thr, batch_flags) = batch_pass();
        let calib_threshold_rel = ((batch_thr - ref_thr) / ref_thr).abs();
        assert!(
            calib_threshold_rel <= 1e-10,
            "batched calibration drifted from the reference pass: \
             threshold rel err {calib_threshold_rel:.2e}"
        );
        assert_eq!(
            ref_flags, batch_flags,
            "batched trimming round must flag exactly the reference rows"
        );
        let calib_reference_ms = best_ms_n(reps, reference_pass);
        let calib_batch_ms = best_ms_n(reps, &mut batch_pass);
        calib = Some((
            rows.len(),
            calib_reference_ms,
            calib_batch_ms,
            calib_threshold_rel,
        ));
    }
    let (calib_rows, calib_reference_ms, calib_batch_ms, calib_threshold_rel) =
        calib.expect("the Geant width always runs");
    ScorePlaneBench {
        widths,
        calib_cols: 1936,
        calib_rows,
        calib_reference_ms,
        calib_batch_ms,
        calib_threshold_rel,
    }
}

/// Results of the fault-injection probe: the no-fault bitwise pin plus
/// measured recovery latencies for the two canonical fault storms.
struct FaultRecoveryBench {
    flows: usize,
    total_bins: usize,
    /// Wall time of the clean feed observed directly (no injector).
    direct_ms: f64,
    /// Same feed wrapped in a `FaultPlan::none()` injector — the pin run
    /// asserts the verdicts are bit-identical before timing, so this
    /// ratio is the harness's honest overhead.
    noop_ms: f64,
    /// Garbage storm: consecutive NaN-corrupted bins (every one
    /// quarantined; the model goes stale past the budget and serves
    /// Degraded).
    storm_bins: usize,
    /// Bins served in the Degraded state during/after the storm.
    degraded_bins: usize,
    /// Clean bins from the end of the storm until the refreshed model
    /// returned the monitor to Fitted.
    storm_recovery_bins: usize,
    /// Refit-poisoning storm: huge-but-finite rows that pass every
    /// finiteness gate, get absorbed, and overflow the window's moments
    /// so every refit fails until the poisoned chunks roll out.
    poison_bins: usize,
    /// Failed refit attempts along the exponential backoff chain.
    poison_failed_refits: u64,
    /// Bins from the last poisoned bin until the healing model swap.
    poison_recovery_bins: usize,
}

/// Drives a lifecycle monitor through the fault-injection harness: pins
/// the `FaultPlan::none()` wrap as bitwise invisible, then measures how
/// many bins the monitor needs to recover from (a) a quarantine storm
/// that degrades the serving model past its staleness budget and (b) a
/// refit-poisoning storm that makes every fit fail until the window
/// heals. Both latencies are deterministic properties of the lifecycle
/// config (refit cadence, window roll, retry backoff), which is exactly
/// why they belong in the snapshot: a regression here means the
/// degradation layer changed, not that the host got slower.
fn bench_fault_recovery() -> FaultRecoveryBench {
    use entromine::{
        FaultInjector, FaultKind, FaultPlan, GarbageKind, Monitor, MonitorConfig, MonitorState,
        RetryPolicy, Verdict,
    };

    let p = 16;
    let total_bins = 200;
    let config = MonitorConfig {
        diagnoser: DiagnoserConfig {
            dim: DimSelection::Fixed(4),
            refit_rounds: 0,
            ..Default::default()
        },
        warmup_bins: 24,
        window_bins: 48,
        chunk_bins: 8,
        refit_interval: Some(8),
        drift: None,
        retry: RetryPolicy::default(),
        staleness_budget: Some(16),
    };
    // Synthetic diurnal rows: a shared seasonal mode plus deterministic
    // per-flow jitter (same fixture the chaos suite drives).
    let rows = |bin: usize| {
        let phase = (bin as f64 / 48.0) * std::f64::consts::TAU;
        let jitter = |i: usize| ((bin * 31 + i * 17) % 101) as f64 / 101.0;
        let bytes: Vec<f64> = (0..p)
            .map(|i| 1e5 * (1.0 + 0.1 * phase.sin()) + 300.0 * jitter(i))
            .collect();
        let packets: Vec<f64> = bytes.iter().map(|b| b / 100.0).collect();
        let entropy: Vec<f64> = (0..4 * p)
            .map(|i| 2.0 + 0.2 * phase.cos() + 0.02 * jitter(i))
            .collect();
        (bytes, packets, entropy)
    };
    // A run's comparable bits: verdict discriminant + SPE payloads.
    let fingerprint = |m: &mut Monitor, through_injector: bool| -> Vec<(usize, u8, u64)> {
        let mut inj = FaultInjector::new(&FaultPlan::none());
        let mut out = Vec::with_capacity(total_bins);
        for bin in 0..total_bins {
            let (b, pk, e) = rows(bin);
            let step = if through_injector {
                let mut deliveries = inj.deliver_rows(bin, &b, &pk, &e);
                assert_eq!(deliveries.len(), 1, "no-fault plan must deliver 1:1");
                let d = deliveries.pop().unwrap();
                assert!(!d.faulted);
                m.observe_rows(d.bin, &d.bytes, &d.packets, &d.entropy)
                    .expect("observe")
            } else {
                m.observe_rows(bin, &b, &pk, &e).expect("observe")
            };
            let (tag, bits) = match &step.verdict {
                Verdict::Warmup { remaining } => (0u8, *remaining as u64),
                Verdict::Clean => (1, 0),
                Verdict::Anomalous(d) => (2, d.entropy_spe.to_bits()),
                Verdict::Quarantined => (3, 0),
            };
            out.push((step.bin, tag, bits));
        }
        out
    };
    let mut direct = Monitor::new(p, config).expect("monitor");
    let mut wrapped = Monitor::new(p, config).expect("monitor");
    assert_eq!(
        fingerprint(&mut direct, false),
        fingerprint(&mut wrapped, true),
        "FaultPlan::none() must be bitwise invisible"
    );
    assert_eq!(direct.state(), wrapped.state());

    let direct_ms = best_ms(|| {
        let mut m = Monitor::new(p, config).expect("monitor");
        fingerprint(&mut m, false).len()
    });
    let noop_ms = best_ms(|| {
        let mut m = Monitor::new(p, config).expect("monitor");
        fingerprint(&mut m, true).len()
    });

    // -- garbage storm: NaN bins 60..80 (storm > staleness budget) -------
    let storm = 60..80usize;
    let storm_bins = storm.len();
    let plan = FaultPlan::default();
    let plan = storm.clone().fold(plan, |plan, bin| {
        plan.with(bin, FaultKind::GarbageRows(GarbageKind::Nan))
    });
    let mut inj = FaultInjector::new(&plan);
    let mut m = Monitor::new(p, config).expect("monitor");
    let mut degraded_bins = 0usize;
    let mut refitted_at = None;
    for bin in 0..total_bins {
        let (b, pk, e) = rows(bin);
        for d in inj.deliver_rows(bin, &b, &pk, &e) {
            let step = m
                .observe_rows(d.bin, &d.bytes, &d.packets, &d.entropy)
                .expect("observe");
            assert_eq!(
                matches!(step.verdict, Verdict::Quarantined),
                storm.contains(&bin)
            );
        }
        if m.state() == MonitorState::Degraded {
            degraded_bins += 1;
        }
        if bin >= storm.end && refitted_at.is_none() && m.state() == MonitorState::Fitted {
            refitted_at = Some(bin);
        }
    }
    assert_eq!(m.quarantined_bins(), storm_bins as u64);
    assert_eq!(m.state(), MonitorState::Fitted);
    assert!(degraded_bins > 0, "a 20-bin storm must outlive the budget");
    let storm_recovery_bins = refitted_at.expect("storm recovery") - storm.end;
    assert!(
        storm_recovery_bins <= config.refit_interval.unwrap(),
        "degraded serving must end within one refit interval of clean data"
    );

    // -- refit poisoning: huge finite rows, bins 60..64 ------------------
    let poison = 60..64usize;
    let poison_bins = poison.len();
    let plan = poison.clone().fold(FaultPlan::default(), |plan, bin| {
        plan.with(bin, FaultKind::GarbageRows(GarbageKind::HugeFinite))
    });
    let mut inj = FaultInjector::new(&plan);
    let mut m = Monitor::new(p, config).expect("monitor");
    let mut healed_at = None;
    for bin in 0..total_bins {
        let (b, pk, e) = rows(bin);
        for d in inj.deliver_rows(bin, &b, &pk, &e) {
            let step = m
                .observe_rows(d.bin, &d.bytes, &d.packets, &d.entropy)
                .expect("observe");
            if let Some(refit) = &step.refit {
                if bin >= poison.end
                    && healed_at.is_none()
                    && matches!(refit.outcome, entromine::RefitOutcome::Swapped)
                {
                    healed_at = Some(bin);
                }
            }
        }
    }
    let health = m.health();
    assert_eq!(health.state, MonitorState::Fitted);
    assert_eq!(health.consecutive_refit_failures, 0);
    assert!(
        health.failed_refits > 0,
        "huge rows must actually poison refits for this probe to measure anything"
    );
    let poison_recovery_bins = healed_at.expect("poison recovery") - (poison.end - 1);

    FaultRecoveryBench {
        flows: p,
        total_bins,
        direct_ms,
        noop_ms,
        storm_bins,
        degraded_bins,
        storm_recovery_bins,
        poison_bins,
        poison_failed_refits: health.failed_refits,
        poison_recovery_bins,
    }
}

/// Console lines for the fault-recovery probe, shared by the full run
/// and `--fault-smoke`.
fn print_fault_recovery(fr: &FaultRecoveryBench) {
    println!(
        "  no-fault pin ({} flows, {} bins): direct {:.1} ms vs wrapped {:.1} ms \
         ({:.3}x overhead), verdicts bit-identical",
        fr.flows,
        fr.total_bins,
        fr.direct_ms,
        fr.noop_ms,
        fr.noop_ms / fr.direct_ms,
    );
    println!(
        "  garbage storm ({} NaN bins): {} bins served Degraded, back to Fitted {} bins \
         after the storm",
        fr.storm_bins, fr.degraded_bins, fr.storm_recovery_bins,
    );
    println!(
        "  refit poisoning ({} huge-finite bins): {} failed refits along the backoff chain, \
         healing swap {} bins after the last poisoned bin",
        fr.poison_bins, fr.poison_failed_refits, fr.poison_recovery_bins,
    );
}

/// Per-width `score_plane` console lines, shared by the full run and
/// `--score-smoke`.
fn print_score_plane(sp: &ScorePlaneBench) {
    for w in &sp.widths {
        println!(
            "  {} ({} cols, m = {}, {} rows): reference {:.2} ms, plan {:.2} ms ({:.2}x), \
             batch {:.2} ms ({:.2}x), max rel err {:.2e}, {} guard fallbacks",
            w.name,
            w.cols,
            w.m,
            w.rows,
            w.reference_ms,
            w.plan_ms,
            w.reference_ms / w.plan_ms,
            w.batch_ms,
            w.reference_ms / w.batch_ms,
            w.max_rel_err,
            w.guard_fallbacks,
        );
    }
    println!(
        "  calibrate+trim ({} cols, {} rows): reference {:.2} ms vs batch {:.2} ms ({:.2}x), \
         threshold rel err {:.2e}",
        sp.calib_cols,
        sp.calib_rows,
        sp.calib_reference_ms,
        sp.calib_batch_ms,
        sp.calib_reference_ms / sp.calib_batch_ms,
        sp.calib_threshold_rel,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--refit-smoke") {
        // CI probe: one cold and one warm window refit at Abilene width
        // (121 OD flows, 484 entropy columns), printed to the job log,
        // written nowhere. bench_refit_window asserts warm and cold
        // Q-thresholds agree to 1e-10 relative — and that the warm fit
        // really took the warm-seed and downdate paths — before timing.
        let b = bench_refit_window(121, 1);
        println!(
            "refit smoke ({} flows): cold {:.1} ms vs warm {:.1} ms ({:.2}x), \
             max Q-threshold rel err {:.2e} (gate 1e-10)",
            b.flows,
            b.cold_ms,
            b.warm_ms,
            b.cold_ms / b.warm_ms,
            b.threshold_rel_max,
        );
        for (label, trace) in [("cold", &b.cold_trace), ("warm", &b.warm_trace)] {
            for (i, r) in trace.rounds.iter().enumerate() {
                println!(
                    "  {label} round {i}: {} bins ({} flagged), warm_start {}, \
                     downdated {}, {} cycles, {:.1} ms",
                    r.training_bins, r.flagged_bins, r.warm_start, r.downdated, r.cycles, r.ms,
                );
            }
        }
        println!("refit smoke: warm and cold window fits verified equivalent");
        return;
    }
    if args.iter().any(|a| a == "--ingest-smoke") {
        // CI probe: per-packet vs combining vs sharded over one feed,
        // printed to the job log, written nowhere. bench_ingest itself
        // asserts the three paths' FinalizedBin outputs are bit-identical
        // before timing, so a combining regression fails the job rather
        // than skewing a number.
        let ingest = bench_ingest(&[1, 8]);
        let one = ingest.runs.iter().find(|r| r.shards == 1).unwrap();
        let eight = ingest.runs.iter().find(|r| r.shards == 8).unwrap();
        println!(
            "ingest smoke: per-packet {:.1} ms | combined {:.1} ms ({:.2}x) | records {:.1} ms \
             | 1 shard {:.1} ms | 8 shards {:.1} ms \
             (8-vs-1 {:.2}x, 8-vs-serial {:.2}x, {} threads available)",
            ingest.serial_ms,
            ingest.combined_ms,
            ingest.serial_ms / ingest.combined_ms,
            ingest.records_ms,
            one.ms,
            eight.ms,
            one.ms / eight.ms,
            ingest.serial_ms / eight.ms,
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        );
        println!(
            "ingest smoke (burst x{}): per-packet {:.1} ms vs combined {:.1} ms ({:.2}x)",
            ingest.burst.factor,
            ingest.burst.per_packet_ms,
            ingest.burst.combined_ms,
            ingest.burst.per_packet_ms / ingest.burst.combined_ms,
        );
        println!(
            "ingest smoke (scratch reuse, {} shards): {:.1} ms reuse vs {:.1} ms \
             allocate-per-batch ({:.2}x)",
            ingest.scratch_shards,
            ingest.scratch_reuse_ms,
            ingest.scratch_alloc_ms,
            ingest.scratch_alloc_ms / ingest.scratch_reuse_ms,
        );
        println!(
            "ingest smoke (sketched, budget {}): max entropy err {:.4} bits within the \
             documented bound {:.4}",
            ingest.sketch_budget, ingest.sketch_err_bits, ingest.sketch_bound_bits,
        );
        println!("ingest smoke: per-packet, combined, flow-record, and sharded outputs verified bit-identical; sketched entropies verified within the documented error bound");
        return;
    }
    if args.iter().any(|a| a == "--score-smoke") {
        // CI probe: the fused scoring plane vs the reference
        // project–reconstruct–residual chain at Abilene and Geant entropy
        // widths, printed to the job log, written nowhere.
        // bench_score_plane asserts every probe row's fused SPE within
        // 1e-10 relative of the reference (plus the centered-energy
        // rounding floor), batch scoring bitwise equal to per-row, and
        // the batched calibrate+trim pass landing the reference threshold
        // and flag set — all before timing. The speedup gates live in the
        // full run only: under ENTROMINE_FORCE_REFERENCE_SCORE the plan
        // routes to the reference chain and these ratios read ~1x.
        println!("score smoke (reference vs plan vs batch) ...");
        let sp = bench_score_plane(1);
        print_score_plane(&sp);
        println!("score smoke: fused, batched, and reference scoring verified equivalent");
        return;
    }
    if args.iter().any(|a| a == "--fault-smoke") {
        // CI probe: the fault-injection harness against a live lifecycle
        // monitor, printed to the job log, written nowhere.
        // bench_fault_recovery asserts the FaultPlan::none() wrap is
        // bitwise invisible and that both storm recoveries landed inside
        // their deterministic bounds before reporting any number.
        println!("fault smoke (no-op pin, garbage storm, refit poisoning) ...");
        let fr = bench_fault_recovery();
        print_fault_recovery(&fr);
        println!("fault smoke: no-fault wrap verified bitwise invisible; recovery latencies within lifecycle bounds");
        return;
    }
    let run_full_ql = args.iter().any(|a| a == "--full-ql");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "results/BENCH_pipeline.json".to_string());
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // -- kernel tier: per-kernel scalar vs dispatched, within-run --------
    // Every row below times the pinned scalar reference and the dispatched
    // backend in the same process through the explicit `*_on` seams, so
    // the ratios are immune to host-load drift between runs. The fused
    // (FMA) tier has no per-kernel scalar twin — it is measured end to end
    // by the sym_eigen-vs-QL row further down.
    let feats = lk::cpu_features();
    let active = lk::active_backend();
    let fused_tier = if lk::fused_active() {
        "avx2+fma"
    } else {
        "scalar"
    };
    let term_sum_backend = if matches!(active, lk::Backend::Avx2) {
        "avx2"
    } else {
        "scalar"
    };
    println!(
        "kernel tier: active backend {} (fused tier {fused_tier}, forced_scalar {})",
        active.name(),
        lk::forced_scalar(),
    );
    // Deterministic operands; 4 KiB-class vectors so the kernels are
    // measured, not DRAM.
    let mut state = 0x9E37_79B9_97F4_A7C5u64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let kn = 4096usize;
    let kx: Vec<f64> = (0..kn).map(|_| next()).collect();
    let ky: Vec<f64> = (0..kn).map(|_| next()).collect();
    let kernel_iters = 20_000usize;
    let axpy_row = |backend: lk::Backend| {
        best_ms(|| {
            let mut acc = kx.clone();
            for _ in 0..kernel_iters {
                lk::axpy_on(backend, &mut acc, 1e-7, &ky);
            }
            acc
        })
    };
    let axpy_scalar_ms = axpy_row(lk::Backend::Scalar);
    let axpy_active_ms = axpy_row(active);
    let dot4_row = |backend: lk::Backend| {
        best_ms(|| {
            let mut s = 0.0;
            for _ in 0..kernel_iters {
                s += lk::dot4_on(backend, &kx, &ky);
            }
            s
        })
    };
    let dot4_scalar_ms = dot4_row(lk::Backend::Scalar);
    let dot4_active_ms = dot4_row(active);
    // The flat histogram's probe: a half-full 2^16 table (the production
    // load factor), looked up with a 50% hit / 50% miss key stream.
    let fx = |v: u32| (v as u64).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95) as usize;
    let probe_cap = 1usize << 16;
    let probe_keys_n = 20_000u32;
    let mut probe_keys = vec![0u32; probe_cap];
    for v in 0..probe_keys_n {
        if let ek::ProbeResult::Vacant(j) =
            ek::probe_on(ek::Backend::Scalar, &probe_keys, fx(v), v + 1)
        {
            probe_keys[j] = v + 1;
        }
    }
    let probe_lookups = 2 * probe_keys_n;
    let probe_bench = |backend: ek::Backend| {
        best_ms(|| {
            let mut hits = 0usize;
            for v in 0..probe_lookups {
                if matches!(
                    ek::probe_on(backend, &probe_keys, fx(v), v + 1),
                    ek::ProbeResult::Hit(_)
                ) {
                    hits += 1;
                }
            }
            assert_eq!(hits, probe_keys_n as usize);
            hits
        })
    };
    let probe_scalar_ms = probe_bench(ek::Backend::Scalar);
    let probe_active_ms = probe_bench(active);
    // Clustered regime: 56 occupied slots then 8 vacant, probing an absent
    // key from each run's head — the long-probe-run shape (collision
    // clusters near the growth boundary) the multi-lane scan targets. The
    // light-load row above is the production-typical shape, where probes
    // resolve in a slot or two and the plain walk has nothing to amortize.
    let mut clustered = vec![0u32; probe_cap];
    for (j, k) in clustered.iter_mut().enumerate() {
        if j % 64 < 56 {
            *k = (j as u32) | 1;
        }
    }
    let cluster_bench = |backend: ek::Backend| {
        best_ms(|| {
            let mut acc = 0usize;
            for i in 0..probe_lookups as usize {
                let start = (i * 64) & (probe_cap - 1);
                match ek::probe_on(backend, &clustered, start, u32::MAX) {
                    ek::ProbeResult::Vacant(j) => acc += j,
                    ek::ProbeResult::Hit(_) => unreachable!("u32::MAX is never stored"),
                }
            }
            acc
        })
    };
    let cluster_scalar_ms = cluster_bench(ek::Backend::Scalar);
    let cluster_active_ms = cluster_bench(active);
    // The entropy finalization's compensated Σ n·log2 n reduction over a
    // realistic group-count spread.
    let term_groups: Vec<(u64, u64)> = (0..200_000u64)
        .map(|i| (1 + (i.wrapping_mul(2_654_435_761)) % 100_000, 1 + i % 7))
        .collect();
    let term_bench =
        |backend: ek::Backend| best_ms(|| ek::term_sum_on(backend, term_groups.iter().copied()));
    let term_scalar_ms = term_bench(ek::Backend::Scalar);
    let term_active_ms = term_bench(active);
    println!(
        "  axpy {:.2}x, dot4 {:.2}x, hist_probe {:.2}x (clustered {:.2}x), term_sum {:.2}x \
         (scalar/dispatched)",
        axpy_scalar_ms / axpy_active_ms,
        dot4_scalar_ms / dot4_active_ms,
        probe_scalar_ms / probe_active_ms,
        cluster_scalar_ms / cluster_active_ms,
        term_scalar_ms / term_active_ms,
    );

    // -- covariance: blocked kernel vs serial baseline -------------------
    // Abilene-shaped (4p = 484) and Geant-shaped (4p = 1936) unfoldings.
    // On one core the win comes from cache blocking and only shows once
    // the output triangle outgrows the cache (the Geant shape); with
    // multiple workers both shapes also gain the thread fan-out.
    let mut cov_entries = Vec::new();
    for (t, n) in [(500usize, 484usize), (300, 1936)] {
        println!("covariance {t}x{n} ...");
        let x = traffic_matrix(t, n, 0xC0FFEE ^ (n as u64));
        let serial_ms = best_ms(|| x.covariance_serial().unwrap());
        let blocked_ms = best_ms(|| x.covariance_blocked().unwrap());
        let speedup = serial_ms / blocked_ms;
        println!("  serial {serial_ms:.1} ms, blocked {blocked_ms:.1} ms ({speedup:.2}x)");
        cov_entries.push(format!(
            r#"    {{ "rows": {t}, "cols": {n}, "serial_baseline_ms": {serial_ms:.3}, "blocked_ms": {blocked_ms:.3}, "speedup": {speedup:.3} }}"#
        ));
    }
    let covariance_json = cov_entries.join(",\n");

    // -- gram ------------------------------------------------------------
    println!("gram 300x484 ...");
    let wide = traffic_matrix(300, 484, 0xBEEF);
    let gram_product_ms = best_ms(|| wide.gram());

    // -- sym_eigen: blocked pipeline vs retained QL, within-run ----------
    // The acceptance row for the eigensolver rewrite: both solvers timed
    // back to back on the same covariance in the same process, best-of-5.
    println!("sym_eigen vs sym_eigen_ql 300 ...");
    let cov = traffic_matrix(600, 300, 0xFEED).covariance().unwrap();
    let eigen_ms = best_ms_n(5, || sym_eigen(&cov).unwrap());
    let eigen_ql_ms = best_ms_n(5, || sym_eigen_ql(&cov).unwrap());
    let eigen_ratio = eigen_ql_ms / eigen_ms;
    println!("  blocked {eigen_ms:.1} ms, ql {eigen_ql_ms:.1} ms ({eigen_ratio:.2}x)");

    // -- fit strategies at Geant width -----------------------------------
    // One fit per strategy over the same 300-bin × 1936-column unfolding
    // (Geant's 4p). The dense oracle is O(n³) and measured once; the
    // partial and Gram engines are the production paths.
    let (geant_t, geant_n, geant_m) = (300usize, 1936usize, 10usize);
    println!("fit strategies {geant_t}x{geant_n} (m = {geant_m}) ...");
    let geant = traffic_matrix(geant_t, geant_n, 0xC0FFEE ^ (geant_n as u64));
    let dim = DimSelection::Fixed(geant_m);
    // Capture each strategy's model from inside its timed closure (the
    // threshold cross-check below must not refit — the oracle alone is
    // ~50 s, which is why it hides behind `--full-ql`; the default run
    // cross-checks partial vs Gram against each other instead, and the
    // oracle agreement stays pinned by the threshold_equivalence suite).
    let full = if run_full_ql {
        let mut full_model = None;
        let full_ms = best_ms_n(1, || {
            full_model = Some(SubspaceModel::fit_with(&geant, dim, FitStrategy::Full).unwrap());
        });
        Some((full_ms, full_model.expect("timed at least once")))
    } else {
        println!("  full QL oracle skipped (pass --full-ql to time the ~1 min dense fit)");
        None
    };
    let mut partial_model = None;
    let partial_ms = best_ms_n(2, || {
        partial_model = Some(SubspaceModel::fit_with(&geant, dim, FitStrategy::Partial).unwrap());
    });
    let mut gram_model = None;
    let gram_ms = best_ms_n(2, || {
        gram_model = Some(SubspaceModel::fit_with(&geant, dim, FitStrategy::Gram).unwrap());
    });
    let (partial_model, gram_model) = (
        partial_model.expect("timed at least once"),
        gram_model.expect("timed at least once"),
    );
    assert_eq!(
        partial_model.pca().strategy(),
        FitStrategy::Partial,
        "partial engine must not have fallen back at Geant width"
    );
    let partial_k = partial_model.pca().n_axes();
    let partial_threshold = partial_model.threshold(0.999).unwrap();
    let gram_threshold = gram_model.threshold(0.999).unwrap();
    // Always available: the two production engines against each other.
    let partial_vs_gram_rel = ((partial_threshold - gram_threshold) / gram_threshold).abs();
    // Oracle-dependent numbers, present only under --full-ql.
    let oracle = full.as_ref().map(|(full_ms, full_model)| {
        let oracle_threshold = full_model.threshold(0.999).unwrap();
        let partial_rel = ((partial_threshold - oracle_threshold) / oracle_threshold).abs();
        let gram_rel = ((gram_threshold - oracle_threshold) / oracle_threshold).abs();
        (*full_ms, oracle_threshold, partial_rel, gram_rel)
    });
    if let Some((full_ms, oracle_threshold, partial_rel, gram_rel)) = oracle {
        println!(
            "  full QL {full_ms:.0} ms, partial {partial_ms:.0} ms ({:.2}x), \
             gram {gram_ms:.0} ms ({:.2}x)",
            full_ms / partial_ms,
            full_ms / gram_ms,
        );
        println!(
            "  thresholds: oracle {oracle_threshold:.6e}, partial rel err {partial_rel:.2e}, \
             gram rel err {gram_rel:.2e}"
        );
    } else {
        println!(
            "  partial {partial_ms:.0} ms, gram {gram_ms:.0} ms \
             (partial-vs-gram threshold rel {partial_vs_gram_rel:.2e})"
        );
    }
    let full_ms_json = oracle.map_or("null".to_string(), |(ms, ..)| format!("{ms:.3}"));
    let partial_speedup_json = oracle.map_or("null".to_string(), |(ms, ..)| {
        format!("{:.3}", ms / partial_ms)
    });
    let gram_speedup_json = oracle.map_or("null".to_string(), |(ms, ..)| {
        format!("{:.3}", ms / gram_ms)
    });
    let partial_rel_json = oracle.map_or("null".to_string(), |(.., p, _)| format!("{p:.3e}"));
    let gram_rel_json = oracle.map_or("null".to_string(), |(.., g)| format!("{g:.3e}"));
    // The Auto dispatcher must route this shape off the dense path.
    let auto_model = SubspaceModel::fit(&geant, dim).unwrap();
    assert_ne!(auto_model.pca().strategy(), FitStrategy::Full);

    // Partial refits are also the Pca-level story (no threshold work):
    let pca_partial_ms = best_ms_n(2, || Pca::fit_partial(&geant, partial_k).unwrap());

    // -- block multiply of the subspace iteration ------------------------
    // The one kernel every partial-spectrum cycle pays for, at Geant
    // width with the production block size (k = 10 plus oversampling).
    println!("block_matvec 1936 x 18 ...");
    let bm_cov = geant.covariance().unwrap();
    let bm_block: Vec<Vec<f64>> = (0..18)
        .map(|j| {
            (0..bm_cov.rows())
                .map(|i| ((i * 7 + j * 13) % 97) as f64 / 97.0)
                .collect()
        })
        .collect();
    let bm_serial_ms = best_ms(|| block_matvec_serial(&bm_cov, &bm_block));
    let bm_fanned_ms = best_ms(|| block_matvec(&bm_cov, &bm_block));
    let bm_speedup = bm_serial_ms / bm_fanned_ms;
    println!(
        "  serial {bm_serial_ms:.1} ms, fanned {bm_fanned_ms:.1} ms ({bm_speedup:.2}x, \
         {threads} threads available)"
    );

    // -- warm-started refit engine ---------------------------------------
    // The eigensolve half of the Monitor's refit bill, isolated: the
    // partial engine at Geant width seeded cold (random block, the
    // pre-warm behavior) vs warm (the basis of a previous fit — exactly
    // what `fit_warm` hands down from the serving model), swept over
    // drift sizes. The warm win is logarithmic in the drift: the solver
    // certifies every pair to a 1e-11 relative residual, so warm
    // starting saves exactly the decades of contraction the serving
    // basis already covers. The headline is the stationary refit (the
    // scheduled-refit case where traffic did not materially drift and
    // the serving basis re-certifies in ~1 cycle); the sweep records
    // how the ratio decays as the window actually moves.
    println!("refit warm-start (eigensolve at {geant_n}, window refit at 121 flows) ...");
    let refit_seed = 0x5350_4543u64; // the partial engine's fit seed
    let (rw_base, _) = Spectrum::partial_of(&bm_cov, partial_k, refit_seed).unwrap();
    // Small drift: a 0.03% level shift on every other coordinate
    // (congruence, stays symmetric PSD).
    let mut rw_small = bm_cov.clone();
    let rw_scale = |i: usize| if i.is_multiple_of(2) { 1.0003 } else { 1.0 };
    for i in 0..geant_n {
        for j in 0..geant_n {
            rw_small[(i, j)] *= rw_scale(i) * rw_scale(j);
        }
    }
    // Window slide: the covariance of the same synthetic traffic over
    // rows 16..316 instead of 0..300 — the shape of a scheduled refit
    // after one chunk of new bins displaced the oldest chunk.
    let rw_slid_data = traffic_matrix(geant_t + 16, geant_n, 0xC0FFEE ^ (geant_n as u64));
    let rw_slid = {
        let mut acc = MomentAccumulator::new(geant_n);
        for i in 16..geant_t + 16 {
            acc.push(rw_slid_data.row(i)).unwrap();
        }
        acc.covariance().unwrap()
    };
    struct RwScenario {
        name: &'static str,
        cold_ms: f64,
        warm_ms: f64,
        cold_cycles: usize,
        warm_cycles: usize,
    }
    let mut rw_scenarios = Vec::new();
    let mut rw_eig_rel = 0.0f64;
    for (name, cov, reps) in [
        ("stationary", &bm_cov, 5usize),
        ("level-shift-3e-4", &rw_small, 2),
        ("window-slide-16-of-300", &rw_slid, 2),
    ] {
        let mut cold = None;
        let cold_ms = best_ms_n(reps, || {
            cold = Some(Spectrum::partial_of(cov, partial_k, refit_seed).unwrap());
        });
        let mut warm = None;
        let warm_ms = best_ms_n(reps, || {
            warm = Some(
                Spectrum::partial_of_warm(cov, partial_k, refit_seed, Some(rw_base.vectors()))
                    .unwrap(),
            );
        });
        let (cold_spec, cold_info) = cold.unwrap();
        let (warm_spec, warm_info) = warm.unwrap();
        assert!(
            cold_info.converged && warm_info.converged,
            "both refit eigensolves must converge for the ratio to mean anything ({name})"
        );
        let lead = cold_spec.values()[0];
        let rel = cold_spec
            .values()
            .iter()
            .zip(warm_spec.values())
            .map(|(c, w)| ((c - w) / lead).abs())
            .fold(0.0, f64::max);
        assert!(
            rel <= 1e-8,
            "warm and cold eigenvalues must agree ({name}: rel {rel:.2e})"
        );
        rw_eig_rel = rw_eig_rel.max(rel);
        println!(
            "  eigensolve {name}: cold {cold_ms:.1} ms ({} cycles) vs warm {warm_ms:.1} ms \
             ({} cycles) = {:.2}x",
            cold_info.iterations,
            warm_info.iterations,
            cold_ms / warm_ms,
        );
        rw_scenarios.push(RwScenario {
            name,
            cold_ms,
            warm_ms,
            cold_cycles: cold_info.iterations,
            warm_cycles: warm_info.iterations,
        });
    }
    let rw_headline = &rw_scenarios[0];
    let rw_speedup = rw_headline.cold_ms / rw_headline.warm_ms;
    assert!(
        rw_speedup >= 3.0,
        "warm-started stationary refit eigensolve must be at least 3x over cold at Geant \
         width (got {rw_speedup:.2}x: cold {:.1} ms / warm {:.1} ms)",
        rw_headline.cold_ms,
        rw_headline.warm_ms,
    );
    let rw_scenarios_json = rw_scenarios
        .iter()
        .map(|s| {
            format!(
                "{{ \"drift\": \"{}\", \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \
                 \"speedup\": {:.3}, \"cold_cycles\": {}, \"warm_cycles\": {} }}",
                s.name,
                s.cold_ms,
                s.warm_ms,
                s.cold_ms / s.warm_ms,
                s.cold_cycles,
                s.warm_cycles
            )
        })
        .collect::<Vec<_>>()
        .join(",\n      ");
    // And the whole refit as the Monitor runs it: a TrainingWindow fit
    // with trimming, cold vs warm-from-serving, traces kept.
    let rww = bench_refit_window(121, 3);
    let rww_speedup = rww.cold_ms / rww.warm_ms;
    println!(
        "  window refit ({} flows): cold {:.1} ms vs warm {:.1} ms ({rww_speedup:.2}x), \
         max Q-threshold rel err {:.2e}",
        rww.flows, rww.cold_ms, rww.warm_ms, rww.threshold_rel_max,
    );
    let rww_cold_rounds = rounds_json(&rww.cold_trace);
    let rww_warm_rounds = rounds_json(&rww.warm_trace);

    // -- fused scoring plane ---------------------------------------------
    // The serve/calibrate/trim scoring bill: per-row reference chain vs
    // per-row ScorePlan vs the batch entry, best-of-5 within-run, with
    // equivalence asserted before timing (inside bench_score_plane).
    println!("score plane (reference vs plan vs batch, best-of-5) ...");
    let sp = bench_score_plane(5);
    print_score_plane(&sp);
    let sp_geant = sp.widths.iter().find(|w| w.cols == 1936).unwrap();
    let sp_row_speedup = sp_geant.reference_ms / sp_geant.plan_ms;
    let sp_calib_speedup = sp.calib_reference_ms / sp.calib_batch_ms;
    // The acceptance gates only mean something under auto dispatch — the
    // reference pin deliberately collapses both paths into one.
    if !entromine::linalg::reference_score_forced() {
        assert!(
            sp_row_speedup >= 1.6,
            "fused per-row scoring must be at least 1.6x over the reference chain at Geant \
             width (got {sp_row_speedup:.2}x: reference {:.2} ms / plan {:.2} ms)",
            sp_geant.reference_ms,
            sp_geant.plan_ms,
        );
        assert!(
            sp_calib_speedup >= 2.0,
            "batched calibration + trimming round must be at least 2x over the per-row \
             reference pass at Geant width (got {sp_calib_speedup:.2}x: reference {:.2} ms / \
             batch {:.2} ms)",
            sp.calib_reference_ms,
            sp.calib_batch_ms,
        );
    }
    let sp_widths_json = sp
        .widths
        .iter()
        .map(|w| {
            format!(
                "{{ \"name\": \"{}\", \"cols\": {}, \"m\": {}, \"rows\": {}, \
                 \"reference_ms\": {:.3}, \"plan_ms\": {:.3}, \"batch_ms\": {:.3}, \
                 \"plan_speedup\": {:.3}, \"batch_speedup\": {:.3}, \
                 \"max_rel_err\": {:.3e}, \"guard_fallbacks\": {} }}",
                w.name,
                w.cols,
                w.m,
                w.rows,
                w.reference_ms,
                w.plan_ms,
                w.batch_ms,
                w.reference_ms / w.plan_ms,
                w.reference_ms / w.batch_ms,
                w.max_rel_err,
                w.guard_fallbacks,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n      ");

    // -- sharded ingest plane --------------------------------------------
    let ingest_sharded = bench_ingest(&[1, 2, 8]);

    // -- sketched scale tier ---------------------------------------------
    let sketched = bench_ingest_sketched(DEFAULT_BUDGET);
    let shard1_ms = ingest_sharded
        .runs
        .iter()
        .find(|r| r.shards == 1)
        .map_or(f64::NAN, |r| r.ms);
    let shard8_ms = ingest_sharded
        .runs
        .iter()
        .find(|r| r.shards == 8)
        .map_or(f64::NAN, |r| r.ms);
    let ingest_runs_json = ingest_sharded
        .runs
        .iter()
        .map(|r| {
            format!(
                r#"      {{ "shards": {}, "ms": {:.3}, "bins_per_sec": {:.1}, "packets_per_sec": {:.1}, "speedup_vs_serial": {:.3} }}"#,
                r.shards,
                r.ms,
                r.bins_per_sec,
                r.packets_per_sec,
                ingest_sharded.serial_ms / r.ms
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    // -- streaming ingest + score ----------------------------------------
    println!("streaming ingest + score (abilene, 36 bins, 0.05 scale) ...");
    let config = DatasetConfig {
        seed: 9,
        n_bins: 36,
        sample_rate: 100,
        traffic_scale: 0.05,
        rate_noise: 0.02,
        anonymize: false,
    };
    let dataset = Dataset::clean(Topology::abilene(), config);
    let p = dataset.n_flows();
    let bins = dataset.n_bins();
    // Pre-materialize the packet feed so ingest timing excludes synthesis.
    let feed: Vec<Vec<(usize, entromine::net::PacketHeader)>> = (0..bins)
        .map(|bin| {
            (0..p)
                .flat_map(|flow| {
                    dataset
                        .net
                        .cell_packets(bin, flow, &[])
                        .into_iter()
                        .map(move |pkt| (flow, pkt))
                })
                .collect()
        })
        .collect();
    let total_packets: usize = feed.iter().map(Vec::len).sum();
    let ingest_ms = best_ms(|| {
        let mut grid = StreamingGridBuilder::new(StreamConfig::new(p)).unwrap();
        let mut finalized = 0usize;
        for (bin, packets) in feed.iter().enumerate() {
            for (flow, pkt) in packets {
                grid.offer_packet(*flow, pkt).unwrap();
            }
            finalized += grid
                .advance_watermark((bin + 1) as u64 * DatasetConfig::BIN_SECS)
                .len();
        }
        assert_eq!(finalized, bins);
        finalized
    });
    let bins_per_sec = bins as f64 / (ingest_ms / 1e3);
    let packets_per_sec = total_packets as f64 / (ingest_ms / 1e3);
    println!("  {bins_per_sec:.0} bins/s, {packets_per_sec:.2e} packets/s");

    // -- fault injection: no-op pin and recovery latency -----------------
    println!("\n-- fault injection: no-op pin and recovery latency --");
    let fr = bench_fault_recovery();
    print_fault_recovery(&fr);

    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let json = format!(
        r#"{{
  "generated_by": "bench_pipeline",
  "unix_time": {stamp},
  "threads_available": {threads},
  "kernel_tier": {{
    "cpu": {{ "sse2": {f_sse2}, "sse4_2": {f_sse42}, "avx": {f_avx}, "avx2": {f_avx2}, "avx512f": {f_avx512f}, "fma": {f_fma} }},
    "forced_scalar": {forced_scalar},
    "active_backend": "{active_name}",
    "fused_tier": "{fused_tier}",
    "kernel_backends": {{
      "axpy": "{active_name}",
      "dot4": "{active_name}",
      "axpy_fused": "{fused_tier}",
      "dot4_fused": "{fused_tier}",
      "symv_fused": "{fused_tier}",
      "hist_probe": "{active_name}",
      "entropy_term_sum": "{term_sum_backend}"
    }},
    "rows": [
      {{ "kernel": "axpy", "n": {kn}, "iters": {kernel_iters}, "scalar_ms": {axpy_scalar_ms:.3}, "dispatched_ms": {axpy_active_ms:.3}, "speedup": {axpy_speedup:.3} }},
      {{ "kernel": "dot4", "n": {kn}, "iters": {kernel_iters}, "scalar_ms": {dot4_scalar_ms:.3}, "dispatched_ms": {dot4_active_ms:.3}, "speedup": {dot4_speedup:.3} }},
      {{ "kernel": "hist_probe", "regime": "light load (0.3, runs of 1-2 slots)", "table_cap": {probe_cap}, "lookups": {probe_lookups}, "scalar_ms": {probe_scalar_ms:.3}, "dispatched_ms": {probe_active_ms:.3}, "speedup": {probe_speedup:.3} }},
      {{ "kernel": "hist_probe", "regime": "collision clusters (runs of 56 slots)", "table_cap": {probe_cap}, "lookups": {probe_lookups}, "scalar_ms": {cluster_scalar_ms:.3}, "dispatched_ms": {cluster_active_ms:.3}, "speedup": {cluster_speedup:.3} }},
      {{ "kernel": "entropy_term_sum", "groups": {term_groups_n}, "scalar_ms": {term_scalar_ms:.3}, "dispatched_ms": {term_active_ms:.3}, "speedup": {term_speedup:.3} }}
    ],
    "sym_eigen_vs_ql": {{ "n": 300, "blocked_ms": {eigen_ms:.3}, "ql_ms": {eigen_ql_ms:.3}, "ratio": {eigen_ratio:.3} }},
    "note": "scalar vs dispatched rows are within-run (same process, best-of-3 each, explicit *_on backend seams); the fused FMA tier has no per-kernel scalar twin and is measured end to end by sym_eigen_vs_ql — the blocked Householder + implicit-shift pipeline against the retained QL reference, best-of-5 each, same covariance. The two hist_probe rows bracket the kernel's regimes: at production load factors probes resolve in a slot or two and the plain walk wins (the multi-lane scan only pays off once a probe run is long enough to amortize its setup, the clustered row), so the dispatched probe's value is capping the collision-cluster worst case, not the average — the plane-level ingest rows below are unchanged between backends"
  }},
  "covariance": [
{covariance_json}
  ],
  "gram": {{ "rows": 300, "cols": 484, "ms": {gram_product_ms:.3} }},
  "sym_eigen": {{ "n": 300, "ms": {eigen_ms:.3}, "ql_ms": {eigen_ql_ms:.3}, "ratio_ql_over_blocked": {eigen_ratio:.3} }},
  "fit_geant": {{
    "rows": {geant_t},
    "cols": {geant_n},
    "normal_dim": {geant_m},
    "full_ql_ms": {full_ms_json},
    "partial_ms": {partial_ms:.3},
    "partial_k": {partial_k},
    "partial_pca_only_ms": {pca_partial_ms:.3},
    "gram_ms": {gram_ms:.3},
    "partial_speedup": {partial_speedup_json},
    "gram_speedup": {gram_speedup_json},
    "threshold_rel_err_partial": {partial_rel_json},
    "threshold_rel_err_gram": {gram_rel_json},
    "threshold_rel_partial_vs_gram": {partial_vs_gram_rel:.3e},
    "note": "the ~50 s dense QL oracle fit only runs under --full-ql; without it the oracle-relative fields are null and the two production engines are cross-checked against each other (their oracle agreement stays pinned at 1e-8 by the threshold_equivalence suite)"
  }},
  "block_matvec": {{
    "n": 1936,
    "block": 18,
    "serial_ms": {bm_serial_ms:.3},
    "fanned_ms": {bm_fanned_ms:.3},
    "speedup": {bm_speedup:.3},
    "note": "scoped-thread row fan-out; speedup is bounded by threads_available"
  }},
  "refit_warm": {{
    "eigensolve": {{
      "n": {geant_n},
      "k": {partial_k},
      "headline_speedup_stationary": {rw_speedup:.3},
      "max_eigenvalue_rel_err": {rw_eig_rel:.3e},
      "scenarios": [
      {rw_scenarios_json}
      ]
    }},
    "window_refit": {{
      "flows": {rww_flows},
      "entropy_cols": {rww_cols},
      "window_bins": 64,
      "strategy": "Partial",
      "refit_rounds": 1,
      "cold_ms": {rww_cold_ms:.3},
      "warm_ms": {rww_warm_ms:.3},
      "speedup": {rww_speedup:.3},
      "max_threshold_rel_err": {rww_rel:.3e},
      "cold_rounds": [ {rww_cold_rounds} ],
      "warm_rounds": [ {rww_warm_rounds} ]
    }},
    "note": "single core, within-run ratios; eigensolve stationary scenario is best-of-5, drift scenarios best-of-2, window refit best-of-3. eigensolve: the blocked subspace iteration at Geant width, cold random block vs a block seeded with a previous fit's basis — the Monitor's refit path seeds exactly this way from its serving model, and the win is cycles to converge (cold_cycles vs warm_cycles per scenario). The solver certifies every eigenpair to a 1e-11 relative residual either way, so the warm win is logarithmic in the drift: it is largest for the stationary scheduled refit (the serving basis re-certifies almost immediately) and decays as the window actually moves — this fixture's tail spectrum is a noise floor whose eigenvectors decorrelate under resampling, so the slide scenario is the pessimistic end. window_refit: TrainingWindow::fit vs fit_warm with a serving model one slide earlier at Abilene width; the warm trimming round downdates the flagged rows out of the round-0 Chan merge instead of re-accumulating every clean row, so compare the second entries of cold_rounds (re-accumulate, cold eigensolve) and warm_rounds (downdate, warm eigensolve); at this small width the eigensolves are cheap and warm overhead (basis re-orthonormalization, downdate guards) roughly cancels the cycle savings — the trace fields, not the wall-clock, are the story there. rounds come from the RefitTrace the Monitor surfaces in RefitReport. warm and cold fits are asserted equivalent (eigenvalues <= 1e-8, Q-thresholds <= 1e-10 relative) before timing"
  }},
  "streaming_ingest": {{
    "flows": {p},
    "bins": {bins},
    "packets": {total_packets},
    "ms": {ingest_ms:.3},
    "bins_per_sec": {bins_per_sec:.1},
    "packets_per_sec": {packets_per_sec:.1}
  }},
  "ingest_combining": {{
    "flows": {ing_flows},
    "bins": {ing_bins},
    "packets": {ing_packets},
    "distinct_flow_runs": {ing_distinct},
    "packets_per_distinct_run": {ing_ratio:.3},
    "per_packet_ms": {ing_serial_ms:.3},
    "per_packet_pkts_per_sec": {ing_pp_pps:.1},
    "combined_ms": {ing_combined_ms:.3},
    "combined_pkts_per_sec": {ing_cb_pps:.1},
    "combined_speedup_vs_per_packet": {ing_cb_speedup:.3},
    "flow_records": {{ "records": {ing_records}, "ms": {ing_records_ms:.3}, "represented_pkts_per_sec": {ing_rec_pps:.1} }},
    "burst_feed": {{
      "burst_factor": {ing_b_factor},
      "bins": {ing_b_bins},
      "packets": {ing_b_packets},
      "distinct_flow_runs": {ing_b_distinct},
      "packets_per_distinct_run": {ing_b_ratio:.3},
      "per_packet_ms": {ing_b_pp_ms:.3},
      "per_packet_pkts_per_sec": {ing_b_pp_pps:.1},
      "combined_ms": {ing_b_cb_ms:.3},
      "combined_pkts_per_sec": {ing_b_cb_pps:.1},
      "combined_speedup_vs_per_packet": {ing_b_speedup:.3}
    }},
    "note": "single core; per-packet = serial StreamingGridBuilder offer_packet loop over the same feed; combined = offer_packets batches (atomic validate, sort-and-group by cell, merge equal flow tuples, weighted add_n into hint-presized flat histograms); outputs verified bit-identical before timing. The plain synthetic feed draws every packet's tuple independently (~1 packet per distinct run), so combining has nothing to merge there; offer_packets now measures that during the validation walk (BatchShape) and bails out to a per-event accumulate below COMBINE_MIN_RATIO = 1.25 packets per run, so the batch path is never slower than the per-packet loop on ratio-1 feeds — combined_speedup_vs_per_packet here is the bail-out path. The burst feed sits far above the crossover, where the ratio — and the combining win — is real"
  }},
  "ingest_sharded": {{
    "flows": {ing_flows},
    "bins": {ing_bins},
    "packets": {ing_packets},
    "serial_per_packet_ms": {ing_serial_ms:.3},
    "runs": [
{ingest_runs_json}
    ],
    "speedup_8_over_1": {ing_speedup_8_over_1:.3},
    "scratch_reuse": {{
      "shards": {ing_scr_shards},
      "reuse_ms": {ing_scr_reuse_ms:.3},
      "allocate_per_batch_ms": {ing_scr_alloc_ms:.3},
      "speedup": {ing_scr_speedup:.3},
      "note": "per-shard sort/keys scratch buffers recycled across batches (production default) vs freshly allocated every batch (the behavior recycling replaced); outputs verified bit-identical"
    }},
    "note": "per-shard accumulation fans out over scoped threads; 8-over-1 scaling requires >= 8 cores (threads_available above records this host)"
  }},
  "ingest_sketched": {{
    "budget": {sk_budget},
    "scale_feed": {{
      "distinct_keys": {sk_distinct},
      "packets": {sk_packets},
      "exact_ms": {sk_exact_ms:.3},
      "exact_pkts_per_sec": {sk_exact_pps:.1},
      "exact_peak_accumulator_heap_bytes": {sk_exact_heap},
      "sketched_ms": {sk_sketched_ms:.3},
      "sketched_pkts_per_sec": {sk_sketched_pps:.1},
      "sketched_peak_accumulator_heap_bytes": {sk_sketched_heap},
      "sketched_heap_ceiling_bytes": {sk_ceiling},
      "exact_over_ceiling": {sk_heap_ratio:.1},
      "src_ip_entropy_exact_bits": {sk_h_exact:.6},
      "src_ip_entropy_sketched_bits": {sk_h_sketched:.6},
      "entropy_err_bits": {sk_err:.6},
      "entropy_err_bound_bits": {sk_bound:.6}
    }},
    "plane_check": {{
      "budget": {ing_sk_budget},
      "max_entropy_err_bits": {ing_sk_err:.6},
      "max_entropy_err_bound_bits": {ing_sk_bound:.6}
    }},
    "note": "bounded-memory tier: hash-space level sampling per (flow, bin, feature) store, selected via AccumulatorPolicy::Sketched. scale_feed is one OD flow with 2^20 distinct source addresses in one bin — the exact tier's accumulator heap exceeds the sketch's documented ceiling by exact_over_ceiling while the sketched plane stays under it with the srcIP entropy error inside the documented bound. plane_check replays the abilene ingest feed through the sketched serial plane at a deliberately tight budget and asserts every (flow, bin, feature) entropy sits within its per-store bound"
  }},
  "score_plane": {{
    "widths": [
      {sp_widths_json}
    ],
    "calibrate_trim": {{
      "cols": {sp_calib_cols},
      "rows": {sp_calib_rows},
      "reference_ms": {sp_calib_ref_ms:.3},
      "batch_ms": {sp_calib_batch_ms:.3},
      "speedup": {sp_calib_speedup:.3},
      "threshold_rel_err": {sp_calib_rel:.3e}
    }},
    "note": "single core, within-run best-of-5. widths: 300 probe rows scored per-row through the reference project–reconstruct–residual chain (spe_reference), per-row through the fused norm-identity ScorePlan (the serve path), and through the batch entry spe_batch (the calibrate/trim path) at Abilene (4p = 484) and Geant (4p = 1936) entropy widths. calibrate_trim: an Empirical calibration (score every training row, sort, 0.999 quantile) plus one trimming round (re-score every row against the threshold) per-row-reference vs batched. Before timing, every fused SPE is asserted within 1e-10 relative of the reference (plus a rounding floor scaled by the centered energy, which is what the norm identity's subtraction is conditioned on), batch scoring asserted bitwise equal to per-row, and both calibrate+trim passes asserted to land the same threshold and flag set. guard_fallbacks counts probe rows that tripped the cancellation guard and rerouted to the materialized-residual fallback — the synthetic traffic matrix is near-low-rank, so a sizable fraction of its own rows sit almost inside the modeled subspace and take the fallback, which means the plan timings here honestly include the guard's worst case rather than dodging it (the guard's correctness is pinned by the score_equivalence suite). Gates (full run, auto dispatch only): plan >= 1.6x per-row at Geant width, calibrate+trim >= 2x batched"
  }},
  "fault_recovery": {{
    "flows": {fr_flows},
    "bins": {fr_bins},
    "noop_pin": {{
      "direct_ms": {fr_direct_ms:.3},
      "wrapped_ms": {fr_noop_ms:.3},
      "overhead": {fr_overhead:.3}
    }},
    "garbage_storm": {{
      "storm_bins": {fr_storm_bins},
      "degraded_bins": {fr_degraded_bins},
      "recovery_bins": {fr_storm_recovery}
    }},
    "refit_poisoning": {{
      "poison_bins": {fr_poison_bins},
      "failed_refits": {fr_poison_failures},
      "recovery_bins": {fr_poison_recovery}
    }},
    "note": "lifecycle monitor (24-bin warmup, 48-bin window, 8-bin chunks, refits every 8 scored bins, 16-bin staleness budget) behind the core::fault harness. noop_pin: the FaultPlan::none() wrap is asserted bitwise invisible (identical verdict/SPE bits) before timing; overhead is wrapped/direct. garbage_storm: 20 consecutive NaN bins are quarantined at the door, the serving model ages past its budget into Degraded (degraded_bins counts them), and recovery_bins is bins-to-Fitted after clean data resumes — bounded by one refit interval, asserted. refit_poisoning: huge-but-finite rows pass every finiteness gate, overflow the window's moments, and fail every refit; failed_refits counts the exponential-backoff attempts and recovery_bins is bins from the last poisoned bin to the healing swap — bounded by window roll-out plus the backoff cap. Both recovery latencies are deterministic lifecycle properties, so a change here is a degradation-layer regression, not host noise"
  }}
}}
"#,
        f_sse2 = feats.sse2,
        f_sse42 = feats.sse4_2,
        f_avx = feats.avx,
        f_avx2 = feats.avx2,
        f_avx512f = feats.avx512f,
        f_fma = feats.fma,
        forced_scalar = lk::forced_scalar(),
        active_name = active.name(),
        axpy_speedup = axpy_scalar_ms / axpy_active_ms,
        dot4_speedup = dot4_scalar_ms / dot4_active_ms,
        probe_speedup = probe_scalar_ms / probe_active_ms,
        cluster_speedup = cluster_scalar_ms / cluster_active_ms,
        term_speedup = term_scalar_ms / term_active_ms,
        term_groups_n = term_groups.len(),
        rww_flows = rww.flows,
        rww_cols = 4 * rww.flows,
        rww_cold_ms = rww.cold_ms,
        rww_warm_ms = rww.warm_ms,
        rww_rel = rww.threshold_rel_max,
        ing_flows = ingest_sharded.flows,
        ing_bins = ingest_sharded.bins,
        ing_packets = ingest_sharded.packets,
        ing_distinct = ingest_sharded.distinct_runs,
        ing_ratio = ingest_sharded.packets as f64 / ingest_sharded.distinct_runs as f64,
        ing_serial_ms = ingest_sharded.serial_ms,
        ing_pp_pps = ingest_sharded.packets as f64 / (ingest_sharded.serial_ms / 1e3),
        ing_combined_ms = ingest_sharded.combined_ms,
        ing_cb_pps = ingest_sharded.packets as f64 / (ingest_sharded.combined_ms / 1e3),
        ing_cb_speedup = ingest_sharded.serial_ms / ingest_sharded.combined_ms,
        ing_records = ingest_sharded.records,
        ing_records_ms = ingest_sharded.records_ms,
        ing_rec_pps = ingest_sharded.packets as f64 / (ingest_sharded.records_ms / 1e3),
        ing_b_factor = ingest_sharded.burst.factor,
        ing_b_bins = ingest_sharded.burst.bins,
        ing_b_packets = ingest_sharded.burst.packets,
        ing_b_distinct = ingest_sharded.burst.distinct_runs,
        ing_b_ratio =
            ingest_sharded.burst.packets as f64 / ingest_sharded.burst.distinct_runs as f64,
        ing_b_pp_ms = ingest_sharded.burst.per_packet_ms,
        ing_b_pp_pps =
            ingest_sharded.burst.packets as f64 / (ingest_sharded.burst.per_packet_ms / 1e3),
        ing_b_cb_ms = ingest_sharded.burst.combined_ms,
        ing_b_cb_pps =
            ingest_sharded.burst.packets as f64 / (ingest_sharded.burst.combined_ms / 1e3),
        ing_b_speedup = ingest_sharded.burst.per_packet_ms / ingest_sharded.burst.combined_ms,
        ing_speedup_8_over_1 = shard1_ms / shard8_ms,
        ing_scr_shards = ingest_sharded.scratch_shards,
        ing_scr_reuse_ms = ingest_sharded.scratch_reuse_ms,
        ing_scr_alloc_ms = ingest_sharded.scratch_alloc_ms,
        ing_scr_speedup = ingest_sharded.scratch_alloc_ms / ingest_sharded.scratch_reuse_ms,
        ing_sk_budget = ingest_sharded.sketch_budget,
        ing_sk_err = ingest_sharded.sketch_err_bits,
        ing_sk_bound = ingest_sharded.sketch_bound_bits,
        sk_budget = sketched.budget,
        sk_distinct = sketched.distinct_keys,
        sk_packets = sketched.packets,
        sk_exact_ms = sketched.exact_ms,
        sk_exact_pps = sketched.packets as f64 / (sketched.exact_ms / 1e3),
        sk_exact_heap = sketched.exact_peak_heap,
        sk_sketched_ms = sketched.sketched_ms,
        sk_sketched_pps = sketched.packets as f64 / (sketched.sketched_ms / 1e3),
        sk_sketched_heap = sketched.sketched_peak_heap,
        sk_ceiling = sketched.sketched_ceiling,
        sk_heap_ratio = sketched.exact_peak_heap as f64 / sketched.sketched_ceiling as f64,
        sk_h_exact = sketched.exact_entropy,
        sk_h_sketched = sketched.sketched_entropy,
        sk_err = sketched.err_bits,
        sk_bound = sketched.bound_bits,
        fr_flows = fr.flows,
        fr_bins = fr.total_bins,
        fr_direct_ms = fr.direct_ms,
        fr_noop_ms = fr.noop_ms,
        fr_overhead = fr.noop_ms / fr.direct_ms,
        fr_storm_bins = fr.storm_bins,
        fr_degraded_bins = fr.degraded_bins,
        fr_storm_recovery = fr.storm_recovery_bins,
        fr_poison_bins = fr.poison_bins,
        fr_poison_failures = fr.poison_failed_refits,
        fr_poison_recovery = fr.poison_recovery_bins,
        sp_calib_cols = sp.calib_cols,
        sp_calib_rows = sp.calib_rows,
        sp_calib_ref_ms = sp.calib_reference_ms,
        sp_calib_batch_ms = sp.calib_batch_ms,
        sp_calib_rel = sp.calib_threshold_rel,
    );
    std::fs::write(&out_path, json).expect("write snapshot");
    println!("wrote {out_path}");
}
