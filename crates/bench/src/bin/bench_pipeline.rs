//! Perf-snapshot runner: times the streaming-pipeline hot paths and
//! writes `results/BENCH_pipeline.json` so the performance trajectory is
//! tracked across PRs (the Criterion benches give interactive numbers;
//! this bin gives a committed artifact).
//!
//! ```sh
//! cargo run --release -p entromine-bench --bin bench_pipeline [-- OUT.json]
//! ```
//!
//! Measured, best-of-3 wall clock:
//!
//! * `covariance` — the blocked scoped-thread kernel against the serial
//!   row-at-a-time baseline it replaced (`Mat::covariance_serial`), on a
//!   paper-shaped `500 × 484` matrix (one week-ish of bins × `4p` unfolded
//!   entropy columns of Abilene).
//! * `gram` — the Gram product behind `Pca::fit_gram`.
//! * `sym_eigen` — the dense eigensolver (the reference oracle).
//! * `fit_geant` — the headline of the partial-spectrum engine: a full
//!   PCA fit at Geant width (`4p = 1936`) under each `FitStrategy` (dense
//!   QL oracle vs partial-spectrum vs Gram), with the resulting
//!   Q-thresholds cross-checked against the oracle.
//! * `streaming_ingest` — packets offered through `StreamingGridBuilder`
//!   to finalized bins, in bins/sec and packets/sec.
//! * `ingest_combining` — the map-side combining data plane against the
//!   per-packet serial path over one feed: per-packet offers vs
//!   `offer_packets` batches vs pre-aggregated flow-record batches, with
//!   the feed's distinct-run ratio recorded so the speedup is
//!   interpretable. All paths' `FinalizedBin` outputs are asserted
//!   bit-identical before timing.
//! * `ingest_sharded` — the sharded ingest plane (`ShardedGridBuilder`)
//!   against the serial builder: per-packet serial baseline vs batched
//!   shard counts 1/2/8. The fan-out is thread-bound, so per-shard
//!   scaling only shows on multi-core hosts (`threads_available` is
//!   recorded alongside).
//! * `block_matvec` — the subspace-iteration block multiply at Geant
//!   width: serial reference vs the scoped-thread row fan-out.
//! * `score` — `StreamingDiagnoser` throughput over finalized bins.
//!
//! `--ingest-smoke` runs only the ingest comparison — per-packet,
//! combining, flow-record, and sharded paths, with their outputs asserted
//! bit-identical — and prints it to stdout (the CI regression probe);
//! nothing is written.

use entromine::linalg::{block_matvec, block_matvec_serial, sym_eigen, FitStrategy, Pca};
use entromine::net::flow::{aggregate_bin, FlowRecord};
use entromine::net::{PacketHeader, Topology};
use entromine::subspace::{DimSelection, SubspaceModel};
use entromine::synth::{Dataset, DatasetConfig};
use entromine::Diagnoser;
use entromine_bench::traffic_matrix;
use entromine_entropy::{FinalizedBin, ShardedGridBuilder, StreamConfig, StreamingGridBuilder};
use std::time::Instant;

/// Best-of-`reps` wall-clock milliseconds of `f`.
fn best_ms_n<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Best-of-3 wall-clock milliseconds of `f`.
fn best_ms<T>(f: impl FnMut() -> T) -> f64 {
    best_ms_n(3, f)
}

/// One sharded-ingest measurement: shard count, wall time, throughputs.
struct IngestRun {
    shards: usize,
    ms: f64,
    bins_per_sec: f64,
    packets_per_sec: f64,
}

/// Results of the ingest-plane comparison: the per-packet serial
/// baseline, the map-side combining batch paths (packet batches and
/// flow-record batches), and the sharded plane at each requested shard
/// count — all over the same traffic, all verified to finalize
/// bit-identical `FinalizedBin` rows before anything is timed.
struct IngestBench {
    flows: usize,
    bins: usize,
    packets: usize,
    /// Distinct (flow, bin, feature-tuple) groups in the feed — the
    /// packets-per-run ratio is what makes the combining speedup
    /// interpretable.
    distinct_runs: usize,
    /// Flow records in the pre-aggregated view of the same traffic.
    records: usize,
    serial_ms: f64,
    combined_ms: f64,
    records_ms: f64,
    runs: Vec<IngestRun>,
    burst: BurstBench,
}

/// The burst-shaped variant: the same generator's traffic with each
/// sampled packet standing for a back-to-back burst of its flow — the
/// unsampled-feed shape, where the combining ratio is real instead of
/// the synthetic sampler's ~1 packet per distinct tuple.
struct BurstBench {
    factor: usize,
    bins: usize,
    packets: usize,
    distinct_runs: usize,
    per_packet_ms: f64,
    combined_ms: f64,
}

/// Drives the per-packet serial path over the feed, collecting output.
fn ingest_per_packet(feed: &[Vec<(usize, PacketHeader)>], p: usize) -> Vec<FinalizedBin> {
    let mut grid = StreamingGridBuilder::new(StreamConfig::new(p)).unwrap();
    let mut out = Vec::new();
    for (bin, batch) in feed.iter().enumerate() {
        for (flow, pkt) in batch {
            grid.offer_packet(*flow, pkt).unwrap();
        }
        out.extend(grid.advance_watermark((bin + 1) as u64 * DatasetConfig::BIN_SECS));
    }
    out
}

/// Drives the combining batch path over the feed, collecting output.
fn ingest_combined(feed: &[Vec<(usize, PacketHeader)>], p: usize) -> Vec<FinalizedBin> {
    let mut grid = StreamingGridBuilder::new(StreamConfig::new(p)).unwrap();
    let mut out = Vec::new();
    for (bin, batch) in feed.iter().enumerate() {
        grid.offer_packets(batch).unwrap();
        out.extend(grid.advance_watermark((bin + 1) as u64 * DatasetConfig::BIN_SECS));
    }
    out
}

/// Drives the combining path with pre-aggregated flow-record batches.
fn ingest_records(rec_feed: &[Vec<(usize, FlowRecord)>], p: usize) -> Vec<FinalizedBin> {
    let mut grid = StreamingGridBuilder::new(StreamConfig::new(p)).unwrap();
    let mut out = Vec::new();
    for (bin, batch) in rec_feed.iter().enumerate() {
        grid.offer_flows(batch).unwrap();
        out.extend(grid.advance_watermark((bin + 1) as u64 * DatasetConfig::BIN_SECS));
    }
    out
}

/// Drives the sharded plane, collecting output.
fn ingest_sharded(
    feed: &[Vec<(usize, PacketHeader)>],
    p: usize,
    shards: usize,
) -> Vec<FinalizedBin> {
    let mut grid = ShardedGridBuilder::new(StreamConfig::new(p), shards).unwrap();
    let mut out = Vec::new();
    for (bin, batch) in feed.iter().enumerate() {
        grid.offer_packets(batch).unwrap();
        out.extend(grid.advance_watermark((bin + 1) as u64 * DatasetConfig::BIN_SECS));
    }
    out
}

/// Benchmarks the ingest planes on one shared pre-materialized feed. All
/// paths are first run once, unmeasured, and their `FinalizedBin` output
/// asserted bit-identical — the bench doubles as the CI smoke check that
/// combining is invisible in the output.
fn bench_ingest(shard_counts: &[usize]) -> IngestBench {
    // A heavier feed than the serial `streaming_ingest` snapshot: batch
    // combining amortizes its sort over per-bin batches, so the
    // comparison needs production-sized bins (~150k packets each).
    let config = DatasetConfig {
        seed: 9,
        n_bins: 10,
        sample_rate: 100,
        traffic_scale: 0.2,
        rate_noise: 0.02,
        anonymize: false,
    };
    let dataset = Dataset::clean(Topology::abilene(), config);
    let p = dataset.n_flows();
    let bins = dataset.n_bins();
    println!("ingest planes (abilene, {bins} bins, 0.2 scale) ...");
    let feed: Vec<Vec<(usize, PacketHeader)>> = (0..bins)
        .map(|bin| {
            (0..p)
                .flat_map(|flow| {
                    dataset
                        .net
                        .cell_packets(bin, flow, &[])
                        .into_iter()
                        .map(move |pkt| (flow, pkt))
                })
                .collect()
        })
        .collect();
    let packets: usize = feed.iter().map(Vec::len).sum();

    // The same traffic as per-cell aggregated flow records — the
    // NetFlow-shaped front door — and the distinct-run census.
    let rec_feed: Vec<Vec<(usize, FlowRecord)>> = (0..bins)
        .map(|bin| {
            (0..p)
                .flat_map(|flow| {
                    let cell = dataset.net.cell_packets(bin, flow, &[]);
                    aggregate_bin(&cell).into_iter().map(move |r| (flow, r))
                })
                .collect()
        })
        .collect();
    let records: usize = rec_feed.iter().map(Vec::len).sum();
    let distinct_per_bin: Vec<usize> = feed
        .iter()
        .map(|batch| {
            let set: std::collections::HashSet<(usize, u32, u16, u32, u16)> = batch
                .iter()
                .map(|(f, pk)| (*f, pk.src_ip.0, pk.src_port, pk.dst_ip.0, pk.dst_port))
                .collect();
            set.len()
        })
        .collect();
    let distinct_runs: usize = distinct_per_bin.iter().sum();

    // Equivalence gate before any timing: every path must emit the
    // per-packet serial builder's rows bit for bit.
    let reference = ingest_per_packet(&feed, p);
    assert_eq!(reference.len(), bins);
    assert_eq!(
        reference,
        ingest_combined(&feed, p),
        "combining batch path diverged from per-packet offers"
    );
    assert_eq!(
        reference,
        ingest_records(&rec_feed, p),
        "flow-record combining path diverged from per-packet offers"
    );
    for &shards in shard_counts {
        assert_eq!(
            reference,
            ingest_sharded(&feed, p, shards),
            "{shards}-shard plane diverged from per-packet offers"
        );
    }

    let serial_ms = best_ms(|| {
        assert_eq!(ingest_per_packet(&feed, p).len(), bins);
    });
    println!(
        "  per-packet serial : {serial_ms:.1} ms ({:.2e} packets/s)",
        packets as f64 / (serial_ms / 1e3)
    );
    let combined_ms = best_ms(|| {
        assert_eq!(ingest_combined(&feed, p).len(), bins);
    });
    println!(
        "  combined batches  : {combined_ms:.1} ms ({:.2e} packets/s, {:.2}x per-packet)",
        packets as f64 / (combined_ms / 1e3),
        serial_ms / combined_ms
    );
    let records_ms = best_ms(|| {
        assert_eq!(ingest_records(&rec_feed, p).len(), bins);
    });
    println!(
        "  flow-record batches: {records_ms:.1} ms ({:.2e} represented packets/s, {} records)",
        packets as f64 / (records_ms / 1e3),
        records
    );

    let runs = shard_counts
        .iter()
        .map(|&shards| {
            let ms = best_ms(|| {
                assert_eq!(ingest_sharded(&feed, p, shards).len(), bins);
            });
            let run = IngestRun {
                shards,
                ms,
                bins_per_sec: bins as f64 / (ms / 1e3),
                packets_per_sec: packets as f64 / (ms / 1e3),
            };
            println!(
                "  {shards} shard(s): {ms:.1} ms ({:.2e} packets/s, {:.2}x serial)",
                run.packets_per_sec,
                serial_ms / ms
            );
            run
        })
        .collect();

    // Burst-shaped feed: every sampled packet expanded into a burst of 8
    // identical-tuple packets (fewer bins to bound the feed's memory).
    const BURST: usize = 8;
    let burst_bins = 4.min(bins);
    let burst_feed: Vec<Vec<(usize, PacketHeader)>> = feed[..burst_bins]
        .iter()
        .map(|batch| {
            batch
                .iter()
                .flat_map(|&(flow, pkt)| std::iter::repeat_n((flow, pkt), BURST))
                .collect()
        })
        .collect();
    let burst_packets: usize = burst_feed.iter().map(Vec::len).sum();
    let burst_distinct: usize = distinct_per_bin[..burst_bins].iter().sum();
    println!("  burst x{BURST} feed ({burst_bins} bins, {burst_packets} packets) ...");
    assert_eq!(
        ingest_per_packet(&burst_feed, p),
        ingest_combined(&burst_feed, p),
        "combining diverged from per-packet offers on the burst feed"
    );
    let burst_pp_ms = best_ms(|| {
        assert_eq!(ingest_per_packet(&burst_feed, p).len(), burst_bins);
    });
    let burst_cb_ms = best_ms(|| {
        assert_eq!(ingest_combined(&burst_feed, p).len(), burst_bins);
    });
    println!(
        "  burst per-packet {burst_pp_ms:.1} ms ({:.2e} pkts/s) vs combined {burst_cb_ms:.1} ms \
         ({:.2e} pkts/s, {:.2}x)",
        burst_packets as f64 / (burst_pp_ms / 1e3),
        burst_packets as f64 / (burst_cb_ms / 1e3),
        burst_pp_ms / burst_cb_ms
    );

    IngestBench {
        flows: p,
        bins,
        packets,
        distinct_runs,
        records,
        serial_ms,
        combined_ms,
        records_ms,
        runs,
        burst: BurstBench {
            factor: BURST,
            bins: burst_bins,
            packets: burst_packets,
            distinct_runs: burst_distinct,
            per_packet_ms: burst_pp_ms,
            combined_ms: burst_cb_ms,
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--ingest-smoke") {
        // CI probe: per-packet vs combining vs sharded over one feed,
        // printed to the job log, written nowhere. bench_ingest itself
        // asserts the three paths' FinalizedBin outputs are bit-identical
        // before timing, so a combining regression fails the job rather
        // than skewing a number.
        let ingest = bench_ingest(&[1, 8]);
        let one = ingest.runs.iter().find(|r| r.shards == 1).unwrap();
        let eight = ingest.runs.iter().find(|r| r.shards == 8).unwrap();
        println!(
            "ingest smoke: per-packet {:.1} ms | combined {:.1} ms ({:.2}x) | records {:.1} ms \
             | 1 shard {:.1} ms | 8 shards {:.1} ms \
             (8-vs-1 {:.2}x, 8-vs-serial {:.2}x, {} threads available)",
            ingest.serial_ms,
            ingest.combined_ms,
            ingest.serial_ms / ingest.combined_ms,
            ingest.records_ms,
            one.ms,
            eight.ms,
            one.ms / eight.ms,
            ingest.serial_ms / eight.ms,
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        );
        println!(
            "ingest smoke (burst x{}): per-packet {:.1} ms vs combined {:.1} ms ({:.2}x)",
            ingest.burst.factor,
            ingest.burst.per_packet_ms,
            ingest.burst.combined_ms,
            ingest.burst.per_packet_ms / ingest.burst.combined_ms,
        );
        println!("ingest smoke: per-packet, combined, flow-record, and sharded outputs verified bit-identical");
        return;
    }
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "results/BENCH_pipeline.json".to_string());
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // -- covariance: blocked kernel vs serial baseline -------------------
    // Abilene-shaped (4p = 484) and Geant-shaped (4p = 1936) unfoldings.
    // On one core the win comes from cache blocking and only shows once
    // the output triangle outgrows the cache (the Geant shape); with
    // multiple workers both shapes also gain the thread fan-out.
    let mut cov_entries = Vec::new();
    for (t, n) in [(500usize, 484usize), (300, 1936)] {
        println!("covariance {t}x{n} ...");
        let x = traffic_matrix(t, n, 0xC0FFEE ^ (n as u64));
        let serial_ms = best_ms(|| x.covariance_serial().unwrap());
        let blocked_ms = best_ms(|| x.covariance_blocked().unwrap());
        let speedup = serial_ms / blocked_ms;
        println!("  serial {serial_ms:.1} ms, blocked {blocked_ms:.1} ms ({speedup:.2}x)");
        cov_entries.push(format!(
            r#"    {{ "rows": {t}, "cols": {n}, "serial_baseline_ms": {serial_ms:.3}, "blocked_ms": {blocked_ms:.3}, "speedup": {speedup:.3} }}"#
        ));
    }
    let covariance_json = cov_entries.join(",\n");

    // -- gram ------------------------------------------------------------
    println!("gram 300x484 ...");
    let wide = traffic_matrix(300, 484, 0xBEEF);
    let gram_product_ms = best_ms(|| wide.gram());

    // -- sym_eigen -------------------------------------------------------
    println!("sym_eigen 300 ...");
    let cov = traffic_matrix(600, 300, 0xFEED).covariance().unwrap();
    let eigen_ms = best_ms(|| sym_eigen(&cov).unwrap());

    // -- fit strategies at Geant width -----------------------------------
    // One fit per strategy over the same 300-bin × 1936-column unfolding
    // (Geant's 4p). The dense oracle is O(n³) and measured once; the
    // partial and Gram engines are the production paths.
    let (geant_t, geant_n, geant_m) = (300usize, 1936usize, 10usize);
    println!("fit strategies {geant_t}x{geant_n} (m = {geant_m}) ...");
    let geant = traffic_matrix(geant_t, geant_n, 0xC0FFEE ^ (geant_n as u64));
    let dim = DimSelection::Fixed(geant_m);
    // Capture each strategy's model from inside its timed closure (the
    // threshold cross-check below must not refit — the oracle alone is
    // ~50 s).
    let mut full_model = None;
    let full_ms = best_ms_n(1, || {
        full_model = Some(SubspaceModel::fit_with(&geant, dim, FitStrategy::Full).unwrap());
    });
    let mut partial_model = None;
    let partial_ms = best_ms_n(2, || {
        partial_model = Some(SubspaceModel::fit_with(&geant, dim, FitStrategy::Partial).unwrap());
    });
    let mut gram_model = None;
    let gram_ms = best_ms_n(2, || {
        gram_model = Some(SubspaceModel::fit_with(&geant, dim, FitStrategy::Gram).unwrap());
    });
    let (full_model, partial_model, gram_model) = (
        full_model.expect("timed at least once"),
        partial_model.expect("timed at least once"),
        gram_model.expect("timed at least once"),
    );
    assert_eq!(
        partial_model.pca().strategy(),
        FitStrategy::Partial,
        "partial engine must not have fallen back at Geant width"
    );
    let partial_k = partial_model.pca().n_axes();
    let oracle_threshold = full_model.threshold(0.999).unwrap();
    let partial_threshold = partial_model.threshold(0.999).unwrap();
    let gram_threshold = gram_model.threshold(0.999).unwrap();
    let partial_rel = ((partial_threshold - oracle_threshold) / oracle_threshold).abs();
    let gram_rel = ((gram_threshold - oracle_threshold) / oracle_threshold).abs();
    let partial_speedup = full_ms / partial_ms;
    let gram_speedup = full_ms / gram_ms;
    println!(
        "  full QL {full_ms:.0} ms, partial {partial_ms:.0} ms ({partial_speedup:.2}x), \
         gram {gram_ms:.0} ms ({gram_speedup:.2}x)"
    );
    println!(
        "  thresholds: oracle {oracle_threshold:.6e}, partial rel err {partial_rel:.2e}, \
         gram rel err {gram_rel:.2e}"
    );
    // The Auto dispatcher must route this shape off the dense path.
    let auto_model = SubspaceModel::fit(&geant, dim).unwrap();
    assert_ne!(auto_model.pca().strategy(), FitStrategy::Full);

    // Partial refits are also the Pca-level story (no threshold work):
    let pca_partial_ms = best_ms_n(2, || Pca::fit_partial(&geant, partial_k).unwrap());

    // -- block multiply of the subspace iteration ------------------------
    // The one kernel every partial-spectrum cycle pays for, at Geant
    // width with the production block size (k = 10 plus oversampling).
    println!("block_matvec 1936 x 18 ...");
    let bm_cov = geant.covariance().unwrap();
    let bm_block: Vec<Vec<f64>> = (0..18)
        .map(|j| {
            (0..bm_cov.rows())
                .map(|i| ((i * 7 + j * 13) % 97) as f64 / 97.0)
                .collect()
        })
        .collect();
    let bm_serial_ms = best_ms(|| block_matvec_serial(&bm_cov, &bm_block));
    let bm_fanned_ms = best_ms(|| block_matvec(&bm_cov, &bm_block));
    let bm_speedup = bm_serial_ms / bm_fanned_ms;
    println!(
        "  serial {bm_serial_ms:.1} ms, fanned {bm_fanned_ms:.1} ms ({bm_speedup:.2}x, \
         {threads} threads available)"
    );

    // -- sharded ingest plane --------------------------------------------
    let ingest_sharded = bench_ingest(&[1, 2, 8]);
    let shard1_ms = ingest_sharded
        .runs
        .iter()
        .find(|r| r.shards == 1)
        .map_or(f64::NAN, |r| r.ms);
    let shard8_ms = ingest_sharded
        .runs
        .iter()
        .find(|r| r.shards == 8)
        .map_or(f64::NAN, |r| r.ms);
    let ingest_runs_json = ingest_sharded
        .runs
        .iter()
        .map(|r| {
            format!(
                r#"      {{ "shards": {}, "ms": {:.3}, "bins_per_sec": {:.1}, "packets_per_sec": {:.1}, "speedup_vs_serial": {:.3} }}"#,
                r.shards,
                r.ms,
                r.bins_per_sec,
                r.packets_per_sec,
                ingest_sharded.serial_ms / r.ms
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    // -- streaming ingest + score ----------------------------------------
    println!("streaming ingest + score (abilene, 36 bins, 0.05 scale) ...");
    let config = DatasetConfig {
        seed: 9,
        n_bins: 36,
        sample_rate: 100,
        traffic_scale: 0.05,
        rate_noise: 0.02,
        anonymize: false,
    };
    let dataset = Dataset::clean(Topology::abilene(), config);
    let p = dataset.n_flows();
    let bins = dataset.n_bins();
    // Pre-materialize the packet feed so ingest timing excludes synthesis.
    let feed: Vec<Vec<(usize, entromine::net::PacketHeader)>> = (0..bins)
        .map(|bin| {
            (0..p)
                .flat_map(|flow| {
                    dataset
                        .net
                        .cell_packets(bin, flow, &[])
                        .into_iter()
                        .map(move |pkt| (flow, pkt))
                })
                .collect()
        })
        .collect();
    let total_packets: usize = feed.iter().map(Vec::len).sum();
    let ingest_ms = best_ms(|| {
        let mut grid = StreamingGridBuilder::new(StreamConfig::new(p)).unwrap();
        let mut finalized = 0usize;
        for (bin, packets) in feed.iter().enumerate() {
            for (flow, pkt) in packets {
                grid.offer_packet(*flow, pkt).unwrap();
            }
            finalized += grid
                .advance_watermark((bin + 1) as u64 * DatasetConfig::BIN_SECS)
                .len();
        }
        assert_eq!(finalized, bins);
        finalized
    });
    let bins_per_sec = bins as f64 / (ingest_ms / 1e3);
    let packets_per_sec = total_packets as f64 / (ingest_ms / 1e3);
    println!("  {bins_per_sec:.0} bins/s, {packets_per_sec:.2e} packets/s");

    let fitted = Diagnoser::default().fit(&dataset).expect("fit");
    let score_ms = best_ms(|| {
        let mut scorer = fitted.streaming(0.999).unwrap();
        let mut hits = 0usize;
        for bin in 0..bins {
            if scorer
                .score_rows(
                    bin,
                    dataset.volumes.bytes().row(bin),
                    dataset.volumes.packets().row(bin),
                    &dataset.tensor.unfolded_row(bin),
                )
                .unwrap()
                .is_some()
            {
                hits += 1;
            }
        }
        hits
    });
    let scored_bins_per_sec = bins as f64 / (score_ms / 1e3);
    println!("  score: {scored_bins_per_sec:.0} bins/s");

    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let json = format!(
        r#"{{
  "generated_by": "bench_pipeline",
  "unix_time": {stamp},
  "threads_available": {threads},
  "covariance": [
{covariance_json}
  ],
  "gram": {{ "rows": 300, "cols": 484, "ms": {gram_product_ms:.3} }},
  "sym_eigen": {{ "n": 300, "ms": {eigen_ms:.3} }},
  "fit_geant": {{
    "rows": {geant_t},
    "cols": {geant_n},
    "normal_dim": {geant_m},
    "full_ql_ms": {full_ms:.3},
    "partial_ms": {partial_ms:.3},
    "partial_k": {partial_k},
    "partial_pca_only_ms": {pca_partial_ms:.3},
    "gram_ms": {gram_ms:.3},
    "partial_speedup": {partial_speedup:.3},
    "gram_speedup": {gram_speedup:.3},
    "threshold_rel_err_partial": {partial_rel:.3e},
    "threshold_rel_err_gram": {gram_rel:.3e}
  }},
  "block_matvec": {{
    "n": 1936,
    "block": 18,
    "serial_ms": {bm_serial_ms:.3},
    "fanned_ms": {bm_fanned_ms:.3},
    "speedup": {bm_speedup:.3},
    "note": "scoped-thread row fan-out; speedup is bounded by threads_available"
  }},
  "streaming_ingest": {{
    "flows": {p},
    "bins": {bins},
    "packets": {total_packets},
    "ms": {ingest_ms:.3},
    "bins_per_sec": {bins_per_sec:.1},
    "packets_per_sec": {packets_per_sec:.1}
  }},
  "ingest_combining": {{
    "flows": {ing_flows},
    "bins": {ing_bins},
    "packets": {ing_packets},
    "distinct_flow_runs": {ing_distinct},
    "packets_per_distinct_run": {ing_ratio:.3},
    "per_packet_ms": {ing_serial_ms:.3},
    "per_packet_pkts_per_sec": {ing_pp_pps:.1},
    "combined_ms": {ing_combined_ms:.3},
    "combined_pkts_per_sec": {ing_cb_pps:.1},
    "combined_speedup_vs_per_packet": {ing_cb_speedup:.3},
    "flow_records": {{ "records": {ing_records}, "ms": {ing_records_ms:.3}, "represented_pkts_per_sec": {ing_rec_pps:.1} }},
    "burst_feed": {{
      "burst_factor": {ing_b_factor},
      "bins": {ing_b_bins},
      "packets": {ing_b_packets},
      "distinct_flow_runs": {ing_b_distinct},
      "packets_per_distinct_run": {ing_b_ratio:.3},
      "per_packet_ms": {ing_b_pp_ms:.3},
      "per_packet_pkts_per_sec": {ing_b_pp_pps:.1},
      "combined_ms": {ing_b_cb_ms:.3},
      "combined_pkts_per_sec": {ing_b_cb_pps:.1},
      "combined_speedup_vs_per_packet": {ing_b_speedup:.3}
    }},
    "note": "single core; per-packet = serial StreamingGridBuilder offer_packet loop over the same feed; combined = offer_packets batches (atomic validate, sort-and-group by cell, merge equal flow tuples, weighted add_n into hint-presized flat histograms); outputs verified bit-identical before timing. The plain synthetic feed draws every packet's tuple independently (~1 packet per distinct run), so combining has nothing to merge there and its speedup reflects only cell-grouped accumulation; the burst feed is the same traffic in the flow-burst shape real (unsampled) links deliver, where the ratio — and the combining win — is real"
  }},
  "ingest_sharded": {{
    "flows": {ing_flows},
    "bins": {ing_bins},
    "packets": {ing_packets},
    "serial_per_packet_ms": {ing_serial_ms:.3},
    "runs": [
{ingest_runs_json}
    ],
    "speedup_8_over_1": {ing_speedup_8_over_1:.3},
    "note": "per-shard accumulation fans out over scoped threads; 8-over-1 scaling requires >= 8 cores (threads_available above records this host)"
  }},
  "streaming_score": {{ "bins": {bins}, "ms": {score_ms:.3}, "bins_per_sec": {scored_bins_per_sec:.1} }}
}}
"#,
        ing_flows = ingest_sharded.flows,
        ing_bins = ingest_sharded.bins,
        ing_packets = ingest_sharded.packets,
        ing_distinct = ingest_sharded.distinct_runs,
        ing_ratio = ingest_sharded.packets as f64 / ingest_sharded.distinct_runs as f64,
        ing_serial_ms = ingest_sharded.serial_ms,
        ing_pp_pps = ingest_sharded.packets as f64 / (ingest_sharded.serial_ms / 1e3),
        ing_combined_ms = ingest_sharded.combined_ms,
        ing_cb_pps = ingest_sharded.packets as f64 / (ingest_sharded.combined_ms / 1e3),
        ing_cb_speedup = ingest_sharded.serial_ms / ingest_sharded.combined_ms,
        ing_records = ingest_sharded.records,
        ing_records_ms = ingest_sharded.records_ms,
        ing_rec_pps = ingest_sharded.packets as f64 / (ingest_sharded.records_ms / 1e3),
        ing_b_factor = ingest_sharded.burst.factor,
        ing_b_bins = ingest_sharded.burst.bins,
        ing_b_packets = ingest_sharded.burst.packets,
        ing_b_distinct = ingest_sharded.burst.distinct_runs,
        ing_b_ratio =
            ingest_sharded.burst.packets as f64 / ingest_sharded.burst.distinct_runs as f64,
        ing_b_pp_ms = ingest_sharded.burst.per_packet_ms,
        ing_b_pp_pps =
            ingest_sharded.burst.packets as f64 / (ingest_sharded.burst.per_packet_ms / 1e3),
        ing_b_cb_ms = ingest_sharded.burst.combined_ms,
        ing_b_cb_pps =
            ingest_sharded.burst.packets as f64 / (ingest_sharded.burst.combined_ms / 1e3),
        ing_b_speedup = ingest_sharded.burst.per_packet_ms / ingest_sharded.burst.combined_ms,
        ing_speedup_8_over_1 = shard1_ms / shard8_ms,
    );
    std::fs::write(&out_path, json).expect("write snapshot");
    println!("wrote {out_path}");
}
