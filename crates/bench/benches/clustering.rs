//! Benchmarks of the classification layer: k-means, hierarchical
//! agglomerative clustering, and the cluster-count variation metrics —
//! including the linkage and seeding ablations called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use entromine::cluster::{agglomerative, variation, KMeans, Linkage, Seeding};
use entromine::linalg::Mat;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Synthetic anomaly points: unit-norm 4-vectors around a handful of
/// archetype directions (like the paper's entropy-space clusters).
fn anomaly_points(n: usize, seed: u64) -> Mat {
    let archetypes = [
        [-0.5, -0.5, -0.5, -0.5], // alpha
        [0.0, 0.9, 0.3, -0.3],    // network scan
        [-0.3, 0.0, -0.4, 0.85],  // port scan
        [0.9, -0.2, -0.35, -0.1], // ddos
        [0.5, 0.3, 0.5, 0.25],    // outage
    ];
    let mut rng = SmallRng::seed_from_u64(seed);
    Mat::from_fn(n, 4, |i, j| {
        let a = archetypes[i % archetypes.len()];
        a[j] + 0.05 * (rng.random::<f64>() - 0.5)
    })
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans");
    for n in [200usize, 1000] {
        let points = anomaly_points(n, 1);
        group.bench_with_input(
            BenchmarkId::new("random_seeding_k10", n),
            &points,
            |b, p| {
                b.iter(|| black_box(KMeans::new(10).with_seed(7).fit(black_box(p))));
            },
        );
        group.bench_with_input(BenchmarkId::new("plusplus_k10", n), &points, |b, p| {
            b.iter(|| {
                black_box(
                    KMeans::new(10)
                        .with_seed(7)
                        .with_seeding(Seeding::PlusPlus)
                        .fit(black_box(p)),
                )
            });
        });
    }
    group.finish();
}

fn bench_hierarchical(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchical");
    group.sample_size(10);
    for n in [200usize, 500] {
        let points = anomaly_points(n, 2);
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            group.bench_with_input(
                BenchmarkId::new(format!("{linkage:?}_k10"), n),
                &points,
                |b, p| b.iter(|| black_box(agglomerative(black_box(p), 10, linkage))),
            );
        }
    }
    group.finish();
}

fn bench_variation(c: &mut Criterion) {
    let points = anomaly_points(500, 3);
    let clustering = agglomerative(&points, 10, Linkage::Single);
    c.bench_function("trace_w_trace_b_500pts", |b| {
        b.iter(|| black_box(variation(black_box(&points), black_box(&clustering))));
    });
}

criterion_group!(benches, bench_kmeans, bench_hierarchical, bench_variation);
criterion_main!(benches);
