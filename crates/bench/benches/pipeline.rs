//! Benchmarks of the streaming-pipeline hot paths: the blocked covariance
//! and Gram kernels, the symmetric eigensolver behind every fit, and the
//! streaming ingest stage (packets in, finalized bins out).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use entromine::entropy::stream::{StreamConfig, StreamingGridBuilder};
use entromine::linalg::{sym_eigen, MomentAccumulator};
use entromine::net::{Ipv4, PacketHeader};
use entromine_bench::traffic_matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_covariance(c: &mut Criterion) {
    let mut group = c.benchmark_group("covariance");
    for (t, n) in [(288usize, 121usize), (500, 484)] {
        let x = traffic_matrix(t, n, 3);
        group.bench_with_input(
            BenchmarkId::new("adaptive", format!("{t}x{n}")),
            &x,
            |b, x| b.iter(|| black_box(x.covariance().unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("blocked", format!("{t}x{n}")),
            &x,
            |b, x| b.iter(|| black_box(x.covariance_blocked().unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("serial_baseline", format!("{t}x{n}")),
            &x,
            |b, x| b.iter(|| black_box(x.covariance_serial().unwrap())),
        );
    }
    group.finish();
}

fn bench_gram(c: &mut Criterion) {
    // The Gram path's habitat: wide matrices (one week of bins, 4p wide).
    let x = traffic_matrix(300, 484, 5);
    c.bench_function("gram/300x484", |b| b.iter(|| black_box(x.gram())));
}

fn bench_moments(c: &mut Criterion) {
    let x = traffic_matrix(500, 121, 7);
    c.bench_function("moments/push_500x121", |b| {
        b.iter(|| {
            let mut acc = MomentAccumulator::new(121);
            for row in x.row_iter() {
                acc.push(black_box(row)).unwrap();
            }
            black_box(acc.covariance().unwrap())
        })
    });
}

fn bench_sym_eigen(c: &mut Criterion) {
    let mut group = c.benchmark_group("sym_eigen");
    for n in [121usize, 300] {
        let cov = traffic_matrix(2 * n, n, 11).covariance().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &cov, |b, cov| {
            b.iter(|| black_box(sym_eigen(cov).unwrap()))
        });
    }
    group.finish();
}

/// One synthetic bin's worth of packets for `p` flows.
fn bin_packets(p: usize, per_flow: usize, seed: u64) -> Vec<(usize, PacketHeader)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(p * per_flow);
    for flow in 0..p {
        for _ in 0..per_flow {
            out.push((
                flow,
                PacketHeader::tcp(
                    Ipv4(rng.random::<u32>() % 4096),
                    rng.random_range(1024..=65535),
                    Ipv4(rng.random::<u32>() % 256),
                    *[80u16, 443, 53].get(rng.random_range(0..3)).unwrap(),
                    576,
                    0,
                ),
            ));
        }
    }
    out
}

fn bench_streaming_ingest(c: &mut Criterion) {
    // Throughput of the ingest stage: offer a full bin of packets for 121
    // flows, advance the watermark, drain the finalized bin.
    let p = 121;
    let per_flow = 100;
    let packets = bin_packets(p, per_flow, 13);
    let mut group = c.benchmark_group("streaming_ingest");
    group.throughput(Throughput::Elements(1));
    group.bench_function("finalize_bin_121_flows_12k_pkts", |b| {
        b.iter(|| {
            let mut grid = StreamingGridBuilder::new(StreamConfig::new(p)).unwrap();
            for (flow, pkt) in &packets {
                grid.offer_packet(*flow, pkt).unwrap();
            }
            black_box(grid.advance_watermark(300))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_covariance,
    bench_gram,
    bench_moments,
    bench_sym_eigen,
    bench_streaming_ingest
);
criterion_main!(benches);
