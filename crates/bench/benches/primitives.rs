//! Benchmarks of the measurement-plane primitives: histograms, entropy,
//! sampling, routing lookups, and the synthetic samplers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use entromine::entropy::{sample_entropy, BinAccumulator, FeatureHistogram};
use entromine::net::sample::PeriodicSampler;
use entromine::net::{AddressPlan, Ipv4, PacketHeader, Topology};
use entromine::synth::distr::{poisson, AliasTable};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn packets(n: usize, seed: u64) -> Vec<PacketHeader> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            PacketHeader::tcp(
                Ipv4(rng.random::<u32>() % 4096),
                rng.random_range(1024..=65535),
                Ipv4(rng.random::<u32>() % 64),
                *[80u16, 443, 53].get(rng.random_range(0..3)).unwrap(),
                576,
                i as u64,
            )
        })
        .collect()
}

fn bench_histograms(c: &mut Criterion) {
    let mut group = c.benchmark_group("histogram");
    for n in [1_000usize, 10_000] {
        let pkts = packets(n, 7);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("accumulate_4_features", n),
            &pkts,
            |b, pkts| {
                b.iter(|| {
                    let mut acc = BinAccumulator::new();
                    acc.add_packets(black_box(pkts));
                    black_box(acc.summarize())
                });
            },
        );
    }
    group.finish();
}

fn bench_entropy(c: &mut Criterion) {
    let mut group = c.benchmark_group("entropy");
    for distinct in [100u32, 10_000] {
        let mut hist = FeatureHistogram::new();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100_000 {
            hist.add(rng.random::<u32>() % distinct);
        }
        group.bench_with_input(
            BenchmarkId::new("sample_entropy", distinct),
            &hist,
            |b, h| b.iter(|| black_box(sample_entropy(black_box(h)))),
        );
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let pkts = packets(100_000, 5);
    c.bench_function("periodic_sampler_1_in_100_over_100k", |b| {
        b.iter(|| {
            let mut s = PeriodicSampler::new(100);
            black_box(s.sample(black_box(&pkts)))
        });
    });
}

fn bench_routing(c: &mut Criterion) {
    let topo = Topology::geant();
    let plan = AddressPlan::standard(&topo);
    let mut rng = SmallRng::seed_from_u64(11);
    let addrs: Vec<Ipv4> = (0..10_000)
        .map(|_| plan.host(rng.random_range(0..22), rng.random_range(0..100_000)))
        .collect();
    c.bench_function("lpm_lookup_10k", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &a in &addrs {
                if plan.resolve(black_box(a)).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });
}

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("samplers");
    let table = AliasTable::new(&(1..=64).map(|i| 1.0 / i as f64).collect::<Vec<_>>());
    group.bench_function("alias_draw_10k", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..10_000 {
                acc += table.sample(&mut rng);
            }
            black_box(acc)
        });
    });
    for lambda in [5.0f64, 5_000.0] {
        group.bench_with_input(
            BenchmarkId::new("poisson_1k_draws", lambda as u64),
            &lambda,
            |b, &l| {
                let mut rng = SmallRng::seed_from_u64(2);
                b.iter(|| {
                    let mut acc = 0u64;
                    for _ in 0..1_000 {
                        acc += poisson(&mut rng, l);
                    }
                    black_box(acc)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_histograms,
    bench_entropy,
    bench_sampling,
    bench_routing,
    bench_samplers
);
criterion_main!(benches);
