//! Benchmarks of the numerical core: eigendecomposition, model fitting,
//! per-row scoring, and multi-attribute identification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use entromine::linalg::{sym_eigen, Mat};
use entromine::subspace::{DimSelection, MultiwayModel, SubspaceModel};
use entromine_bench::small_abilene;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_psd(n: usize, seed: u64) -> Mat {
    let mut rng = SmallRng::seed_from_u64(seed);
    let b = Mat::from_fn(n, n / 2 + 1, |_, _| rng.random::<f64>() - 0.5);
    b.matmul(&b.transpose()).expect("shapes")
}

fn bench_eigen(c: &mut Criterion) {
    let mut group = c.benchmark_group("sym_eigen");
    group.sample_size(10);
    // 121 = Abilene volume matrix width; 484 = Abilene unfolded entropy.
    for n in [121usize, 484] {
        let a = random_psd(n, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| black_box(sym_eigen(black_box(a)).expect("eigen")));
        });
    }
    group.finish();
}

fn bench_fit_and_score(c: &mut Criterion) {
    let dataset = small_abilene(21);
    let mut group = c.benchmark_group("subspace_model");
    group.sample_size(10);
    group.bench_function("fit_volume_121_cols", |b| {
        b.iter(|| {
            black_box(
                SubspaceModel::fit(dataset.volumes.packets(), DimSelection::Fixed(10))
                    .expect("fit"),
            )
        });
    });
    group.bench_function("fit_multiway_484_cols", |b| {
        b.iter(|| {
            black_box(MultiwayModel::fit(&dataset.tensor, DimSelection::Fixed(10)).expect("fit"))
        });
    });

    let model = MultiwayModel::fit(&dataset.tensor, DimSelection::Fixed(10)).expect("fit");
    let row = dataset.tensor.unfolded_row(30);
    group.bench_function("spe_one_row_484", |b| {
        b.iter(|| black_box(model.spe(black_box(&row)).expect("spe")));
    });
    group.bench_function("identify_one_row_484", |b| {
        b.iter(|| black_box(model.identify(black_box(&row), 0.5, 3).expect("identify")));
    });
    group.finish();
}

criterion_group!(benches, bench_eigen, bench_fit_and_score);
criterion_main!(benches);
