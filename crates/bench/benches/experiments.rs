//! Per-experiment benchmarks: one group per table/figure of the paper,
//! timing the core computation its repro binary performs (on small
//! fixtures — the binaries themselves run the full-size versions).

use criterion::{criterion_group, criterion_main, Criterion};
use entromine::cluster::{variation_curve, CurveAlgorithm, Linkage};
use entromine::entropy::Feature;
use entromine::net::OdPair;
use entromine::synth::anomaly::anomaly_packets;
use entromine::synth::traces::sampled_attack_packets;
use entromine::synth::{AnomalyLabel, TraceKind};
use entromine::{anomaly_point_matrix, ClassifierConfig, ClusterAlgorithm, Diagnoser};
use entromine_bench::{small_abilene, small_abilene_with_anomalies};
use std::hint::black_box;

/// Figure 1: rank-ordered feature histograms, normal vs anomalous bin.
fn bench_fig1(c: &mut Criterion) {
    let dataset = small_abilene(31);
    c.bench_function("fig1_rank_ordered_histograms", |b| {
        b.iter(|| {
            let acc = dataset.net.baseline_cell(30, 5);
            let ports = acc.histogram(Feature::DstPort).rank_ordered_counts();
            let addrs = acc.histogram(Feature::DstIp).rank_ordered_counts();
            black_box((ports, addrs))
        });
    });
}

/// Figure 2: volume and entropy timeseries extraction for one OD flow.
fn bench_fig2(c: &mut Criterion) {
    let dataset = small_abilene(32);
    c.bench_function("fig2_timeseries_extraction", |b| {
        b.iter(|| {
            let h_ip = dataset.tensor.series(5, Feature::DstIp);
            let h_port = dataset.tensor.series(5, Feature::DstPort);
            let bytes = dataset.volumes.bytes().col(5);
            black_box((h_ip, h_port, bytes))
        });
    });
}

/// Figure 4 / Table 2: full fit + diagnose over the dataset.
fn bench_fig4_table2(c: &mut Criterion) {
    let dataset = small_abilene_with_anomalies(33);
    let mut group = c.benchmark_group("fig4_table2");
    group.sample_size(10);
    group.bench_function("fit_and_diagnose", |b| {
        b.iter(|| {
            let fitted = Diagnoser::default().fit(black_box(&dataset)).expect("fit");
            black_box(fitted.diagnose(&dataset).expect("diagnose"))
        });
    });
    let fitted = Diagnoser::default().fit(&dataset).expect("fit");
    group.bench_function("spe_series_only", |b| {
        b.iter(|| black_box(fitted.spe_series(&dataset).expect("series")));
    });
    group.finish();
}

/// Figure 5: one what-if trace injection + scoring.
fn bench_fig5(c: &mut Criterion) {
    let dataset = small_abilene(34);
    let fitted = Diagnoser::default().fit(&dataset).expect("fit");
    let pkts = sampled_attack_packets(
        TraceKind::WormScan,
        dataset.net.plan(),
        OdPair::new(2, 7),
        150,
        30 * 300,
        9,
    );
    let flow = dataset.net.indexer().index(OdPair::new(2, 7));
    c.bench_function("fig5_single_injection_eval", |b| {
        b.iter(|| {
            let what = dataset.whatif_rows(30, &[(flow, &pkts)]);
            black_box(fitted.entropy_model().spe(&what.entropy).expect("spe"))
        });
    });
}

/// Figure 6: a k-flow DDOS injection + scoring.
fn bench_fig6(c: &mut Criterion) {
    let dataset = small_abilene(35);
    let fitted = Diagnoser::default().fit(&dataset).expect("fit");
    let k = 5usize;
    let packets_per_flow: Vec<Vec<_>> = (0..k)
        .map(|o| {
            sampled_attack_packets(
                TraceKind::DosMulti,
                dataset.net.plan(),
                OdPair::new(o, 9),
                80,
                30 * 300,
                o as u64,
            )
        })
        .collect();
    let injections: Vec<(usize, &[_])> = (0..k)
        .map(|o| {
            (
                dataset.net.indexer().index(OdPair::new(o, 9)),
                packets_per_flow[o].as_slice(),
            )
        })
        .collect();
    c.bench_function("fig6_five_flow_injection_eval", |b| {
        b.iter(|| {
            let what = dataset.whatif_rows(30, &injections);
            black_box(fitted.entropy_model().spe(&what.entropy).expect("spe"))
        });
    });
}

/// Figure 7 / Tables 6–8: clustering detected anomalies.
fn bench_fig7_tables(c: &mut Criterion) {
    let dataset = small_abilene_with_anomalies(36);
    let fitted = Diagnoser::default().fit(&dataset).expect("fit");
    let report = fitted.diagnose(&dataset).expect("diagnose");
    let (points, _) = anomaly_point_matrix(&report);
    if points.rows() < 4 {
        // Not enough anomalies on this fixture to cluster meaningfully;
        // keep the bench suite robust rather than panicking.
        return;
    }
    let k = 3.min(points.rows());
    c.bench_function("fig7_cluster_known_anomalies", |b| {
        b.iter(|| {
            black_box(
                ClassifierConfig {
                    k,
                    algorithm: ClusterAlgorithm::Hierarchical(Linkage::Single),
                }
                .classify(black_box(&points))
                .expect("classify"),
            )
        });
    });
}

/// Figure 10: the trace(W)/trace(B) curve sweep.
fn bench_fig10(c: &mut Criterion) {
    let dataset = small_abilene_with_anomalies(37);
    let fitted = Diagnoser::default().fit(&dataset).expect("fit");
    let report = fitted.diagnose(&dataset).expect("diagnose");
    let (points, _) = anomaly_point_matrix(&report);
    if points.rows() < 8 {
        return;
    }
    let max_k = 6.min(points.rows());
    c.bench_function("fig10_variation_curve", |b| {
        b.iter(|| {
            black_box(variation_curve(
                black_box(&points),
                2..=max_k,
                CurveAlgorithm::Hierarchical(Linkage::Average),
            ))
        });
    });
}

/// Table 5: anomaly packet synthesis + thinning arithmetic.
fn bench_table5(c: &mut Criterion) {
    let dataset = small_abilene(38);
    c.bench_function("table5_anomaly_packet_synthesis_1k", |b| {
        b.iter(|| {
            black_box(anomaly_packets(
                AnomalyLabel::NetworkScan,
                dataset.net.plan(),
                OdPair::new(1, 6),
                1000,
                0,
                5,
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_fig1,
    bench_fig2,
    bench_fig4_table2,
    bench_fig5,
    bench_fig6,
    bench_fig7_tables,
    bench_fig10,
    bench_table5
);
criterion_main!(benches);
