//! The sliding training window of a rolling-model monitor.
//!
//! A deployment that refits as traffic drifts needs to hold "the last W
//! bins" in a form a fit can consume. Re-pushing W rows of width `4p`
//! into fresh moment accumulators on every refit costs `O(W·p²)`; a
//! [`TrainingWindow`] instead accumulates **chunks** — each chunk owns
//! its own [`MomentAccumulator`]s (bytes, packets) and [`MultiwayFitter`]
//! (entropy) over `chunk_bins` consecutive bins — and a refit merges the
//! live chunks with Chan's pairwise moment combination, `O(K·p²)` for `K`
//! chunks. Rolling the window forward is dropping the oldest chunk:
//! subtraction-free, numerically safe, and exactly what the Chan merge
//! was built for.
//!
//! The raw rows are retained alongside the moments (bounded by the
//! window capacity) because two parts of the fit cannot run on moments
//! alone: the clean-training trimming rounds (`refit_rounds`) must score
//! and exclude individual bins, and [`ThresholdPolicy::Empirical`] needs
//! the training-SPE order statistics.
//!
//! [`fit`](TrainingWindow::fit) is **the** window-fit code path: the
//! online [`Monitor`](crate::Monitor) calls it at every refit, and an
//! offline replay that pushes the same bins through a fresh window gets
//! bit-identical models — the property the monitor-lifecycle suite pins.
//!
//! [`MomentAccumulator`]: entromine_linalg::MomentAccumulator
//! [`MultiwayFitter`]: entromine_subspace::MultiwayFitter
//! [`ThresholdPolicy::Empirical`]: entromine_subspace::ThresholdPolicy::Empirical

use crate::pipeline::{DiagnoserConfig, FittedDiagnoser};
use crate::DiagnosisError;
use entromine_linalg::MomentAccumulator;
use entromine_subspace::{MultiwayFitter, SubspaceModel};
use std::collections::VecDeque;
use std::time::Instant;

/// Diagnostics for one fit round of [`TrainingWindow::fit_warm`]: how the
/// round's moments were produced, whether the eigensolves were seeded
/// from a previous basis, and what they cost. Purely observational — the
/// fitted models are a function of the push history and the warm seed
/// alone, never of these measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundTrace {
    /// Rows the round trained on.
    pub training_bins: usize,
    /// Rows the previous round's suspicion gate excluded (0 in round 0).
    pub flagged_bins: usize,
    /// Whether any of the round's three eigensolves was warm-started
    /// from a previous model's basis (and actually ran the partial
    /// engine — dense fallbacks report cold).
    pub warm_start: bool,
    /// Whether the round's moments came from downdating the flagged rows
    /// out of the round-0 merge (`false`: re-accumulated the clean rows).
    pub downdated: bool,
    /// Total Rayleigh–Ritz cycles across the round's three eigensolves
    /// (0 when every model took a dense engine).
    pub cycles: usize,
    /// Wall-clock of the round, milliseconds. Timing only — it never
    /// feeds back into the fit.
    pub ms: f64,
}

/// Per-round trace of one [`TrainingWindow::fit_warm`] call, surfaced to
/// operators through [`RefitReport`](crate::RefitReport).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RefitTrace {
    /// One entry per executed fit round, in order (round 0 first).
    pub rounds: Vec<RoundTrace>,
}

impl RefitTrace {
    /// Total wall-clock across all rounds, milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.rounds.iter().map(|r| r.ms).sum()
    }

    /// Whether any round's eigensolve ran warm-started.
    pub fn any_warm(&self) -> bool {
        self.rounds.iter().any(|r| r.warm_start)
    }

    fn record(
        &mut self,
        fitted: &FittedDiagnoser,
        training_bins: usize,
        flagged_bins: usize,
        downdated: bool,
        start: Instant,
    ) {
        let diags = [
            fitted.bytes_model().pca().diagnostics(),
            fitted.packets_model().pca().diagnostics(),
            fitted.entropy_model().inner().pca().diagnostics(),
        ];
        self.rounds.push(RoundTrace {
            training_bins,
            flagged_bins,
            warm_start: diags.iter().any(|d| d.warm_start),
            downdated,
            cycles: diags.iter().map(|d| d.cycles).sum(),
            ms: start.elapsed().as_secs_f64() * 1e3,
        });
    }
}

/// One training bin's retained measurement rows.
#[derive(Debug, Clone)]
struct WindowRow {
    bin: usize,
    bytes: Vec<f64>,
    packets: Vec<f64>,
    entropy_raw: Vec<f64>,
}

/// One chunk of the window: moments plus retained rows over up to
/// `chunk_bins` consecutive pushes.
#[derive(Debug, Clone)]
struct WindowChunk {
    bytes: MomentAccumulator,
    packets: MomentAccumulator,
    entropy: MultiwayFitter,
    rows: Vec<WindowRow>,
}

impl WindowChunk {
    fn new(n_flows: usize) -> Result<Self, DiagnosisError> {
        Ok(WindowChunk {
            bytes: MomentAccumulator::new(n_flows),
            packets: MomentAccumulator::new(n_flows),
            // Dimension and engine are re-selected at fit time.
            entropy: MultiwayFitter::new(n_flows, entromine_subspace::DimSelection::Fixed(1))?,
            rows: Vec::new(),
        })
    }
}

/// A sliding, chunked training window over scored bins: Chan-merged
/// chunk moments plus retained rows, fitted by one auditable code path.
#[derive(Debug, Clone)]
pub struct TrainingWindow {
    n_flows: usize,
    capacity_bins: usize,
    chunk_bins: usize,
    chunks: VecDeque<WindowChunk>,
}

impl TrainingWindow {
    /// An empty window for `n_flows` OD flows holding at most
    /// `capacity_bins` bins, rolled forward in `chunk_bins` granules.
    ///
    /// Because rolling drops whole chunks, the effective window length
    /// stays within `[capacity_bins - chunk_bins + 1, capacity_bins]`
    /// once full.
    ///
    /// # Errors
    ///
    /// `BadConfig` when any parameter is zero, `chunk_bins` exceeds
    /// `capacity_bins`, or fewer than 2 flows are requested (the subspace
    /// method models an ensemble).
    pub fn new(
        n_flows: usize,
        capacity_bins: usize,
        chunk_bins: usize,
    ) -> Result<Self, DiagnosisError> {
        if n_flows < 2 {
            return Err(DiagnosisError::BadConfig(
                "need at least 2 OD flows for ensemble modeling",
            ));
        }
        if capacity_bins == 0 || chunk_bins == 0 {
            return Err(DiagnosisError::BadConfig(
                "window and chunk sizes must be at least 1 bin",
            ));
        }
        if chunk_bins > capacity_bins {
            return Err(DiagnosisError::BadConfig(
                "chunk size cannot exceed the window capacity",
            ));
        }
        Ok(TrainingWindow {
            n_flows,
            capacity_bins,
            chunk_bins,
            chunks: VecDeque::new(),
        })
    }

    /// Number of OD flows `p`.
    pub fn n_flows(&self) -> usize {
        self.n_flows
    }

    /// Bins currently held.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|c| c.rows.len()).sum()
    }

    /// `true` when no bin has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Maximum bins held before the oldest chunk rolls out.
    pub fn capacity_bins(&self) -> usize {
        self.capacity_bins
    }

    /// Roll granularity in bins.
    pub fn chunk_bins(&self) -> usize {
        self.chunk_bins
    }

    /// The bin indices currently in the window, oldest first.
    pub fn bins(&self) -> Vec<usize> {
        self.chunks
            .iter()
            .flat_map(|c| c.rows.iter().map(|r| r.bin))
            .collect()
    }

    /// Absorbs one bin's measurement rows: byte and packet counts per
    /// flow (length `p`) and the raw unfolded entropy row (length `4p`).
    /// Rolls the oldest chunk out once the capacity is exceeded.
    ///
    /// # Errors
    ///
    /// `BadDataset` on a row-length mismatch; `NonFiniteInput` when any
    /// row carries a NaN or infinite value. The non-finite rejection
    /// happens before any chunk state is touched: one absorbed NaN would
    /// silently poison the chunk's moments and every later Chan merge,
    /// making **every** subsequent fit of this window fail until the
    /// poisoned chunk rolls out.
    pub fn push_bin(
        &mut self,
        bin: usize,
        bytes_row: &[f64],
        packets_row: &[f64],
        entropy_raw: &[f64],
    ) -> Result<(), DiagnosisError> {
        let p = self.n_flows;
        if bytes_row.len() != p || packets_row.len() != p || entropy_raw.len() != 4 * p {
            return Err(DiagnosisError::BadDataset(
                "window rows must be p, p, and 4p long",
            ));
        }
        let finite = |row: &[f64]| row.iter().all(|v| v.is_finite());
        if !finite(bytes_row) || !finite(packets_row) || !finite(entropy_raw) {
            return Err(DiagnosisError::NonFiniteInput(
                "window rows must be finite; quarantine NaN/Inf bins upstream",
            ));
        }
        let need_new = self
            .chunks
            .back()
            .is_none_or(|c| c.rows.len() >= self.chunk_bins);
        if need_new {
            self.chunks.push_back(WindowChunk::new(p)?);
        }
        let chunk = self.chunks.back_mut().expect("chunk just ensured");
        chunk.bytes.push(bytes_row).map_err(subspace_err)?;
        chunk.packets.push(packets_row).map_err(subspace_err)?;
        chunk.entropy.push_row(entropy_raw)?;
        chunk.rows.push(WindowRow {
            bin,
            bytes: bytes_row.to_vec(),
            packets: packets_row.to_vec(),
            entropy_raw: entropy_raw.to_vec(),
        });
        while self.len() > self.capacity_bins && self.chunks.len() > 1 {
            self.chunks.pop_front();
        }
        Ok(())
    }

    /// Fits the three subspace models on the window's current contents —
    /// merged chunk moments for the first round, then the configured
    /// clean-training trimming rounds (`refit_rounds`, same semantics and
    /// same row test as the batch [`Diagnoser`](crate::Diagnoser)), with
    /// every round's models calibrated on its training rows so
    /// [`ThresholdPolicy::Empirical`](entromine_subspace::ThresholdPolicy::Empirical)
    /// works out of the box.
    ///
    /// The result is a pure function of the pushed-bin history and the
    /// config: an offline replay of the same pushes produces bit-identical
    /// models, which is what makes online refits auditable.
    ///
    /// # Errors
    ///
    /// `BadConfig` on an invalid `alpha`; `BadDataset` with fewer than 4
    /// bins; any fit error from the subspace layer.
    pub fn fit(&self, config: &DiagnoserConfig) -> Result<FittedDiagnoser, DiagnosisError> {
        self.fit_warm(config, None).map(|(fitted, _)| fitted)
    }

    /// [`fit`](Self::fit) with the warm refit engine engaged: when a
    /// `serving` model is supplied, round 0 seeds its three eigensolves
    /// from that model's basis, each trimming round seeds from the
    /// previous round's basis, and trimmed-round moments are produced by
    /// *downdating* the flagged rows out of the round-0 Chan merge
    /// (`O(flagged · p²)`) instead of re-accumulating every clean row
    /// (`O(bins · p²)`). When the downdate guard refuses (too large a
    /// removed fraction, or catastrophic cancellation on a variance), the
    /// round silently falls back to re-accumulation.
    ///
    /// With `serving = None` this is exactly the cold [`fit`](Self::fit)
    /// path — the executable spec the warm engine is pinned against.
    /// Either way the result is a deterministic pure function of the push
    /// history, the config, and the warm seed: an offline replay that
    /// pushes the same bins and supplies the same serving model gets
    /// bit-identical models.
    ///
    /// # Errors
    ///
    /// As [`fit`](Self::fit).
    pub fn fit_warm(
        &self,
        config: &DiagnoserConfig,
        serving: Option<&FittedDiagnoser>,
    ) -> Result<(FittedDiagnoser, RefitTrace), DiagnosisError> {
        config.validate_alpha()?;
        let n_bins = self.len();
        if n_bins < 4 {
            return Err(DiagnosisError::BadDataset(
                "need at least 4 bins to model variation",
            ));
        }
        let rows: Vec<&WindowRow> = self.chunks.iter().flat_map(|c| c.rows.iter()).collect();
        let mut trace = RefitTrace::default();
        let round_start = Instant::now();

        // Round 0: Chan-merge the chunk moments — the cheap path that
        // makes routine refits O(chunks · p²) instead of O(bins · p²).
        let mut chunks = self.chunks.iter();
        let first = chunks.next().expect("non-empty window");
        let mut bytes = first.bytes.clone();
        let mut packets = first.packets.clone();
        let mut entropy = first.entropy.clone();
        for c in chunks {
            bytes.merge(&c.bytes).map_err(subspace_err)?;
            packets.merge(&c.packets).map_err(subspace_err)?;
            entropy.merge(&c.entropy)?;
        }
        // The warm engine keeps the round-0 merge so trimming rounds can
        // downdate flagged rows from it; the cold path never needs it.
        let merged = serving
            .is_some()
            .then(|| (bytes.clone(), packets.clone(), entropy.clone()));
        let mut fitted = self.fit_models(config, &bytes, &packets, entropy, &rows, serving)?;
        trace.record(&fitted, rows.len(), 0, false, round_start);

        for _ in 0..config.refit_rounds {
            let round_start = Instant::now();
            // Same trimming statistic as the batch pipeline: SPE or
            // Hotelling's T² on any detector, scanned as one batched
            // single-pass (SPE, T²) sweep per model over shared scratch.
            let gate = fitted.suspicion_gate(config.alpha)?;
            let flags = fitted.suspicion_flags(
                &gate,
                rows.iter().map(|r| {
                    (
                        r.bytes.as_slice(),
                        r.packets.as_slice(),
                        r.entropy_raw.as_slice(),
                    )
                }),
            )?;
            let mut clean: Vec<&WindowRow> = Vec::with_capacity(rows.len());
            let mut flagged_rows: Vec<&WindowRow> = Vec::new();
            for (row, &suspicious) in rows.iter().zip(&flags) {
                if suspicious {
                    flagged_rows.push(row);
                } else {
                    clean.push(row);
                }
            }
            let flagged = flagged_rows.len();
            if flagged == 0 {
                break;
            }
            if flagged as f64 > config.max_excluded_fraction * n_bins as f64 {
                // Implausibly many exclusions: trust the current fit.
                break;
            }
            if clean.len() < 4 {
                break;
            }
            // Trimmed rounds have no precomputed chunk moments. Warm
            // engine: remove the flagged rows from the round-0 merge via
            // Chan downdating (all three accumulators or none — a refusal
            // from any guard falls back wholesale). Cold engine, or a
            // guarded refusal: re-accumulate the surviving rows.
            let mut downdate = None;
            if let Some((bytes0, packets0, entropy0)) = &merged {
                let (rem_bytes, rem_packets, rem_entropy) = self.accumulate_rows(&flagged_rows)?;
                let mut bytes = bytes0.clone();
                let mut packets = packets0.clone();
                let mut entropy = entropy0.clone();
                let accepted = bytes.try_downdate(&rem_bytes).map_err(subspace_err)?
                    && packets.try_downdate(&rem_packets).map_err(subspace_err)?
                    && entropy.try_downdate(&rem_entropy)?;
                if accepted {
                    downdate = Some((bytes, packets, entropy));
                }
            }
            let downdated = downdate.is_some();
            let (bytes, packets, entropy) = match downdate {
                Some(moments) => moments,
                None => self.accumulate_rows(&clean)?,
            };
            // Each trimming round seeds from the round that flagged its
            // exclusions — the basis drifts by at most those few rows.
            let warm = serving.is_some().then_some(&fitted);
            fitted = self.fit_models(config, &bytes, &packets, entropy, &clean, warm)?;
            trace.record(&fitted, clean.len(), flagged, downdated, round_start);
        }
        Ok((fitted, trace))
    }

    /// Fresh moment accumulators over exactly `rows`.
    fn accumulate_rows(
        &self,
        rows: &[&WindowRow],
    ) -> Result<(MomentAccumulator, MomentAccumulator, MultiwayFitter), DiagnosisError> {
        let p = self.n_flows;
        let mut bytes = MomentAccumulator::new(p);
        let mut packets = MomentAccumulator::new(p);
        let mut entropy = MultiwayFitter::new(p, entromine_subspace::DimSelection::Fixed(1))?;
        for row in rows {
            bytes.push(&row.bytes).map_err(subspace_err)?;
            packets.push(&row.packets).map_err(subspace_err)?;
            entropy.push_row(&row.entropy_raw)?;
        }
        Ok((bytes, packets, entropy))
    }

    /// One fit round: models from moments (eigensolves seeded from
    /// `warm`'s bases when supplied), calibrated on the round's training
    /// rows.
    fn fit_models(
        &self,
        config: &DiagnoserConfig,
        bytes: &MomentAccumulator,
        packets: &MomentAccumulator,
        entropy: MultiwayFitter,
        training_rows: &[&WindowRow],
        warm: Option<&FittedDiagnoser>,
    ) -> Result<FittedDiagnoser, DiagnosisError> {
        let p = self.n_flows;
        let strategy = config.strategy;
        let mut bytes_model = SubspaceModel::fit_from_moments_warm(
            bytes,
            config.capped_dim(p),
            strategy,
            warm.map(|f| f.bytes_model()),
        )?;
        let mut packets_model = SubspaceModel::fit_from_moments_warm(
            packets,
            config.capped_dim(p),
            strategy,
            warm.map(|f| f.packets_model()),
        )?;
        let mut entropy_model = entropy
            .with_dim(config.capped_dim(4 * p))
            .with_strategy(strategy)
            .finish_warm(warm.map(|f| f.entropy_model()))?;
        // Streamed fits are born uncalibrated; the retained rows supply
        // the training-SPE order statistics (in the same units each model
        // scores in), matching the batch fit's auto-calibration.
        bytes_model.calibrate_with_rows(training_rows.iter().map(|r| r.bytes.as_slice()))?;
        packets_model.calibrate_with_rows(training_rows.iter().map(|r| r.packets.as_slice()))?;
        entropy_model
            .calibrate_with_raw_rows(training_rows.iter().map(|r| r.entropy_raw.as_slice()))?;
        Ok(FittedDiagnoser::from_parts(
            *config,
            bytes_model,
            packets_model,
            entropy_model,
        ))
    }
}

/// The linalg error path of the window plumbing, routed through the same
/// conversion the subspace layer uses.
fn subspace_err(e: entromine_linalg::LinalgError) -> DiagnosisError {
    DiagnosisError::Subspace(entromine_subspace::SubspaceError::from(e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use entromine_subspace::ThresholdPolicy;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Pushes `bins` synthetic diurnal bins into a window.
    fn feed(window: &mut TrainingWindow, bins: std::ops::Range<usize>, seed: u64) {
        let p = window.n_flows();
        let mut rng = StdRng::seed_from_u64(seed);
        // Per-flow gains drawn once so every bin shares latent structure.
        let gains: Vec<f64> = (0..p).map(|_| 1.0 + rng.random::<f64>()).collect();
        for bin in bins {
            let phase = (bin as f64 / 288.0) * std::f64::consts::TAU;
            let mut rng = StdRng::seed_from_u64(seed ^ (bin as u64).wrapping_mul(0x9E37));
            let bytes: Vec<f64> = gains
                .iter()
                .map(|g| 1e5 * g * (1.0 + 0.2 * phase.sin()) + 500.0 * rng.random::<f64>())
                .collect();
            let packets: Vec<f64> = bytes.iter().map(|b| b / 100.0).collect();
            let entropy: Vec<f64> = (0..4 * p)
                .map(|j| gains[j % p] * (2.0 + 0.3 * phase.cos()) + 0.05 * rng.random::<f64>())
                .collect();
            window.push_bin(bin, &bytes, &packets, &entropy).unwrap();
        }
    }

    #[test]
    fn config_validated() {
        assert!(TrainingWindow::new(1, 10, 5).is_err());
        assert!(TrainingWindow::new(4, 0, 1).is_err());
        assert!(TrainingWindow::new(4, 10, 0).is_err());
        assert!(TrainingWindow::new(4, 10, 11).is_err());
        assert!(TrainingWindow::new(4, 10, 10).is_ok());
    }

    #[test]
    fn rolls_whole_chunks() {
        let mut w = TrainingWindow::new(3, 12, 4).unwrap();
        feed(&mut w, 0..12, 1);
        assert_eq!(w.len(), 12);
        assert_eq!(w.bins().first(), Some(&0));
        // One more bin: the oldest chunk (bins 0..4) rolls out.
        feed(&mut w, 12..13, 1);
        assert_eq!(w.len(), 9);
        assert_eq!(w.bins().first(), Some(&4));
        assert_eq!(w.bins().last(), Some(&12));
    }

    #[test]
    fn row_lengths_validated() {
        let mut w = TrainingWindow::new(3, 8, 4).unwrap();
        assert!(w.push_bin(0, &[1.0; 2], &[1.0; 3], &[1.0; 12]).is_err());
        assert!(w.push_bin(0, &[1.0; 3], &[1.0; 3], &[1.0; 11]).is_err());
        assert!(w.push_bin(0, &[1.0; 3], &[1.0; 3], &[1.0; 12]).is_ok());
    }

    #[test]
    fn non_finite_rows_are_rejected_before_touching_the_window() {
        let mut w = TrainingWindow::new(3, 8, 4).unwrap();
        feed(&mut w, 0..5, 7);
        let pristine = w.clone();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut bytes = vec![1.0; 3];
            bytes[1] = bad;
            assert!(matches!(
                w.push_bin(5, &bytes, &[1.0; 3], &[1.0; 12]),
                Err(DiagnosisError::NonFiniteInput(_))
            ));
            let mut entropy = vec![1.0; 12];
            entropy[7] = bad;
            assert!(matches!(
                w.push_bin(5, &[1.0; 3], &[1.0; 3], &entropy),
                Err(DiagnosisError::NonFiniteInput(_))
            ));
        }
        // The rejected pushes left nothing behind: same bins, and a fit
        // of the window is bit-identical to one that never saw them.
        assert_eq!(w.len(), pristine.len());
        assert_eq!(w.bins(), pristine.bins());
        let config = DiagnoserConfig {
            dim: entromine_subspace::DimSelection::Fixed(1),
            refit_rounds: 0,
            ..Default::default()
        };
        let fa = w.fit(&config).unwrap();
        let fb = pristine.fit(&config).unwrap();
        let probe = vec![1.5; 3];
        assert_eq!(
            fa.bytes_model().spe(&probe).unwrap(),
            fb.bytes_model().spe(&probe).unwrap()
        );
    }

    #[test]
    fn fit_requires_enough_bins() {
        let mut w = TrainingWindow::new(4, 20, 5).unwrap();
        feed(&mut w, 0..3, 2);
        assert!(matches!(
            w.fit(&DiagnoserConfig::default()),
            Err(DiagnosisError::BadDataset(_))
        ));
    }

    #[test]
    fn window_fit_is_a_pure_function_of_the_push_history() {
        // Two windows fed the same history must fit bit-identical models:
        // the property that makes online refits auditable offline.
        let config = DiagnoserConfig {
            dim: entromine_subspace::DimSelection::Fixed(2),
            ..Default::default()
        };
        let mut a = TrainingWindow::new(5, 60, 16).unwrap();
        let mut b = TrainingWindow::new(5, 60, 16).unwrap();
        feed(&mut a, 0..90, 3);
        feed(&mut b, 0..90, 3);
        let fa = a.fit(&config).unwrap();
        let fb = b.fit(&config).unwrap();
        let probe_bytes = vec![1.0e5; 5];
        let probe_entropy = vec![2.0; 20];
        assert_eq!(
            fa.bytes_model().spe(&probe_bytes).unwrap(),
            fb.bytes_model().spe(&probe_bytes).unwrap()
        );
        assert_eq!(
            fa.entropy_model().spe(&probe_entropy).unwrap(),
            fb.entropy_model().spe(&probe_entropy).unwrap()
        );
        assert_eq!(
            fa.bytes_model().threshold(0.999).unwrap(),
            fb.bytes_model().threshold(0.999).unwrap()
        );
    }

    #[test]
    fn empirical_policy_fits_calibrated_models() {
        let config = DiagnoserConfig {
            dim: entromine_subspace::DimSelection::Fixed(2),
            threshold_policy: ThresholdPolicy::Empirical,
            refit_rounds: 1,
            ..Default::default()
        };
        let mut w = TrainingWindow::new(5, 100, 25).unwrap();
        feed(&mut w, 0..100, 4);
        let fitted = w.fit(&config).unwrap();
        // Empirical thresholds are available immediately — the window fit
        // calibrated every model on its training rows.
        assert!(fitted
            .bytes_model()
            .threshold_with(0.99, ThresholdPolicy::Empirical)
            .is_ok());
        assert!(fitted
            .entropy_model()
            .threshold_with(0.99, ThresholdPolicy::Empirical)
            .is_ok());
        // And the sharpness surface reports the 100-bin window cannot
        // resolve alpha = 0.999.
        let warnings = fitted.sharpness_warnings(0.999);
        assert_eq!(warnings.len(), 3);
        assert!(warnings.iter().all(|(_, w)| w.required_bins == 1000));
    }
}
