//! Seeded, deterministic fault injection for the ingest→Monitor seams.
//!
//! The paper's detector is meant to run unattended on backbone telemetry,
//! where the real enemy is not clean synthetic drift but corrupt exports,
//! collector outages, duplicated and reordered deliveries, and clock
//! skew. This module packages those faults as **data** — a [`FaultPlan`]
//! of `(bin, FaultKind)` events plus a seed — and a [`FaultInjector`]
//! that applies the plan at either of the pipeline's two seams:
//!
//! * the **row seam** ([`FaultInjector::deliver_rows`]): the three
//!   measurement rows a [`Monitor`](crate::Monitor) observes per bin, for
//!   garbage-row, drop, duplicate, and reorder faults;
//! * the **packet seam** ([`FaultInjector::deliver_batch`]): one bin's
//!   packet batch headed for the ingest grid, for outage, duplicate,
//!   reorder, and timestamp-skew faults.
//!
//! The injector wraps the stream from the *outside* — the hot-path types
//! ([`Monitor`](crate::Monitor), [`TrainingWindow`](crate::TrainingWindow),
//! the grid builders) are untouched, which is what keeps the no-fault
//! guarantee trivially auditable: with [`FaultPlan::none`] every delivery
//! is an exact copy of its input, and a monitor fed through the injector
//! is **bitwise identical** to one fed directly (pinned in
//! `tests/fault_equivalence.rs`).
//!
//! Everything is deterministic: fault payloads (which positions a garbage
//! row corrupts, which bins a [`FaultPlan::random_outages`] schedule
//! blanks) derive from the plan seed and the bin index alone via a
//! splitmix64 stream, never from global state. The same plan over the
//! same feed reproduces the same faulted stream, which is what makes a
//! chaos failure replayable from its seed.

use entromine_net::PacketHeader;
use std::collections::BTreeMap;

/// The value pattern a [`FaultKind::GarbageRows`] event writes into the
/// corrupted positions of a bin's measurement rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GarbageKind {
    /// NaN — the classic silent poison: every comparison is false, every
    /// downstream moment non-finite. Must be quarantined, not scored.
    Nan,
    /// `±Inf` (sign drawn from the seeded stream per position).
    Infinite,
    /// Huge but finite values (`~1e300`): these pass any finiteness gate
    /// — they are real, scorable data — but square to `Inf` inside
    /// moment accumulation, making every fit of a window that absorbed
    /// them fail until the poisoned chunk rolls out. The fault that
    /// exercises refit failure chains and retry backoff.
    HugeFinite,
    /// Every value replaced by the same constant: a frozen exporter.
    /// Enough consecutive constant bins make the training window
    /// rank-degenerate at refit time.
    Constant,
}

/// One fault's effect on the delivery stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Collector outage: the bin's delivery is suppressed entirely.
    DropBin,
    /// The bin's delivery is emitted twice (a collector re-exporting a
    /// batch after a timeout).
    DuplicateBin,
    /// The bin's delivery is held back and released only after `by`
    /// subsequent upstream bins have been delivered — out-of-order
    /// arrival. Held deliveries still pending at end of stream are
    /// released by [`FaultInjector::flush`].
    DelayBin {
        /// How many subsequent upstream deliveries overtake this bin.
        by: usize,
    },
    /// The bin's measurement rows are corrupted with the given pattern
    /// (row seam only; a packet batch carries integer counts, so this
    /// event is a no-op at the packet seam).
    GarbageRows(GarbageKind),
    /// Every packet timestamp in the bin's batch is shifted by `secs`
    /// (packet seam only): negative values send the batch backward in
    /// event time (late data the grid's allowed-lateness policy must
    /// absorb or count as dropped), large positive values send it to the
    /// far future (refused by the grid's horizon sanity bound — and the
    /// watermark is *not* advanced by refused packets).
    SkewTimestamps {
        /// Signed shift in seconds; saturates at zero going backward.
        secs: i64,
    },
}

/// One scheduled fault: at upstream bin `bin`, apply `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The upstream bin index the fault applies to.
    pub bin: usize,
    /// What happens to that bin's delivery.
    pub kind: FaultKind,
}

/// A seeded, deterministic fault schedule: which bins get which faults.
///
/// Plans are plain data — build them with [`with`](Self::with) /
/// [`outage`](Self::outage), generate them with
/// [`random_outages`](Self::random_outages), or construct the fields
/// directly. Multiple events on one bin compose in insertion order (e.g.
/// garbage-then-duplicate emits two corrupted copies).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for every derived payload (garbage positions and values).
    pub seed: u64,
    /// The scheduled faults, applied per bin in insertion order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: injecting it is bitwise a no-op (pinned in
    /// `tests/fault_equivalence.rs`).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// `true` when the plan schedules no faults at all.
    pub fn is_none(&self) -> bool {
        self.events.is_empty()
    }

    /// Builder: schedule `kind` at `bin`.
    pub fn with(mut self, bin: usize, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { bin, kind });
        self
    }

    /// Builder: a collector outage spanning `bins` (one
    /// [`FaultKind::DropBin`] per bin).
    pub fn outage(mut self, bins: std::ops::Range<usize>) -> Self {
        for bin in bins {
            self.events.push(FaultEvent {
                bin,
                kind: FaultKind::DropBin,
            });
        }
        self
    }

    /// A schedule that blanks each of `total_bins` independently with
    /// probability `chance` — the "dead collector" model the
    /// `backbone_monitor` example injects. Deterministic in `seed`.
    pub fn random_outages(seed: u64, total_bins: usize, chance: f64) -> Self {
        let mut plan = FaultPlan {
            seed,
            events: Vec::new(),
        };
        for bin in 0..total_bins {
            if SplitMix64::for_bin(seed, bin).next_f64() < chance {
                plan.events.push(FaultEvent {
                    bin,
                    kind: FaultKind::DropBin,
                });
            }
        }
        plan
    }

    /// The bins this plan drops ([`FaultKind::DropBin`]), ascending and
    /// deduplicated — ground truth for outage accounting.
    pub fn drop_bins(&self) -> Vec<usize> {
        let mut bins: Vec<usize> = self
            .events
            .iter()
            .filter(|e| e.kind == FaultKind::DropBin)
            .map(|e| e.bin)
            .collect();
        bins.sort_unstable();
        bins.dedup();
        bins
    }
}

/// One bin's measurement rows as (possibly faulted) delivered to a
/// monitor: the row-seam delivery unit of a [`FaultInjector`].
#[derive(Debug, Clone, PartialEq)]
pub struct RowDelivery {
    /// The bin index carried by the delivery (the upstream bin's — a
    /// duplicated or reordered delivery keeps its original index).
    pub bin: usize,
    /// Per-flow byte counts, length `p`.
    pub bytes: Vec<f64>,
    /// Per-flow packet counts, length `p`.
    pub packets: Vec<f64>,
    /// Raw unfolded entropy row, length `4p`.
    pub entropy: Vec<f64>,
    /// `true` when any fault touched this delivery's contents or timing.
    pub faulted: bool,
}

/// One bin's packet batch as (possibly faulted) delivered to the ingest
/// grid: the packet-seam delivery unit of a [`FaultInjector`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchDelivery {
    /// The upstream bin index the batch was built for.
    pub bin: usize,
    /// `(flow, header)` pairs ready for `offer_packets`.
    pub packets: Vec<(usize, PacketHeader)>,
    /// `true` when any fault touched this delivery's contents or timing.
    pub faulted: bool,
}

/// Running counters of what the injector actually did — the injected
/// ground truth a harness compares the monitor's
/// [`health`](crate::Monitor::health) counters against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Deliveries suppressed by [`FaultKind::DropBin`].
    pub dropped: u64,
    /// Extra copies emitted by [`FaultKind::DuplicateBin`].
    pub duplicated: u64,
    /// Deliveries held back by [`FaultKind::DelayBin`].
    pub delayed: u64,
    /// Deliveries corrupted by [`FaultKind::GarbageRows`].
    pub corrupted: u64,
    /// Batches time-shifted by [`FaultKind::SkewTimestamps`].
    pub skewed: u64,
}

/// Applies a [`FaultPlan`] to a stream of per-bin deliveries, at the row
/// seam or the packet seam. See the module-level docs for the no-fault
/// bitwise guarantee and the determinism contract.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
    /// Per-bin fault list, in the plan's insertion order.
    by_bin: BTreeMap<usize, Vec<FaultKind>>,
    /// Row-seam deliveries held back by `DelayBin`, with the number of
    /// future upstream deliveries still to overtake them.
    held_rows: Vec<(usize, RowDelivery)>,
    /// Packet-seam deliveries held back by `DelayBin`, same discipline.
    held_batches: Vec<(usize, BatchDelivery)>,
    stats: FaultStats,
}

impl FaultInjector {
    /// An injector executing `plan`.
    pub fn new(plan: &FaultPlan) -> Self {
        let mut by_bin: BTreeMap<usize, Vec<FaultKind>> = BTreeMap::new();
        for event in &plan.events {
            by_bin.entry(event.bin).or_default().push(event.kind);
        }
        FaultInjector {
            seed: plan.seed,
            by_bin,
            held_rows: Vec::new(),
            held_batches: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// What the injector has done so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Row seam: takes one upstream bin's true measurement rows and
    /// returns the deliveries the fault schedule produces — possibly
    /// none (outage), possibly several (duplicates, or a held-back bin
    /// whose delay expired). With no fault scheduled for the bin, the
    /// single delivery is an exact copy of the input.
    pub fn deliver_rows(
        &mut self,
        bin: usize,
        bytes: &[f64],
        packets: &[f64],
        entropy: &[f64],
    ) -> Vec<RowDelivery> {
        // Count this upstream delivery against existing holds *before*
        // fault processing, so a bin held during this very call is not
        // decremented by its own delivery.
        let released = self.take_due_rows();
        let mut current = vec![RowDelivery {
            bin,
            bytes: bytes.to_vec(),
            packets: packets.to_vec(),
            entropy: entropy.to_vec(),
            faulted: false,
        }];
        if let Some(kinds) = self.by_bin.get(&bin).cloned() {
            for kind in kinds {
                match kind {
                    FaultKind::DropBin => {
                        self.stats.dropped += current.len() as u64;
                        current.clear();
                    }
                    FaultKind::DuplicateBin => {
                        self.stats.duplicated += current.len() as u64;
                        let copies: Vec<RowDelivery> = current
                            .iter()
                            .map(|d| RowDelivery {
                                faulted: true,
                                ..d.clone()
                            })
                            .collect();
                        current.extend(copies);
                    }
                    FaultKind::DelayBin { by } => {
                        self.stats.delayed += current.len() as u64;
                        for mut d in current.drain(..) {
                            d.faulted = true;
                            self.held_rows.push((by.max(1), d));
                        }
                    }
                    FaultKind::GarbageRows(garbage) => {
                        let mut rng = SplitMix64::for_bin(self.seed, bin);
                        for d in &mut current {
                            corrupt_row(&mut d.bytes, garbage, &mut rng);
                            corrupt_row(&mut d.packets, garbage, &mut rng);
                            corrupt_row(&mut d.entropy, garbage, &mut rng);
                            d.faulted = true;
                            self.stats.corrupted += 1;
                        }
                    }
                    // Rows carry no timestamps; skew is a packet-seam
                    // fault and leaves row deliveries untouched.
                    FaultKind::SkewTimestamps { .. } => {}
                }
            }
        }
        // Held bins whose delay just expired arrive after the current
        // bin — that is the reordering. They already had their faults
        // applied when first delivered, so current-bin faults skip them.
        current.extend(released);
        current
    }

    /// Packet seam: takes one upstream bin's packet batch and returns
    /// the batch deliveries the fault schedule produces. Garbage-row
    /// events are no-ops here; timestamp skew applies here only.
    pub fn deliver_batch(
        &mut self,
        bin: usize,
        packets: &[(usize, PacketHeader)],
    ) -> Vec<BatchDelivery> {
        let released = self.take_due_batches();
        let mut current = vec![BatchDelivery {
            bin,
            packets: packets.to_vec(),
            faulted: false,
        }];
        if let Some(kinds) = self.by_bin.get(&bin).cloned() {
            for kind in kinds {
                match kind {
                    FaultKind::DropBin => {
                        self.stats.dropped += current.len() as u64;
                        current.clear();
                    }
                    FaultKind::DuplicateBin => {
                        self.stats.duplicated += current.len() as u64;
                        let copies: Vec<BatchDelivery> = current
                            .iter()
                            .map(|d| BatchDelivery {
                                faulted: true,
                                ..d.clone()
                            })
                            .collect();
                        current.extend(copies);
                    }
                    FaultKind::DelayBin { by } => {
                        self.stats.delayed += current.len() as u64;
                        for mut d in current.drain(..) {
                            d.faulted = true;
                            self.held_batches.push((by.max(1), d));
                        }
                    }
                    FaultKind::SkewTimestamps { secs } => {
                        for d in &mut current {
                            for (_, header) in &mut d.packets {
                                header.timestamp = if secs >= 0 {
                                    header.timestamp.saturating_add(secs as u64)
                                } else {
                                    header.timestamp.saturating_sub(secs.unsigned_abs())
                                };
                            }
                            d.faulted = true;
                            self.stats.skewed += 1;
                        }
                    }
                    // Packet batches carry integer counts, not rows.
                    FaultKind::GarbageRows(_) => {}
                }
            }
        }
        current.extend(released);
        current
    }

    /// Releases every delivery still held back by a `DelayBin` fault —
    /// call once after the upstream ends so a delay past the end of the
    /// stream cannot swallow a bin.
    pub fn flush(&mut self) -> (Vec<RowDelivery>, Vec<BatchDelivery>) {
        let rows = self.held_rows.drain(..).map(|(_, d)| d).collect();
        let batches = self.held_batches.drain(..).map(|(_, d)| d).collect();
        (rows, batches)
    }

    fn take_due_rows(&mut self) -> Vec<RowDelivery> {
        let mut due = Vec::new();
        let mut still_held = Vec::with_capacity(self.held_rows.len());
        for (remaining, d) in self.held_rows.drain(..) {
            if remaining <= 1 {
                due.push(d);
            } else {
                still_held.push((remaining - 1, d));
            }
        }
        self.held_rows = still_held;
        due
    }

    fn take_due_batches(&mut self) -> Vec<BatchDelivery> {
        let mut due = Vec::new();
        let mut still_held = Vec::with_capacity(self.held_batches.len());
        for (remaining, d) in self.held_batches.drain(..) {
            if remaining <= 1 {
                due.push(d);
            } else {
                still_held.push((remaining - 1, d));
            }
        }
        self.held_batches = still_held;
        due
    }
}

/// Overwrites a deterministic ~quarter of `row` (always including the
/// first element, so a corruption is never an accidental no-op) with the
/// garbage pattern.
fn corrupt_row(row: &mut [f64], garbage: GarbageKind, rng: &mut SplitMix64) {
    for (i, v) in row.iter_mut().enumerate() {
        let hit = i == 0 || rng.next_f64() < 0.25;
        if !hit {
            continue;
        }
        *v = match garbage {
            GarbageKind::Nan => f64::NAN,
            GarbageKind::Infinite => {
                if rng.next_f64() < 0.5 {
                    f64::INFINITY
                } else {
                    f64::NEG_INFINITY
                }
            }
            GarbageKind::HugeFinite => 1e300,
            GarbageKind::Constant => 1.0,
        };
    }
}

/// Splitmix64: a tiny, allocation-free deterministic stream. Each
/// (seed, bin) pair gets an independent stream, so payloads do not
/// depend on the order the injector visits bins in.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn for_bin(seed: u64, bin: usize) -> Self {
        // Golden-ratio mix keeps adjacent bins' streams uncorrelated.
        SplitMix64 {
            state: seed ^ (bin as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entromine_net::{Ipv4, PacketHeader};

    fn rows(p: usize, bin: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let bytes: Vec<f64> = (0..p).map(|i| (bin * 10 + i) as f64).collect();
        let packets: Vec<f64> = bytes.iter().map(|b| b / 2.0).collect();
        let entropy: Vec<f64> = (0..4 * p).map(|i| 1.0 + i as f64 / 10.0).collect();
        (bytes, packets, entropy)
    }

    #[test]
    fn empty_plan_is_an_exact_copy() {
        let mut inj = FaultInjector::new(&FaultPlan::none());
        let (b, p, e) = rows(3, 7);
        let out = inj.deliver_rows(7, &b, &p, &e);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].bin, 7);
        assert_eq!(out[0].bytes, b);
        assert_eq!(out[0].packets, p);
        assert_eq!(out[0].entropy, e);
        assert!(!out[0].faulted);
        assert_eq!(*inj.stats(), FaultStats::default());
        let (held_rows, held_batches) = inj.flush();
        assert!(held_rows.is_empty() && held_batches.is_empty());
    }

    #[test]
    fn drop_duplicate_and_delay_compose() {
        let plan = FaultPlan::none()
            .with(1, FaultKind::DropBin)
            .with(2, FaultKind::DuplicateBin)
            .with(3, FaultKind::DelayBin { by: 2 });
        let mut inj = FaultInjector::new(&plan);
        let (b, p, e) = rows(2, 0);
        assert_eq!(inj.deliver_rows(0, &b, &p, &e).len(), 1);
        assert_eq!(inj.deliver_rows(1, &b, &p, &e).len(), 0, "dropped");
        let dup = inj.deliver_rows(2, &b, &p, &e);
        assert_eq!(dup.iter().map(|d| d.bin).collect::<Vec<_>>(), [2, 2]);
        assert_eq!(inj.deliver_rows(3, &b, &p, &e).len(), 0, "held");
        assert_eq!(inj.deliver_rows(4, &b, &p, &e).len(), 1);
        // Bin 3 released after two subsequent deliveries, after bin 5.
        let out = inj.deliver_rows(5, &b, &p, &e);
        assert_eq!(out.iter().map(|d| d.bin).collect::<Vec<_>>(), [5, 3]);
        assert_eq!(
            *inj.stats(),
            FaultStats {
                dropped: 1,
                duplicated: 1,
                delayed: 1,
                ..Default::default()
            }
        );
    }

    #[test]
    fn garbage_payloads_are_deterministic_in_the_seed() {
        let plan = FaultPlan {
            seed: 42,
            events: vec![FaultEvent {
                bin: 5,
                kind: FaultKind::GarbageRows(GarbageKind::Nan),
            }],
        };
        let (b, p, e) = rows(4, 5);
        let out_a = FaultInjector::new(&plan).deliver_rows(5, &b, &p, &e);
        let out_b = FaultInjector::new(&plan).deliver_rows(5, &b, &p, &e);
        // NaN != NaN, so compare bit patterns.
        let bits = |d: &RowDelivery| {
            d.bytes
                .iter()
                .chain(&d.packets)
                .chain(&d.entropy)
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&out_a[0]), bits(&out_b[0]));
        assert!(out_a[0].faulted);
        assert!(out_a[0].bytes[0].is_nan(), "first element always corrupted");
        // A different seed corrupts different positions/values.
        let other = FaultPlan { seed: 43, ..plan };
        let out_c = FaultInjector::new(&other).deliver_rows(5, &b, &p, &e);
        assert_ne!(bits(&out_a[0]), bits(&out_c[0]));
    }

    #[test]
    fn timestamp_skew_applies_only_at_the_packet_seam() {
        let plan = FaultPlan::none()
            .with(0, FaultKind::SkewTimestamps { secs: -100 })
            .with(1, FaultKind::SkewTimestamps { secs: 1_000_000 });
        let mut inj = FaultInjector::new(&plan);
        let pkt = |ts| {
            (
                0usize,
                PacketHeader::tcp(
                    Ipv4::new(10, 0, 0, 1),
                    1,
                    Ipv4::new(10, 0, 0, 2),
                    2,
                    100,
                    ts,
                ),
            )
        };
        let back = inj.deliver_batch(0, &[pkt(30), pkt(150)]);
        assert_eq!(back[0].packets[0].1.timestamp, 0, "saturates at zero");
        assert_eq!(back[0].packets[1].1.timestamp, 50);
        let forward = inj.deliver_batch(1, &[pkt(30)]);
        assert_eq!(forward[0].packets[0].1.timestamp, 1_000_030);
        assert_eq!(inj.stats().skewed, 2);
        // The same plan at the row seam changes nothing.
        let mut row_inj = FaultInjector::new(&plan);
        let (b, p, e) = rows(2, 0);
        let out = row_inj.deliver_rows(0, &b, &p, &e);
        assert_eq!(out[0].bytes, b);
        assert!(!out[0].faulted);
    }

    #[test]
    fn random_outages_are_reproducible_and_reported() {
        let plan = FaultPlan::random_outages(7, 200, 0.1);
        assert_eq!(plan, FaultPlan::random_outages(7, 200, 0.1));
        let drops = plan.drop_bins();
        assert!(!drops.is_empty() && drops.len() < 60, "≈10% of 200 bins");
        let mut inj = FaultInjector::new(&plan);
        let (b, p, e) = rows(2, 0);
        for bin in 0..200 {
            let n = inj.deliver_rows(bin, &b, &p, &e).len();
            assert_eq!(n, usize::from(!drops.contains(&bin)));
        }
        assert_eq!(inj.stats().dropped, drops.len() as u64);
    }
}
