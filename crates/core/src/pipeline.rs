//! The end-to-end diagnosis pipeline.
//!
//! [`Diagnoser`] bundles the three detectors the paper compares:
//!
//! * the **volume** subspace detectors over the byte and packet count
//!   matrices (the SIGCOMM 2004 baseline — "any anomaly that was detected
//!   in either case was considered a volume-detected anomaly");
//! * the **entropy** multiway subspace detector over the unfolded tensor.
//!
//! Every flagged bin becomes a [`Diagnosis`] carrying which methods fired,
//! the identified OD flows, and the anomaly's position in entropy space
//! (the unit-norm residual 4-vector used for classification in §7).

use crate::stream::StreamingDiagnoser;
use crate::DiagnosisError;
use entromine_entropy::AccumulatorPolicy;
use entromine_subspace::{
    DimSelection, FitStrategy, FlowContribution, MultiwayModel, SubspaceModel, ThresholdPolicy,
};
use entromine_synth::Dataset;

/// Configuration of the diagnosis pipeline.
#[derive(Debug, Clone, Copy)]
pub struct DiagnoserConfig {
    /// Normal-subspace dimension selection (paper: m = 10).
    pub dim: DimSelection,
    /// Confidence level for the Q-statistic threshold (paper: 0.999, with
    /// 0.995 in the sensitivity experiments).
    pub alpha: f64,
    /// Recursion cap for multi-attribute identification.
    pub max_ident_flows: usize,
    /// Clean-training rounds: after each round, bins flagged by any
    /// detector are excluded and the models refit. This prevents a strong
    /// anomaly from being absorbed *into* the normal subspace — a known
    /// failure mode of PCA detectors on short training windows (the paper
    /// sidesteps it with three-week archives whose top components are
    /// dominated by genuine traffic structure). 0 disables refitting.
    pub refit_rounds: usize,
    /// Refit safety valve: if a round flags more than this fraction of
    /// bins, the exclusion is considered implausible and refitting stops
    /// with the current models.
    pub max_excluded_fraction: f64,
    /// Which eigensolver engine fits the three models. The default,
    /// [`FitStrategy::Auto`], dispatches per matrix shape (Gram for wide
    /// training windows, partial-spectrum for thin requests against wide
    /// covariances, dense QL otherwise); [`FitStrategy::Full`] pins the
    /// dense reference oracle. All engines agree to round-off.
    pub strategy: FitStrategy,
    /// How `alpha` becomes an SPE threshold:
    /// [`ThresholdPolicy::JacksonMudholkar`] (the paper's analytic
    /// threshold, exact for Gaussian residuals) or
    /// [`ThresholdPolicy::Empirical`] (training-SPE order statistics —
    /// prefer it at small traffic scales, where heteroskedastic entropy
    /// noise makes the Gaussian threshold under-cover).
    pub threshold_policy: ThresholdPolicy,
    /// Which distribution-store tier ingest planes opened for this
    /// deployment run ([`Monitor::ingest_plane`](crate::Monitor::ingest_plane)):
    /// exact histograms (the default — the paper's measurement, unbounded
    /// distinct-key memory) or bounded-memory sketches with a documented
    /// entropy error bound. Detection and diagnosis always consume
    /// whatever entropy rows the plane emits; the policy only changes how
    /// those rows are accumulated.
    pub accumulator: AccumulatorPolicy,
}

impl Default for DiagnoserConfig {
    fn default() -> Self {
        DiagnoserConfig {
            dim: DimSelection::Fixed(10),
            alpha: 0.999,
            max_ident_flows: 5,
            refit_rounds: 1,
            max_excluded_fraction: 0.25,
            strategy: FitStrategy::Auto,
            threshold_policy: ThresholdPolicy::JacksonMudholkar,
            accumulator: AccumulatorPolicy::Exact,
        }
    }
}

impl DiagnoserConfig {
    /// The configured dimension selection, capped below `cols` so small
    /// networks fit with the default config. Shared by the batch fit and
    /// the rolling-window fit so the two can never disagree.
    pub(crate) fn capped_dim(&self, cols: usize) -> DimSelection {
        match self.dim {
            DimSelection::Fixed(m) => DimSelection::Fixed(m.min(cols.saturating_sub(1)).max(1)),
            other => other,
        }
    }

    /// Rejects a non-finite or out-of-`(0, 1)` alpha — the shared fit-time
    /// validation of every fit entry point.
    pub(crate) fn validate_alpha(&self) -> Result<(), DiagnosisError> {
        if !self.alpha.is_finite() || self.alpha <= 0.0 || self.alpha >= 1.0 {
            return Err(DiagnosisError::BadConfig(
                "alpha must be finite and lie strictly inside (0, 1)",
            ));
        }
        Ok(())
    }
}

/// Which detectors flagged a bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DetectionMethods {
    /// Byte-count subspace detector.
    pub bytes: bool,
    /// Packet-count subspace detector.
    pub packets: bool,
    /// Entropy multiway subspace detector.
    pub entropy: bool,
}

impl DetectionMethods {
    /// Volume detection = bytes or packets (the paper's definition).
    pub fn volume(&self) -> bool {
        self.bytes || self.packets
    }

    /// Detected by volume but not entropy.
    pub fn volume_only(&self) -> bool {
        self.volume() && !self.entropy
    }

    /// Detected by entropy but not volume.
    pub fn entropy_only(&self) -> bool {
        self.entropy && !self.volume()
    }

    /// Detected by both families.
    pub fn both(&self) -> bool {
        self.entropy && self.volume()
    }
}

/// One diagnosed anomalous bin.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// The anomalous time bin.
    pub bin: usize,
    /// Which detectors fired.
    pub methods: DetectionMethods,
    /// Entropy-residual magnitude (squared) at this bin.
    pub entropy_spe: f64,
    /// Byte-residual magnitude (squared).
    pub bytes_spe: f64,
    /// Packet-residual magnitude (squared).
    pub packets_spe: f64,
    /// OD flows blamed by multi-attribute identification, in blame order
    /// (empty when only volume fired and the entropy residual is typical).
    pub flows: Vec<FlowContribution>,
    /// The anomaly's unit-norm residual entropy 4-vector
    /// `[H̃(srcIP), H̃(srcPort), H̃(dstIP), H̃(dstPort)]`, taken at the
    /// first identified flow. `None` when no flow was identified.
    pub point: Option<[f64; 4]>,
}

/// The full report over a dataset.
#[derive(Debug, Clone)]
pub struct DiagnosisReport {
    /// Diagnoses in time order.
    pub diagnoses: Vec<Diagnosis>,
    /// Q-statistic thresholds used, for reference: (bytes, packets, entropy).
    pub thresholds: (f64, f64, f64),
}

impl DiagnosisReport {
    /// Number of bins detected by volume only (Table 2's first column).
    pub fn volume_only(&self) -> usize {
        self.diagnoses
            .iter()
            .filter(|d| d.methods.volume_only())
            .count()
    }

    /// Number detected by entropy only (Table 2's second column).
    pub fn entropy_only(&self) -> usize {
        self.diagnoses
            .iter()
            .filter(|d| d.methods.entropy_only())
            .count()
    }

    /// Number detected by both (Table 2's third column).
    pub fn both(&self) -> usize {
        self.diagnoses.iter().filter(|d| d.methods.both()).count()
    }

    /// Total diagnoses.
    pub fn total(&self) -> usize {
        self.diagnoses.len()
    }
}

/// An unfitted diagnosis pipeline.
#[derive(Debug, Clone, Default)]
pub struct Diagnoser {
    config: DiagnoserConfig,
}

impl Diagnoser {
    /// A diagnoser with the given configuration.
    pub fn new(config: DiagnoserConfig) -> Self {
        Diagnoser { config }
    }

    /// The configuration.
    pub fn config(&self) -> &DiagnoserConfig {
        &self.config
    }

    /// Fits the three subspace models to a dataset, with clean-training
    /// refits per [`DiagnoserConfig::refit_rounds`].
    ///
    /// The normal-subspace dimension is capped below each matrix's column
    /// count, so small test networks fit with the default config.
    ///
    /// Configuration is validated here, at fit time: `alpha` must be
    /// finite and strictly inside `(0, 1)` (the subspace layer likewise
    /// rejects a non-finite or out-of-range variance fraction), so a
    /// misconfigured pipeline fails loudly before any model exists rather
    /// than misbehaving bin by bin.
    pub fn fit(&self, dataset: &Dataset) -> Result<FittedDiagnoser, DiagnosisError> {
        self.config.validate_alpha()?;
        if dataset.n_bins() < 4 {
            return Err(DiagnosisError::BadDataset(
                "need at least 4 bins to model variation",
            ));
        }
        if dataset.n_flows() < 2 {
            // The subspace method models correlation across an ensemble of
            // OD flows; one flow has no ensemble (and the volume matrices
            // would have no residual dimensions).
            return Err(DiagnosisError::BadDataset(
                "need at least 2 OD flows for ensemble modeling",
            ));
        }
        let n_bins = dataset.n_bins();
        let mut rows: Vec<usize> = (0..n_bins).collect();
        let mut fitted = self.fit_on_rows(dataset, &rows)?;

        for _ in 0..self.config.refit_rounds {
            // Flag suspicious bins with the current models, then refit
            // without them. Trimming combines two statistics: SPE (the
            // paper's detection test) and Hotelling's T² on the
            // normal-subspace scores — an anomaly strong enough to have
            // been absorbed as a principal axis is invisible to SPE but
            // has an extreme score along that axis, which T² exposes.
            let flagged = fitted.suspicious_bins(dataset, self.config.alpha)?;
            if flagged.is_empty() {
                break;
            }
            if flagged.len() as f64 > self.config.max_excluded_fraction * n_bins as f64 {
                // Implausibly many exclusions: trust the current fit.
                break;
            }
            let clean: Vec<usize> = (0..n_bins).filter(|b| !flagged.contains(b)).collect();
            if clean.len() == rows.len() || clean.len() < 4 {
                break;
            }
            rows = clean;
            fitted = self.fit_on_rows(dataset, &rows)?;
        }
        Ok(fitted)
    }

    fn fit_on_rows(
        &self,
        dataset: &Dataset,
        rows: &[usize],
    ) -> Result<FittedDiagnoser, DiagnosisError> {
        let p = dataset.n_flows();
        let strategy = self.config.strategy;
        let bytes = dataset.volumes.bytes().select_rows(rows);
        let packets = dataset.volumes.packets().select_rows(rows);
        let bytes_model = SubspaceModel::fit_with(&bytes, self.config.capped_dim(p), strategy)?;
        let packets_model = SubspaceModel::fit_with(&packets, self.config.capped_dim(p), strategy)?;
        let entropy_model = MultiwayModel::fit_on_rows_with(
            &dataset.tensor,
            self.config.capped_dim(4 * p),
            rows,
            strategy,
        )?;
        Ok(FittedDiagnoser {
            config: self.config,
            bytes_model,
            packets_model,
            entropy_model,
        })
    }
}

/// A fitted pipeline, ready to score bins.
#[derive(Debug, Clone)]
pub struct FittedDiagnoser {
    config: DiagnoserConfig,
    bytes_model: SubspaceModel,
    packets_model: SubspaceModel,
    entropy_model: MultiwayModel,
}

/// Precomputed trimming thresholds (SPE + Hotelling's T² per detector):
/// the per-row suspicion test of the clean-training refit loop, shared by
/// the batch fit and the rolling-window fit.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SuspicionGate {
    t_bytes: f64,
    t_packets: f64,
    t_entropy: f64,
    t2_bytes: f64,
    t2_packets: f64,
    t2_entropy: f64,
}

impl FittedDiagnoser {
    /// The configuration the pipeline was built with.
    pub fn config(&self) -> &DiagnoserConfig {
        &self.config
    }

    /// Builds the trimming gate for this model set at confidence `alpha`.
    pub(crate) fn suspicion_gate(&self, alpha: f64) -> Result<SuspicionGate, DiagnosisError> {
        let policy = self.config.threshold_policy;
        Ok(SuspicionGate {
            t_bytes: self.bytes_model.threshold_with(alpha, policy)?,
            t_packets: self.packets_model.threshold_with(alpha, policy)?,
            t_entropy: self.entropy_model.threshold_with(alpha, policy)?,
            t2_bytes: self.bytes_model.t2_threshold(alpha),
            t2_packets: self.packets_model.t2_threshold(alpha),
            t2_entropy: self.entropy_model.inner().t2_threshold(alpha),
        })
    }

    /// One suspicion flag per `(bytes, packets, entropy)` row triple:
    /// whether the bin looks suspicious under SPE *or* Hotelling's T² for
    /// any of the three detectors — the row test the clean-training refit
    /// excludes on, shared by the batch refit loop and the rolling-window
    /// fit. Each model scans its rows in one batched single-pass
    /// `(SPE, T²)` sweep ([`SubspaceModel::spe_t2_batch`]) over shared
    /// scratch: one axis-matrix pass per model per row instead of the
    /// three the separate statistic calls paid.
    pub(crate) fn suspicion_flags<'r>(
        &self,
        gate: &SuspicionGate,
        rows: impl IntoIterator<Item = (&'r [f64], &'r [f64], &'r [f64])>,
    ) -> Result<Vec<bool>, DiagnosisError> {
        let mut bytes_rows = Vec::new();
        let mut packets_rows = Vec::new();
        let mut entropy_rows = Vec::new();
        for (b, p, e) in rows {
            bytes_rows.push(b);
            packets_rows.push(p);
            entropy_rows.push(e);
        }
        let mut flags = vec![false; bytes_rows.len()];
        let mut pairs = Vec::with_capacity(bytes_rows.len());
        self.bytes_model
            .spe_t2_batch(bytes_rows.iter().copied(), &mut pairs)?;
        for (flag, &(spe, t2)) in flags.iter_mut().zip(&pairs) {
            *flag = spe > gate.t_bytes || t2 > gate.t2_bytes;
        }
        self.packets_model
            .spe_t2_batch(packets_rows.iter().copied(), &mut pairs)?;
        for (flag, &(spe, t2)) in flags.iter_mut().zip(&pairs) {
            *flag = *flag || spe > gate.t_packets || t2 > gate.t2_packets;
        }
        self.entropy_model
            .spe_t2_batch(entropy_rows.iter().copied(), &mut pairs)?;
        for (flag, &(spe, t2)) in flags.iter_mut().zip(&pairs) {
            *flag = *flag || spe > gate.t_entropy || t2 > gate.t2_entropy;
        }
        Ok(flags)
    }

    /// Assembles a fitted pipeline from already-fitted models — the back
    /// door the rolling-window fit uses (it has no `Dataset`).
    pub(crate) fn from_parts(
        config: DiagnoserConfig,
        bytes_model: SubspaceModel,
        packets_model: SubspaceModel,
        entropy_model: MultiwayModel,
    ) -> Self {
        FittedDiagnoser {
            config,
            bytes_model,
            packets_model,
            entropy_model,
        }
    }

    /// Structured empirical-threshold sharpness warnings at confidence
    /// `alpha`, one per under-resolved detector (tagged `"bytes"`,
    /// `"packets"`, `"entropy"`). Empty unless the configured policy is
    /// [`ThresholdPolicy::Empirical`] — the analytic threshold has no
    /// sample to be under-resolved.
    pub fn sharpness_warnings(
        &self,
        alpha: f64,
    ) -> Vec<(&'static str, entromine_subspace::EmpiricalSharpness)> {
        if self.config.threshold_policy != ThresholdPolicy::Empirical {
            return Vec::new();
        }
        let mut warnings = Vec::new();
        if let Some(w) = self.bytes_model.empirical_sharpness(alpha) {
            warnings.push(("bytes", w));
        }
        if let Some(w) = self.packets_model.empirical_sharpness(alpha) {
            warnings.push(("packets", w));
        }
        if let Some(w) = self.entropy_model.empirical_sharpness(alpha) {
            warnings.push(("entropy", w));
        }
        warnings
    }

    /// The fitted multiway entropy model.
    pub fn entropy_model(&self) -> &MultiwayModel {
        &self.entropy_model
    }

    /// The fitted byte-count model.
    pub fn bytes_model(&self) -> &SubspaceModel {
        &self.bytes_model
    }

    /// The fitted packet-count model.
    pub fn packets_model(&self) -> &SubspaceModel {
        &self.packets_model
    }

    /// The online scoring head over these trained models, with thresholds
    /// precomputed at confidence `alpha`: the entry point of the
    /// streaming score phase.
    pub fn streaming(&self, alpha: f64) -> Result<StreamingDiagnoser<'_>, DiagnosisError> {
        StreamingDiagnoser::new(self, alpha)
    }

    /// Scores every bin of `dataset` and assembles the report.
    pub fn diagnose(&self, dataset: &Dataset) -> Result<DiagnosisReport, DiagnosisError> {
        self.diagnose_at(dataset, self.config.alpha)
    }

    /// Like [`diagnose`](Self::diagnose) but at an explicit confidence
    /// level (the sensitivity experiments sweep alpha).
    ///
    /// Batch diagnosis **is** the streaming path replayed over stored
    /// rows: every bin goes through the same
    /// [`StreamingDiagnoser::score_rows`] call a live monitor uses, which
    /// is what makes the batch/streaming equivalence hold by construction.
    pub fn diagnose_at(
        &self,
        dataset: &Dataset,
        alpha: f64,
    ) -> Result<DiagnosisReport, DiagnosisError> {
        let mut scorer = self.streaming(alpha)?;
        let mut diagnoses = Vec::new();
        for bin in 0..dataset.n_bins() {
            if let Some(diagnosis) = scorer.score_rows(
                bin,
                dataset.volumes.bytes().row(bin),
                dataset.volumes.packets().row(bin),
                &dataset.tensor.unfolded_row(bin),
            )? {
                diagnoses.push(diagnosis);
            }
        }
        Ok(DiagnosisReport {
            diagnoses,
            thresholds: scorer.thresholds(),
        })
    }

    /// Bins that look suspicious under SPE *or* Hotelling's T² for any of
    /// the three detectors — the trimming set for clean-training refits,
    /// a replay of [`suspicion_flags`](Self::suspicion_flags) over the
    /// dataset's rows.
    fn suspicious_bins(
        &self,
        dataset: &Dataset,
        alpha: f64,
    ) -> Result<std::collections::HashSet<usize>, DiagnosisError> {
        let gate = self.suspicion_gate(alpha)?;
        let entropy_rows: Vec<Vec<f64>> = (0..dataset.n_bins())
            .map(|bin| dataset.tensor.unfolded_row(bin))
            .collect();
        let flags = self.suspicion_flags(
            &gate,
            (0..dataset.n_bins()).map(|bin| {
                (
                    dataset.volumes.bytes().row(bin),
                    dataset.volumes.packets().row(bin),
                    entropy_rows[bin].as_slice(),
                )
            }),
        )?;
        Ok(flags
            .iter()
            .enumerate()
            .filter(|&(_, &flagged)| flagged)
            .map(|(bin, _)| bin)
            .collect())
    }

    /// The residual-magnitude series of all three detectors — the axes of
    /// the paper's Figure 4 scatter plots. Returns `(bytes, packets,
    /// entropy)` SPE per bin.
    #[allow(clippy::type_complexity)] // three parallel per-bin series, not a structure
    pub fn spe_series(
        &self,
        dataset: &Dataset,
    ) -> Result<(Vec<f64>, Vec<f64>, Vec<f64>), DiagnosisError> {
        let b = self.bytes_model.spe_series(dataset.volumes.bytes())?;
        let p = self.packets_model.spe_series(dataset.volumes.packets())?;
        let e = self.entropy_model.spe_series(&dataset.tensor)?;
        Ok((b, p, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entromine_net::Topology;
    use entromine_synth::{AnomalyEvent, AnomalyLabel, Dataset, DatasetConfig};

    /// Paper-scale traffic (~6200 sampled packets per cell) over a short
    /// window; anomaly sizes below are calibrated fractions of a cell.
    fn cfg(seed: u64, bins: usize) -> DatasetConfig {
        DatasetConfig {
            seed,
            n_bins: bins,
            sample_rate: 100,
            traffic_scale: 1.0,
            rate_noise: 0.01,
            anonymize: false,
        }
    }

    fn event(label: AnomalyLabel, bin: usize, flow: usize, pkts: f64, seed: u64) -> AnomalyEvent {
        AnomalyEvent {
            label,
            start_bin: bin,
            duration: 1,
            flows: vec![flow],
            packets_per_cell: pkts,
            seed,
        }
    }

    #[test]
    fn clean_dataset_mostly_clean() {
        let d = Dataset::clean(Topology::abilene(), cfg(1, 100));
        let fitted = Diagnoser::default().fit(&d).unwrap();
        let report = fitted.diagnose(&d).unwrap();
        // Residuals are heteroskedastic (Poisson noise scales with rate),
        // so a few percent of bins exceed the Gaussian Q-threshold — the
        // paper likewise reports ~10% of its detections as false alarms.
        assert!(
            report.total() <= 8,
            "too many false alarms on clean data: {}",
            report.total()
        );
    }

    #[test]
    fn port_scan_detected_by_entropy_not_volume() {
        // The paper's key claim: anomalies that are "severely dwarfed in
        // individual flows" — tiny in absolute volume — still stand out in
        // entropy because they reshape a small flow's feature
        // distributions. Scan a *small* OD flow at ~60% of its own rate:
        // a large relative composition change, a negligible packet count.
        let config = cfg(2, 120);
        let net = entromine_synth::SyntheticNetwork::new(Topology::abilene(), config.clone());
        // Pick the flow whose base rate is closest to 800 sampled
        // packets/bin (an eighth of the network mean): the scan's entropy
        // displacement is a shape change and does not shrink with flow
        // size, while its absolute packet count stays under the volume
        // detectors' noise floor (~900 packets network-wide here).
        let flow = (0..net.indexer().n_flows())
            .min_by_key(|&f| (net.rates().base_rate(f) - 800.0).abs() as u64)
            .unwrap();
        let scan_pkts = 0.6 * net.rates().base_rate(flow);
        let ev = event(AnomalyLabel::PortScan, 50, flow, scan_pkts, 3);
        let d = Dataset::generate(Topology::abilene(), config, vec![ev]);
        let fitted = Diagnoser::default().fit(&d).unwrap();
        let report = fitted.diagnose(&d).unwrap();
        let hit = report
            .diagnoses
            .iter()
            .find(|x| x.bin == 50)
            .expect("port scan must be detected");
        assert!(hit.methods.entropy);
        // Under a thousand extra 40-byte packets network-wide: the volume
        // detectors have nothing to see.
        assert!(
            !hit.methods.volume(),
            "low-volume port scan should not be a volume detection"
        );
        assert_eq!(hit.flows.first().map(|f| f.flow), Some(flow));
        // The point must lie on the unit sphere.
        let pt = hit.point.expect("identified anomaly has a point");
        let n: f64 = pt.iter().map(|x| x * x).sum();
        assert!((n - 1.0).abs() < 1e-9);
        // Port scan shape: dstPort residual up, dstIP down.
        assert!(pt[3] > 0.0, "dstPort residual should be positive: {pt:?}");
        assert!(pt[2] < 0.0, "dstIP residual should be negative: {pt:?}");
    }

    #[test]
    fn alpha_flow_detected_by_volume() {
        // A very large point-to-point flow: ~100% of a cell's mean packets
        // at 1500 bytes each — a bandwidth event.
        let ev = event(AnomalyLabel::AlphaFlow, 60, 40, 6200.0, 4);
        let d = Dataset::generate(Topology::abilene(), cfg(3, 120), vec![ev]);
        let fitted = Diagnoser::default().fit(&d).unwrap();
        let report = fitted.diagnose(&d).unwrap();
        let hit = report
            .diagnoses
            .iter()
            .find(|x| x.bin == 60)
            .expect("alpha flow must be detected");
        assert!(hit.methods.volume(), "alpha flows are volume anomalies");
    }

    #[test]
    fn table2_counters_are_consistent() {
        // Anomaly sizes relative to their target flows (flow sizes are
        // heavy-tailed, so absolute counts would be meaningless).
        let config = cfg(5, 120);
        let net = entromine_synth::SyntheticNetwork::new(Topology::abilene(), config.clone());
        let pick = |target: f64| {
            (0..net.indexer().n_flows())
                .min_by_key(|&f| (net.rates().base_rate(f) - target).abs() as u64)
                .unwrap()
        };
        let (small_a, small_b, big) = (pick(900.0), pick(1800.0), pick(9000.0));
        let events = vec![
            event(
                AnomalyLabel::PortScan,
                30,
                small_a,
                0.7 * net.rates().base_rate(small_a),
                10,
            ),
            event(
                AnomalyLabel::NetworkScan,
                60,
                small_b,
                0.7 * net.rates().base_rate(small_b),
                11,
            ),
            event(
                AnomalyLabel::AlphaFlow,
                90,
                big,
                1.2 * net.rates().base_rate(big),
                12,
            ),
        ];
        let d = Dataset::generate(Topology::abilene(), config, events);
        let fitted = Diagnoser::default().fit(&d).unwrap();
        let report = fitted.diagnose(&d).unwrap();
        assert_eq!(
            report.volume_only() + report.entropy_only() + report.both(),
            report.total()
        );
        assert!(report.total() >= 3, "all three injections should be found");
    }

    #[test]
    fn alpha_sweep_monotone_detections() {
        // Lower alpha -> lower threshold -> at least as many detections.
        let ev = event(AnomalyLabel::Worm, 40, 8, 745.0, 13);
        let d = Dataset::generate(Topology::abilene(), cfg(6, 100), vec![ev]);
        let fitted = Diagnoser::default().fit(&d).unwrap();
        let hi = fitted.diagnose_at(&d, 0.999).unwrap();
        let lo = fitted.diagnose_at(&d, 0.99).unwrap();
        assert!(lo.total() >= hi.total());
    }

    #[test]
    fn spe_series_shapes() {
        let d = Dataset::clean(Topology::line(3), cfg(7, 40));
        let fitted = Diagnoser::default().fit(&d).unwrap();
        let (b, p, e) = fitted.spe_series(&d).unwrap();
        assert_eq!(b.len(), 40);
        assert_eq!(p.len(), 40);
        assert_eq!(e.len(), 40);
    }

    #[test]
    fn tiny_dataset_rejected() {
        let d = Dataset::clean(Topology::line(2), cfg(8, 2));
        assert!(matches!(
            Diagnoser::default().fit(&d),
            Err(DiagnosisError::BadDataset(_))
        ));
    }

    #[test]
    fn empirical_policy_closes_the_small_scale_calibration_gap() {
        // At small traffic scales the entropy residuals are strongly
        // heteroskedastic (Poisson noise scales with rate) and the
        // Gaussian Jackson–Mudholkar threshold under-covers: a clean
        // window alarms on a sizable fraction of its own training bins.
        // The empirical policy calibrates on the same SPE distribution it
        // will score, so its training self-alarm rate is ~(1 - alpha) by
        // construction.
        let config = DatasetConfig {
            seed: 31,
            n_bins: 300,
            sample_rate: 100,
            traffic_scale: 0.05,
            rate_noise: 0.02,
            anonymize: false,
        };
        let d = Dataset::clean(Topology::abilene(), config);
        let base = DiagnoserConfig {
            refit_rounds: 0,
            ..Default::default()
        };
        let jm = Diagnoser::new(base).fit(&d).unwrap().diagnose(&d).unwrap();
        let empirical = Diagnoser::new(DiagnoserConfig {
            threshold_policy: entromine_subspace::ThresholdPolicy::Empirical,
            ..base
        })
        .fit(&d)
        .unwrap()
        .diagnose(&d)
        .unwrap();
        assert!(
            jm.total() >= 5,
            "fixture must exhibit the JM under-coverage ({} self-alarms)",
            jm.total()
        );
        // 300 bins at alpha = 0.999: each detector's empirical quantile
        // interpolates just below its training maximum, so the worst case
        // is one self-alarm per detector — the designed (1 - alpha)
        // coverage, not the heteroskedasticity-driven excess above.
        assert!(
            empirical.total() <= 3,
            "empirical policy self-alarms on {} of 300 clean bins",
            empirical.total()
        );
        assert!(
            jm.total() > empirical.total(),
            "empirical ({}) must improve on JM ({})",
            empirical.total(),
            jm.total()
        );
    }

    #[test]
    fn strategy_choice_does_not_change_diagnoses() {
        // The engines differ at round-off; a detection set on a dataset
        // with a clear injected anomaly must not.
        let ev = event(AnomalyLabel::PortScan, 45, 12, 900.0, 17);
        let d = Dataset::generate(Topology::abilene(), cfg(16, 90), vec![ev]);
        let reports: Vec<Vec<usize>> = [
            entromine_subspace::FitStrategy::Auto,
            entromine_subspace::FitStrategy::Full,
            entromine_subspace::FitStrategy::Gram,
        ]
        .into_iter()
        .map(|strategy| {
            let fitted = Diagnoser::new(DiagnoserConfig {
                strategy,
                ..Default::default()
            })
            .fit(&d)
            .unwrap();
            fitted
                .diagnose(&d)
                .unwrap()
                .diagnoses
                .iter()
                .map(|x| x.bin)
                .collect()
        })
        .collect();
        assert!(reports[0].contains(&45), "anomaly lost: {:?}", reports[0]);
        assert_eq!(reports[0], reports[1], "auto vs full");
        assert_eq!(reports[0], reports[2], "auto vs gram");
    }

    #[test]
    fn default_dim_capped_for_small_networks() {
        // line(2) has p^2 = 4 flows; Fixed(10) must be capped, not fail.
        let d = Dataset::clean(Topology::line(2), cfg(9, 60));
        let fitted = Diagnoser::default().fit(&d).unwrap();
        assert!(fitted.bytes_model().normal_dim() < 4);
        let report = fitted.diagnose(&d).unwrap();
        assert!(report.total() < 12);
    }
}
