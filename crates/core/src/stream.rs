//! Online diagnosis over a stream of finalized bins.
//!
//! The batch pipeline is *train on a window, then replay*: [`Diagnoser`]
//! fits the three subspace models over an archived dataset and
//! [`FittedDiagnoser::diagnose`] walks the stored bins. A live deployment
//! inverts the second half — bins arrive one at a time from the ingest
//! stage ([`StreamingGridBuilder`]) and each must be judged the moment it
//! finalizes.
//!
//! [`StreamingDiagnoser`] is that judge. It wraps already-trained models
//! with their Q-statistic thresholds precomputed at a chosen confidence
//! level; each [`score_bin`] call costs three `O(n·m)` projections (bytes,
//! packets, entropy) plus identification for the rare bin that fires.
//! There is no refitting and no other per-bin state, so the monitor's
//! working set is the model, full stop.
//!
//! Crucially, the batch path is **reimplemented on top of this one**:
//! `diagnose_at` constructs a `StreamingDiagnoser` and replays the stored
//! bins through [`score_rows`]. One code path means batch and streaming
//! cannot drift apart — the equivalence test in `tests/` holds by
//! construction and guards the seam.
//!
//! [`Diagnoser`]: crate::Diagnoser
//! [`FittedDiagnoser::diagnose`]: crate::FittedDiagnoser::diagnose
//! [`StreamingGridBuilder`]: entromine_entropy::StreamingGridBuilder
//! [`score_bin`]: StreamingDiagnoser::score_bin
//! [`score_rows`]: StreamingDiagnoser::score_rows

use crate::pipeline::{DetectionMethods, Diagnosis, FittedDiagnoser};
use crate::{unit_norm, DiagnosisError};
use entromine_entropy::FinalizedBin;

/// The three Q-thresholds `(bytes, packets, entropy)` of a model set at
/// confidence `alpha`, honoring the configured [`ThresholdPolicy`]: the
/// shared threshold computation of every scoring head (the frozen
/// [`StreamingDiagnoser`] and the rolling [`Monitor`](crate::Monitor)).
pub(crate) fn thresholds_for(
    fitted: &FittedDiagnoser,
    alpha: f64,
) -> Result<(f64, f64, f64), DiagnosisError> {
    let policy = fitted.config().threshold_policy;
    Ok((
        fitted.bytes_model().threshold_with(alpha, policy)?,
        fitted.packets_model().threshold_with(alpha, policy)?,
        fitted.entropy_model().threshold_with(alpha, policy)?,
    ))
}

/// Scores one bin's measurement rows against a model set and its
/// precomputed thresholds.
///
/// This free function is **the** scoring code path of the whole pipeline:
/// [`StreamingDiagnoser::score_rows`] wraps it, batch diagnosis replays
/// stored rows through that wrapper, and the rolling
/// [`Monitor`](crate::Monitor) calls it against whichever model is live —
/// one body, so none of the three can drift apart.
///
/// Non-finite rows are refused with [`DiagnosisError::NonFiniteInput`]:
/// a NaN anywhere in a row makes every SPE comparison false, so the bin
/// would otherwise score *Clean* — the worst possible answer for corrupt
/// input. (The rolling monitor quarantines such bins before ever calling
/// this; the frozen scorer surfaces the error to its caller.)
pub(crate) fn score_rows_against(
    fitted: &FittedDiagnoser,
    thresholds: (f64, f64, f64),
    alpha: f64,
    bin: usize,
    bytes_row: &[f64],
    packets_row: &[f64],
    entropy_raw: &[f64],
) -> Result<Option<Diagnosis>, DiagnosisError> {
    let finite = |row: &[f64]| row.iter().all(|v| v.is_finite());
    if !finite(bytes_row) || !finite(packets_row) || !finite(entropy_raw) {
        return Err(DiagnosisError::NonFiniteInput(
            "measurement rows must be finite to score",
        ));
    }
    let (t_bytes, t_packets, t_entropy) = thresholds;
    let bytes_spe = fitted.bytes_model().spe(bytes_row)?;
    let packets_spe = fitted.packets_model().spe(packets_row)?;
    let entropy_spe = fitted.entropy_model().spe(entropy_raw)?;

    let methods = DetectionMethods {
        bytes: bytes_spe > t_bytes,
        packets: packets_spe > t_packets,
        entropy: entropy_spe > t_entropy,
    };
    if !(methods.volume() || methods.entropy) {
        return Ok(None);
    }

    // Identification runs on the entropy residual whenever it is above
    // threshold; volume-only detections carry no blamed flows.
    let flows = if methods.entropy {
        fitted
            .entropy_model()
            .identify(entropy_raw, alpha, fitted.config().max_ident_flows)?
    } else {
        Vec::new()
    };
    let point = match flows.first() {
        Some(first) => {
            let v = fitted
                .entropy_model()
                .anomaly_vector(entropy_raw, first.flow)?;
            Some(unit_norm(v))
        }
        None => None,
    };
    Ok(Some(Diagnosis {
        bin,
        methods,
        entropy_spe,
        bytes_spe,
        packets_spe,
        flows,
        point,
    }))
}

/// Online scoring head over a [`FittedDiagnoser`]: trained models plus
/// precomputed thresholds, consuming finalized bins and emitting
/// [`Diagnosis`] values as they happen.
#[derive(Debug, Clone)]
pub struct StreamingDiagnoser<'a> {
    fitted: &'a FittedDiagnoser,
    alpha: f64,
    t_bytes: f64,
    t_packets: f64,
    t_entropy: f64,
    bins_scored: u64,
    detections: u64,
    /// Row scratch recycled across [`score_bin`](Self::score_bin) calls:
    /// `(bytes, packets, unfolded entropy)` — no per-bin allocations.
    scratch: (Vec<f64>, Vec<f64>, Vec<f64>),
}

impl<'a> StreamingDiagnoser<'a> {
    pub(crate) fn new(fitted: &'a FittedDiagnoser, alpha: f64) -> Result<Self, DiagnosisError> {
        // Thresholds honor the configured policy: the analytic
        // Jackson–Mudholkar formula by default, training-SPE order
        // statistics under `ThresholdPolicy::Empirical`.
        let (t_bytes, t_packets, t_entropy) = thresholds_for(fitted, alpha)?;
        Ok(StreamingDiagnoser {
            fitted,
            alpha,
            t_bytes,
            t_packets,
            t_entropy,
            bins_scored: 0,
            detections: 0,
            scratch: (Vec::new(), Vec::new(), Vec::new()),
        })
    }

    /// The trained models being scored against.
    pub fn fitted(&self) -> &FittedDiagnoser {
        self.fitted
    }

    /// The confidence level the thresholds were computed at.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Precomputed Q-thresholds: `(bytes, packets, entropy)`.
    pub fn thresholds(&self) -> (f64, f64, f64) {
        (self.t_bytes, self.t_packets, self.t_entropy)
    }

    /// Bins scored so far.
    pub fn bins_scored(&self) -> u64 {
        self.bins_scored
    }

    /// Diagnoses emitted so far.
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// Scores one finalized bin from the streaming ingest stage. The
    /// three measurement rows are materialized into recycled scratch
    /// buffers, so a warm diagnoser scores bins without allocating.
    pub fn score_bin(&mut self, bin: &FinalizedBin) -> Result<Option<Diagnosis>, DiagnosisError> {
        let (mut bytes, mut packets, mut entropy) = std::mem::take(&mut self.scratch);
        bin.bytes_row_into(&mut bytes);
        bin.packets_row_into(&mut packets);
        bin.unfolded_entropy_row_into(&mut entropy);
        let out = self.score_rows(bin.bin, &bytes, &packets, &entropy);
        self.scratch = (bytes, packets, entropy);
        out
    }

    /// Scores one bin given its three measurement rows: byte counts and
    /// packet counts per flow (length `p`) and the raw unfolded entropy
    /// row (length `4p`).
    ///
    /// This is the single scoring code path of the whole pipeline — batch
    /// diagnosis replays stored rows through it.
    pub fn score_rows(
        &mut self,
        bin: usize,
        bytes_row: &[f64],
        packets_row: &[f64],
        entropy_raw: &[f64],
    ) -> Result<Option<Diagnosis>, DiagnosisError> {
        self.bins_scored += 1;
        let diagnosis = score_rows_against(
            self.fitted,
            (self.t_bytes, self.t_packets, self.t_entropy),
            self.alpha,
            bin,
            bytes_row,
            packets_row,
            entropy_raw,
        )?;
        if diagnosis.is_some() {
            self.detections += 1;
        }
        Ok(diagnosis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Diagnoser;
    use entromine_entropy::BinSummary;
    use entromine_net::Topology;
    use entromine_synth::{AnomalyEvent, AnomalyLabel, Dataset, DatasetConfig};

    fn dataset_with_scan(seed: u64) -> Dataset {
        let config = DatasetConfig {
            seed,
            n_bins: 80,
            sample_rate: 100,
            traffic_scale: 0.05,
            rate_noise: 0.02,
            anonymize: false,
        };
        let ev = AnomalyEvent {
            label: AnomalyLabel::PortScan,
            start_bin: 40,
            duration: 1,
            flows: vec![3],
            packets_per_cell: 400.0,
            seed: 7,
        };
        Dataset::generate(Topology::line(3), config, vec![ev])
    }

    #[test]
    fn streaming_replay_equals_batch_diagnosis() {
        let d = dataset_with_scan(1);
        let fitted = Diagnoser::default().fit(&d).unwrap();
        let batch = fitted.diagnose(&d).unwrap();

        let mut streaming = fitted.streaming(fitted.config().alpha).unwrap();
        let mut online = Vec::new();
        for bin in 0..d.n_bins() {
            let fb = FinalizedBin {
                bin,
                summaries: (0..d.n_flows())
                    .map(|flow| BinSummary {
                        packets: d.volumes.packets()[(bin, flow)] as u64,
                        bytes: d.volumes.bytes()[(bin, flow)] as u64,
                        entropy: [
                            d.tensor.get(bin, flow, entromine_entropy::FEATURES[0]),
                            d.tensor.get(bin, flow, entromine_entropy::FEATURES[1]),
                            d.tensor.get(bin, flow, entromine_entropy::FEATURES[2]),
                            d.tensor.get(bin, flow, entromine_entropy::FEATURES[3]),
                        ],
                    })
                    .collect(),
            };
            if let Some(diag) = streaming.score_bin(&fb).unwrap() {
                online.push(diag);
            }
        }
        assert_eq!(batch.diagnoses.len(), online.len());
        for (a, b) in batch.diagnoses.iter().zip(&online) {
            assert_eq!(a.bin, b.bin);
            assert_eq!(a.methods, b.methods);
            assert_eq!(a.entropy_spe, b.entropy_spe);
            assert_eq!(a.bytes_spe, b.bytes_spe);
            assert_eq!(a.packets_spe, b.packets_spe);
            assert_eq!(
                a.flows.iter().map(|f| f.flow).collect::<Vec<_>>(),
                b.flows.iter().map(|f| f.flow).collect::<Vec<_>>()
            );
            assert_eq!(a.point, b.point);
        }
        assert_eq!(streaming.bins_scored(), 80);
        assert_eq!(streaming.detections(), online.len() as u64);
        assert_eq!(batch.thresholds, streaming.thresholds());
    }

    #[test]
    fn clean_bin_scores_to_none() {
        let d = dataset_with_scan(2);
        let fitted = Diagnoser::default().fit(&d).unwrap();
        let mut streaming = fitted.streaming(0.999).unwrap();
        // A bin identical to the training mean cannot be an anomaly.
        let p = d.n_flows();
        let mean_bytes: Vec<f64> = fitted.bytes_model().pca().mean().to_vec();
        let mean_packets: Vec<f64> = fitted.packets_model().pca().mean().to_vec();
        // Raw entropy row whose normalized form equals the entropy mean.
        let mut raw_entropy = fitted.entropy_model().inner().pca().mean().to_vec();
        let div = fitted.entropy_model().divisors();
        for (k, &dv) in div.iter().enumerate() {
            for v in &mut raw_entropy[k * p..(k + 1) * p] {
                *v *= dv;
            }
        }
        let out = streaming
            .score_rows(0, &mean_bytes, &mean_packets, &raw_entropy)
            .unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn non_finite_rows_error_instead_of_scoring_clean() {
        // A NaN in any row makes every `spe > threshold` comparison
        // false, so a corrupt bin would silently score Clean — the
        // scorer must refuse it instead.
        let d = dataset_with_scan(4);
        let fitted = Diagnoser::default().fit(&d).unwrap();
        let mut streaming = fitted.streaming(0.999).unwrap();
        let p = d.n_flows();
        for bad in [f64::NAN, f64::INFINITY] {
            let mut bytes = vec![1.0; p];
            bytes[0] = bad;
            assert!(matches!(
                streaming.score_rows(0, &bytes, &vec![1.0; p], &vec![1.0; 4 * p]),
                Err(DiagnosisError::NonFiniteInput(_))
            ));
        }
    }

    #[test]
    fn bad_alpha_rejected_when_building_the_scorer() {
        let d = dataset_with_scan(3);
        let fitted = Diagnoser::default().fit(&d).unwrap();
        for bad in [0.0, 1.0, -1.0, 2.0, f64::NAN] {
            assert!(fitted.streaming(bad).is_err(), "alpha {bad} must fail");
        }
    }
}
