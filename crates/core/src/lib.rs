//! **entromine** — mining anomalies using traffic feature distributions.
//!
//! A from-scratch Rust implementation of the anomaly diagnosis framework of
//! Lakhina, Crovella & Diot, *Mining Anomalies Using Traffic Feature
//! Distributions* (SIGCOMM 2005): network-wide anomaly **detection** via
//! the multiway subspace method over feature-entropy timeseries,
//! **identification** of the responsible OD flows, and unsupervised
//! **classification** of anomalies by clustering in entropy space.
//!
//! # The pipeline
//!
//! 1. Per OD flow and 5-minute bin, compute the sample entropy of four
//!    packet-header features: source/destination address and port
//!    (`entromine-entropy`).
//! 2. Unfold the resulting `t x p x 4` tensor into a `t x 4p` matrix, fit
//!    PCA, and split observations into a normal and a residual component;
//!    bins whose squared residual exceeds the Jackson–Mudholkar Q-statistic
//!    threshold are detections (`entromine-subspace`).
//! 3. Greedily identify the OD flow(s) whose 4-feature displacement
//!    explains each detection.
//! 4. Represent each anomaly as its unit-norm residual entropy 4-vector and
//!    cluster those points (k-means / hierarchical agglomerative) into
//!    semantically meaningful classes (`entromine-cluster`).
//!
//! # Quickstart
//!
//! ```
//! use entromine::{Diagnoser, DiagnoserConfig};
//! use entromine::synth::{AnomalyEvent, AnomalyLabel, Dataset, DatasetConfig};
//! use entromine::net::Topology;
//!
//! // A small synthetic network with one injected port scan.
//! let event = AnomalyEvent {
//!     label: AnomalyLabel::PortScan,
//!     start_bin: 40,
//!     duration: 1,
//!     flows: vec![7],
//!     packets_per_cell: 600.0,
//!     seed: 9,
//! };
//! let config = DatasetConfig {
//!     seed: 1,
//!     n_bins: 72,
//!     sample_rate: 100,
//!     traffic_scale: 0.02,
//!     rate_noise: 0.04,
//!     anonymize: false,
//! };
//! let dataset = Dataset::generate(Topology::abilene(), config, vec![event]);
//!
//! // Fit the diagnoser and inspect what it found.
//! let diagnoser = Diagnoser::new(DiagnoserConfig::default());
//! let fitted = diagnoser.fit(&dataset).unwrap();
//! let report = fitted.diagnose(&dataset).unwrap();
//!
//! assert!(report.diagnoses.iter().any(|d| d.bin == 40));
//! let hit = report.diagnoses.iter().find(|d| d.bin == 40).unwrap();
//! assert!(hit.methods.entropy, "port scans are entropy-detected");
//! assert_eq!(hit.flows.first().map(|f| f.flow), Some(7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod error;
mod fault;
mod monitor;
mod pipeline;
mod report;
mod stream;
mod window;

pub use classify::{anomaly_point_matrix, ClassifierConfig, ClusterAlgorithm};
pub use error::DiagnosisError;
pub use fault::{
    BatchDelivery, FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultStats, GarbageKind,
    RowDelivery,
};
pub use monitor::{
    DriftPolicy, HealthReport, Monitor, MonitorConfig, MonitorState, MonitorStep, RefitOutcome,
    RefitReport, RefitTrigger, RetryPolicy, Verdict,
};
pub use pipeline::{
    DetectionMethods, Diagnoser, DiagnoserConfig, Diagnosis, DiagnosisReport, FittedDiagnoser,
};
pub use report::{cluster_rows, label_breakdown, match_truth, ClusterRow, LabelRow, MatchOutcome};
pub use stream::StreamingDiagnoser;
pub use window::{RefitTrace, RoundTrace, TrainingWindow};

/// Re-exports of the [`DiagnoserConfig`] knob types, so pipeline callers
/// need not reach into the subspace crate.
pub use entromine_subspace::{EmpiricalSharpness, FitStrategy, ThresholdPolicy};

/// Re-export of the clustering layer.
pub use entromine_cluster as cluster;
/// Re-export of the entropy layer.
pub use entromine_entropy as entropy;
/// Re-export of the linear-algebra substrate.
pub use entromine_linalg as linalg;
/// Re-export of the network substrate.
pub use entromine_net as net;
/// Re-export of the subspace method.
pub use entromine_subspace as subspace;
/// Re-export of the synthetic-traffic layer.
pub use entromine_synth as synth;

/// Rescales an anomaly's residual entropy 4-vector to unit norm, as §7.1
/// prescribes ("we rescale each point to unit norm to focus on the
/// relationship between entropies rather than their absolute values").
/// Zero vectors are returned unchanged.
pub fn unit_norm(v: [f64; 4]) -> [f64; 4] {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm <= 0.0 {
        return v;
    }
    [v[0] / norm, v[1] / norm, v[2] / norm, v[3] / norm]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_norm_normalizes() {
        let v = unit_norm([3.0, 0.0, 4.0, 0.0]);
        assert!((v[0] - 0.6).abs() < 1e-12);
        assert!((v[2] - 0.8).abs() < 1e-12);
        let n: f64 = v.iter().map(|x| x * x).sum();
        assert!((n - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unit_norm_zero_vector_unchanged() {
        assert_eq!(unit_norm([0.0; 4]), [0.0; 4]);
    }

    #[test]
    fn unit_norm_preserves_direction() {
        let v = unit_norm([-1.0, 2.0, -3.0, 0.5]);
        assert!(v[0] < 0.0 && v[1] > 0.0 && v[2] < 0.0 && v[3] > 0.0);
    }
}
