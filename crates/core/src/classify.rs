//! Classification of diagnosed anomalies (§7).

use crate::{DiagnosisError, DiagnosisReport};
use entromine_cluster::{agglomerative, Clustering, KMeans, Linkage, Seeding};
use entromine_linalg::Mat;

/// Which clustering algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterAlgorithm {
    /// k-means with seeded random initialization (optionally restarted).
    KMeans {
        /// RNG seed.
        seed: u64,
        /// Number of restarts (1 = single run, the paper's procedure).
        restarts: usize,
    },
    /// Hierarchical agglomerative with the given linkage.
    Hierarchical(Linkage),
}

/// Classifier configuration: algorithm plus cluster count.
///
/// The paper fixes `k = 10` after inspecting the intra-/inter-cluster
/// variation curves (Figure 10, knee at 8–12).
#[derive(Debug, Clone, Copy)]
pub struct ClassifierConfig {
    /// Number of clusters.
    pub k: usize,
    /// Algorithm.
    pub algorithm: ClusterAlgorithm,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig {
            k: 10,
            algorithm: ClusterAlgorithm::Hierarchical(Linkage::Single),
        }
    }
}

impl ClassifierConfig {
    /// Clusters the rows of `points` (anomalies in entropy space).
    ///
    /// # Errors
    ///
    /// [`DiagnosisError::BadClassifier`] if `k` is zero or exceeds the
    /// number of points.
    pub fn classify(&self, points: &Mat) -> Result<Clustering, DiagnosisError> {
        if self.k == 0 {
            return Err(DiagnosisError::BadClassifier("k must be positive"));
        }
        if points.rows() < self.k {
            return Err(DiagnosisError::BadClassifier(
                "fewer anomalies than requested clusters",
            ));
        }
        Ok(match self.algorithm {
            ClusterAlgorithm::KMeans { seed, restarts } => {
                let km = KMeans::new(self.k)
                    .with_seed(seed)
                    .with_seeding(Seeding::Random);
                if restarts > 1 {
                    km.fit_restarts(points, restarts)
                } else {
                    km.fit(points)
                }
            }
            ClusterAlgorithm::Hierarchical(linkage) => agglomerative(points, self.k, linkage),
        })
    }
}

/// Collects the anomaly points of a report into an `n x 4` matrix
/// (diagnoses without an identified flow are skipped). Returns the matrix
/// and, for each row, the index of the diagnosis it came from.
pub fn anomaly_point_matrix(report: &DiagnosisReport) -> (Mat, Vec<usize>) {
    let rows: Vec<(usize, [f64; 4])> = report
        .diagnoses
        .iter()
        .enumerate()
        .filter_map(|(i, d)| d.point.map(|p| (i, p)))
        .collect();
    let mut m = Mat::zeros(rows.len(), 4);
    let mut origin = Vec::with_capacity(rows.len());
    for (r, (i, p)) in rows.into_iter().enumerate() {
        m.row_mut(r).copy_from_slice(&p);
        origin.push(i);
    }
    (m, origin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{DetectionMethods, Diagnosis};

    fn report_with_points(points: &[[f64; 4]]) -> DiagnosisReport {
        DiagnosisReport {
            diagnoses: points
                .iter()
                .enumerate()
                .map(|(i, p)| Diagnosis {
                    bin: i,
                    methods: DetectionMethods {
                        entropy: true,
                        ..Default::default()
                    },
                    entropy_spe: 1.0,
                    bytes_spe: 0.0,
                    packets_spe: 0.0,
                    flows: Vec::new(),
                    point: Some(*p),
                })
                .collect(),
            thresholds: (0.0, 0.0, 0.5),
        }
    }

    #[test]
    fn point_matrix_collects_points() {
        let report = report_with_points(&[[1.0, 0.0, 0.0, 0.0], [0.0, 1.0, 0.0, 0.0]]);
        let (m, origin) = anomaly_point_matrix(&report);
        assert_eq!(m.shape(), (2, 4));
        assert_eq!(origin, vec![0, 1]);
        assert_eq!(m.row(0)[0], 1.0);
    }

    #[test]
    fn point_matrix_skips_missing_points() {
        let mut report = report_with_points(&[[1.0, 0.0, 0.0, 0.0], [0.0, 1.0, 0.0, 0.0]]);
        report.diagnoses[0].point = None;
        let (m, origin) = anomaly_point_matrix(&report);
        assert_eq!(m.rows(), 1);
        assert_eq!(origin, vec![1]);
    }

    #[test]
    fn classify_separates_obvious_groups() {
        // Two tight groups in entropy space (port-scan-like and DDOS-like).
        let mut pts = Vec::new();
        for i in 0..10 {
            let eps = i as f64 * 0.002;
            pts.push([-0.3 + eps, 0.0, -0.4, 0.86]); // port scan corner
            pts.push([0.9 - eps, 0.1, -0.4, 0.0]); // ddos corner
        }
        let report = report_with_points(&pts);
        let (m, _) = anomaly_point_matrix(&report);
        for algorithm in [
            ClusterAlgorithm::Hierarchical(Linkage::Single),
            ClusterAlgorithm::KMeans {
                seed: 1,
                restarts: 4,
            },
        ] {
            let c = ClassifierConfig { k: 2, algorithm }.classify(&m).unwrap();
            // Even indices together, odd indices together.
            let a = c.assignments[0];
            let b = c.assignments[1];
            assert_ne!(a, b);
            for (i, &asg) in c.assignments.iter().enumerate() {
                assert_eq!(asg, if i % 2 == 0 { a } else { b }, "{algorithm:?}");
            }
        }
    }

    #[test]
    fn classify_rejects_bad_k() {
        let report = report_with_points(&[[1.0, 0.0, 0.0, 0.0]]);
        let (m, _) = anomaly_point_matrix(&report);
        assert!(ClassifierConfig {
            k: 0,
            algorithm: ClusterAlgorithm::Hierarchical(Linkage::Single)
        }
        .classify(&m)
        .is_err());
        assert!(ClassifierConfig {
            k: 5,
            algorithm: ClusterAlgorithm::Hierarchical(Linkage::Single)
        }
        .classify(&m)
        .is_err());
    }

    #[test]
    fn default_config_matches_paper() {
        let c = ClassifierConfig::default();
        assert_eq!(c.k, 10);
        assert!(matches!(
            c.algorithm,
            ClusterAlgorithm::Hierarchical(Linkage::Single)
        ));
    }
}
