//! The rolling-model monitor: a lifecycle-managed scoring head.
//!
//! The frozen [`StreamingDiagnoser`](crate::StreamingDiagnoser) scores
//! forever against the models it was born with — correct for the paper's
//! experiments, wrong for a deployment that runs for months while traffic
//! drifts. [`Monitor`] wraps the same scoring code path in a three-state
//! lifecycle:
//!
//! ```text
//!             window reaches warmup_bins
//!   Warmup ───────────────────────────────▶ Fitted ◀──────────┐
//!   (absorb bins,                           │  ▲              │
//!    nothing to score)                      │  │ model swap   │ model
//!                          staleness budget │  │ (resets      │ swap
//!                          exceeded         │  │  staleness)  │
//!                                           ▼  │              │
//!                                         Degraded            │
//!                                  (keeps scoring; verdicts   │
//!                                   flagged stale)            │
//!                                           │                 │
//!                               scheduled cadence reached,    │
//!                               drift alarm-rate tripped,     │
//!                               or refit_now()                │
//!                                           ▼                 │
//!                                        Refitting ───────────┘
//!                                   (window.fit; on failure the
//!                                    old model keeps serving and
//!                                    the retry backoff grows)
//! ```
//!
//! * **Warmup** — bins accumulate into the [`TrainingWindow`]; there is
//!   no model yet, so bins pass unscored (reported as
//!   [`Verdict::Warmup`], never silently dropped).
//! * **Fitted** — every bin is scored against the live model via the
//!   exact code path batch diagnosis replays, then absorbed into the
//!   sliding window.
//! * **Refitting** — entered when a trigger fires, *after* the
//!   triggering bin was scored: the window (whose chunks roll forward by
//!   Chan-merged moments) is refitted with the full `refit_rounds`
//!   trimming semantics, and the new model is swapped in **between
//!   bins** — the bin that triggered the refit was judged by the old
//!   model, the next bin by the new one, and no bin is ever scored twice
//!   or stalled. A refit that fails (degenerate window) keeps the old
//!   model serving and reports the failure in the step's
//!   [`RefitReport`].
//!
//! Two automatic triggers, both off the scored stream itself:
//!
//! * **Scheduled** — every `refit_interval` scored bins, the "model is
//!   only as old as one interval" guarantee.
//! * **Drift** — when the recent alarm fraction over the last
//!   [`DriftPolicy::window`] bins reaches
//!   [`DriftPolicy::alarm_fraction`]. A subspace model fitted on stale
//!   traffic alarms on *normal* bins once the traffic mix moves; a
//!   sustained alarm rate far above `1 − α` is the cheapest reliable
//!   drift signal, and refitting on the window (which already contains
//!   the post-drift bins, with genuinely anomalous ones excluded by the
//!   trimming rounds) re-centers the model.
//!
//! Three more mechanisms make the lifecycle survive operational faults
//! instead of merely clean drift:
//!
//! * **Quarantine** — a bin whose rows carry NaN or infinite values is
//!   never scored (a NaN makes every threshold comparison false, i.e. a
//!   silent *Clean*) and never absorbed (one NaN poisons every later Chan
//!   merge of the window). It is counted, reported as
//!   [`Verdict::Quarantined`], and the lifecycle moves on.
//! * **Retry backoff** — a failed refit leaves the old model serving and
//!   schedules the next automatic attempt after a bounded
//!   exponential-in-bins backoff ([`RetryPolicy`]): consecutive failures
//!   mean the window is still unhealthy, and re-burning a full
//!   `O(window·p²)` fit every chunk learns nothing new.
//! * **Degraded serving** — when the serving model's age (bins observed
//!   since the last successful swap) exceeds the configured staleness
//!   budget, the monitor enters [`MonitorState::Degraded`]: it keeps
//!   scoring (a stale verdict beats none), flags every verdict via
//!   [`MonitorStep::stale`], and surfaces the full picture through
//!   [`Monitor::health`].

use crate::pipeline::{DiagnoserConfig, Diagnosis, FittedDiagnoser};
use crate::stream::{score_rows_against, thresholds_for};
use crate::window::{RefitTrace, TrainingWindow};
use crate::DiagnosisError;
use entromine_entropy::FinalizedBin;
use entromine_subspace::EmpiricalSharpness;
use std::collections::VecDeque;

/// Drift-triggered refit policy: refit when at least `alarm_fraction` of
/// the last `window` scored bins fired.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftPolicy {
    /// How many recent bins the alarm-rate estimate looks at.
    pub window: usize,
    /// The alarm fraction that declares drift (e.g. `0.25`: a quarter of
    /// recent bins alarming means the model no longer describes normal
    /// traffic).
    pub alarm_fraction: f64,
}

impl Default for DriftPolicy {
    fn default() -> Self {
        DriftPolicy {
            window: 36,
            alarm_fraction: 0.25,
        }
    }
}

/// Bounded exponential backoff for refit attempts after a failure.
///
/// A failed refit means the window is unhealthy (degenerate moments, a
/// poisoned chunk that slipped past ingest, too few usable bins). The
/// trigger condition that fired it is usually still true on the next bin,
/// so without a backoff the monitor would re-burn a full `O(window·p²)`
/// fit per bin. The first retry waits `initial_bins`; each consecutive
/// failure multiplies the wait by `growth`, capped at `max_bins` so a
/// long outage can never push the next attempt arbitrarily far out. Any
/// successful swap resets the sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Backoff after the first failure, in bins. `0` means one window
    /// chunk ([`MonitorConfig::chunk_bins`]) — the roll granularity at
    /// which the window's content materially changes.
    pub initial_bins: usize,
    /// Multiplier applied per additional consecutive failure (`1` keeps
    /// the legacy fixed cadence). Must be at least 1.
    pub growth: u32,
    /// Hard ceiling on the backoff, in bins. `0` means one window
    /// capacity ([`MonitorConfig::window_bins`]) — by then the entire
    /// window content has turned over.
    pub max_bins: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            initial_bins: 0,
            growth: 2,
            max_bins: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff after `consecutive_failures` (≥ 1) failures in a row,
    /// with the `0`-sentinels resolved against the monitor's chunk and
    /// window sizes. Saturating, and never below 1 bin.
    fn backoff_bins(
        &self,
        consecutive_failures: u32,
        chunk_bins: usize,
        window_bins: usize,
    ) -> usize {
        let base = if self.initial_bins == 0 {
            chunk_bins.max(1)
        } else {
            self.initial_bins
        };
        let cap = if self.max_bins == 0 {
            window_bins.max(1)
        } else {
            self.max_bins
        };
        let mut backoff = base;
        for _ in 1..consecutive_failures {
            backoff = backoff.saturating_mul(self.growth.max(1) as usize);
            if backoff >= cap {
                break;
            }
        }
        backoff.clamp(1, cap.max(1))
    }
}

/// Configuration of a [`Monitor`].
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// The detection pipeline configuration (dimension selection, alpha,
    /// refit-round trimming, fit engine, threshold policy) — the same
    /// knobs the batch [`Diagnoser`](crate::Diagnoser) takes.
    pub diagnoser: DiagnoserConfig,
    /// Bins to absorb before the first fit (Warmup → Fitted transition).
    /// The paper trains on multi-week archives; a day of 5-minute bins is
    /// a practical floor.
    pub warmup_bins: usize,
    /// Sliding training-window capacity in bins.
    pub window_bins: usize,
    /// Window roll granularity: the window drops its oldest `chunk_bins`
    /// whenever it overflows, and refits Chan-merge the surviving chunks.
    pub chunk_bins: usize,
    /// Scheduled refit cadence in scored bins; `None` disables scheduled
    /// refits.
    pub refit_interval: Option<usize>,
    /// Drift-triggered refit policy; `None` disables the drift trigger.
    pub drift: Option<DriftPolicy>,
    /// Backoff schedule for automatic refit attempts after a failure.
    pub retry: RetryPolicy,
    /// Staleness budget in observed bins: when the serving model is older
    /// than this (no successful swap for more than `staleness_budget`
    /// bins), the monitor enters [`MonitorState::Degraded`] — it keeps
    /// scoring but flags verdicts as stale. `None` disables the budget.
    ///
    /// The default is `None` because staleness is already bounded by the
    /// scheduled refit cadence in a healthy deployment; set it to a small
    /// multiple of [`refit_interval`](Self::refit_interval) to make
    /// *unhealthy* deployments (refits failing for a whole backoff chain)
    /// visible to operators and downstream consumers.
    pub staleness_budget: Option<usize>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            diagnoser: DiagnoserConfig::default(),
            warmup_bins: 288,
            window_bins: 2016,
            chunk_bins: 72,
            refit_interval: Some(288),
            drift: Some(DriftPolicy::default()),
            retry: RetryPolicy::default(),
            staleness_budget: None,
        }
    }
}

/// Lifecycle phase of a [`Monitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorState {
    /// Accumulating the first training window; nothing to score against.
    Warmup,
    /// A model is live and scoring every bin.
    Fitted,
    /// A model is live and scoring every bin, but it is older than the
    /// configured staleness budget (refits have been failing or blocked
    /// for that long). Serving continues — a stale verdict beats none —
    /// with every verdict flagged via [`MonitorStep::stale`].
    Degraded,
    /// A refit is in progress (visible to observers only while
    /// [`observe_rows`](Monitor::observe_rows) executes one; the swap
    /// completes before the call returns).
    Refitting,
}

/// What initiated a refit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefitTrigger {
    /// The warmup window filled: the first fit.
    Warmup,
    /// The scheduled cadence elapsed.
    Scheduled,
    /// The recent alarm rate tripped the drift policy.
    Drift,
    /// [`Monitor::refit_now`] was called.
    Manual,
}

/// The outcome of one refit attempt.
#[derive(Debug, Clone)]
pub enum RefitOutcome {
    /// The new model was swapped in; scoring continues against it from
    /// the next bin.
    Swapped,
    /// The window could not be fitted; the previous model (if any) keeps
    /// serving.
    Failed(DiagnosisError),
}

/// A completed refit attempt, reported on the step that ran it.
#[derive(Debug, Clone)]
pub struct RefitReport {
    /// What initiated the refit.
    pub trigger: RefitTrigger,
    /// Bins in the training window at fit time.
    pub window_bins: usize,
    /// Whether the model swapped.
    pub outcome: RefitOutcome,
    /// Empirical-threshold sharpness warnings for the new model (empty
    /// under the analytic policy or when the window resolves the
    /// quantile) — the structured "too few training bins for this alpha"
    /// signal.
    pub warnings: Vec<(&'static str, EmpiricalSharpness)>,
    /// Per-round warm-start / downdate / convergence trace of the fit
    /// (empty when the fit failed before producing a model).
    pub trace: RefitTrace,
    /// Wall-clock of the whole fit attempt, milliseconds (covers failed
    /// attempts too). Observational only — never feeds back into the
    /// models.
    pub fit_ms: f64,
}

/// The monitor's judgement of one observed bin.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// No model yet; the bin was absorbed into the warmup window.
    Warmup {
        /// Bins still needed before the first fit.
        remaining: usize,
    },
    /// Scored clean.
    Clean,
    /// Scored anomalous.
    Anomalous(Box<Diagnosis>),
    /// The bin's rows carried NaN or infinite values: it was neither
    /// scored (a NaN silently defeats every threshold comparison) nor
    /// absorbed into the training window (one NaN poisons every later
    /// Chan merge). Counted in [`Monitor::quarantined_bins`].
    Quarantined,
}

/// The full result of observing one bin: the verdict, plus the refit (if
/// any) that ran after scoring it.
#[derive(Debug, Clone)]
pub struct MonitorStep {
    /// The observed time bin.
    pub bin: usize,
    /// The monitor's judgement of the bin.
    pub verdict: Verdict,
    /// `true` when the bin was judged by a model older than the
    /// configured staleness budget (the monitor was
    /// [`Degraded`](MonitorState::Degraded) at scoring time): the verdict
    /// is still the best available answer, but downstream consumers
    /// should treat it with reduced confidence.
    pub stale: bool,
    /// A refit that completed after this bin was scored (the very next
    /// bin is judged by the new model).
    pub refit: Option<RefitReport>,
}

impl MonitorStep {
    /// The diagnosis, if the bin was scored anomalous.
    pub fn diagnosis(&self) -> Option<&Diagnosis> {
        match &self.verdict {
            Verdict::Anomalous(d) => Some(d),
            _ => None,
        }
    }
}

/// One operator-readable snapshot of a monitor's serving health: the
/// lifecycle state, the quarantine and refit-failure counters, the
/// model's age against its staleness budget, and the retry backoff still
/// pending. Cheap to produce (copies of counters — no scoring state is
/// touched), so it can be polled every bin.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Current lifecycle state.
    pub state: MonitorState,
    /// Bins observed (scored, absorbed during warmup, or quarantined).
    pub bins_observed: u64,
    /// Bins scored against a model.
    pub bins_scored: u64,
    /// Bins refused for non-finite rows — never scored, never absorbed.
    pub quarantined_bins: u64,
    /// Anomalous verdicts emitted.
    pub detections: u64,
    /// Completed model swaps (the warmup fit included).
    pub refits: u64,
    /// Refit attempts that failed (the old model kept serving).
    pub failed_refits: u64,
    /// Failures since the last successful swap; `0` when healthy. This is
    /// the exponent of the retry backoff.
    pub consecutive_refit_failures: u32,
    /// Bins until automatic triggers may attempt the next refit (`0`: no
    /// backoff pending).
    pub backoff_remaining_bins: usize,
    /// Age of the serving model: bins observed since the last successful
    /// swap (`0` during warmup).
    pub model_age_bins: usize,
    /// The configured staleness budget ([`MonitorConfig::staleness_budget`]).
    pub staleness_budget: Option<usize>,
    /// `true` when the model's age exceeds the staleness budget — the
    /// monitor is serving in [`MonitorState::Degraded`].
    pub degraded: bool,
    /// The error of the most recent *failed* refit since the last
    /// successful swap, if any.
    pub last_refit_error: Option<DiagnosisError>,
}

/// How many recent [`RefitReport`]s a monitor retains for
/// [`Monitor::recent_refits`]. Bounded so months of uptime cannot grow
/// the monitor's working set; 16 comfortably covers the longest failure
/// chain a capped exponential backoff can produce before the window has
/// fully turned over.
const RECENT_REFITS: usize = 16;

/// A lifecycle-managed streaming monitor: warmup, rolling sliding-window
/// refits, atomic model swaps between bins — warmup, scheduled and
/// drift-triggered refits, failure-tolerant swaps.
#[derive(Debug, Clone)]
pub struct Monitor {
    config: MonitorConfig,
    state: MonitorState,
    window: TrainingWindow,
    fitted: Option<FittedDiagnoser>,
    thresholds: (f64, f64, f64),
    /// Scored bins since the live model was fitted.
    since_fit: usize,
    /// Bins observed since the last successful model swap — the model's
    /// age measured against the staleness budget. Unlike `since_fit`,
    /// quarantined bins age the model too: during a garbage storm nothing
    /// is scored, yet the model keeps falling behind the traffic.
    since_swap: usize,
    /// Bins to wait after a *failed* refit before automatic triggers may
    /// try again, produced by the [`RetryPolicy`] backoff schedule.
    refit_cooldown: usize,
    /// Failed refits since the last successful swap — the exponent of
    /// the retry backoff.
    consecutive_failures: u32,
    /// Ring of recent scored-bin outcomes (true = alarmed) feeding the
    /// drift trigger.
    recent: VecDeque<bool>,
    /// Bounded ring of the most recent refit reports (newest last), so
    /// operators can see the failure chains the backoff policy acts on.
    recent_refits: VecDeque<RefitReport>,
    /// The most recent failed refit's error since the last swap.
    last_refit_error: Option<DiagnosisError>,
    bins_observed: u64,
    bins_scored: u64,
    quarantined: u64,
    detections: u64,
    refits: u64,
    failed_refits: u64,
    /// Row scratch recycled across [`observe_bin`](Self::observe_bin)
    /// calls: `(bytes, packets, unfolded entropy)` — no per-bin
    /// allocations on the serve path.
    row_scratch: (Vec<f64>, Vec<f64>, Vec<f64>),
}

impl Monitor {
    /// A monitor for `n_flows` OD flows in the Warmup state.
    ///
    /// # Errors
    ///
    /// `BadConfig` on a nonsensical lifecycle configuration (zero or
    /// inconsistent window sizes, warmup shorter than 4 bins, a drift
    /// policy with an empty window or an out-of-`(0, 1]` alarm fraction,
    /// invalid alpha) — validated here so a misconfigured monitor fails
    /// before it ever watches traffic.
    pub fn new(n_flows: usize, config: MonitorConfig) -> Result<Self, DiagnosisError> {
        config.diagnoser.validate_alpha()?;
        if config.warmup_bins < 4 {
            return Err(DiagnosisError::BadConfig(
                "warmup needs at least 4 bins to model variation",
            ));
        }
        if config.window_bins < config.warmup_bins {
            return Err(DiagnosisError::BadConfig(
                "window capacity cannot be smaller than the warmup window",
            ));
        }
        // Rolling drops whole chunks, so the window can shrink to
        // `window_bins - chunk_bins + 1` bins right after a roll. If that
        // floor undercuts the warmup length, a later refit would silently
        // swap in a model trained on far less data than the operator's own
        // declared minimum — reject the configuration instead.
        if config.window_bins.saturating_sub(config.chunk_bins) + 1 < config.warmup_bins {
            return Err(DiagnosisError::BadConfig(
                "chunk size too coarse: one roll would shrink the window below warmup_bins",
            ));
        }
        if config.refit_interval == Some(0) {
            return Err(DiagnosisError::BadConfig(
                "scheduled refit interval must be at least 1 bin",
            ));
        }
        if config.retry.growth == 0 {
            return Err(DiagnosisError::BadConfig(
                "retry backoff growth factor must be at least 1",
            ));
        }
        if config.staleness_budget == Some(0) {
            return Err(DiagnosisError::BadConfig(
                "staleness budget must be at least 1 bin",
            ));
        }
        if let Some(drift) = config.drift {
            if drift.window == 0 {
                return Err(DiagnosisError::BadConfig(
                    "drift policy needs a non-empty recent window",
                ));
            }
            if !(drift.alarm_fraction > 0.0 && drift.alarm_fraction <= 1.0) {
                return Err(DiagnosisError::BadConfig(
                    "drift alarm fraction must lie in (0, 1]",
                ));
            }
        }
        let window = TrainingWindow::new(n_flows, config.window_bins, config.chunk_bins)?;
        Ok(Monitor {
            config,
            state: MonitorState::Warmup,
            window,
            fitted: None,
            thresholds: (0.0, 0.0, 0.0),
            since_fit: 0,
            since_swap: 0,
            refit_cooldown: 0,
            consecutive_failures: 0,
            recent: VecDeque::new(),
            recent_refits: VecDeque::new(),
            last_refit_error: None,
            bins_observed: 0,
            bins_scored: 0,
            quarantined: 0,
            detections: 0,
            refits: 0,
            failed_refits: 0,
            row_scratch: (Vec::new(), Vec::new(), Vec::new()),
        })
    }

    /// The lifecycle configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Current lifecycle state.
    pub fn state(&self) -> MonitorState {
        self.state
    }

    /// The live model, once out of Warmup.
    pub fn fitted(&self) -> Option<&FittedDiagnoser> {
        self.fitted.as_ref()
    }

    /// The live Q-thresholds `(bytes, packets, entropy)`, meaningful once
    /// out of Warmup.
    pub fn thresholds(&self) -> (f64, f64, f64) {
        self.thresholds
    }

    /// The sliding training window.
    pub fn window(&self) -> &TrainingWindow {
        &self.window
    }

    /// Opens a sharded ingest plane feeding this monitor, on the tier the
    /// diagnoser's [`AccumulatorPolicy`](entromine_entropy::AccumulatorPolicy)
    /// selects. The config's flow count is overridden with the monitor's
    /// own, so the plane's [`FinalizedBin`] rows always fit
    /// [`observe_bin`](Self::observe_bin); everything else (bin length,
    /// lateness, horizon) is taken from `config` as given.
    pub fn ingest_plane(
        &self,
        mut config: entromine_entropy::StreamConfig,
        shards: usize,
    ) -> Result<entromine_entropy::TierShardedBuilder, entromine_entropy::StreamError> {
        config.n_flows = self.window.n_flows();
        self.config.diagnoser.accumulator.sharded(config, shards)
    }

    /// Bins observed (scored or absorbed during warmup).
    pub fn bins_observed(&self) -> u64 {
        self.bins_observed
    }

    /// Bins scored against a model.
    pub fn bins_scored(&self) -> u64 {
        self.bins_scored
    }

    /// Anomalous verdicts emitted.
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// Completed model swaps (the warmup fit included).
    pub fn refits(&self) -> u64 {
        self.refits
    }

    /// Bins refused for non-finite rows — never scored, never absorbed.
    pub fn quarantined_bins(&self) -> u64 {
        self.quarantined
    }

    /// The most recent refit reports, oldest first (bounded ring of the
    /// last [`RECENT_REFITS`](Monitor::recent_refits) attempts, successes
    /// and failures alike) — the failure chains the retry backoff acts
    /// on, visible to operators in one place.
    pub fn recent_refits(&self) -> impl Iterator<Item = &RefitReport> {
        self.recent_refits.iter()
    }

    /// One operator-readable snapshot of serving health: state, counters,
    /// model age against the staleness budget, pending retry backoff.
    pub fn health(&self) -> HealthReport {
        HealthReport {
            state: self.state,
            bins_observed: self.bins_observed,
            bins_scored: self.bins_scored,
            quarantined_bins: self.quarantined,
            detections: self.detections,
            refits: self.refits,
            failed_refits: self.failed_refits,
            consecutive_refit_failures: self.consecutive_failures,
            backoff_remaining_bins: self.refit_cooldown,
            model_age_bins: self.since_swap,
            staleness_budget: self.config.staleness_budget,
            degraded: self.model_is_stale(),
            last_refit_error: self.last_refit_error.clone(),
        }
    }

    /// Whether the serving model has outlived the staleness budget.
    fn model_is_stale(&self) -> bool {
        match (self.fitted.as_ref(), self.config.staleness_budget) {
            (Some(_), Some(budget)) => self.since_swap > budget,
            _ => false,
        }
    }

    /// Re-derives the resting state from the serving model and its age —
    /// called whenever either may have changed.
    fn update_serving_state(&mut self) {
        self.state = match (self.fitted.is_some(), self.model_is_stale()) {
            (false, _) => MonitorState::Warmup,
            (true, false) => MonitorState::Fitted,
            (true, true) => MonitorState::Degraded,
        };
    }

    /// Observes one finalized bin from the ingest plane. The measurement
    /// rows are materialized into recycled scratch, so a warm monitor
    /// serves bins without per-bin row allocations.
    pub fn observe_bin(&mut self, fb: &FinalizedBin) -> Result<MonitorStep, DiagnosisError> {
        let (mut bytes, mut packets, mut entropy) = std::mem::take(&mut self.row_scratch);
        fb.bytes_row_into(&mut bytes);
        fb.packets_row_into(&mut packets);
        fb.unfolded_entropy_row_into(&mut entropy);
        let out = self.observe_rows(fb.bin, &bytes, &packets, &entropy);
        self.row_scratch = (bytes, packets, entropy);
        out
    }

    /// Observes one bin given its three measurement rows: score (when a
    /// model is live), absorb into the window, then run any triggered
    /// refit — in that order, so the model swap always lands between
    /// bins.
    pub fn observe_rows(
        &mut self,
        bin: usize,
        bytes_row: &[f64],
        packets_row: &[f64],
        entropy_raw: &[f64],
    ) -> Result<MonitorStep, DiagnosisError> {
        self.bins_observed += 1;
        // Quarantine gate: a non-finite row can neither be scored (NaN
        // defeats every threshold comparison — a silent Clean) nor
        // absorbed (one NaN poisons every later Chan merge of the
        // window). Refuse it up front, count it, and keep the lifecycle
        // moving — the backoff still drains and pending triggers still
        // fire, so a garbage storm cannot stall recovery.
        let finite = |row: &[f64]| row.iter().all(|v| v.is_finite());
        if !finite(bytes_row) || !finite(packets_row) || !finite(entropy_raw) {
            self.quarantined += 1;
            if self.fitted.is_some() {
                self.since_swap += 1;
            }
            let stale = self.model_is_stale();
            self.refit_cooldown = self.refit_cooldown.saturating_sub(1);
            let refit = self
                .pending_trigger()
                .map(|trigger| self.run_refit(trigger));
            self.update_serving_state();
            return Ok(MonitorStep {
                bin,
                verdict: Verdict::Quarantined,
                stale,
                refit,
            });
        }
        if self.fitted.is_some() {
            self.since_swap += 1;
        }
        let stale = self.model_is_stale();
        let verdict = match &self.fitted {
            None => Verdict::Warmup {
                remaining: self
                    .config
                    .warmup_bins
                    .saturating_sub(self.window.len() + 1),
            },
            Some(fitted) => {
                let diagnosis = score_rows_against(
                    fitted,
                    self.thresholds,
                    self.config.diagnoser.alpha,
                    bin,
                    bytes_row,
                    packets_row,
                    entropy_raw,
                )?;
                self.bins_scored += 1;
                self.since_fit += 1;
                if let Some(drift) = self.config.drift {
                    self.recent.push_back(diagnosis.is_some());
                    while self.recent.len() > drift.window {
                        self.recent.pop_front();
                    }
                }
                match diagnosis {
                    None => Verdict::Clean,
                    Some(d) => {
                        self.detections += 1;
                        Verdict::Anomalous(Box::new(d))
                    }
                }
            }
        };
        self.window
            .push_bin(bin, bytes_row, packets_row, entropy_raw)?;
        self.refit_cooldown = self.refit_cooldown.saturating_sub(1);

        let refit = self
            .pending_trigger()
            .map(|trigger| self.run_refit(trigger));
        self.update_serving_state();
        Ok(MonitorStep {
            bin,
            verdict,
            stale,
            refit,
        })
    }

    /// Forces a refit on the current window, regardless of triggers.
    pub fn refit_now(&mut self) -> RefitReport {
        self.run_refit(RefitTrigger::Manual)
    }

    /// Which automatic trigger, if any, fires right now.
    fn pending_trigger(&self) -> Option<RefitTrigger> {
        if self.refit_cooldown > 0 {
            // A recent refit attempt failed; wait for the window to have
            // materially changed before burning another O(window·p²) fit.
            return None;
        }
        if self.fitted.is_none() {
            return (self.window.len() >= self.config.warmup_bins).then_some(RefitTrigger::Warmup);
        }
        if let Some(interval) = self.config.refit_interval {
            if self.since_fit >= interval {
                return Some(RefitTrigger::Scheduled);
            }
        }
        if let Some(drift) = self.config.drift {
            if self.recent.len() >= drift.window {
                let alarms = self.recent.iter().filter(|&&a| a).count();
                if alarms as f64 >= drift.alarm_fraction * self.recent.len() as f64 {
                    return Some(RefitTrigger::Drift);
                }
            }
        }
        None
    }

    /// Fits the window and swaps the model in; on failure the old model
    /// keeps serving. Never panics, never leaves the monitor stalled.
    fn run_refit(&mut self, trigger: RefitTrigger) -> RefitReport {
        self.state = MonitorState::Refitting;
        let window_bins = self.window.len();
        let alpha = self.config.diagnoser.alpha;
        let fit_start = std::time::Instant::now();
        // The serving model seeds the refit's eigensolves — on the small
        // drift a refit cadence implies, the warm basis converges in a
        // couple of Rayleigh–Ritz cycles instead of a cold iteration.
        let result = self
            .window
            .fit_warm(&self.config.diagnoser, self.fitted.as_ref())
            .and_then(|(fitted, trace)| Ok((thresholds_for(&fitted, alpha)?, fitted, trace)));
        let fit_ms = fit_start.elapsed().as_secs_f64() * 1e3;
        let report = match result {
            Ok((thresholds, fitted, trace)) => {
                let warnings = fitted.sharpness_warnings(alpha);
                self.fitted = Some(fitted);
                self.thresholds = thresholds;
                self.refits += 1;
                self.since_fit = 0;
                self.since_swap = 0;
                self.refit_cooldown = 0;
                self.consecutive_failures = 0;
                self.last_refit_error = None;
                // The drift estimate restarts: alarms under the old model
                // say nothing about the new one.
                self.recent.clear();
                RefitReport {
                    trigger,
                    window_bins,
                    outcome: RefitOutcome::Swapped,
                    warnings,
                    trace,
                    fit_ms,
                }
            }
            Err(e) => {
                // Back off: without this, the still-true trigger condition
                // would re-run a full window fit on every subsequent bin.
                // The wait grows exponentially with consecutive failures
                // (bounded by the policy's cap): a window that failed to
                // fit twice in a row needs substantially fresher content,
                // not another attempt one chunk later.
                self.consecutive_failures = self.consecutive_failures.saturating_add(1);
                self.failed_refits += 1;
                self.refit_cooldown = self.config.retry.backoff_bins(
                    self.consecutive_failures,
                    self.config.chunk_bins,
                    self.config.window_bins,
                );
                self.last_refit_error = Some(e.clone());
                RefitReport {
                    trigger,
                    window_bins,
                    outcome: RefitOutcome::Failed(e),
                    warnings: Vec::new(),
                    trace: RefitTrace::default(),
                    fit_ms,
                }
            }
        };
        if self.recent_refits.len() >= RECENT_REFITS {
            self.recent_refits.pop_front();
        }
        self.recent_refits.push_back(report.clone());
        self.update_serving_state();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic diurnal rows. `shift` models a *structural* drift: only
    /// even-indexed flows move, so the displacement is orthogonal to the
    /// shared diurnal mode and lands in the residual subspace (a uniform
    /// level shift would hide inside the normal subspace and never
    /// alarm — the very reason deployments need the volume detectors too).
    fn rows(p: usize, bin: usize, shift: f64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let phase = (bin as f64 / 48.0) * std::f64::consts::TAU;
        let jitter = |i: usize| ((bin * 31 + i * 17) % 101) as f64 / 101.0;
        let skew = |i: usize| if i.is_multiple_of(2) { shift } else { 0.0 };
        let bytes: Vec<f64> = (0..p)
            .map(|i| 1e5 * (1.0 + 0.1 * phase.sin()) * (1.0 + skew(i)) + 300.0 * jitter(i))
            .collect();
        let packets: Vec<f64> = bytes.iter().map(|b| b / 100.0).collect();
        let entropy: Vec<f64> = (0..4 * p)
            .map(|i| 2.0 + 0.2 * phase.cos() + 0.02 * jitter(i) + skew(i))
            .collect();
        (bytes, packets, entropy)
    }

    fn quick_config() -> MonitorConfig {
        MonitorConfig {
            diagnoser: DiagnoserConfig {
                dim: entromine_subspace::DimSelection::Fixed(2),
                refit_rounds: 1,
                ..Default::default()
            },
            warmup_bins: 24,
            window_bins: 48,
            chunk_bins: 8,
            refit_interval: Some(16),
            drift: Some(DriftPolicy {
                window: 8,
                alarm_fraction: 0.5,
            }),
            retry: RetryPolicy::default(),
            staleness_budget: None,
        }
    }

    #[test]
    fn config_validated() {
        let ok = quick_config();
        assert!(Monitor::new(4, ok).is_ok());
        let mut bad = ok;
        bad.warmup_bins = 2;
        assert!(Monitor::new(4, bad).is_err());
        let mut bad = ok;
        bad.window_bins = 10;
        assert!(Monitor::new(4, bad).is_err());
        let mut bad = ok;
        bad.refit_interval = Some(0);
        assert!(Monitor::new(4, bad).is_err());
        let mut bad = ok;
        bad.drift = Some(DriftPolicy {
            window: 0,
            alarm_fraction: 0.5,
        });
        assert!(Monitor::new(4, bad).is_err());
        let mut bad = ok;
        bad.drift = Some(DriftPolicy {
            window: 5,
            alarm_fraction: 1.5,
        });
        assert!(Monitor::new(4, bad).is_err());
        let mut bad = ok;
        bad.diagnoser.alpha = 1.5;
        assert!(Monitor::new(4, bad).is_err());
        // A chunk as large as the whole window would let one roll
        // collapse the window far below the declared warmup length.
        let mut bad = ok;
        bad.window_bins = 24;
        bad.chunk_bins = 24;
        assert!(Monitor::new(4, bad).is_err());
        let mut tight = ok;
        tight.window_bins = 31;
        tight.chunk_bins = 8; // post-roll floor = 24 = warmup: allowed
        assert!(Monitor::new(4, tight).is_ok());
        let mut too_tight = ok;
        too_tight.window_bins = 30;
        too_tight.chunk_bins = 8; // post-roll floor 23 < 24: rejected
        assert!(Monitor::new(4, too_tight).is_err());
    }

    #[test]
    fn failed_refit_backs_off_one_chunk() {
        // Drive the monitor into Fitted, then force a refit failure by
        // manual refit on a window that... cannot fail once warm. Instead
        // exercise the cooldown directly through the warmup trigger: a
        // manual refit during warmup fails (too few bins) and must
        // suppress the automatic warmup fit for chunk_bins bins.
        let config = quick_config();
        let mut m = Monitor::new(4, config).unwrap();
        for bin in 0..23 {
            let (b, p, e) = rows(4, bin, 0.0);
            m.observe_rows(bin, &b, &p, &e).unwrap();
        }
        // 23 bins absorbed; a manual refit needs 4+ bins so it succeeds —
        // use an empty monitor instead for the failure path.
        let mut failing = Monitor::new(4, config).unwrap();
        let (b, p, e) = rows(4, 0, 0.0);
        failing.observe_rows(0, &b, &p, &e).unwrap();
        let report = failing.refit_now();
        assert!(matches!(report.outcome, RefitOutcome::Failed(_)));
        // The cooldown suppresses the automatic warmup trigger: feed
        // enough bins to pass warmup_bins and verify the fit lands only
        // after the cooldown (chunk_bins = 8) has drained, not at the
        // first eligible bin.
        let mut fit_at = None;
        for bin in 1..40 {
            let (b, p, e) = rows(4, bin, 0.0);
            let step = failing.observe_rows(bin, &b, &p, &e).unwrap();
            if step.refit.is_some() && fit_at.is_none() {
                fit_at = Some(bin);
            }
        }
        // Warmup completes at bin 23 (24 bins held); the failure at bin 0
        // set an 8-bin cooldown which drained long before, so the fit
        // fires on schedule — the cooldown must delay retries, never
        // permanently stall the lifecycle.
        assert_eq!(fit_at, Some(23));
        assert_eq!(failing.state(), MonitorState::Fitted);
    }

    /// The degenerate-window config shared by the garbage-storm tests:
    /// tiny window, 4-bin chunks, scheduled refits every 4 scored bins.
    fn tiny_config() -> MonitorConfig {
        MonitorConfig {
            diagnoser: DiagnoserConfig {
                dim: entromine_subspace::DimSelection::Fixed(2),
                refit_rounds: 0,
                ..Default::default()
            },
            warmup_bins: 8,
            window_bins: 16,
            chunk_bins: 4,
            refit_interval: Some(4),
            drift: None,
            retry: RetryPolicy::default(),
            staleness_budget: None,
        }
    }

    #[test]
    fn non_finite_bins_are_quarantined_and_cannot_flip_the_model() {
        // The regression the quarantine exists for: a NaN row used to
        // flow straight into the window's moment accumulators, poisoning
        // every later Chan merge and flipping every subsequent refit into
        // failure. Now it must be refused at the door — the monitor that
        // saw the NaN bin stays bitwise identical to one that never did.
        let config = tiny_config();
        let mut poisoned = Monitor::new(4, config).unwrap();
        let mut clean = Monitor::new(4, config).unwrap();
        let mut quarantined_steps = 0;
        for bin in 0..32 {
            let (b, p, e) = rows(4, bin, 0.0);
            clean.observe_rows(bin, &b, &p, &e).unwrap();
            // The poisoned monitor additionally sees a garbage bin before
            // every real one: NaN, +Inf, -Inf rows in rotation.
            let bad = match bin % 3 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                _ => f64::NEG_INFINITY,
            };
            let step = poisoned
                .observe_rows(1000 + bin, &[bad; 4], &[bad; 4], &[bad; 16])
                .unwrap();
            assert!(matches!(step.verdict, Verdict::Quarantined));
            quarantined_steps += 1;
            poisoned.observe_rows(bin, &b, &p, &e).unwrap();
        }
        assert_eq!(poisoned.quarantined_bins(), quarantined_steps);
        assert_eq!(clean.quarantined_bins(), 0);
        // Same refit history, same window content, bitwise-equal serving
        // thresholds: the garbage changed nothing but the counters.
        assert_eq!(poisoned.refits(), clean.refits());
        assert_eq!(poisoned.window().bins(), clean.window().bins());
        assert_eq!(poisoned.thresholds(), clean.thresholds());
        assert_eq!(poisoned.state(), MonitorState::Fitted);
        // Quarantined bins were never scored.
        assert_eq!(poisoned.bins_scored(), clean.bins_scored());
    }

    #[test]
    fn failing_refits_back_off_exponentially_until_the_window_heals() {
        // A garbage bin of huge-but-finite values passes the quarantine
        // gate (it is real, scorable data — and it alarms) but overflows
        // the window's comoments to Inf, so every fit fails until the
        // poisoned chunk rolls out. The monitor must keep serving the old
        // model and retry on the RetryPolicy's doubling cadence — 4, 8,
        // then 16 bins (capped at the window) — never once per bin.
        let mut m = Monitor::new(4, tiny_config()).unwrap();
        let mut attempts: Vec<(usize, bool)> = Vec::new();
        for bin in 0..44 {
            let (b, p, e) = if bin == 8 {
                (vec![1e300; 4], vec![1e300; 4], vec![1e300; 16])
            } else {
                rows(4, bin, 0.0)
            };
            let step = m.observe_rows(bin, &b, &p, &e).unwrap();
            if let Some(r) = &step.refit {
                attempts.push((bin, matches!(r.outcome, RefitOutcome::Swapped)));
            }
        }
        // Warmup fit at bin 7; the scheduled refit at bin 11 hits the
        // poisoned window and fails. Backoffs double: 4 bins (retry at
        // 15, fails), 8 bins (retry at 23, fails — the poisoned chunk
        // 8..12 only rolls out at bin 24), then 16 bins: the retry at 39
        // sees a healed window and swaps.
        let failed: Vec<usize> = attempts
            .iter()
            .filter(|(_, ok)| !ok)
            .map(|&(bin, _)| bin)
            .collect();
        assert_eq!(failed, vec![11, 15, 23], "doubling backoff cadence");
        let recovered = attempts
            .iter()
            .find(|&&(bin, ok)| ok && bin > 7)
            .expect("monitor must recover after the poisoned chunk rolls out");
        assert_eq!(recovered.0, 39);
        assert_eq!(m.state(), MonitorState::Fitted);
        let health = m.health();
        assert_eq!(health.failed_refits, 3);
        assert_eq!(health.consecutive_refit_failures, 0, "reset on swap");
        assert!(health.last_refit_error.is_none(), "cleared on swap");
        // The old model never stopped serving: every bin got a verdict.
        assert_eq!(m.bins_observed(), 44);
        assert_eq!(m.bins_scored(), 44 - 8);
        // The refit ring shows the whole failure chain, oldest first:
        // warmup swap, three failures, healing swap at 39, and the
        // scheduled swap at 43 (cadence restarted by the swap).
        let ring: Vec<bool> = m
            .recent_refits()
            .map(|r| matches!(r.outcome, RefitOutcome::Swapped))
            .collect();
        assert_eq!(ring, vec![true, false, false, false, true, true]);
    }

    #[test]
    fn stale_model_degrades_but_keeps_scoring() {
        // Refits kept failing past the staleness budget: the monitor must
        // enter Degraded, flag verdicts stale, and recover to Fitted on
        // the next successful swap.
        let mut config = tiny_config();
        config.staleness_budget = Some(12);
        let mut m = Monitor::new(4, config).unwrap();
        let mut degraded_bins: Vec<usize> = Vec::new();
        let mut stale_verdicts = 0u64;
        for bin in 0..44 {
            let (b, p, e) = if bin == 8 {
                (vec![1e300; 4], vec![1e300; 4], vec![1e300; 16])
            } else {
                rows(4, bin, 0.0)
            };
            let step = m.observe_rows(bin, &b, &p, &e).unwrap();
            if m.state() == MonitorState::Degraded {
                degraded_bins.push(bin);
            }
            if step.stale {
                assert!(!matches!(step.verdict, Verdict::Warmup { .. }));
                stale_verdicts += 1;
            }
        }
        // The warmup model swaps at bin 7; with every refit failing, its
        // age exceeds the 12-bin budget at bin 20 and the monitor serves
        // Degraded until the healing swap at bin 39.
        assert_eq!(degraded_bins.first(), Some(&20));
        assert_eq!(degraded_bins.last(), Some(&38));
        assert!(stale_verdicts > 0, "degraded bins carry stale verdicts");
        assert_eq!(m.state(), MonitorState::Fitted, "recovered after swap");
        // The healing swap at 39 restarted the cadence; the scheduled
        // swap at bin 43 (the last bin) left a fresh model serving.
        assert_eq!(m.health().model_age_bins, 0);
        assert!(!m.health().degraded);
    }

    #[test]
    fn warmup_fits_then_scores_every_bin() {
        let config = quick_config();
        let mut m = Monitor::new(4, config).unwrap();
        assert_eq!(m.state(), MonitorState::Warmup);
        let mut warmup_fit_at = None;
        for bin in 0..40 {
            let (b, p, e) = rows(4, bin, 0.0);
            let step = m.observe_rows(bin, &b, &p, &e).unwrap();
            match (bin < 24, &step.verdict) {
                (true, Verdict::Warmup { remaining }) => {
                    assert_eq!(*remaining, 23 - bin);
                }
                (false, v) => assert!(
                    !matches!(v, Verdict::Warmup { .. }),
                    "bin {bin} not scored: {v:?}"
                ),
                (true, v) => panic!("bin {bin} scored during warmup: {v:?}"),
            }
            if let Some(r) = &step.refit {
                if warmup_fit_at.is_none() {
                    assert_eq!(r.trigger, RefitTrigger::Warmup);
                    assert!(matches!(r.outcome, RefitOutcome::Swapped));
                    warmup_fit_at = Some(bin);
                }
            }
        }
        assert_eq!(warmup_fit_at, Some(23), "first fit after 24 absorbed bins");
        assert_eq!(m.state(), MonitorState::Fitted);
        assert_eq!(m.bins_observed(), 40);
        // Warmup bins unscored, everything after scored exactly once.
        assert_eq!(m.bins_scored(), 40 - 24);
        assert!(m.refits() >= 1);
    }

    #[test]
    fn scheduled_refits_fire_on_cadence() {
        let mut config = quick_config();
        config.drift = None;
        let mut m = Monitor::new(4, config).unwrap();
        let mut scheduled = Vec::new();
        for bin in 0..80 {
            let (b, p, e) = rows(4, bin, 0.0);
            let step = m.observe_rows(bin, &b, &p, &e).unwrap();
            if let Some(r) = &step.refit {
                if r.trigger == RefitTrigger::Scheduled {
                    scheduled.push(bin);
                }
            }
        }
        // First fit at bin 23; scheduled refits every 16 scored bins.
        assert_eq!(scheduled, vec![39, 55, 71]);
    }

    #[test]
    fn manual_refit_and_failure_keeps_old_model() {
        let config = quick_config();
        let mut m = Monitor::new(4, config).unwrap();
        // Refit with an under-filled window fails but leaves Warmup state
        // intact and the monitor serving.
        let (b, p, e) = rows(4, 0, 0.0);
        m.observe_rows(0, &b, &p, &e).unwrap();
        let report = m.refit_now();
        assert!(matches!(report.outcome, RefitOutcome::Failed(_)));
        assert_eq!(m.state(), MonitorState::Warmup);
        assert_eq!(m.refits(), 0);
        // Fill warmup; manual refit then succeeds.
        for bin in 1..24 {
            let (b, p, e) = rows(4, bin, 0.0);
            m.observe_rows(bin, &b, &p, &e).unwrap();
        }
        assert_eq!(m.state(), MonitorState::Fitted);
        let report = m.refit_now();
        assert!(matches!(report.outcome, RefitOutcome::Swapped));
        assert_eq!(report.trigger, RefitTrigger::Manual);
    }

    #[test]
    fn drift_trigger_fires_on_sustained_alarms() {
        let mut config = quick_config();
        config.refit_interval = None; // isolate the drift trigger
        let mut m = Monitor::new(4, config).unwrap();
        for bin in 0..24 {
            let (b, p, e) = rows(4, bin, 0.0);
            m.observe_rows(bin, &b, &p, &e).unwrap();
        }
        assert_eq!(m.state(), MonitorState::Fitted);
        // A sustained level shift: every bin alarms under the stale
        // model until the drift trigger refits onto the new regime.
        let mut drift_refit = None;
        for bin in 24..80 {
            let (b, p, e) = rows(4, bin, 0.5);
            let step = m.observe_rows(bin, &b, &p, &e).unwrap();
            if let Some(r) = &step.refit {
                if r.trigger == RefitTrigger::Drift && drift_refit.is_none() {
                    assert!(matches!(r.outcome, RefitOutcome::Swapped));
                    drift_refit = Some(bin);
                }
            }
        }
        let drift_bin = drift_refit.expect("drift refit must fire");
        // The ring needs `window` post-shift bins before it can trip.
        assert!(drift_bin >= 24 + 8 - 1, "tripped too early: {drift_bin}");
        assert!(drift_bin < 40, "tripped too late: {drift_bin}");
    }
}
