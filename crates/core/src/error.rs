//! Error type for the diagnosis pipeline.

use entromine_subspace::SubspaceError;
use std::fmt;

/// Errors produced by the end-to-end diagnosis pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum DiagnosisError {
    /// The underlying subspace method failed.
    Subspace(SubspaceError),
    /// The dataset is unusable for the requested operation.
    BadDataset(&'static str),
    /// The diagnoser configuration is invalid (caught at fit time).
    BadConfig(&'static str),
    /// Classification was asked for with invalid parameters.
    BadClassifier(&'static str),
    /// A measurement row carried NaN or infinite values. Surfaced instead
    /// of silently poisoning streaming moments: one NaN pushed into a
    /// [`MomentAccumulator`](entromine_linalg::MomentAccumulator) would
    /// corrupt every later Chan merge of the training window.
    NonFiniteInput(&'static str),
}

impl fmt::Display for DiagnosisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagnosisError::Subspace(e) => write!(f, "subspace method failed: {e}"),
            DiagnosisError::BadDataset(what) => write!(f, "bad dataset: {what}"),
            DiagnosisError::BadConfig(what) => write!(f, "bad diagnoser config: {what}"),
            DiagnosisError::BadClassifier(what) => write!(f, "bad classifier config: {what}"),
            DiagnosisError::NonFiniteInput(what) => write!(f, "non-finite input: {what}"),
        }
    }
}

impl std::error::Error for DiagnosisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiagnosisError::Subspace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SubspaceError> for DiagnosisError {
    fn from(e: SubspaceError) -> Self {
        DiagnosisError::Subspace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DiagnosisError::BadDataset("too few bins");
        assert!(e.to_string().contains("too few bins"));
        let inner = SubspaceError::BadAlpha(2.0);
        let e: DiagnosisError = inner.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("alpha"));
    }
}
