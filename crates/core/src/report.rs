//! Ground-truth evaluation: matching diagnoses to injected anomalies and
//! building the paper's table rows.
//!
//! The paper's Tables 3, 6 and 7 rest on manually inspected labels; the
//! synthetic datasets carry exact ground truth instead, so "manual
//! inspection" becomes a join between [`DiagnosisReport`] bins and
//! [`InjectedAnomaly`] coverage.

use crate::DiagnosisReport;
use entromine_cluster::{Clustering, Signature};
use entromine_linalg::Mat;
use entromine_synth::{AnomalyLabel, InjectedAnomaly};
use std::collections::HashMap;

/// The outcome of matching one diagnosis against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchOutcome {
    /// The diagnosis falls in a bin covered by this truth event (index
    /// into the truth list).
    Truth(usize),
    /// No truth event covers the bin: a false alarm.
    FalseAlarm,
}

/// Matches each diagnosis to the ground-truth event covering its bin (any
/// affected flow counts; if several events share a bin the first one in
/// truth order wins).
pub fn match_truth(report: &DiagnosisReport, truth: &[InjectedAnomaly]) -> Vec<MatchOutcome> {
    report
        .diagnoses
        .iter()
        .map(|d| {
            truth
                .iter()
                .position(|ev| ev.bins().contains(&d.bin))
                .map_or(MatchOutcome::FalseAlarm, MatchOutcome::Truth)
        })
        .collect()
}

/// One row of a Table 3-style label breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelRow {
    /// The anomaly label.
    pub label: AnomalyLabel,
    /// Events of this label injected into the dataset.
    pub injected: usize,
    /// Events detected by a volume method (any covered bin flagged).
    pub found_in_volume: usize,
    /// Events *additionally* found only by entropy.
    pub additional_in_entropy: usize,
    /// Events missed entirely.
    pub missed: usize,
}

/// Builds the Table 3-style breakdown: per label, how many injected events
/// were found by volume, how many additionally by entropy, how many missed.
pub fn label_breakdown(report: &DiagnosisReport, truth: &[InjectedAnomaly]) -> Vec<LabelRow> {
    // For each truth event, collect the methods of diagnoses in its bins.
    #[derive(Default, Clone, Copy)]
    struct Found {
        volume: bool,
        entropy: bool,
    }
    let mut found = vec![Found::default(); truth.len()];
    for d in &report.diagnoses {
        for (i, ev) in truth.iter().enumerate() {
            if ev.bins().contains(&d.bin) {
                found[i].volume |= d.methods.volume();
                found[i].entropy |= d.methods.entropy;
            }
        }
    }
    // Group by label, preserving the taxonomy order.
    let mut order: Vec<AnomalyLabel> = Vec::new();
    let mut rows: HashMap<AnomalyLabel, LabelRow> = HashMap::new();
    for (i, ev) in truth.iter().enumerate() {
        let label = ev.event.label;
        let row = rows.entry(label).or_insert_with(|| {
            order.push(label);
            LabelRow {
                label,
                injected: 0,
                found_in_volume: 0,
                additional_in_entropy: 0,
                missed: 0,
            }
        });
        row.injected += 1;
        if found[i].volume {
            row.found_in_volume += 1;
        } else if found[i].entropy {
            row.additional_in_entropy += 1;
        } else {
            row.missed += 1;
        }
    }
    order
        .into_iter()
        .map(|l| rows.remove(&l).expect("row exists"))
        .collect()
}

/// One row of a Table 7-style cluster summary.
#[derive(Debug, Clone)]
pub struct ClusterRow {
    /// Cluster index (in the clustering's own numbering).
    pub cluster: usize,
    /// Number of anomaly points in the cluster.
    pub size: usize,
    /// Most common ground-truth label among members, with its count.
    pub plurality: Option<(AnomalyLabel, usize)>,
    /// Members whose diagnosis matched no truth event or an `Unknown` one.
    pub unknowns: usize,
    /// The cluster's position in entropy space.
    pub signature: Signature,
}

/// Builds Table 7-style rows: clusters in decreasing size order with
/// plurality labels and `+ / 0 / −` signatures.
///
/// * `points` — the `n x 4` anomaly point matrix that was clustered.
/// * `labels` — per-point ground truth (`None` = unmatched/false alarm).
/// * `sd_threshold` — significance for the sign codes (3 in Table 7,
///   2 in Table 8).
pub fn cluster_rows(
    points: &Mat,
    clustering: &Clustering,
    labels: &[Option<AnomalyLabel>],
    sd_threshold: f64,
) -> Vec<ClusterRow> {
    assert_eq!(points.rows(), clustering.assignments.len());
    assert_eq!(points.rows(), labels.len());
    let mut rows = Vec::new();
    for cluster in clustering.by_size_desc() {
        let members = clustering.members(cluster);
        if members.is_empty() {
            continue;
        }
        let mut counts: HashMap<AnomalyLabel, usize> = HashMap::new();
        let mut unknowns = 0usize;
        for &m in &members {
            match labels[m] {
                Some(AnomalyLabel::Unknown) | None => {
                    unknowns += 1;
                    if let Some(l) = labels[m] {
                        *counts.entry(l).or_insert(0) += 1;
                    }
                }
                Some(l) => {
                    *counts.entry(l).or_insert(0) += 1;
                }
            }
        }
        let plurality = counts
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)));
        rows.push(ClusterRow {
            cluster,
            size: members.len(),
            plurality,
            unknowns,
            signature: Signature::of(points, &members, sd_threshold),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{DetectionMethods, Diagnosis, DiagnosisReport};
    use entromine_synth::AnomalyEvent;

    fn truth_event(label: AnomalyLabel, bin: usize, flow: usize) -> InjectedAnomaly {
        InjectedAnomaly {
            event: AnomalyEvent {
                label,
                start_bin: bin,
                duration: 1,
                flows: vec![flow],
                packets_per_cell: 100.0,
                seed: 0,
            },
        }
    }

    fn diag(bin: usize, volume: bool, entropy: bool) -> Diagnosis {
        Diagnosis {
            bin,
            methods: DetectionMethods {
                bytes: volume,
                packets: false,
                entropy,
            },
            entropy_spe: 1.0,
            bytes_spe: 1.0,
            packets_spe: 0.0,
            flows: Vec::new(),
            point: None,
        }
    }

    fn report(diagnoses: Vec<Diagnosis>) -> DiagnosisReport {
        DiagnosisReport {
            diagnoses,
            thresholds: (1.0, 1.0, 1.0),
        }
    }

    #[test]
    fn matching_finds_covering_events() {
        let truth = vec![
            truth_event(AnomalyLabel::PortScan, 10, 0),
            truth_event(AnomalyLabel::DosSingle, 20, 1),
        ];
        let r = report(vec![
            diag(10, false, true),
            diag(15, true, false),
            diag(20, true, true),
        ]);
        let outcomes = match_truth(&r, &truth);
        assert_eq!(
            outcomes,
            vec![
                MatchOutcome::Truth(0),
                MatchOutcome::FalseAlarm,
                MatchOutcome::Truth(1)
            ]
        );
    }

    #[test]
    fn breakdown_assigns_volume_priority() {
        // An event seen by both methods counts under "found in volume",
        // matching the paper's Table 3 accounting.
        let truth = vec![
            truth_event(AnomalyLabel::DosSingle, 10, 0),
            truth_event(AnomalyLabel::PortScan, 20, 0),
            truth_event(AnomalyLabel::PortScan, 30, 0),
        ];
        let r = report(vec![
            diag(10, true, true),  // DOS: both
            diag(20, false, true), // scan: entropy only
        ]);
        let rows = label_breakdown(&r, &truth);
        let dos = rows
            .iter()
            .find(|r| r.label == AnomalyLabel::DosSingle)
            .unwrap();
        assert_eq!(dos.found_in_volume, 1);
        assert_eq!(dos.additional_in_entropy, 0);
        assert_eq!(dos.missed, 0);
        let scan = rows
            .iter()
            .find(|r| r.label == AnomalyLabel::PortScan)
            .unwrap();
        assert_eq!(scan.injected, 2);
        assert_eq!(scan.found_in_volume, 0);
        assert_eq!(scan.additional_in_entropy, 1);
        assert_eq!(scan.missed, 1);
    }

    #[test]
    fn cluster_rows_summarize() {
        // Two clusters: port scans near (0,0,-0.5,0.85), alphas near
        // (-0.5,-0.5,-0.5,-0.5).
        let pts = Mat::from_rows(&[
            &[0.0, 0.0, -0.5, 0.85],
            &[0.01, 0.0, -0.5, 0.86],
            &[-0.5, -0.5, -0.5, -0.5],
            &[-0.51, -0.5, -0.5, -0.5],
            &[-0.5, -0.51, -0.5, -0.5],
        ]);
        let clustering = Clustering {
            k: 2,
            assignments: vec![0, 0, 1, 1, 1],
            centers: Mat::zeros(2, 4),
        };
        let labels = vec![
            Some(AnomalyLabel::PortScan),
            Some(AnomalyLabel::PortScan),
            Some(AnomalyLabel::AlphaFlow),
            Some(AnomalyLabel::AlphaFlow),
            None, // an unmatched detection in the alpha cluster
        ];
        let rows = cluster_rows(&pts, &clustering, &labels, 3.0);
        assert_eq!(rows.len(), 2);
        // Largest cluster first.
        assert_eq!(rows[0].size, 3);
        assert_eq!(rows[0].plurality.unwrap().0, AnomalyLabel::AlphaFlow);
        assert_eq!(rows[0].unknowns, 1);
        assert_eq!(rows[1].size, 2);
        assert_eq!(rows[1].plurality.unwrap().0, AnomalyLabel::PortScan);
        // Port scan cluster: dstPort +, dstIP -.
        let s = rows[1].signature.sign_string();
        assert!(s.ends_with('+'), "signature {s}");
    }

    #[test]
    fn empty_report_empty_tables() {
        let r = report(Vec::new());
        assert!(match_truth(&r, &[]).is_empty());
        assert!(label_breakdown(&r, &[]).is_empty());
    }
}
