//! Error type shared by the linear-algebra routines.

use std::fmt;

/// Errors produced by the dense linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ///
    /// Carries a human-readable description of the two shapes involved.
    ShapeMismatch {
        /// Description of the operation that failed (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left/first operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right/second operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// The matrix passed to an eigensolver was not square.
    NotSquare {
        /// Actual shape of the offending matrix.
        shape: (usize, usize),
    },
    /// The matrix passed to a symmetric eigensolver was not symmetric
    /// within tolerance.
    NotSymmetric,
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the algorithm that failed (e.g. `"tqli"`).
        algorithm: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The input was empty where at least one element/row/column is required.
    Empty {
        /// Description of what was empty.
        what: &'static str,
    },
    /// A numeric argument was outside its valid domain.
    Domain {
        /// Description of the domain violation.
        what: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix is not square: {}x{}", shape.0, shape.1)
            }
            LinalgError::NotSymmetric => write!(f, "matrix is not symmetric"),
            LinalgError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            LinalgError::Empty { what } => write!(f, "empty input: {what}"),
            LinalgError::Domain { what } => write!(f, "domain error: {what}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));

        let e = LinalgError::NoConvergence {
            algorithm: "tqli",
            iterations: 50,
        };
        assert!(e.to_string().contains("tqli"));
        assert!(e.to_string().contains("50"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&LinalgError::NotSymmetric);
    }
}
