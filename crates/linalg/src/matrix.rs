//! A dense, row-major `f64` matrix.
//!
//! [`Mat`] is deliberately simple: a `Vec<f64>` plus a shape. All hot loops
//! in this workspace (covariance accumulation, projections) are written
//! against row slices, which the row-major layout makes contiguous.

use crate::LinalgError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense matrix of `f64` values stored in row-major order.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            assert_eq!(r.len(), ncols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Mat {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Creates a matrix from an owned row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must be rows*cols");
        Mat { rows, cols, data }
    }

    /// Creates a matrix whose `(i, j)` entry is `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Iterates over the rows as slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major buffer. Row `i` occupies
    /// `[i*cols, (i+1)*cols)`; `chunks_exact_mut(cols)` yields the rows —
    /// the seam kernels use to update several rows in one pass.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                t[(j, i)] = v;
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses the cache-friendly `i-k-j` loop order over row slices.
    pub fn matmul(&self, rhs: &Mat) -> Result<Mat, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            // Split borrow: output row i is disjoint from rhs.
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (j, &bkj) in b_row.iter().enumerate() {
                    out_row[j] += aik * bkj;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok(self.row_iter().map(|row| dot(row, v)).collect())
    }

    /// Vector–matrix product `v^T * self`, returned as a plain vector.
    pub fn vecmat(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.rows != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "vecmat",
                lhs: (1, v.len()),
                rhs: self.shape(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for (j, &aij) in self.row(i).iter().enumerate() {
                out[j] += vi * aij;
            }
        }
        Ok(out)
    }

    /// Per-column means.
    pub fn col_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        if self.rows == 0 {
            return means;
        }
        for row in self.row_iter() {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        let n = self.rows as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Subtracts `means[j]` from every entry of column `j`, in place.
    ///
    /// # Panics
    ///
    /// Panics if `means.len() != self.cols()`.
    pub fn center_cols(&mut self, means: &[f64]) {
        assert_eq!(means.len(), self.cols, "means length must equal cols");
        for i in 0..self.rows {
            let row = self.row_mut(i);
            for (v, &m) in row.iter_mut().zip(means) {
                *v -= m;
            }
        }
    }

    /// Sample covariance of the columns: `X^T X / (rows - 1)` where `X` is
    /// `self` with column means removed.
    ///
    /// The kernel is blocked: workers own balanced contiguous row-blocks of
    /// the output's upper triangle (scoped threads, capped at 16), and each
    /// block is accumulated panel-by-panel over the data rows so the hot
    /// output rows stay cache-resident instead of streaming the whole
    /// triangle once per data row (~2x single-threaded on Geant-width
    /// matrices, where the triangle blows the cache). Narrow matrices on a
    /// single worker take the serial kernel directly. Every output element
    /// sums its per-row contributions in row order in every variant, so
    /// the result is bitwise-identical to
    /// [`covariance_serial`](Self::covariance_serial) at any worker count.
    ///
    /// Returns an error if the matrix has fewer than two rows.
    pub fn covariance(&self) -> Result<Mat, LinalgError> {
        if self.rows < 2 {
            return Err(LinalgError::Empty {
                what: "covariance needs at least 2 rows",
            });
        }
        let n = self.cols;
        let flops = self.rows.saturating_mul(n).saturating_mul(n + 1) / 2;
        let workers = crate::par::workers_for(flops);
        // Below ~640 columns the output triangle (< ~1.6 MiB) is
        // cache-resident and the straightforward kernel's single pass over
        // the data wins; with only one worker there is then nothing for
        // blocking to buy. Both kernels are bitwise-equal, so the dispatch
        // is invisible.
        if workers <= 1 && n < 640 {
            self.covariance_serial()
        } else {
            self.covariance_blocked()
        }
    }

    /// The blocked covariance kernel, unconditionally: cache-sized row
    /// panels, upper triangle split across scoped worker threads.
    ///
    /// [`covariance`](Self::covariance) routes here whenever blocking can
    /// pay (wide matrices, or more than one worker); it is public so
    /// benches and tests can pit the kernels against each other at any
    /// size. Bitwise-equal to the other two kernels.
    pub fn covariance_blocked(&self) -> Result<Mat, LinalgError> {
        if self.rows < 2 {
            return Err(LinalgError::Empty {
                what: "covariance needs at least 2 rows",
            });
        }
        let n = self.cols;
        let flops = self.rows.saturating_mul(n).saturating_mul(n + 1) / 2;
        let ranges = crate::par::triangle_ranges(n, crate::par::workers_for(flops));
        let means = self.col_means();
        let mut centered = self.clone();
        centered.center_cols(&means);
        let mut cov = Mat::zeros(n, n);
        if ranges.len() <= 1 {
            cov_accumulate(&centered, 0..n, &mut cov.data);
        } else {
            let centered_ref = &centered;
            std::thread::scope(|s| {
                let mut rest: &mut [f64] = &mut cov.data;
                for range in ranges {
                    let (head, tail) = rest.split_at_mut(range.len() * n);
                    rest = tail;
                    s.spawn(move || cov_accumulate(centered_ref, range, head));
                }
            });
        }
        let denom = (self.rows - 1) as f64;
        for i in 0..n {
            for j in i..n {
                let v = cov[(i, j)] / denom;
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }
        Ok(cov)
    }

    /// The straightforward row-at-a-time covariance kernel: one scan of the
    /// full upper triangle per data row, single-threaded.
    ///
    /// Kept as the reference implementation — [`covariance`](Self::covariance)
    /// must agree with it bitwise (asserted in tests), and the perf runner
    /// in `crates/bench` reports the blocked kernel's speedup against this
    /// baseline.
    pub fn covariance_serial(&self) -> Result<Mat, LinalgError> {
        if self.rows < 2 {
            return Err(LinalgError::Empty {
                what: "covariance needs at least 2 rows",
            });
        }
        let means = self.col_means();
        let n = self.cols;
        let mut cov = Mat::zeros(n, n);
        let mut centered = vec![0.0; n];
        for row in self.row_iter() {
            for ((c, &v), &m) in centered.iter_mut().zip(row).zip(&means) {
                *c = v - m;
            }
            // Accumulate upper triangle of the outer product.
            for i in 0..n {
                let ci = centered[i];
                if ci == 0.0 {
                    continue;
                }
                let cov_row = &mut cov.data[i * n + i..(i + 1) * n];
                crate::kernel::axpy(cov_row, ci, &centered[i..]);
            }
        }
        let denom = (self.rows - 1) as f64;
        for i in 0..n {
            for j in i..n {
                let v = cov[(i, j)] / denom;
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }
        Ok(cov)
    }

    /// Gram matrix `self · selfᵀ`: entry `(a, b)` is the dot product of
    /// rows `a` and `b`.
    ///
    /// Rows are contiguous in the row-major layout, so each entry is a
    /// streaming dot product; the upper triangle is split across scoped
    /// worker threads (balanced by element count, capped at 16) and
    /// mirrored. This is the kernel behind [`Pca::fit_gram`], which solves
    /// the `rows < cols` eigenproblem in the small `rows × rows` space.
    ///
    /// [`Pca::fit_gram`]: crate::Pca::fit_gram
    pub fn gram(&self) -> Mat {
        let t = self.rows;
        let mut g = Mat::zeros(t, t);
        let flops = t.saturating_mul(t + 1).saturating_mul(self.cols) / 2;
        let ranges = crate::par::triangle_ranges(t, crate::par::workers_for(flops));
        if ranges.len() <= 1 {
            gram_accumulate(self, 0..t, &mut g.data);
        } else {
            std::thread::scope(|s| {
                let mut rest: &mut [f64] = &mut g.data;
                for range in ranges {
                    let (head, tail) = rest.split_at_mut(range.len() * t);
                    rest = tail;
                    s.spawn(move || gram_accumulate(self, range, head));
                }
            });
        }
        for a in 0..t {
            for b in a + 1..t {
                g[(b, a)] = g[(a, b)];
            }
        }
        g
    }

    /// Frobenius norm: square root of the sum of squared entries.
    pub fn frobenius_norm(&self) -> f64 {
        self.energy().sqrt()
    }

    /// Total energy: sum of squared entries (squared Frobenius norm).
    pub fn energy(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Multiplies every entry by `s`, in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Largest absolute difference against another matrix of equal shape.
    pub fn max_abs_diff(&self, other: &Mat) -> Result<f64, LinalgError> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "max_abs_diff",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }

    /// `true` if the matrix is symmetric to within `tol` (absolute).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Extracts the submatrix made of the given rows, in the given order.
    pub fn select_rows(&self, rows: &[usize]) -> Mat {
        let mut out = Mat::zeros(rows.len(), self.cols);
        for (dst, &src) in rows.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Extracts the submatrix made of the given columns, in the given order.
    pub fn select_cols(&self, cols: &[usize]) -> Mat {
        let mut out = Mat::zeros(self.rows, cols.len());
        for i in 0..self.rows {
            let src = self.row(i);
            let dst = out.row_mut(i);
            for (slot, &j) in dst.iter_mut().zip(cols) {
                *slot = src[j];
            }
        }
        out
    }

    /// Stacks `self` on top of `other` (column counts must match).
    pub fn vstack(&self, other: &Mat) -> Result<Mat, LinalgError> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Mat::from_vec(self.rows + other.rows, self.cols, data))
    }

    /// Places `self` and `other` side by side (row counts must match).
    pub fn hstack(&self, other: &Mat) -> Result<Mat, LinalgError> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let cols = self.cols + other.cols;
        let mut out = Mat::zeros(self.rows, cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        Ok(out)
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for i in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// Accumulates rows `range` of the upper triangle of `centeredᵀ centered`
/// into `out` (row-major, `range.len() × n`, rebased to `range.start`).
///
/// Data rows are consumed in panels so the output rows being filled stay
/// hot across the whole panel; within one output element the per-row
/// contributions are still added in global row order, which is what makes
/// the blocked kernel bitwise-equal to the serial one.
fn cov_accumulate(centered: &Mat, range: std::ops::Range<usize>, out: &mut [f64]) {
    /// Data rows per panel: 64 rows of a 500-column matrix is ~250 KiB,
    /// sized to sit in L2 while each output row cycles through L1.
    const PANEL: usize = 64;
    let n = centered.cols();
    let t = centered.rows();
    let base = range.start;
    let mut panel_start = 0;
    while panel_start < t {
        let panel_end = (panel_start + PANEL).min(t);
        for i in range.clone() {
            let out_row = &mut out[(i - base) * n + i..(i - base + 1) * n];
            for r in panel_start..panel_end {
                let row = centered.row(r);
                let ci = row[i];
                if ci == 0.0 {
                    continue;
                }
                crate::kernel::axpy(out_row, ci, &row[i..]);
            }
        }
        panel_start = panel_end;
    }
}

/// Fills rows `range` of the upper triangle of `x · xᵀ` into `out`
/// (row-major, `range.len() × rows`, rebased to `range.start`).
///
/// Entries are four-lane [`dot4`] products (dispatched through the kernel
/// tier), not the strict left-to-right [`dot`]: the Gram path is pinned by
/// tolerance against the explicit product and against the covariance fit,
/// never bitwise against a serial-reduction reference, and the strict
/// reduction's serial dependency chain is exactly what makes it slow.
fn gram_accumulate(x: &Mat, range: std::ops::Range<usize>, out: &mut [f64]) {
    let t = x.rows();
    let base = range.start;
    for a in range {
        let row_a = x.row(a);
        let out_row = &mut out[(a - base) * t..(a - base + 1) * t];
        for (b, slot) in out_row.iter_mut().enumerate().skip(a) {
            *slot = dot4(row_a, x.row(b));
        }
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Dot product accumulated into four independent lanes, dispatched
/// through the kernel tier ([`crate::kernel::dot4`]).
///
/// The strict left-to-right reduction of [`dot`] cannot be vectorized
/// without reassociating floating-point adds, so it runs scalar. The
/// spectral kernels (`trace_cubed`, the hardened `top_k_eigen` matvec,
/// the Gram panels) are throughput-bound on exactly this reduction, and
/// none of them needs bitwise agreement with a serial reference — only
/// determinism for a fixed input, which the fixed lane structure provides
/// at any thread count *and under every backend*: the kernel contract
/// pins the lane sequence and reduction order bitwise across scalar,
/// SSE2, and AVX2.
#[inline]
pub(crate) fn dot4(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    crate::kernel::dot4(a, b)
}

/// Euclidean norm of a slice.
#[inline]
pub(crate) fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Mat::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Mat::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 2)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_rows_roundtrip() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn from_rows_ragged_panics() {
        let _ = Mat::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn transpose_involution() {
        let m = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Mat::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 4.0]]);
        let i = Mat::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matvec_and_vecmat() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(a.vecmat(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.vecmat(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn col_means_and_centering() {
        let mut m = Mat::from_rows(&[&[1.0, 10.0], &[3.0, 30.0]]);
        let means = m.col_means();
        assert_eq!(means, vec![2.0, 20.0]);
        m.center_cols(&means);
        assert_eq!(m.col_means(), vec![0.0, 0.0]);
    }

    #[test]
    fn covariance_matches_hand_computation() {
        // Two variables: x = [1,2,3], y = [2,4,6]. cov(x,x)=1, cov(x,y)=2, cov(y,y)=4.
        let m = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let c = m.covariance().unwrap();
        assert!((c[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((c[(0, 1)] - 2.0).abs() < 1e-12);
        assert!((c[(1, 0)] - 2.0).abs() < 1e-12);
        assert!((c[(1, 1)] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_requires_two_rows() {
        let m = Mat::from_rows(&[&[1.0, 2.0]]);
        assert!(m.covariance().is_err());
        assert!(m.covariance_serial().is_err());
    }

    #[test]
    fn blocked_covariance_is_bitwise_equal_to_serial() {
        // Deterministic pseudo-random data wide and tall enough to cross
        // panel boundaries and exercise multi-range splits.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for (t, n) in [(3usize, 5usize), (130, 37), (67, 130)] {
            let x = Mat::from_fn(t, n, |_, _| next());
            let blocked = x.covariance_blocked().unwrap();
            let serial = x.covariance_serial().unwrap();
            assert_eq!(
                blocked.as_slice(),
                serial.as_slice(),
                "blocked covariance diverged from serial at {t}x{n}"
            );
            assert_eq!(x.covariance().unwrap().as_slice(), serial.as_slice());
        }
    }

    #[test]
    fn gram_matches_explicit_product() {
        let x = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, -1.0, 1.0], &[2.0, 2.0, 2.0]]);
        let g = x.gram();
        let explicit = x.matmul(&x.transpose()).unwrap();
        assert!(g.max_abs_diff(&explicit).unwrap() < 1e-12);
        assert!(g.is_symmetric(0.0));
        // Degenerate shapes must not panic.
        assert_eq!(Mat::zeros(0, 3).gram().shape(), (0, 0));
        assert_eq!(Mat::zeros(2, 0).gram().shape(), (2, 2));
    }

    #[test]
    fn norms_and_energy() {
        let m = Mat::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(m.energy(), 25.0);
        assert_eq!(m.frobenius_norm(), 5.0);
    }

    #[test]
    fn symmetric_check() {
        let s = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 5.0]]);
        assert!(s.is_symmetric(0.0));
        let ns = Mat::from_rows(&[&[1.0, 2.0], &[2.1, 5.0]]);
        assert!(!ns.is_symmetric(0.01));
        assert!(ns.is_symmetric(0.2));
        assert!(!Mat::zeros(2, 3).is_symmetric(1.0));
    }

    #[test]
    fn select_cols_reorders() {
        let m = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let s = m.select_cols(&[2, 0]);
        assert_eq!(s, Mat::from_rows(&[&[3.0, 1.0], &[6.0, 4.0]]));
    }

    #[test]
    fn select_rows_reorders() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s, Mat::from_rows(&[&[5.0, 6.0], &[1.0, 2.0]]));
        assert_eq!(m.select_rows(&[]).shape(), (0, 2));
    }

    #[test]
    fn stacking() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[3.0, 4.0]]);
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v[(1, 0)], 3.0);
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (1, 4));
        assert_eq!(h[(0, 3)], 4.0);
        assert!(a.vstack(&Mat::zeros(1, 3)).is_err());
        assert!(a.hstack(&Mat::zeros(2, 2)).is_err());
    }

    #[test]
    fn scale_in_place() {
        let mut m = Mat::from_rows(&[&[1.0, -2.0]]);
        m.scale(-2.0);
        assert_eq!(m, Mat::from_rows(&[&[-2.0, 4.0]]));
    }

    #[test]
    fn dot4_matches_dot() {
        for len in [0usize, 1, 3, 4, 5, 17, 64, 101] {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.37).sin() + 0.5).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64 * 0.11).cos() - 0.2).collect();
            let d = dot(&a, &b);
            let d4 = dot4(&a, &b);
            assert!(
                (d - d4).abs() <= 1e-12 * (1.0 + d.abs()),
                "len {len}: {d} vs {d4}"
            );
        }
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[1.5, 1.0]]);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 1.0);
        assert!(a.max_abs_diff(&Mat::zeros(2, 2)).is_err());
    }
}
