//! Symmetric eigendecomposition.
//!
//! Three solvers are provided:
//!
//! * [`sym_eigen`] — the production full-spectrum path: blocked (panel-
//!   deferred, LAPACK `latrd`-style) Householder tridiagonalization, QL
//!   iteration on the tridiagonal matrix for the eigenvalues only, shifted
//!   tridiagonal inverse iteration for the eigenvectors, and a reflector
//!   back-transform — every hot loop running on the dispatched kernel tier
//!   ([`crate::kernel`]). Any quality-gate failure (inverse iteration is
//!   the one numerically delicate stage) falls back to the QL reference
//!   below, so robustness is never traded for speed.
//! * [`sym_eigen_ql`] — the classic dense path: unblocked Householder
//!   reduction followed by implicit-shift QL iteration with accumulated
//!   rotations (the `tred2`/`tqli` pair of Numerical Recipes, re-derived
//!   here). Retained as the executable spec: `sym_eigen` is
//!   tolerance-pinned against it in the proptest suites, and it is the
//!   fallback engine for inputs the fast path declines.
//! * [`top_k_eigen`] — block orthogonal iteration for the leading `k`
//!   eigenpairs only. Used to cross-validate the full solvers in tests and
//!   as a cheaper path when only the normal subspace is required.
//!
//! All operate on the sample covariance matrices produced by
//! [`Mat::covariance`](crate::Mat::covariance), which are symmetric positive
//! semi-definite by construction.

use crate::matrix::{dot, norm2};
use crate::{LinalgError, Mat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a symmetric eigendecomposition.
///
/// Eigenvalues are sorted in descending order; column `j` of [`vectors`]
/// is the unit-norm eigenvector for `values[j]`.
///
/// [`vectors`]: SymEigen::vectors
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, one per column, aligned with `values`.
    pub vectors: Mat,
}

impl SymEigen {
    /// Sum of all eigenvalues (equals the trace of the input matrix).
    pub fn total_variance(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Fraction of total variance captured by the leading `m` eigenvalues.
    ///
    /// Returns 1.0 when the total variance is zero (a constant matrix has no
    /// variance to explain).
    pub fn explained(&self, m: usize) -> f64 {
        let total = self.total_variance();
        if total <= 0.0 {
            return 1.0;
        }
        self.values.iter().take(m).sum::<f64>() / total
    }

    /// Smallest `m` such that the leading `m` eigenvalues capture at least
    /// `fraction` of total variance.
    pub fn dims_for_variance(&self, fraction: f64) -> usize {
        let total = self.total_variance();
        if total <= 0.0 {
            return 0;
        }
        let mut acc = 0.0;
        for (i, v) in self.values.iter().enumerate() {
            acc += v;
            if acc / total >= fraction {
                return i + 1;
            }
        }
        self.values.len()
    }
}

/// Full eigendecomposition of a symmetric matrix — the production path.
///
/// Below `TRIDIAG_MIN_N` rows this is exactly the QL reference
/// ([`sym_eigen_ql`]); above it, the core is the blocked tridiagonal
/// pipeline (panel-deferred Householder reduction, eigenvalue-only QL,
/// shifted inverse iteration, reflector back-transform) with a residual
/// quality gate on every computed eigenvector. Gate failures — which are
/// rare, inverse iteration being the one delicate stage — silently fall
/// back to the QL reference, so the result contract is identical on every
/// input. The input must be square and symmetric to within `1e-8` relative
/// to its largest entry.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] / [`LinalgError::NotSymmetric`] on bad input.
/// * [`LinalgError::NoConvergence`] if the QL fallback itself needs more
///   than 50 sweeps for some eigenvalue (does not happen for PSD covariance
///   matrices in practice).
pub fn sym_eigen(a: &Mat) -> Result<SymEigen, LinalgError> {
    validate_symmetric(a)?;
    if a.rows() < TRIDIAG_MIN_N {
        return ql_core(a);
    }
    match tridiag_eigen(a) {
        Some(result) => Ok(result),
        None => ql_core(a),
    }
}

/// Full eigendecomposition by unblocked Householder reduction plus
/// implicit-shift QL with accumulated rotations — the executable spec.
///
/// This is the solver [`sym_eigen`] used to be; it is retained verbatim as
/// the reference the new tridiagonal pipeline is tolerance-pinned against
/// (proptests, threshold equivalence) and as its robustness fallback. Same
/// input contract and error behavior as [`sym_eigen`].
///
/// # Errors
///
/// As for [`sym_eigen`].
pub fn sym_eigen_ql(a: &Mat) -> Result<SymEigen, LinalgError> {
    validate_symmetric(a)?;
    ql_core(a)
}

/// Shared input validation for the full-spectrum solvers.
fn validate_symmetric(a: &Mat) -> Result<(), LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if a.rows() == 0 {
        return Err(LinalgError::Empty {
            what: "eigendecomposition of 0x0 matrix",
        });
    }
    // Scale the symmetry tolerance with the magnitude of the matrix.
    let scale = a.as_slice().iter().fold(0.0f64, |m, v| m.max(v.abs()));
    if !a.is_symmetric(1e-8 * scale.max(1.0)) {
        return Err(LinalgError::NotSymmetric);
    }
    Ok(())
}

/// The `tred2`/`tqli` engine behind both full solvers (input already
/// validated).
fn ql_core(a: &Mat) -> Result<SymEigen, LinalgError> {
    let n = a.rows();
    let mut z = a.clone();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    tred2(&mut z, &mut d, &mut e);
    tqli(&mut d, &mut e, &mut z)?;

    // Sort eigenpairs by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).expect("eigenvalues are finite"));
    let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let vectors = z.select_cols(&order);
    Ok(SymEigen { values, vectors })
}

/// Householder reduction of a real symmetric matrix to tridiagonal form.
///
/// On return `z` holds the accumulated orthogonal transform `Q` (so that
/// `Q^T A Q` is tridiagonal), `d` the diagonal and `e` the sub-diagonal
/// (with `e[0] == 0`).
fn tred2(z: &mut Mat, d: &mut [f64], e: &mut [f64]) {
    let n = z.rows();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| z[(i, k)].abs()).sum();
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let mut f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                f = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g / h;
                    f += e[j] * z[(i, j)];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let delta = f * e[k] + g * z[(i, k)];
                        z[(j, k)] -= delta;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    let delta = g * z[(k, i)];
                    z[(k, j)] -= delta;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }
}

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix.
///
/// `d` holds the diagonal (eigenvalues on return), `e` the sub-diagonal
/// (destroyed), and `z` the transform accumulated so far (eigenvectors in
/// its columns on return).
fn tqli(d: &mut [f64], e: &mut [f64], z: &mut Mat) -> Result<(), LinalgError> {
    let n = d.len();
    if n == 1 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // Find the first index m >= l where the sub-diagonal is
            // negligible, splitting the problem.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(LinalgError::NoConvergence {
                    algorithm: "tqli",
                    iterations: 50,
                });
            }
            // Wilkinson-style shift from the leading 2x2 block.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(if g >= 0.0 { 1.0 } else { -1.0 }));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut underflow = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Recover from underflow by deflating.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Apply the rotation to the accumulated eigenvector matrix.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// Below this order the blocked pipeline's panel machinery costs more than
/// it saves and [`sym_eigen`] routes straight to the QL core.
const TRIDIAG_MIN_N: usize = 32;

/// Householder panel width for the blocked tridiagonalization: rank-2
/// updates are deferred and applied to the trailing square `NB` reflectors
/// at a time, turning the update into long contiguous kernel `axpy`s.
const NB: usize = 32;

/// The fast full-spectrum core: blocked Householder tridiagonalization,
/// eigenvalue-only QL, shifted inverse iteration for the eigenvectors, and
/// the reflector back-transform. Returns `None` whenever any stage
/// declines (QL non-convergence, an eigenvector failing its residual
/// gate), letting the caller fall back to the reference solver.
fn tridiag_eigen(a: &Mat) -> Option<SymEigen> {
    let n = a.rows();
    let (d, e, taus, vtails) = blocked_tridiag(a);

    let mut vals = d.clone();
    let mut off = e.clone();
    tql_values(&mut vals, &mut off).ok()?;
    if vals.iter().any(|v| !v.is_finite()) {
        return None;
    }
    let mut vals_asc = vals;
    vals_asc.sort_by(|x, y| x.partial_cmp(y).expect("eigenvalues are finite"));

    // `sub[i]` couples tridiagonal rows i and i+1.
    let sub: Vec<f64> = e[1..].to_vec();
    // Row j of `z` is the eigenvector for vals_asc[j]: the row layout keeps
    // every inverse-iteration and back-transform access contiguous.
    let mut z = tridiag_eigenvectors(&d, &sub, &vals_asc)?;
    apply_q(&taus, &vtails, &mut z);

    // Transpose rows-ascending into columns-descending, in 8×8 tiles so
    // both sides stay within a handful of cache lines per tile (the naive
    // column-major write pattern touches a fresh line per element).
    let mut vectors = Mat::zeros(n, n);
    {
        let zdata = z.as_slice();
        let vdata = vectors.as_mut_slice();
        const TB: usize = 8;
        for rb in (0..n).step_by(TB) {
            let rend = (rb + TB).min(n);
            for cb in (0..n).step_by(TB) {
                let cend = (cb + TB).min(n);
                for r in rb..rend {
                    let dst = &mut vdata[r * n..(r + 1) * n];
                    for c in cb..cend {
                        // Output column c holds z row n-1-c: descending
                        // eigenvalue order.
                        dst[c] = zdata[(n - 1 - c) * n + r];
                    }
                }
            }
        }
    }
    let values: Vec<f64> = vals_asc.iter().rev().copied().collect();
    Some(SymEigen { values, vectors })
}

/// Blocked (panel-deferred, LAPACK `latrd`-style) Householder reduction of
/// a symmetric matrix to tridiagonal form.
///
/// Returns the tridiagonal `(d, e)` (with `e[0] == 0` and `e[i]` coupling
/// rows `i-1, i`), plus the reflectors `H_c = I − τ_c v_c v_cᵀ`
/// (`taus[c]`, `vtails[c]` over rows `c+1..n`, leading entry 1) such that
/// `H_{n-2}ᵀ⋯H_0ᵀ · A · H_0⋯H_{n-2}` is tridiagonal.
///
/// Within a panel only the pivot *row* is brought up to date (a handful of
/// kernel `axpy`s); the O(n²)-per-panel rank-`2·NB` update of the trailing
/// square is applied once per panel as long contiguous `axpy`s, which is
/// where the blocking pays: the matvec-dominated inner loop reads the
/// trailing square exactly once per reflector and the bulk update streams
/// it once per panel instead of once per reflector.
fn blocked_tridiag(a: &Mat) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<Vec<f64>>) {
    let n = a.rows();
    let mut t = a.clone();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    let mut taus = vec![0.0; n.saturating_sub(1)];
    let mut vtails: Vec<Vec<f64>> = Vec::with_capacity(n.saturating_sub(1));
    // Full-length panel workspaces: V/W columns are zero outside their
    // support, which keeps every slice below a plain contiguous range.
    let mut vbuf = vec![vec![0.0f64; n]; NB];
    let mut wbuf = vec![vec![0.0f64; n]; NB];

    let mut k0 = 0;
    while k0 + 1 < n {
        let nb_eff = NB.min(n - 1 - k0);
        for j in 0..nb_eff {
            let c = k0 + j;
            // Bring row c up to date with this panel's deferred updates:
            // row[c..] −= Σ_{p<j} (W_p[c]·V_p[c..] + V_p[c]·W_p[c..]).
            if j > 0 {
                let row = &mut t.row_mut(c)[c..];
                let mut coeffs = [0.0f64; 2 * NB];
                let mut srcs: Vec<&[f64]> = Vec::with_capacity(2 * j);
                for p in 0..j {
                    coeffs[2 * p] = -wbuf[p][c];
                    coeffs[2 * p + 1] = -vbuf[p][c];
                    srcs.push(&vbuf[p][c..]);
                    srcs.push(&wbuf[p][c..]);
                }
                crate::kernel::axpy_multi_fused(row, &coeffs[..2 * j], &srcs);
            }
            d[c] = t[(c, c)];

            // Reflector from the (now current) off-diagonal row part; the
            // normalized v overwrites it in place.
            let (tau, beta) = make_reflector(&mut t.row_mut(c)[c + 1..]);
            e[c + 1] = beta;
            taus[c] = tau;
            vbuf[j].fill(0.0);
            wbuf[j].fill(0.0);
            if tau != 0.0 {
                vbuf[j][c + 1..].copy_from_slice(&t.row(c)[c + 1..]);
            }
            vtails.push(vbuf[j][c + 1..].to_vec());

            if tau == 0.0 {
                // H is the identity: zero V/W columns keep the panel
                // algebra uniform with nothing to subtract.
                continue;
            }

            // w = τ·(A_panel·v) − ½τ·(wᵀv)·v, where A_panel·v corrects the
            // panel-start trailing square with the deferred V/W terms.
            let mut w = std::mem::take(&mut wbuf[j]);
            {
                let v = &vbuf[j];
                // Symmetric matvec reading only the upper triangle of the
                // trailing square (half the memory traffic of full rows):
                // row r contributes dot(t[r, r..], v[r..]) to w[r] and,
                // by symmetry, v[r]·t[r, r+1..] to w[r+1..] — both from
                // one fused pass, so the trailing square (far bigger than
                // cache) streams through once per reflector, not twice.
                for r in c + 1..n {
                    let row = t.row(r);
                    let (wr, wrest) = w.split_at_mut(r + 1);
                    let off = crate::kernel::symv_fused(&row[r + 1..], &v[r + 1..], wrest, v[r]);
                    wr[r] += row[r] * v[r] + off;
                }
                // w −= (Wᵀv)·V + (Vᵀv)·W over the deferred columns. Every
                // dot is against the same constant `v`, so they batch four
                // at a time; the subtractions then land in one pass.
                if j > 0 {
                    let mut coeffs = [0.0f64; 2 * NB];
                    let mut p = 0;
                    while p + 2 <= j {
                        let d4 = crate::kernel::dot4_fused_x4(
                            [
                                &wbuf[p][c + 1..],
                                &vbuf[p][c + 1..],
                                &wbuf[p + 1][c + 1..],
                                &vbuf[p + 1][c + 1..],
                            ],
                            &v[c + 1..],
                        );
                        for (slot, dot) in coeffs[2 * p..2 * p + 4].iter_mut().zip(d4) {
                            *slot = -dot;
                        }
                        p += 2;
                    }
                    if p < j {
                        coeffs[2 * p] = -crate::kernel::dot4_fused(&wbuf[p][c + 1..], &v[c + 1..]);
                        coeffs[2 * p + 1] =
                            -crate::kernel::dot4_fused(&vbuf[p][c + 1..], &v[c + 1..]);
                    }
                    let mut srcs: Vec<&[f64]> = Vec::with_capacity(2 * j);
                    for p in 0..j {
                        srcs.push(&vbuf[p][c + 1..]);
                        srcs.push(&wbuf[p][c + 1..]);
                    }
                    crate::kernel::axpy_multi_fused(&mut w[c + 1..], &coeffs[..2 * j], &srcs);
                }
                for x in &mut w[c + 1..] {
                    *x *= tau;
                }
                let wv = crate::kernel::dot4_fused(&w[c + 1..], &v[c + 1..]);
                crate::kernel::axpy_fused(&mut w[c + 1..], -0.5 * tau * wv, &v[c + 1..]);
            }
            wbuf[j] = w;
        }

        // Deferred rank-2·NB update of the trailing square (both triangles,
        // keeping the full symmetric storage consistent for the next
        // panel's row reads and matvecs). Every V/W column of the panel is
        // folded into each output row in a single pass (four rows at a
        // time), so each row of T is loaded and stored exactly once per
        // panel instead of once per reflector.
        let s = k0 + nb_eff;
        {
            let active: Vec<usize> = (0..nb_eff).filter(|&p| taus[k0 + p] != 0.0).collect();
            let mut srcs: Vec<&[f64]> = Vec::with_capacity(2 * active.len());
            for &p in &active {
                srcs.push(&vbuf[p][s..]);
                srcs.push(&wbuf[p][s..]);
            }
            let nsrc = srcs.len();
            let data = t.as_mut_slice();
            let mut rows: Vec<&mut [f64]> = data[s * n..].chunks_exact_mut(n).collect();
            let mut cbuf = [[0.0f64; 2 * NB]; 4];
            for (qi, quad) in rows.chunks_mut(4).enumerate() {
                let base = s + 4 * qi;
                if let [r0, r1, r2, r3] = quad {
                    // Coefficient layout mirrors `srcs`: v_p is scaled by
                    // −w_p[row] and w_p by −v_p[row].
                    for (i, row_c) in cbuf.iter_mut().enumerate() {
                        for (ai, &p) in active.iter().enumerate() {
                            row_c[2 * ai] = -wbuf[p][base + i];
                            row_c[2 * ai + 1] = -vbuf[p][base + i];
                        }
                    }
                    crate::kernel::axpy_multi_fused_x4(
                        [&mut r0[s..], &mut r1[s..], &mut r2[s..], &mut r3[s..]],
                        [
                            &cbuf[0][..nsrc],
                            &cbuf[1][..nsrc],
                            &cbuf[2][..nsrc],
                            &cbuf[3][..nsrc],
                        ],
                        &srcs,
                    );
                } else {
                    for (i, row) in quad.iter_mut().enumerate() {
                        let r = base + i;
                        let row = &mut row[s..];
                        for p in 0..nb_eff {
                            let vp_r = vbuf[p][r];
                            let wp_r = wbuf[p][r];
                            if wp_r != 0.0 {
                                crate::kernel::axpy_fused(row, -wp_r, &vbuf[p][s..]);
                            }
                            if vp_r != 0.0 {
                                crate::kernel::axpy_fused(row, -vp_r, &wbuf[p][s..]);
                            }
                        }
                    }
                }
            }
        }
        k0 = s;
    }
    if n > 0 {
        d[n - 1] = t[(n - 1, n - 1)];
    }
    (d, e, taus, vtails)
}

/// Generates an elementary reflector `H = I − τ v vᵀ` (LAPACK `dlarfg`
/// convention) annihilating `x[1..]`: on return `x` holds `v` with
/// `v[0] == 1`, and `H·x_original = (β, 0, …)ᵀ`. A zero tail returns
/// `τ = 0` (identity) with `β = x[0]` and `x` untouched.
fn make_reflector(x: &mut [f64]) -> (f64, f64) {
    if x.is_empty() {
        return (0.0, 0.0);
    }
    let alpha = x[0];
    let tail_norm = norm2(&x[1..]);
    if tail_norm == 0.0 {
        return (0.0, alpha);
    }
    // β gets the sign opposite to α so v[0] = α − β never cancels.
    let beta = -alpha.signum() * alpha.hypot(tail_norm);
    let tau = (beta - alpha) / beta;
    let scale = 1.0 / (alpha - beta);
    for v in &mut x[1..] {
        *v *= scale;
    }
    x[0] = 1.0;
    (tau, beta)
}

/// `√(a² + b²)` without the libm `hypot` call that dominates the rotation
/// loop's cost. Squares of entries beyond ~1e154 overflow to infinity; the
/// caller's finiteness gate then routes the whole input to the QL
/// fallback, so the fast form is safe here (unlike in [`tqli`], which
/// keeps `hypot` because it *is* the fallback).
#[inline]
fn pythag(a: f64, b: f64) -> f64 {
    (a * a + b * b).sqrt()
}

/// Implicit-shift QL for the *eigenvalues only* of a symmetric tridiagonal
/// matrix: [`tqli`] minus the accumulated rotations, making it O(n²)
/// total. `d` is the diagonal (eigenvalues on return, unordered), `e` the
/// sub-diagonal with `e[0] == 0` (destroyed).
fn tql_values(d: &mut [f64], e: &mut [f64]) -> Result<(), LinalgError> {
    let n = d.len();
    if n == 1 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0usize;
        loop {
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(LinalgError::NoConvergence {
                    algorithm: "tql_values",
                    iterations: 50,
                });
            }
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = pythag(g, 1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(if g >= 0.0 { 1.0 } else { -1.0 }));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut underflow = false;
            for i in (l..m).rev() {
                let f = s * e[i];
                let b = c * e[i];
                r = pythag(f, g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                // One divide per rotation instead of two; the divide is on
                // the loop's critical path, so this is measurable.
                let inv_r = 1.0 / r;
                s = f * inv_r;
                c = g * inv_r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// LU factorization of a shifted symmetric tridiagonal matrix `T − σI`
/// with partial pivoting (row swaps introduce a second superdiagonal).
/// Zero pivots are replaced by a tiny floor so inverse iteration sees the
/// enormous solution growth it wants instead of a division by zero.
struct TridiagLu {
    /// Reciprocal of the main diagonal of U (the diagonal is floored away
    /// from zero, so the reciprocal is always finite). Stored inverted
    /// because the back-substitution divides by `u0` once per row per
    /// sweep, and a multiply is an order of magnitude cheaper than a
    /// divide on that critical path.
    inv_u0: Vec<f64>,
    /// First superdiagonal of U.
    u1: Vec<f64>,
    /// Second superdiagonal of U (nonzero only where rows were swapped).
    u2: Vec<f64>,
    /// Elimination multipliers.
    l: Vec<f64>,
    /// Whether rows `i` and `i+1` were swapped at step `i`.
    swap: Vec<bool>,
}

impl TridiagLu {
    /// Factors `T − σI` for the tridiagonal `(d, sub)` (`sub[i]` couples
    /// rows `i` and `i+1`).
    fn factor(d: &[f64], sub: &[f64], sigma: f64, pivot_floor: f64) -> TridiagLu {
        let n = d.len();
        // Floors a pivot's magnitude (preserving sign; +0.0 floors
        // positive) so the stored reciprocal stays finite and bounded.
        let floor_pivot = |p: f64| {
            if p.abs() < pivot_floor {
                pivot_floor.copysign(p)
            } else {
                p
            }
        };
        let mut inv_u0 = vec![0.0; n];
        let mut u1 = vec![0.0; n];
        let mut u2 = vec![0.0; n];
        let mut l = vec![0.0; n];
        let mut swap = vec![false; n];
        // Working row i spans columns (i, i+1, i+2).
        let mut w0 = d[0] - sigma;
        let mut w1 = if n > 1 { sub[0] } else { 0.0 };
        let mut w2 = 0.0;
        for i in 0..n.saturating_sub(1) {
            // Pristine row i+1 over the same columns.
            let b0 = sub[i];
            let b1 = d[i + 1] - sigma;
            let b2 = if i + 1 < n - 1 { sub[i + 1] } else { 0.0 };
            // One divide per row: the elimination multiplier reuses the
            // pivot reciprocal (the divide sits on the sequential
            // elimination chain, so halving them shortens the factor's
            // critical path).
            let (inv, r1, r2);
            if b0.abs() > w0.abs() {
                swap[i] = true;
                inv = 1.0 / floor_pivot(b0);
                u1[i] = b1;
                u2[i] = b2;
                l[i] = w0 * inv;
                r1 = w1;
                r2 = w2;
            } else {
                inv = 1.0 / floor_pivot(w0);
                u1[i] = w1;
                u2[i] = w2;
                l[i] = b0 * inv;
                r1 = b1;
                r2 = b2;
            }
            inv_u0[i] = inv;
            w0 = r1 - l[i] * u1[i];
            w1 = r2 - l[i] * u2[i];
            w2 = 0.0;
        }
        inv_u0[n - 1] = 1.0 / floor_pivot(w0);
        TridiagLu {
            inv_u0,
            u1,
            u2,
            l,
            swap,
        }
    }

    /// Solves `(T − σI)·x = b`.
    fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = b.len();
        let mut y = b.to_vec();
        for i in 0..n.saturating_sub(1) {
            if self.swap[i] {
                y.swap(i, i + 1);
            }
            y[i + 1] -= self.l[i] * y[i];
        }
        for i in (0..n).rev() {
            let mut v = y[i];
            if i + 1 < n {
                v -= self.u1[i] * y[i + 1];
            }
            if i + 2 < n {
                v -= self.u2[i] * y[i + 2];
            }
            y[i] = v * self.inv_u0[i];
        }
        y
    }
}

/// `‖T x − λ x‖₂` for the tridiagonal `(d, sub)`.
fn tridiag_residual(d: &[f64], sub: &[f64], lambda: f64, x: &[f64]) -> f64 {
    let n = d.len();
    let mut acc = 0.0;
    for i in 0..n {
        let mut r = (d[i] - lambda) * x[i];
        if i > 0 {
            r += sub[i - 1] * x[i - 1];
        }
        if i + 1 < n {
            r += sub[i] * x[i + 1];
        }
        acc += r * r;
    }
    acc.sqrt()
}

/// Deterministic pseudo-random unit-free start vector for inverse
/// iteration (xorshift64*; no global RNG state, so results are
/// reproducible across runs and restarts just vary the seed).
fn seed_vector(n: usize, seed: usize) -> Vec<f64> {
    let mut state = (seed as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0xD1B5_4A32_D192_ED03)
        | 1;
    (0..n)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (r >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

/// Eigenvectors of a symmetric tridiagonal matrix by shifted inverse
/// iteration, given its eigenvalues in ascending order. Returns the
/// vectors as the *rows* of an `n × n` matrix (same order) — the row
/// layout keeps every Gram–Schmidt and back-transform access contiguous —
/// or `None` if any vector fails its growth or residual gate, in which
/// case the caller falls back to the QL reference.
///
/// Eigenvalues within `10⁻⁷·‖T‖` of each other are treated as clustered:
/// their shifts are spread a couple of ulps apart and each vector is
/// Gram–Schmidt orthogonalized against the previously accepted vectors
/// whose eigenvalues sit inside that window (for genuinely repeated
/// eigenvalues any orthonormal basis of the invariant subspace is
/// correct). Any pair *not* explicitly orthogonalized is separated by a
/// gap of at least the window tolerance, so its inverse-iteration cross-
/// contamination is ≤ ε·‖T‖/gap ≈ 2·10⁻⁹ — inside the 10⁻⁸
/// orthonormality pin. Two things keep this stage from degenerating into
/// an O(n·n²) Gram–Schmidt on smoothly decaying spectra (traffic
/// covariances: consecutive tail gaps tiny, tail span wide): the window
/// is anchored at the *current* eigenvalue rather than transitively
/// chained (the pairwise guarantee never needed the chain), and the
/// projections run four basis rows at a time through the fused
/// multi-source kernels. Each accepted vector must pass
/// `‖T x − λ x‖ ≤ window_span + 10⁻¹⁰·‖T‖`.
fn tridiag_eigenvectors(d: &[f64], sub: &[f64], vals_asc: &[f64]) -> Option<Mat> {
    let n = d.len();
    let mut norm_t = 0.0f64;
    for i in 0..n {
        let mut row = d[i].abs();
        if i > 0 {
            row += sub[i - 1].abs();
        }
        if i + 1 < n {
            row += sub[i].abs();
        }
        norm_t = norm_t.max(row);
    }
    if norm_t == 0.0 {
        return Some(Mat::identity(n));
    }

    let eps = f64::EPSILON;
    let cluster_tol = 1e-7 * norm_t;
    let pert = 2.0 * eps * norm_t;
    // A normalized RHS must blow up to at least this norm for the solve to
    // count as having hit the eigenvalue.
    let growth_floor = 0.01 / ((n as f64).sqrt() * eps * norm_t);
    let pivot_floor = eps * norm_t;

    let mut z = Mat::zeros(n, n);
    let mut prev_shift = f64::NEG_INFINITY;
    for idx in 0..n {
        let lambda = vals_asc[idx];
        // Previously accepted vectors whose eigenvalues are within the
        // cluster window of this one (vals_asc ascending, so a suffix).
        let mut win_start = idx;
        while win_start > 0 && lambda - vals_asc[win_start - 1] <= cluster_tol {
            win_start -= 1;
        }
        let mut shift = lambda;
        if idx > win_start {
            // Identical shifts would reproduce the same solution; spread
            // them by a couple of ulps of the matrix norm.
            shift = shift.max(prev_shift + pert);
        }
        prev_shift = shift;
        let lu = TridiagLu::factor(d, sub, shift, pivot_floor);

        let mut accepted: Option<Vec<f64>> = None;
        'attempts: for attempt in 0..5usize {
            let b = seed_vector(n, idx + 1 + 131 * attempt);
            let nb = norm2(&b);
            if nb == 0.0 {
                continue;
            }
            let mut x: Vec<f64> = b.iter().map(|v| v / nb).collect();
            let mut grew = false;
            for _sweep in 0..3usize {
                let y = lu.solve(&x);
                let ny = norm2(&y);
                if !ny.is_finite() || ny == 0.0 {
                    continue 'attempts;
                }
                x = y.iter().map(|v| v / ny).collect();
                if ny >= growth_floor {
                    grew = true;
                    break;
                }
            }
            if !grew {
                continue;
            }
            // Orthogonalize within the window, four basis rows per pass
            // (the rows are orthonormal, so the four projections are
            // independent and one joint subtraction equals the one-row-
            // at-a-time form to round-off); a collapse means this start
            // vector pointed along an already-claimed direction.
            let mut j = win_start;
            while j + 4 <= idx {
                let rows = [z.row(j), z.row(j + 1), z.row(j + 2), z.row(j + 3)];
                let p = crate::kernel::dot4_fused_x4(rows, &x);
                crate::kernel::axpy_multi_fused(&mut x, &[-p[0], -p[1], -p[2], -p[3]], &rows);
                j += 4;
            }
            for jr in j..idx {
                let prev = z.row(jr);
                let proj = crate::kernel::dot4_fused(&x, prev);
                crate::kernel::axpy_fused(&mut x, -proj, prev);
            }
            let nx = norm2(&x);
            if nx < 1e-2 {
                continue;
            }
            for v in &mut x {
                *v /= nx;
            }
            let span = vals_asc[idx] - vals_asc[win_start];
            if tridiag_residual(d, sub, lambda, &x) <= span + 1e-10 * norm_t {
                accepted = Some(x);
                break;
            }
        }
        z.row_mut(idx).copy_from_slice(&accepted?);
    }
    Some(z)
}

/// Applies the accumulated Householder transform `Q = H_0⋯H_{n-2}` to the
/// *rows* of `z` in place (`z ← z·Qᵀ`, i.e. each row `x` becomes `Q·x`),
/// turning tridiagonal eigenvectors into eigenvectors of the original
/// matrix.
///
/// Reflectors are consumed in compact-WY panels of [`NB`]: each panel's
/// product `H_hi⋯H_lo = I − V T Vᵀ` is accumulated once (`T` upper
/// triangular, O(NB²·n) — noise), and the panel is applied as
/// `z ← z − (z·V)·T·Vᵀ`, streaming `z` twice per *panel* instead of twice
/// per *reflector*. Same 2n³ flops as the one-at-a-time form, 1/NB of the
/// memory traffic — this stage is bandwidth-bound, so that is the whole
/// win.
fn apply_q(taus: &[f64], vtails: &[Vec<f64>], z: &mut Mat) {
    let n = z.rows();
    let nref = taus.len();
    let data = z.as_mut_slice();
    let mut rows: Vec<&mut [f64]> = data.chunks_exact_mut(n).collect();
    let mut hi = nref;
    while hi > 0 {
        let lo = hi.saturating_sub(NB);
        // Application order within the panel: c = hi-1 down to lo, so the
        // accumulated product is H_{hi-1}·…·H_lo.
        let cols: Vec<usize> = (lo..hi).rev().collect();
        let k = cols.len();
        // T is k×k upper triangular in application order: appending H_c
        // to a product P = I − V T Vᵀ extends T by the column
        // (−τ·T·(Vᵀv), τ).
        let mut t = vec![0.0f64; k * k];
        let mut svec = vec![0.0f64; k];
        for (a, &ca) in cols.iter().enumerate() {
            let tau_a = taus[ca];
            let va = &vtails[ca];
            if tau_a != 0.0 {
                for p in 0..a {
                    let cp = cols[p];
                    // Overlap of supports: rows cp+1.. (cp > ca).
                    svec[p] = crate::kernel::dot4_fused(&vtails[cp], &va[cp - ca..]);
                }
                // Column a of T: −τ_a·T·(Vᵀv_a) over the strict upper part.
                for p in 0..a {
                    let mut acc = 0.0;
                    for q in p..a {
                        acc += t[p * k + q] * svec[q];
                    }
                    t[p * k + a] = -tau_a * acc;
                }
            }
            t[a * k + a] = tau_a;
        }
        // Dense, zero-padded panel: row `a` holds reflector `cols[a]`
        // over the panel's uniform support `[lo+1, n)` (leading zeros
        // where the reflector starts later). Padding buys uniform slice
        // lengths, which is what lets the multi-source kernel below fold
        // the whole panel into each z row in a single pass; the few extra
        // multiplies against zeros are noise.
        let m = n - lo - 1;
        let mut vdense = vec![0.0f64; k * m];
        for (a, &ca) in cols.iter().enumerate() {
            if taus[ca] != 0.0 {
                vdense[a * m + (ca - lo)..(a + 1) * m].copy_from_slice(&vtails[ca]);
            }
        }
        let vrows: Vec<&[f64]> = vdense.chunks_exact(m).collect();
        // z ← z − (z·V)·T·Vᵀ, eight contiguous rows at a time so each
        // reflector column streams once per eight rows of z.
        for quad in rows.chunks_mut(8) {
            if let [r0, r1, r2, r3, r4, r5, r6, r7] = quad {
                let mut y8 = [[0.0f64; NB]; 8]; // per-row z·V panel images
                for (a, &ca) in cols.iter().enumerate() {
                    if taus[ca] != 0.0 {
                        let d = crate::kernel::dot4_fused_x8(
                            [
                                &r0[lo + 1..],
                                &r1[lo + 1..],
                                &r2[lo + 1..],
                                &r3[lo + 1..],
                                &r4[lo + 1..],
                                &r5[lo + 1..],
                                &r6[lo + 1..],
                                &r7[lo + 1..],
                            ],
                            vrows[a],
                        );
                        for i in 0..8 {
                            y8[i][a] = d[i];
                        }
                    }
                }
                // m = −(y·T) per row (negated so the values feed the
                // accumulation kernel directly), accumulated row-of-T at
                // a time: `t[q*k + q..]` is contiguous, the per-`a`
                // accumulators are independent (no add-latency chain),
                // and the compiler vectorizes the inner loop.
                let mut m8 = [[0.0f64; NB]; 8];
                for i in 0..8 {
                    for q in 0..k {
                        let yq = y8[i][q];
                        if yq != 0.0 {
                            let trow = &t[q * k + q..q * k + k];
                            for (slot, &tv) in m8[i][q..k].iter_mut().zip(trow) {
                                *slot -= yq * tv;
                            }
                        }
                    }
                }
                crate::kernel::axpy_multi_fused_x4(
                    [
                        &mut r0[lo + 1..],
                        &mut r1[lo + 1..],
                        &mut r2[lo + 1..],
                        &mut r3[lo + 1..],
                    ],
                    [&m8[0][..k], &m8[1][..k], &m8[2][..k], &m8[3][..k]],
                    &vrows,
                );
                crate::kernel::axpy_multi_fused_x4(
                    [
                        &mut r4[lo + 1..],
                        &mut r5[lo + 1..],
                        &mut r6[lo + 1..],
                        &mut r7[lo + 1..],
                    ],
                    [&m8[4][..k], &m8[5][..k], &m8[6][..k], &m8[7][..k]],
                    &vrows,
                );
            } else {
                for row in quad.iter_mut() {
                    let mut y = [0.0f64; NB];
                    for (a, &ca) in cols.iter().enumerate() {
                        if taus[ca] != 0.0 {
                            y[a] = crate::kernel::dot4_fused(&row[ca + 1..], &vtails[ca]);
                        }
                    }
                    let mut m = [0.0f64; NB];
                    for q in 0..k {
                        let yq = y[q];
                        if yq != 0.0 {
                            let trow = &t[q * k + q..q * k + k];
                            for (slot, &tv) in m[q..k].iter_mut().zip(trow) {
                                *slot += yq * tv;
                            }
                        }
                    }
                    for (a, &ca) in cols.iter().enumerate() {
                        if m[a] != 0.0 {
                            crate::kernel::axpy_fused(&mut row[ca + 1..], -m[a], &vtails[ca]);
                        }
                    }
                }
            }
        }
        hi = lo;
    }
}

/// Convergence diagnostics of a [`top_k_eigen_detailed`] run.
///
/// The partial-spectrum fit path inspects this to decide whether the
/// computed Ritz pairs are trustworthy (and falls back to the full QL
/// oracle when they are not), and to report how well-separated the
/// normal subspace is from the residual spectrum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKInfo {
    /// Rayleigh–Ritz cycles performed.
    pub iterations: usize,
    /// `true` when every requested pair passed the residual-norm test
    /// `‖A v − λ v‖ ≤ tol·λ₁` before the cycle budget ran out.
    pub converged: bool,
    /// Worst residual norm `‖A v − λ v‖` among the returned pairs (a
    /// backward-error bound on each returned eigenvalue, by Weyl).
    pub max_residual: f64,
    /// Relative spectral gap `(λ_k − λ_{k+1}) / λ_1` between the last
    /// returned eigenvalue and the best Ritz estimate of the first
    /// discarded one, when an oversampled estimate exists. A vanishing
    /// gap means the cut sliced through a cluster: the *subspace* spanned
    /// is still accurate but individual trailing vectors are not
    /// individually determined.
    pub trailing_gap: Option<f64>,
}

/// Extra iteration columns carried beyond `k`: the convergence rate of the
/// `k`-th pair improves from `(λ_{k+1}/λ_k)` per sweep to
/// `(λ_{k+b+1}/λ_k)`, which is what makes clustered tails tractable.
const OVERSAMPLE: usize = 8;

/// Leading `k` eigenpairs of a symmetric matrix by block orthogonal
/// iteration — the convenience wrapper over [`top_k_eigen_detailed`]
/// that discards the diagnostics.
///
/// # Errors
///
/// Same shape errors as [`sym_eigen`]; [`LinalgError::Domain`] if
/// `k == 0` or `k > n`.
pub fn top_k_eigen(a: &Mat, k: usize, seed: u64) -> Result<SymEigen, LinalgError> {
    top_k_eigen_detailed(a, k, seed).map(|(eigen, _)| eigen)
}

/// Leading `k` eigenpairs by blocked subspace iteration with Ritz locking,
/// plus convergence diagnostics.
///
/// The production path behind the partial-spectrum fit engine:
///
/// * the working block is **oversampled** (`k + 8` columns, capped at `n`)
///   so trailing pairs converge at the rate of the discarded spectrum, not
///   their own nearest neighbour;
/// * every cycle performs one multiply `Y = A·Q` that is reused for the
///   power step, the Rayleigh–Ritz projection `QᵀY`, *and* the residual
///   test (`A·v = Y·w` for a Ritz pair `(λ, v = Q·w)` — no second
///   multiply);
/// * convergence is a **residual-norm test** `‖A v − λ v‖ ≤ 10⁻¹¹·λ₁`
///   per pair — a backward-error bound — rather than Rayleigh-quotient
///   drift, which can stall flat while the subspace is still rotating;
/// * converged leading pairs are **locked** (deflated): they leave the
///   working block, later cycles orthogonalize against them, and the
///   block shrinks as pairs land;
/// * basis columns that collapse during re-orthogonalization (rank-deficient
///   input) are restarted from fresh seeded randomness, so the returned
///   basis stays orthonormal even past the matrix's numerical rank.
///
/// If the cycle budget runs out the best current Ritz pairs fill the
/// remainder and [`TopKInfo::converged`] is `false`; callers that need
/// certainty (the fit dispatcher) treat that as "use the dense oracle".
///
/// # Errors
///
/// Same shape errors as [`sym_eigen`]; [`LinalgError::Domain`] if
/// `k == 0` or `k > n`.
pub fn top_k_eigen_detailed(
    a: &Mat,
    k: usize,
    seed: u64,
) -> Result<(SymEigen, TopKInfo), LinalgError> {
    top_k_eigen_impl(a, k, seed, None)
}

/// [`top_k_eigen_detailed`] **warm-started** from a previous eigenbasis.
///
/// `warm` is an `n × c` matrix whose columns seed the leading columns of
/// the iteration block (a previous model's eigenvectors, typically); the
/// block is padded to its oversampled width with the same seeded random
/// draws the cold start would use for those slots, then re-orthonormalized
/// — so a stale, non-orthogonal, or rank-deficient guess degrades
/// gracefully toward the cold iteration instead of failing. When the
/// matrix drifted only a few percent since `warm` was computed, the
/// leading Ritz pairs pass the residual test within 1–2 cycles instead of
/// a cold iteration's dozens.
///
/// The result is a deterministic pure function of `(a, k, seed, warm)`:
/// same inputs, bitwise-same output. A guess with the wrong row count is
/// ignored entirely (cold behavior, bit for bit); extra guess columns
/// beyond the block width are ignored.
///
/// # Errors
///
/// Same as [`top_k_eigen_detailed`].
pub fn top_k_eigen_detailed_warm(
    a: &Mat,
    k: usize,
    seed: u64,
    warm: &Mat,
) -> Result<(SymEigen, TopKInfo), LinalgError> {
    top_k_eigen_impl(a, k, seed, Some(warm))
}

fn top_k_eigen_impl(
    a: &Mat,
    k: usize,
    seed: u64,
    warm: Option<&Mat>,
) -> Result<(SymEigen, TopKInfo), LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    if k == 0 || k > n {
        return Err(LinalgError::Domain {
            what: "top_k_eigen requires 1 <= k <= n",
        });
    }
    let block = (k + OVERSAMPLE).min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    // A warm guess of the wrong height cannot seed an n-dimensional basis.
    let warm_cols = warm
        .filter(|g| g.rows() == n)
        .map_or(0, |g| g.cols().min(block));
    let mut q: Vec<Vec<f64>> = (0..block)
        .map(|col| match warm {
            Some(g) if col < warm_cols => (0..n).map(|i| g[(i, col)]).collect(),
            _ => (0..n).map(|_| rng.random::<f64>() - 0.5).collect(),
        })
        .collect();
    orthonormalize(&mut q, &[], &mut rng);

    let mut locked_vals: Vec<f64> = Vec::with_capacity(k);
    let mut locked_vecs: Vec<Vec<f64>> = Vec::with_capacity(k);
    let mut max_locked_residual = 0.0f64;
    let mut trailing_estimate: Option<f64> = None;
    let max_cycles = 400;
    let mut cycles = 0;

    while locked_vals.len() < k && cycles < max_cycles && !q.is_empty() {
        cycles += 1;
        // One multiply per cycle, reused three ways.
        let y = block_matvec(a, &q);
        let b = q.len();
        // Projected problem, symmetrized against round-off.
        let small = Mat::from_fn(b, b, |i, j| 0.5 * (dot(&q[i], &y[j]) + dot(&q[j], &y[i])));
        let inner = sym_eigen(&small)?;
        // Ritz vectors V = Q·W and their images A·V = Y·W.
        let v = rotate(&q, &inner.vectors);
        let av = rotate(&y, &inner.vectors);

        // Scale for the residual tolerance: the largest eigenvalue seen.
        let lead = locked_vals
            .first()
            .copied()
            .unwrap_or(0.0)
            .abs()
            .max(inner.values.first().copied().unwrap_or(0.0).abs());
        let tol = (1e-11 * lead).max(1e-300);

        // Lock the converged *prefix* (locking out of order would let an
        // unconverged leading pair be shadowed by a converged trailing one).
        let want = k - locked_vals.len();
        let mut locked_now = 0;
        for i in 0..b.min(want) {
            let r = residual_norm(&av[i], inner.values[i], &v[i]);
            if r <= tol {
                max_locked_residual = max_locked_residual.max(r);
                locked_vals.push(inner.values[i]);
                locked_vecs.push(v[i].clone());
                locked_now += 1;
            } else {
                break;
            }
        }
        if locked_vals.len() == k {
            // First Ritz value beyond the returned set, for the gap
            // diagnostic (exists whenever the block was oversampled).
            trailing_estimate = inner.values.get(locked_now).copied();
            break;
        }

        // Power step on the unlocked Ritz vectors: their images A·V are
        // already in hand. Re-orthonormalize against the locked pairs.
        q = av.into_iter().skip(locked_now).collect();
        orthonormalize(&mut q, &locked_vecs, &mut rng);
    }

    let converged = locked_vals.len() >= k;
    if !converged {
        // Budget exhausted: fill with the best current Ritz pairs so the
        // caller still gets a usable (if unwarranted) answer.
        let y = block_matvec(a, &q);
        let b = q.len();
        if b > 0 {
            let small = Mat::from_fn(b, b, |i, j| 0.5 * (dot(&q[i], &y[j]) + dot(&q[j], &y[i])));
            let inner = sym_eigen(&small)?;
            let v = rotate(&q, &inner.vectors);
            let av = rotate(&y, &inner.vectors);
            for i in 0..b.min(k - locked_vals.len()) {
                max_locked_residual =
                    max_locked_residual.max(residual_norm(&av[i], inner.values[i], &v[i]));
                locked_vals.push(inner.values[i]);
                locked_vecs.push(v[i].clone());
            }
        }
    }

    // Locking preserves descending order for well-separated spectra, but a
    // cluster straddling two cycles can land marginally out of order.
    let mut order: Vec<usize> = (0..locked_vals.len()).collect();
    order.sort_by(|&i, &j| {
        locked_vals[j]
            .partial_cmp(&locked_vals[i])
            .expect("Ritz values are finite")
    });
    let values: Vec<f64> = order.iter().map(|&i| locked_vals[i]).collect();
    let vectors = Mat::from_fn(n, values.len(), |i, j| locked_vecs[order[j]][i]);

    let trailing_gap = trailing_estimate.and_then(|next| {
        let lead = values.first().copied().unwrap_or(0.0);
        let last = values.last().copied().unwrap_or(0.0);
        (lead > 0.0).then(|| ((last - next) / lead).max(0.0))
    });
    Ok((
        SymEigen { values, vectors },
        TopKInfo {
            iterations: cycles,
            converged,
            max_residual: max_locked_residual,
            trailing_gap,
        },
    ))
}

/// Accumulator width of the blocked multiply: 32 f64 lanes fit comfortably
/// in registers and cover `k + OVERSAMPLE` for every normal-subspace
/// dimension the pipeline uses; wider blocks just take another panel pass.
const ACC: usize = 32;

/// `A·[x₁ … x_b]` for square `A`, as one blocked product with scoped-thread
/// row fan-out.
///
/// The subspace iteration's cost is entirely this multiply, so it gets a
/// dedicated kernel: the block is packed row-major (so the inner loop is
/// contiguous), `A` streams through memory **once per cycle** instead of
/// once per column, and each output row accumulates in a fixed-size stack
/// array that the compiler keeps in vector registers across the whole
/// `k` scan. Blocks wider than the accumulator are processed in panels.
///
/// When the flop count justifies spawn overhead, contiguous row blocks of
/// the output fan out over the crate's scoped-thread worker pool
/// ([`par::workers_for`](crate::par::workers_for), ≤16 workers). Every
/// output element is accumulated in the same order as the serial kernel,
/// so the result is **bitwise identical** at any worker count —
/// [`block_matvec_serial`] is the single-threaded reference it is pinned
/// against in tests.
pub fn block_matvec(a: &Mat, cols: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.rows();
    let b = cols.len();
    if b == 0 {
        return Vec::new();
    }
    // Two flops per (output row, A column, block column) accumulation.
    let workers = crate::par::workers_for(2 * n * n * b);
    if workers <= 1 {
        return block_matvec_serial(a, cols);
    }
    let packed = pack_columns(cols, n, b);
    let mut flat = vec![0.0f64; n * b];
    let ranges = crate::par::even_ranges(n, workers);
    std::thread::scope(|scope| {
        let mut rest: &mut [f64] = &mut flat;
        for r in &ranges {
            let (mine, tail) = rest.split_at_mut(r.len() * b);
            rest = tail;
            let (a, packed, rows) = (&*a, &packed, r.clone());
            scope.spawn(move || matvec_rows(a, packed, rows, mine));
        }
    });
    unpack_rows(&flat, n, b)
}

/// Single-threaded reference for [`block_matvec`]: same packing, same
/// per-element accumulation order, no fan-out. Kept public so benches and
/// tests can pin the parallel kernel against it.
pub fn block_matvec_serial(a: &Mat, cols: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.rows();
    let b = cols.len();
    if b == 0 {
        return Vec::new();
    }
    let packed = pack_columns(cols, n, b);
    let mut flat = vec![0.0f64; n * b];
    matvec_rows(a, &packed, 0..n, &mut flat);
    unpack_rows(&flat, n, b)
}

/// Packs the block columns row-major (`packed[(i, j)] = cols[j][i]`) so
/// the multiply's inner loop reads contiguously.
fn pack_columns(cols: &[Vec<f64>], n: usize, b: usize) -> Mat {
    let mut packed = Mat::zeros(n, b);
    for (j, col) in cols.iter().enumerate() {
        for (i, &v) in col.iter().enumerate() {
            packed[(i, j)] = v;
        }
    }
    packed
}

/// Computes output rows `rows` of `A·packed` into `out` (row-major,
/// `rows.len() × b`), in panels of [`ACC`] columns. This is the one
/// arithmetic path of the blocked multiply: serial and fanned-out calls
/// run exactly this element order.
fn matvec_rows(a: &Mat, packed: &Mat, rows: std::ops::Range<usize>, out: &mut [f64]) {
    let b = packed.cols();
    let mut acc = [0.0f64; ACC];
    let mut panel_start = 0;
    while panel_start < b {
        let panel = (b - panel_start).min(ACC);
        for (local, i) in rows.clone().enumerate() {
            acc[..panel].fill(0.0);
            for (&aik, prow) in a.row(i).iter().zip(packed.row_iter()) {
                crate::kernel::axpy(
                    &mut acc[..panel],
                    aik,
                    &prow[panel_start..panel_start + panel],
                );
            }
            for (j, slot) in acc[..panel].iter().enumerate() {
                out[local * b + panel_start + j] = *slot;
            }
        }
        panel_start += panel;
    }
}

/// Converts the row-major flat result back to the iteration's
/// column-vector layout.
fn unpack_rows(flat: &[f64], n: usize, b: usize) -> Vec<Vec<f64>> {
    let mut out = vec![vec![0.0; n]; b];
    for (i, row) in flat.chunks_exact(b).enumerate() {
        for (j, &v) in row.iter().enumerate() {
            out[j][i] = v;
        }
    }
    out
}

/// `‖a_v − λ v‖` for a Ritz pair `(λ, v)` with image `a_v = A·v`.
fn residual_norm(av: &[f64], lambda: f64, v: &[f64]) -> f64 {
    av.iter()
        .zip(v)
        .map(|(&y, &x)| {
            let d = y - lambda * x;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Linear combinations `out_j = Σ_i w[(i, j)] cols_i` (the Ritz rotation).
fn rotate(cols: &[Vec<f64>], w: &Mat) -> Vec<Vec<f64>> {
    let n = cols.first().map_or(0, Vec::len);
    (0..w.cols())
        .map(|j| {
            let mut out = vec![0.0; n];
            for (i, col) in cols.iter().enumerate() {
                let wij = w[(i, j)];
                if wij == 0.0 {
                    continue;
                }
                for (o, &c) in out.iter_mut().zip(col) {
                    *o += wij * c;
                }
            }
            out
        })
        .collect()
}

/// In-place modified Gram–Schmidt of `cols` against `fixed` and then
/// against earlier columns, with **random restart**: a column that
/// collapses to numerical zero (the block has outrun the matrix's rank)
/// is replaced by a fresh seeded random vector and re-orthogonalized, so
/// the returned block is always orthonormal.
fn orthonormalize(cols: &mut [Vec<f64>], fixed: &[Vec<f64>], rng: &mut StdRng) {
    let k = cols.len();
    for j in 0..k {
        // One retry with a fresh random draw is enough: a random vector is
        // almost surely independent of the < n existing directions.
        for attempt in 0..2 {
            let (done, rest) = cols.split_at_mut(j);
            let col = &mut rest[0];
            for prev in fixed.iter().chain(done.iter()) {
                let proj = dot(prev, col);
                if proj == 0.0 {
                    continue;
                }
                for (c, p) in col.iter_mut().zip(prev) {
                    *c -= proj * p;
                }
            }
            let norm = norm2(col);
            if norm > 1e-150 {
                for c in col.iter_mut() {
                    *c /= norm;
                }
                break;
            }
            if attempt == 0 {
                for c in col.iter_mut() {
                    *c = rng.random::<f64>() - 0.5;
                }
            } else {
                for c in col.iter_mut() {
                    *c = 0.0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn eigen_of_diagonal_matrix() {
        let a = Mat::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0]]);
        let e = sym_eigen(&a).unwrap();
        assert_close(e.values[0], 3.0, 1e-12);
        assert_close(e.values[1], 2.0, 1e-12);
        assert_close(e.values[2], 1.0, 1e-12);
    }

    #[test]
    fn eigen_of_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/sqrt2, (1,-1)/sqrt2.
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = sym_eigen(&a).unwrap();
        assert_close(e.values[0], 3.0, 1e-12);
        assert_close(e.values[1], 1.0, 1e-12);
        let v0 = e.vectors.col(0);
        assert_close(v0[0].abs(), 1.0 / 2f64.sqrt(), 1e-10);
        assert_close(v0[1].abs(), 1.0 / 2f64.sqrt(), 1e-10);
        assert_close(v0[0] * v0[1], 0.5, 1e-10); // same sign
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        // A = V diag(values) V^T must reproduce the input.
        let a = Mat::from_rows(&[
            &[4.0, 1.0, 0.5, 0.0],
            &[1.0, 3.0, 0.2, 0.1],
            &[0.5, 0.2, 2.0, 0.3],
            &[0.0, 0.1, 0.3, 1.0],
        ]);
        let e = sym_eigen(&a).unwrap();
        let n = 4;
        let mut lam = Mat::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = e.values[i];
        }
        let recon = e
            .vectors
            .matmul(&lam)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        assert!(recon.max_abs_diff(&a).unwrap() < 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Mat::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 2.0]]);
        let e = sym_eigen(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(vtv.max_abs_diff(&Mat::identity(3)).unwrap() < 1e-10);
    }

    #[test]
    fn eigen_rejects_bad_input() {
        assert!(matches!(
            sym_eigen(&Mat::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        let asym = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!(matches!(sym_eigen(&asym), Err(LinalgError::NotSymmetric)));
        assert!(sym_eigen(&Mat::zeros(0, 0)).is_err());
    }

    #[test]
    fn eigen_of_1x1() {
        let a = Mat::from_rows(&[&[7.0]]);
        let e = sym_eigen(&a).unwrap();
        assert_eq!(e.values, vec![7.0]);
        assert_close(e.vectors[(0, 0)].abs(), 1.0, 1e-15);
    }

    #[test]
    fn eigen_handles_zero_matrix() {
        let e = sym_eigen(&Mat::zeros(3, 3)).unwrap();
        assert!(e.values.iter().all(|&v| v.abs() < 1e-15));
        // Eigenvectors still orthonormal.
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(vtv.max_abs_diff(&Mat::identity(3)).unwrap() < 1e-12);
    }

    #[test]
    fn eigen_with_repeated_eigenvalues() {
        // 2*I has eigenvalue 2 with multiplicity 3.
        let mut a = Mat::identity(3);
        a.scale(2.0);
        let e = sym_eigen(&a).unwrap();
        for v in &e.values {
            assert_close(*v, 2.0, 1e-12);
        }
    }

    #[test]
    fn explained_variance_helpers() {
        let e = SymEigen {
            values: vec![6.0, 3.0, 1.0],
            vectors: Mat::identity(3),
        };
        assert_close(e.total_variance(), 10.0, 1e-15);
        assert_close(e.explained(1), 0.6, 1e-15);
        assert_close(e.explained(2), 0.9, 1e-15);
        assert_eq!(e.dims_for_variance(0.85), 2);
        assert_eq!(e.dims_for_variance(0.95), 3);
        assert_eq!(e.dims_for_variance(0.5), 1);
    }

    #[test]
    fn explained_variance_of_zero_matrix() {
        let e = SymEigen {
            values: vec![0.0, 0.0],
            vectors: Mat::identity(2),
        };
        assert_eq!(e.explained(1), 1.0);
        assert_eq!(e.dims_for_variance(0.9), 0);
    }

    #[test]
    fn top_k_matches_full_eigen() {
        // Build a random symmetric PSD matrix B^T B and compare solvers.
        let mut rng = StdRng::seed_from_u64(42);
        let n = 12;
        let b = Mat::from_fn(n, n, |_, _| rng.random::<f64>() - 0.5);
        let a = b.transpose().matmul(&b).unwrap();
        let full = sym_eigen(&a).unwrap();
        let top = top_k_eigen(&a, 4, 7).unwrap();
        for i in 0..4 {
            assert_close(top.values[i], full.values[i], 1e-8);
            // Vectors agree up to sign.
            let vf = full.vectors.col(i);
            let vt = top.vectors.col(i);
            let d = dot(&vf, &vt).abs();
            assert_close(d, 1.0, 1e-6);
        }
    }

    #[test]
    fn block_matvec_parallel_is_bitwise_serial() {
        // The fan-out must be invisible in the bits: same packing, same
        // accumulation order per output element. The shapes below force
        // the parallel path past the spawn-overhead work gate (n² · b
        // flops) while staying fast enough for a unit test.
        let mut rng = StdRng::seed_from_u64(17);
        for (n, b) in [(1usize, 1usize), (37, 3), (257, 18), (601, 40)] {
            let a = Mat::from_fn(n, n, |i, j| {
                ((i * 31 + j * 17) % 101) as f64 / 101.0 + rng.random::<f64>() * 1e-3
            });
            let cols: Vec<Vec<f64>> = (0..b)
                .map(|_| (0..n).map(|_| rng.random::<f64>() - 0.5).collect())
                .collect();
            let serial = block_matvec_serial(&a, &cols);
            let fanned = block_matvec(&a, &cols);
            assert_eq!(serial, fanned, "divergence at n={n}, b={b}");
        }
        // Degenerate block: no columns, no output.
        let a = Mat::identity(3);
        assert!(block_matvec(&a, &[]).is_empty());
        assert!(block_matvec_serial(&a, &[]).is_empty());
    }

    #[test]
    fn top_k_rejects_bad_k() {
        let a = Mat::identity(3);
        assert!(top_k_eigen(&a, 0, 1).is_err());
        assert!(top_k_eigen(&a, 4, 1).is_err());
        assert!(top_k_eigen(&Mat::zeros(2, 3), 1, 1).is_err());
    }

    #[test]
    fn large_random_psd_eigen_properties() {
        // 60x60 PSD matrix: all eigenvalues >= 0, trace preserved.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 60;
        let b = Mat::from_fn(n, 30, |_, _| rng.random::<f64>() - 0.5);
        let a = b.matmul(&b.transpose()).unwrap();
        let e = sym_eigen(&a).unwrap();
        for v in &e.values {
            assert!(*v > -1e-9, "PSD matrix produced negative eigenvalue {v}");
        }
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        assert_close(e.total_variance(), trace, 1e-8 * trace.abs().max(1.0));
        // Rank is at most 30, so eigenvalues past 30 are ~0.
        for v in &e.values[30..] {
            assert!(v.abs() < 1e-8);
        }
    }
}
