//! Symmetric eigendecomposition.
//!
//! Two independent solvers are provided:
//!
//! * [`sym_eigen`] — the classic dense path: Householder reduction to
//!   tridiagonal form followed by implicit-shift QL iteration. `O(n^3)` and
//!   numerically robust; returns *all* eigenpairs, which the
//!   Jackson–Mudholkar Q-statistic needs (it sums powers of the residual
//!   eigenvalues).
//! * [`top_k_eigen`] — block orthogonal iteration for the leading `k`
//!   eigenpairs only. Used to cross-validate `sym_eigen` in tests and as a
//!   cheaper path when only the normal subspace is required.
//!
//! Both operate on the sample covariance matrices produced by
//! [`Mat::covariance`](crate::Mat::covariance), which are symmetric positive
//! semi-definite by construction.

use crate::matrix::{dot, norm2};
use crate::{LinalgError, Mat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a symmetric eigendecomposition.
///
/// Eigenvalues are sorted in descending order; column `j` of [`vectors`]
/// is the unit-norm eigenvector for `values[j]`.
///
/// [`vectors`]: SymEigen::vectors
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, one per column, aligned with `values`.
    pub vectors: Mat,
}

impl SymEigen {
    /// Sum of all eigenvalues (equals the trace of the input matrix).
    pub fn total_variance(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Fraction of total variance captured by the leading `m` eigenvalues.
    ///
    /// Returns 1.0 when the total variance is zero (a constant matrix has no
    /// variance to explain).
    pub fn explained(&self, m: usize) -> f64 {
        let total = self.total_variance();
        if total <= 0.0 {
            return 1.0;
        }
        self.values.iter().take(m).sum::<f64>() / total
    }

    /// Smallest `m` such that the leading `m` eigenvalues capture at least
    /// `fraction` of total variance.
    pub fn dims_for_variance(&self, fraction: f64) -> usize {
        let total = self.total_variance();
        if total <= 0.0 {
            return 0;
        }
        let mut acc = 0.0;
        for (i, v) in self.values.iter().enumerate() {
            acc += v;
            if acc / total >= fraction {
                return i + 1;
            }
        }
        self.values.len()
    }
}

/// Full eigendecomposition of a symmetric matrix.
///
/// Householder tridiagonalization followed by implicit-shift QL iteration
/// (the `tred2`/`tqli` pair of Numerical Recipes, re-derived here). The input
/// must be square and symmetric to within `1e-8` in absolute terms.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] / [`LinalgError::NotSymmetric`] on bad input.
/// * [`LinalgError::NoConvergence`] if QL needs more than 50 sweeps for some
///   eigenvalue (does not happen for PSD covariance matrices in practice).
pub fn sym_eigen(a: &Mat) -> Result<SymEigen, LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if a.rows() == 0 {
        return Err(LinalgError::Empty {
            what: "eigendecomposition of 0x0 matrix",
        });
    }
    // Scale the symmetry tolerance with the magnitude of the matrix.
    let scale = a.as_slice().iter().fold(0.0f64, |m, v| m.max(v.abs()));
    if !a.is_symmetric(1e-8 * scale.max(1.0)) {
        return Err(LinalgError::NotSymmetric);
    }

    let n = a.rows();
    let mut z = a.clone();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    tred2(&mut z, &mut d, &mut e);
    tqli(&mut d, &mut e, &mut z)?;

    // Sort eigenpairs by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).expect("eigenvalues are finite"));
    let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let vectors = z.select_cols(&order);
    Ok(SymEigen { values, vectors })
}

/// Householder reduction of a real symmetric matrix to tridiagonal form.
///
/// On return `z` holds the accumulated orthogonal transform `Q` (so that
/// `Q^T A Q` is tridiagonal), `d` the diagonal and `e` the sub-diagonal
/// (with `e[0] == 0`).
fn tred2(z: &mut Mat, d: &mut [f64], e: &mut [f64]) {
    let n = z.rows();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| z[(i, k)].abs()).sum();
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let mut f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                f = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g / h;
                    f += e[j] * z[(i, j)];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let delta = f * e[k] + g * z[(i, k)];
                        z[(j, k)] -= delta;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    let delta = g * z[(k, i)];
                    z[(k, j)] -= delta;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }
}

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix.
///
/// `d` holds the diagonal (eigenvalues on return), `e` the sub-diagonal
/// (destroyed), and `z` the transform accumulated so far (eigenvectors in
/// its columns on return).
fn tqli(d: &mut [f64], e: &mut [f64], z: &mut Mat) -> Result<(), LinalgError> {
    let n = d.len();
    if n == 1 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // Find the first index m >= l where the sub-diagonal is
            // negligible, splitting the problem.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(LinalgError::NoConvergence {
                    algorithm: "tqli",
                    iterations: 50,
                });
            }
            // Wilkinson-style shift from the leading 2x2 block.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(if g >= 0.0 { 1.0 } else { -1.0 }));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut underflow = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Recover from underflow by deflating.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Apply the rotation to the accumulated eigenvector matrix.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// Leading `k` eigenpairs of a symmetric matrix by block orthogonal
/// iteration (a.k.a. simultaneous/subspace iteration).
///
/// Starts from a seeded random orthonormal block and iterates
/// `Q <- orth(A Q)` until the Rayleigh quotients stabilise to within `tol`
/// (relative) or `max_iter` sweeps elapse. Intended for covariance matrices
/// (symmetric PSD); eigenvalue signs are not disambiguated for indefinite
/// matrices with eigenvalues of equal magnitude.
///
/// # Errors
///
/// Same shape errors as [`sym_eigen`]; [`LinalgError::Domain`] if
/// `k == 0` or `k > n`.
pub fn top_k_eigen(a: &Mat, k: usize, seed: u64) -> Result<SymEigen, LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    if k == 0 || k > n {
        return Err(LinalgError::Domain {
            what: "top_k_eigen requires 1 <= k <= n",
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // n x k block with random entries, then orthonormalized.
    let mut q: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..n).map(|_| rng.random::<f64>() - 0.5).collect())
        .collect();
    gram_schmidt(&mut q);

    let max_iter = 500;
    let tol = 1e-12;
    let mut prev = vec![f64::INFINITY; k];
    for it in 0..max_iter {
        // q_j <- A q_j for every block column, then re-orthonormalize.
        let mut next: Vec<Vec<f64>> = Vec::with_capacity(k);
        for col in &q {
            next.push(a.matvec(col).expect("square matrix times n-vector"));
        }
        gram_schmidt(&mut next);
        q = next;
        // Rayleigh quotients approximate the eigenvalues.
        let mut vals: Vec<f64> = Vec::with_capacity(k);
        for col in &q {
            let av = a.matvec(col).expect("square matrix times n-vector");
            vals.push(dot(col, &av));
        }
        let max_rel = vals
            .iter()
            .zip(&prev)
            .map(|(v, p)| {
                let denom = v.abs().max(1e-300);
                (v - p).abs() / denom
            })
            .fold(0.0, f64::max);
        prev = vals;
        if max_rel < tol && it > 2 {
            break;
        }
    }

    // Final Rayleigh–Ritz step: project A into span(Q) and solve the small
    // k x k problem exactly, which resolves nearly-equal eigenvalues.
    let qmat = Mat::from_fn(n, k, |i, j| q[j][i]);
    let aq = a.matmul(&qmat)?;
    let small = qmat.transpose().matmul(&aq)?;
    // Symmetrize against round-off before the dense solve.
    let small = Mat::from_fn(k, k, |i, j| 0.5 * (small[(i, j)] + small[(j, i)]));
    let inner = sym_eigen(&small)?;
    let vectors = qmat.matmul(&inner.vectors)?;
    Ok(SymEigen {
        values: inner.values,
        vectors,
    })
}

/// In-place modified Gram–Schmidt over a set of column vectors.
///
/// Vectors that collapse to (numerical) zero are replaced with zero vectors;
/// callers pass random full-rank blocks so this is a non-issue in practice.
fn gram_schmidt(cols: &mut [Vec<f64>]) {
    let k = cols.len();
    for j in 0..k {
        // Split the slice so we can read earlier columns while mutating col j.
        let (done, rest) = cols.split_at_mut(j);
        let col = &mut rest[0];
        for prev in done.iter() {
            let proj = dot(prev, col);
            for (c, p) in col.iter_mut().zip(prev) {
                *c -= proj * p;
            }
        }
        let norm = norm2(col);
        if norm > 1e-300 {
            for c in col.iter_mut() {
                *c /= norm;
            }
        } else {
            for c in col.iter_mut() {
                *c = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn eigen_of_diagonal_matrix() {
        let a = Mat::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0]]);
        let e = sym_eigen(&a).unwrap();
        assert_close(e.values[0], 3.0, 1e-12);
        assert_close(e.values[1], 2.0, 1e-12);
        assert_close(e.values[2], 1.0, 1e-12);
    }

    #[test]
    fn eigen_of_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/sqrt2, (1,-1)/sqrt2.
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = sym_eigen(&a).unwrap();
        assert_close(e.values[0], 3.0, 1e-12);
        assert_close(e.values[1], 1.0, 1e-12);
        let v0 = e.vectors.col(0);
        assert_close(v0[0].abs(), 1.0 / 2f64.sqrt(), 1e-10);
        assert_close(v0[1].abs(), 1.0 / 2f64.sqrt(), 1e-10);
        assert_close(v0[0] * v0[1], 0.5, 1e-10); // same sign
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        // A = V diag(values) V^T must reproduce the input.
        let a = Mat::from_rows(&[
            &[4.0, 1.0, 0.5, 0.0],
            &[1.0, 3.0, 0.2, 0.1],
            &[0.5, 0.2, 2.0, 0.3],
            &[0.0, 0.1, 0.3, 1.0],
        ]);
        let e = sym_eigen(&a).unwrap();
        let n = 4;
        let mut lam = Mat::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = e.values[i];
        }
        let recon = e
            .vectors
            .matmul(&lam)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        assert!(recon.max_abs_diff(&a).unwrap() < 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Mat::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 2.0]]);
        let e = sym_eigen(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(vtv.max_abs_diff(&Mat::identity(3)).unwrap() < 1e-10);
    }

    #[test]
    fn eigen_rejects_bad_input() {
        assert!(matches!(
            sym_eigen(&Mat::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        let asym = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!(matches!(sym_eigen(&asym), Err(LinalgError::NotSymmetric)));
        assert!(sym_eigen(&Mat::zeros(0, 0)).is_err());
    }

    #[test]
    fn eigen_of_1x1() {
        let a = Mat::from_rows(&[&[7.0]]);
        let e = sym_eigen(&a).unwrap();
        assert_eq!(e.values, vec![7.0]);
        assert_close(e.vectors[(0, 0)].abs(), 1.0, 1e-15);
    }

    #[test]
    fn eigen_handles_zero_matrix() {
        let e = sym_eigen(&Mat::zeros(3, 3)).unwrap();
        assert!(e.values.iter().all(|&v| v.abs() < 1e-15));
        // Eigenvectors still orthonormal.
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(vtv.max_abs_diff(&Mat::identity(3)).unwrap() < 1e-12);
    }

    #[test]
    fn eigen_with_repeated_eigenvalues() {
        // 2*I has eigenvalue 2 with multiplicity 3.
        let mut a = Mat::identity(3);
        a.scale(2.0);
        let e = sym_eigen(&a).unwrap();
        for v in &e.values {
            assert_close(*v, 2.0, 1e-12);
        }
    }

    #[test]
    fn explained_variance_helpers() {
        let e = SymEigen {
            values: vec![6.0, 3.0, 1.0],
            vectors: Mat::identity(3),
        };
        assert_close(e.total_variance(), 10.0, 1e-15);
        assert_close(e.explained(1), 0.6, 1e-15);
        assert_close(e.explained(2), 0.9, 1e-15);
        assert_eq!(e.dims_for_variance(0.85), 2);
        assert_eq!(e.dims_for_variance(0.95), 3);
        assert_eq!(e.dims_for_variance(0.5), 1);
    }

    #[test]
    fn explained_variance_of_zero_matrix() {
        let e = SymEigen {
            values: vec![0.0, 0.0],
            vectors: Mat::identity(2),
        };
        assert_eq!(e.explained(1), 1.0);
        assert_eq!(e.dims_for_variance(0.9), 0);
    }

    #[test]
    fn top_k_matches_full_eigen() {
        // Build a random symmetric PSD matrix B^T B and compare solvers.
        let mut rng = StdRng::seed_from_u64(42);
        let n = 12;
        let b = Mat::from_fn(n, n, |_, _| rng.random::<f64>() - 0.5);
        let a = b.transpose().matmul(&b).unwrap();
        let full = sym_eigen(&a).unwrap();
        let top = top_k_eigen(&a, 4, 7).unwrap();
        for i in 0..4 {
            assert_close(top.values[i], full.values[i], 1e-8);
            // Vectors agree up to sign.
            let vf = full.vectors.col(i);
            let vt = top.vectors.col(i);
            let d = dot(&vf, &vt).abs();
            assert_close(d, 1.0, 1e-6);
        }
    }

    #[test]
    fn top_k_rejects_bad_k() {
        let a = Mat::identity(3);
        assert!(top_k_eigen(&a, 0, 1).is_err());
        assert!(top_k_eigen(&a, 4, 1).is_err());
        assert!(top_k_eigen(&Mat::zeros(2, 3), 1, 1).is_err());
    }

    #[test]
    fn large_random_psd_eigen_properties() {
        // 60x60 PSD matrix: all eigenvalues >= 0, trace preserved.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 60;
        let b = Mat::from_fn(n, 30, |_, _| rng.random::<f64>() - 0.5);
        let a = b.matmul(&b.transpose()).unwrap();
        let e = sym_eigen(&a).unwrap();
        for v in &e.values {
            assert!(*v > -1e-9, "PSD matrix produced negative eigenvalue {v}");
        }
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        assert_close(e.total_variance(), trace, 1e-8 * trace.abs().max(1.0));
        // Rank is at most 30, so eigenvalues past 30 are ~0.
        for v in &e.values[30..] {
            assert!(v.abs() < 1e-8);
        }
    }
}
