//! Symmetric eigendecomposition.
//!
//! Two independent solvers are provided:
//!
//! * [`sym_eigen`] — the classic dense path: Householder reduction to
//!   tridiagonal form followed by implicit-shift QL iteration. `O(n^3)` and
//!   numerically robust; returns *all* eigenpairs, which the
//!   Jackson–Mudholkar Q-statistic needs (it sums powers of the residual
//!   eigenvalues).
//! * [`top_k_eigen`] — block orthogonal iteration for the leading `k`
//!   eigenpairs only. Used to cross-validate `sym_eigen` in tests and as a
//!   cheaper path when only the normal subspace is required.
//!
//! Both operate on the sample covariance matrices produced by
//! [`Mat::covariance`](crate::Mat::covariance), which are symmetric positive
//! semi-definite by construction.

use crate::matrix::{dot, norm2};
use crate::{LinalgError, Mat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a symmetric eigendecomposition.
///
/// Eigenvalues are sorted in descending order; column `j` of [`vectors`]
/// is the unit-norm eigenvector for `values[j]`.
///
/// [`vectors`]: SymEigen::vectors
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, one per column, aligned with `values`.
    pub vectors: Mat,
}

impl SymEigen {
    /// Sum of all eigenvalues (equals the trace of the input matrix).
    pub fn total_variance(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Fraction of total variance captured by the leading `m` eigenvalues.
    ///
    /// Returns 1.0 when the total variance is zero (a constant matrix has no
    /// variance to explain).
    pub fn explained(&self, m: usize) -> f64 {
        let total = self.total_variance();
        if total <= 0.0 {
            return 1.0;
        }
        self.values.iter().take(m).sum::<f64>() / total
    }

    /// Smallest `m` such that the leading `m` eigenvalues capture at least
    /// `fraction` of total variance.
    pub fn dims_for_variance(&self, fraction: f64) -> usize {
        let total = self.total_variance();
        if total <= 0.0 {
            return 0;
        }
        let mut acc = 0.0;
        for (i, v) in self.values.iter().enumerate() {
            acc += v;
            if acc / total >= fraction {
                return i + 1;
            }
        }
        self.values.len()
    }
}

/// Full eigendecomposition of a symmetric matrix.
///
/// Householder tridiagonalization followed by implicit-shift QL iteration
/// (the `tred2`/`tqli` pair of Numerical Recipes, re-derived here). The input
/// must be square and symmetric to within `1e-8` in absolute terms.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] / [`LinalgError::NotSymmetric`] on bad input.
/// * [`LinalgError::NoConvergence`] if QL needs more than 50 sweeps for some
///   eigenvalue (does not happen for PSD covariance matrices in practice).
pub fn sym_eigen(a: &Mat) -> Result<SymEigen, LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if a.rows() == 0 {
        return Err(LinalgError::Empty {
            what: "eigendecomposition of 0x0 matrix",
        });
    }
    // Scale the symmetry tolerance with the magnitude of the matrix.
    let scale = a.as_slice().iter().fold(0.0f64, |m, v| m.max(v.abs()));
    if !a.is_symmetric(1e-8 * scale.max(1.0)) {
        return Err(LinalgError::NotSymmetric);
    }

    let n = a.rows();
    let mut z = a.clone();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    tred2(&mut z, &mut d, &mut e);
    tqli(&mut d, &mut e, &mut z)?;

    // Sort eigenpairs by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).expect("eigenvalues are finite"));
    let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let vectors = z.select_cols(&order);
    Ok(SymEigen { values, vectors })
}

/// Householder reduction of a real symmetric matrix to tridiagonal form.
///
/// On return `z` holds the accumulated orthogonal transform `Q` (so that
/// `Q^T A Q` is tridiagonal), `d` the diagonal and `e` the sub-diagonal
/// (with `e[0] == 0`).
fn tred2(z: &mut Mat, d: &mut [f64], e: &mut [f64]) {
    let n = z.rows();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| z[(i, k)].abs()).sum();
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let mut f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                f = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g / h;
                    f += e[j] * z[(i, j)];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let delta = f * e[k] + g * z[(i, k)];
                        z[(j, k)] -= delta;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    let delta = g * z[(k, i)];
                    z[(k, j)] -= delta;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }
}

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix.
///
/// `d` holds the diagonal (eigenvalues on return), `e` the sub-diagonal
/// (destroyed), and `z` the transform accumulated so far (eigenvectors in
/// its columns on return).
fn tqli(d: &mut [f64], e: &mut [f64], z: &mut Mat) -> Result<(), LinalgError> {
    let n = d.len();
    if n == 1 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // Find the first index m >= l where the sub-diagonal is
            // negligible, splitting the problem.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(LinalgError::NoConvergence {
                    algorithm: "tqli",
                    iterations: 50,
                });
            }
            // Wilkinson-style shift from the leading 2x2 block.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(if g >= 0.0 { 1.0 } else { -1.0 }));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut underflow = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Recover from underflow by deflating.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Apply the rotation to the accumulated eigenvector matrix.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// Convergence diagnostics of a [`top_k_eigen_detailed`] run.
///
/// The partial-spectrum fit path inspects this to decide whether the
/// computed Ritz pairs are trustworthy (and falls back to the full QL
/// oracle when they are not), and to report how well-separated the
/// normal subspace is from the residual spectrum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKInfo {
    /// Rayleigh–Ritz cycles performed.
    pub iterations: usize,
    /// `true` when every requested pair passed the residual-norm test
    /// `‖A v − λ v‖ ≤ tol·λ₁` before the cycle budget ran out.
    pub converged: bool,
    /// Worst residual norm `‖A v − λ v‖` among the returned pairs (a
    /// backward-error bound on each returned eigenvalue, by Weyl).
    pub max_residual: f64,
    /// Relative spectral gap `(λ_k − λ_{k+1}) / λ_1` between the last
    /// returned eigenvalue and the best Ritz estimate of the first
    /// discarded one, when an oversampled estimate exists. A vanishing
    /// gap means the cut sliced through a cluster: the *subspace* spanned
    /// is still accurate but individual trailing vectors are not
    /// individually determined.
    pub trailing_gap: Option<f64>,
}

/// Extra iteration columns carried beyond `k`: the convergence rate of the
/// `k`-th pair improves from `(λ_{k+1}/λ_k)` per sweep to
/// `(λ_{k+b+1}/λ_k)`, which is what makes clustered tails tractable.
const OVERSAMPLE: usize = 8;

/// Leading `k` eigenpairs of a symmetric matrix by block orthogonal
/// iteration — the convenience wrapper over [`top_k_eigen_detailed`]
/// that discards the diagnostics.
///
/// # Errors
///
/// Same shape errors as [`sym_eigen`]; [`LinalgError::Domain`] if
/// `k == 0` or `k > n`.
pub fn top_k_eigen(a: &Mat, k: usize, seed: u64) -> Result<SymEigen, LinalgError> {
    top_k_eigen_detailed(a, k, seed).map(|(eigen, _)| eigen)
}

/// Leading `k` eigenpairs by blocked subspace iteration with Ritz locking,
/// plus convergence diagnostics.
///
/// The production path behind the partial-spectrum fit engine:
///
/// * the working block is **oversampled** (`k + 8` columns, capped at `n`)
///   so trailing pairs converge at the rate of the discarded spectrum, not
///   their own nearest neighbour;
/// * every cycle performs one multiply `Y = A·Q` that is reused for the
///   power step, the Rayleigh–Ritz projection `QᵀY`, *and* the residual
///   test (`A·v = Y·w` for a Ritz pair `(λ, v = Q·w)` — no second
///   multiply);
/// * convergence is a **residual-norm test** `‖A v − λ v‖ ≤ 10⁻¹¹·λ₁`
///   per pair — a backward-error bound — rather than Rayleigh-quotient
///   drift, which can stall flat while the subspace is still rotating;
/// * converged leading pairs are **locked** (deflated): they leave the
///   working block, later cycles orthogonalize against them, and the
///   block shrinks as pairs land;
/// * basis columns that collapse during re-orthogonalization (rank-deficient
///   input) are restarted from fresh seeded randomness, so the returned
///   basis stays orthonormal even past the matrix's numerical rank.
///
/// If the cycle budget runs out the best current Ritz pairs fill the
/// remainder and [`TopKInfo::converged`] is `false`; callers that need
/// certainty (the fit dispatcher) treat that as "use the dense oracle".
///
/// # Errors
///
/// Same shape errors as [`sym_eigen`]; [`LinalgError::Domain`] if
/// `k == 0` or `k > n`.
pub fn top_k_eigen_detailed(
    a: &Mat,
    k: usize,
    seed: u64,
) -> Result<(SymEigen, TopKInfo), LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    if k == 0 || k > n {
        return Err(LinalgError::Domain {
            what: "top_k_eigen requires 1 <= k <= n",
        });
    }
    let block = (k + OVERSAMPLE).min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut q: Vec<Vec<f64>> = (0..block)
        .map(|_| (0..n).map(|_| rng.random::<f64>() - 0.5).collect())
        .collect();
    orthonormalize(&mut q, &[], &mut rng);

    let mut locked_vals: Vec<f64> = Vec::with_capacity(k);
    let mut locked_vecs: Vec<Vec<f64>> = Vec::with_capacity(k);
    let mut max_locked_residual = 0.0f64;
    let mut trailing_estimate: Option<f64> = None;
    let max_cycles = 400;
    let mut cycles = 0;

    while locked_vals.len() < k && cycles < max_cycles && !q.is_empty() {
        cycles += 1;
        // One multiply per cycle, reused three ways.
        let y = block_matvec(a, &q);
        let b = q.len();
        // Projected problem, symmetrized against round-off.
        let small = Mat::from_fn(b, b, |i, j| 0.5 * (dot(&q[i], &y[j]) + dot(&q[j], &y[i])));
        let inner = sym_eigen(&small)?;
        // Ritz vectors V = Q·W and their images A·V = Y·W.
        let v = rotate(&q, &inner.vectors);
        let av = rotate(&y, &inner.vectors);

        // Scale for the residual tolerance: the largest eigenvalue seen.
        let lead = locked_vals
            .first()
            .copied()
            .unwrap_or(0.0)
            .abs()
            .max(inner.values.first().copied().unwrap_or(0.0).abs());
        let tol = (1e-11 * lead).max(1e-300);

        // Lock the converged *prefix* (locking out of order would let an
        // unconverged leading pair be shadowed by a converged trailing one).
        let want = k - locked_vals.len();
        let mut locked_now = 0;
        for i in 0..b.min(want) {
            let r = residual_norm(&av[i], inner.values[i], &v[i]);
            if r <= tol {
                max_locked_residual = max_locked_residual.max(r);
                locked_vals.push(inner.values[i]);
                locked_vecs.push(v[i].clone());
                locked_now += 1;
            } else {
                break;
            }
        }
        if locked_vals.len() == k {
            // First Ritz value beyond the returned set, for the gap
            // diagnostic (exists whenever the block was oversampled).
            trailing_estimate = inner.values.get(locked_now).copied();
            break;
        }

        // Power step on the unlocked Ritz vectors: their images A·V are
        // already in hand. Re-orthonormalize against the locked pairs.
        q = av.into_iter().skip(locked_now).collect();
        orthonormalize(&mut q, &locked_vecs, &mut rng);
    }

    let converged = locked_vals.len() >= k;
    if !converged {
        // Budget exhausted: fill with the best current Ritz pairs so the
        // caller still gets a usable (if unwarranted) answer.
        let y = block_matvec(a, &q);
        let b = q.len();
        if b > 0 {
            let small = Mat::from_fn(b, b, |i, j| 0.5 * (dot(&q[i], &y[j]) + dot(&q[j], &y[i])));
            let inner = sym_eigen(&small)?;
            let v = rotate(&q, &inner.vectors);
            let av = rotate(&y, &inner.vectors);
            for i in 0..b.min(k - locked_vals.len()) {
                max_locked_residual =
                    max_locked_residual.max(residual_norm(&av[i], inner.values[i], &v[i]));
                locked_vals.push(inner.values[i]);
                locked_vecs.push(v[i].clone());
            }
        }
    }

    // Locking preserves descending order for well-separated spectra, but a
    // cluster straddling two cycles can land marginally out of order.
    let mut order: Vec<usize> = (0..locked_vals.len()).collect();
    order.sort_by(|&i, &j| {
        locked_vals[j]
            .partial_cmp(&locked_vals[i])
            .expect("Ritz values are finite")
    });
    let values: Vec<f64> = order.iter().map(|&i| locked_vals[i]).collect();
    let vectors = Mat::from_fn(n, values.len(), |i, j| locked_vecs[order[j]][i]);

    let trailing_gap = trailing_estimate.and_then(|next| {
        let lead = values.first().copied().unwrap_or(0.0);
        let last = values.last().copied().unwrap_or(0.0);
        (lead > 0.0).then(|| ((last - next) / lead).max(0.0))
    });
    Ok((
        SymEigen { values, vectors },
        TopKInfo {
            iterations: cycles,
            converged,
            max_residual: max_locked_residual,
            trailing_gap,
        },
    ))
}

/// Accumulator width of the blocked multiply: 32 f64 lanes fit comfortably
/// in registers and cover `k + OVERSAMPLE` for every normal-subspace
/// dimension the pipeline uses; wider blocks just take another panel pass.
const ACC: usize = 32;

/// `A·[x₁ … x_b]` for square `A`, as one blocked product with scoped-thread
/// row fan-out.
///
/// The subspace iteration's cost is entirely this multiply, so it gets a
/// dedicated kernel: the block is packed row-major (so the inner loop is
/// contiguous), `A` streams through memory **once per cycle** instead of
/// once per column, and each output row accumulates in a fixed-size stack
/// array that the compiler keeps in vector registers across the whole
/// `k` scan. Blocks wider than the accumulator are processed in panels.
///
/// When the flop count justifies spawn overhead, contiguous row blocks of
/// the output fan out over the crate's scoped-thread worker pool
/// ([`par::workers_for`](crate::par::workers_for), ≤16 workers). Every
/// output element is accumulated in the same order as the serial kernel,
/// so the result is **bitwise identical** at any worker count —
/// [`block_matvec_serial`] is the single-threaded reference it is pinned
/// against in tests.
pub fn block_matvec(a: &Mat, cols: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.rows();
    let b = cols.len();
    if b == 0 {
        return Vec::new();
    }
    // Two flops per (output row, A column, block column) accumulation.
    let workers = crate::par::workers_for(2 * n * n * b);
    if workers <= 1 {
        return block_matvec_serial(a, cols);
    }
    let packed = pack_columns(cols, n, b);
    let mut flat = vec![0.0f64; n * b];
    let ranges = crate::par::even_ranges(n, workers);
    std::thread::scope(|scope| {
        let mut rest: &mut [f64] = &mut flat;
        for r in &ranges {
            let (mine, tail) = rest.split_at_mut(r.len() * b);
            rest = tail;
            let (a, packed, rows) = (&*a, &packed, r.clone());
            scope.spawn(move || matvec_rows(a, packed, rows, mine));
        }
    });
    unpack_rows(&flat, n, b)
}

/// Single-threaded reference for [`block_matvec`]: same packing, same
/// per-element accumulation order, no fan-out. Kept public so benches and
/// tests can pin the parallel kernel against it.
pub fn block_matvec_serial(a: &Mat, cols: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.rows();
    let b = cols.len();
    if b == 0 {
        return Vec::new();
    }
    let packed = pack_columns(cols, n, b);
    let mut flat = vec![0.0f64; n * b];
    matvec_rows(a, &packed, 0..n, &mut flat);
    unpack_rows(&flat, n, b)
}

/// Packs the block columns row-major (`packed[(i, j)] = cols[j][i]`) so
/// the multiply's inner loop reads contiguously.
fn pack_columns(cols: &[Vec<f64>], n: usize, b: usize) -> Mat {
    let mut packed = Mat::zeros(n, b);
    for (j, col) in cols.iter().enumerate() {
        for (i, &v) in col.iter().enumerate() {
            packed[(i, j)] = v;
        }
    }
    packed
}

/// Computes output rows `rows` of `A·packed` into `out` (row-major,
/// `rows.len() × b`), in panels of [`ACC`] columns. This is the one
/// arithmetic path of the blocked multiply: serial and fanned-out calls
/// run exactly this element order.
fn matvec_rows(a: &Mat, packed: &Mat, rows: std::ops::Range<usize>, out: &mut [f64]) {
    let b = packed.cols();
    let mut acc = [0.0f64; ACC];
    let mut panel_start = 0;
    while panel_start < b {
        let panel = (b - panel_start).min(ACC);
        for (local, i) in rows.clone().enumerate() {
            acc[..panel].fill(0.0);
            for (&aik, prow) in a.row(i).iter().zip(packed.row_iter()) {
                for (slot, &p) in acc[..panel]
                    .iter_mut()
                    .zip(&prow[panel_start..panel_start + panel])
                {
                    *slot += aik * p;
                }
            }
            for (j, slot) in acc[..panel].iter().enumerate() {
                out[local * b + panel_start + j] = *slot;
            }
        }
        panel_start += panel;
    }
}

/// Converts the row-major flat result back to the iteration's
/// column-vector layout.
fn unpack_rows(flat: &[f64], n: usize, b: usize) -> Vec<Vec<f64>> {
    let mut out = vec![vec![0.0; n]; b];
    for (i, row) in flat.chunks_exact(b).enumerate() {
        for (j, &v) in row.iter().enumerate() {
            out[j][i] = v;
        }
    }
    out
}

/// `‖a_v − λ v‖` for a Ritz pair `(λ, v)` with image `a_v = A·v`.
fn residual_norm(av: &[f64], lambda: f64, v: &[f64]) -> f64 {
    av.iter()
        .zip(v)
        .map(|(&y, &x)| {
            let d = y - lambda * x;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Linear combinations `out_j = Σ_i w[(i, j)] cols_i` (the Ritz rotation).
fn rotate(cols: &[Vec<f64>], w: &Mat) -> Vec<Vec<f64>> {
    let n = cols.first().map_or(0, Vec::len);
    (0..w.cols())
        .map(|j| {
            let mut out = vec![0.0; n];
            for (i, col) in cols.iter().enumerate() {
                let wij = w[(i, j)];
                if wij == 0.0 {
                    continue;
                }
                for (o, &c) in out.iter_mut().zip(col) {
                    *o += wij * c;
                }
            }
            out
        })
        .collect()
}

/// In-place modified Gram–Schmidt of `cols` against `fixed` and then
/// against earlier columns, with **random restart**: a column that
/// collapses to numerical zero (the block has outrun the matrix's rank)
/// is replaced by a fresh seeded random vector and re-orthogonalized, so
/// the returned block is always orthonormal.
fn orthonormalize(cols: &mut [Vec<f64>], fixed: &[Vec<f64>], rng: &mut StdRng) {
    let k = cols.len();
    for j in 0..k {
        // One retry with a fresh random draw is enough: a random vector is
        // almost surely independent of the < n existing directions.
        for attempt in 0..2 {
            let (done, rest) = cols.split_at_mut(j);
            let col = &mut rest[0];
            for prev in fixed.iter().chain(done.iter()) {
                let proj = dot(prev, col);
                if proj == 0.0 {
                    continue;
                }
                for (c, p) in col.iter_mut().zip(prev) {
                    *c -= proj * p;
                }
            }
            let norm = norm2(col);
            if norm > 1e-150 {
                for c in col.iter_mut() {
                    *c /= norm;
                }
                break;
            }
            if attempt == 0 {
                for c in col.iter_mut() {
                    *c = rng.random::<f64>() - 0.5;
                }
            } else {
                for c in col.iter_mut() {
                    *c = 0.0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn eigen_of_diagonal_matrix() {
        let a = Mat::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0]]);
        let e = sym_eigen(&a).unwrap();
        assert_close(e.values[0], 3.0, 1e-12);
        assert_close(e.values[1], 2.0, 1e-12);
        assert_close(e.values[2], 1.0, 1e-12);
    }

    #[test]
    fn eigen_of_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/sqrt2, (1,-1)/sqrt2.
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = sym_eigen(&a).unwrap();
        assert_close(e.values[0], 3.0, 1e-12);
        assert_close(e.values[1], 1.0, 1e-12);
        let v0 = e.vectors.col(0);
        assert_close(v0[0].abs(), 1.0 / 2f64.sqrt(), 1e-10);
        assert_close(v0[1].abs(), 1.0 / 2f64.sqrt(), 1e-10);
        assert_close(v0[0] * v0[1], 0.5, 1e-10); // same sign
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        // A = V diag(values) V^T must reproduce the input.
        let a = Mat::from_rows(&[
            &[4.0, 1.0, 0.5, 0.0],
            &[1.0, 3.0, 0.2, 0.1],
            &[0.5, 0.2, 2.0, 0.3],
            &[0.0, 0.1, 0.3, 1.0],
        ]);
        let e = sym_eigen(&a).unwrap();
        let n = 4;
        let mut lam = Mat::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = e.values[i];
        }
        let recon = e
            .vectors
            .matmul(&lam)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        assert!(recon.max_abs_diff(&a).unwrap() < 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Mat::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 2.0]]);
        let e = sym_eigen(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(vtv.max_abs_diff(&Mat::identity(3)).unwrap() < 1e-10);
    }

    #[test]
    fn eigen_rejects_bad_input() {
        assert!(matches!(
            sym_eigen(&Mat::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        let asym = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!(matches!(sym_eigen(&asym), Err(LinalgError::NotSymmetric)));
        assert!(sym_eigen(&Mat::zeros(0, 0)).is_err());
    }

    #[test]
    fn eigen_of_1x1() {
        let a = Mat::from_rows(&[&[7.0]]);
        let e = sym_eigen(&a).unwrap();
        assert_eq!(e.values, vec![7.0]);
        assert_close(e.vectors[(0, 0)].abs(), 1.0, 1e-15);
    }

    #[test]
    fn eigen_handles_zero_matrix() {
        let e = sym_eigen(&Mat::zeros(3, 3)).unwrap();
        assert!(e.values.iter().all(|&v| v.abs() < 1e-15));
        // Eigenvectors still orthonormal.
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(vtv.max_abs_diff(&Mat::identity(3)).unwrap() < 1e-12);
    }

    #[test]
    fn eigen_with_repeated_eigenvalues() {
        // 2*I has eigenvalue 2 with multiplicity 3.
        let mut a = Mat::identity(3);
        a.scale(2.0);
        let e = sym_eigen(&a).unwrap();
        for v in &e.values {
            assert_close(*v, 2.0, 1e-12);
        }
    }

    #[test]
    fn explained_variance_helpers() {
        let e = SymEigen {
            values: vec![6.0, 3.0, 1.0],
            vectors: Mat::identity(3),
        };
        assert_close(e.total_variance(), 10.0, 1e-15);
        assert_close(e.explained(1), 0.6, 1e-15);
        assert_close(e.explained(2), 0.9, 1e-15);
        assert_eq!(e.dims_for_variance(0.85), 2);
        assert_eq!(e.dims_for_variance(0.95), 3);
        assert_eq!(e.dims_for_variance(0.5), 1);
    }

    #[test]
    fn explained_variance_of_zero_matrix() {
        let e = SymEigen {
            values: vec![0.0, 0.0],
            vectors: Mat::identity(2),
        };
        assert_eq!(e.explained(1), 1.0);
        assert_eq!(e.dims_for_variance(0.9), 0);
    }

    #[test]
    fn top_k_matches_full_eigen() {
        // Build a random symmetric PSD matrix B^T B and compare solvers.
        let mut rng = StdRng::seed_from_u64(42);
        let n = 12;
        let b = Mat::from_fn(n, n, |_, _| rng.random::<f64>() - 0.5);
        let a = b.transpose().matmul(&b).unwrap();
        let full = sym_eigen(&a).unwrap();
        let top = top_k_eigen(&a, 4, 7).unwrap();
        for i in 0..4 {
            assert_close(top.values[i], full.values[i], 1e-8);
            // Vectors agree up to sign.
            let vf = full.vectors.col(i);
            let vt = top.vectors.col(i);
            let d = dot(&vf, &vt).abs();
            assert_close(d, 1.0, 1e-6);
        }
    }

    #[test]
    fn block_matvec_parallel_is_bitwise_serial() {
        // The fan-out must be invisible in the bits: same packing, same
        // accumulation order per output element. The shapes below force
        // the parallel path past the spawn-overhead work gate (n² · b
        // flops) while staying fast enough for a unit test.
        let mut rng = StdRng::seed_from_u64(17);
        for (n, b) in [(1usize, 1usize), (37, 3), (257, 18), (601, 40)] {
            let a = Mat::from_fn(n, n, |i, j| {
                ((i * 31 + j * 17) % 101) as f64 / 101.0 + rng.random::<f64>() * 1e-3
            });
            let cols: Vec<Vec<f64>> = (0..b)
                .map(|_| (0..n).map(|_| rng.random::<f64>() - 0.5).collect())
                .collect();
            let serial = block_matvec_serial(&a, &cols);
            let fanned = block_matvec(&a, &cols);
            assert_eq!(serial, fanned, "divergence at n={n}, b={b}");
        }
        // Degenerate block: no columns, no output.
        let a = Mat::identity(3);
        assert!(block_matvec(&a, &[]).is_empty());
        assert!(block_matvec_serial(&a, &[]).is_empty());
    }

    #[test]
    fn top_k_rejects_bad_k() {
        let a = Mat::identity(3);
        assert!(top_k_eigen(&a, 0, 1).is_err());
        assert!(top_k_eigen(&a, 4, 1).is_err());
        assert!(top_k_eigen(&Mat::zeros(2, 3), 1, 1).is_err());
    }

    #[test]
    fn large_random_psd_eigen_properties() {
        // 60x60 PSD matrix: all eigenvalues >= 0, trace preserved.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 60;
        let b = Mat::from_fn(n, 30, |_, _| rng.random::<f64>() - 0.5);
        let a = b.matmul(&b.transpose()).unwrap();
        let e = sym_eigen(&a).unwrap();
        for v in &e.values {
            assert!(*v > -1e-9, "PSD matrix produced negative eigenvalue {v}");
        }
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        assert_close(e.total_variance(), trace, 1e-8 * trace.abs().max(1.0));
        // Rank is at most 30, so eigenvalues past 30 are ~0.
        for v in &e.values[30..] {
            assert!(v.abs() < 1e-8);
        }
    }
}
