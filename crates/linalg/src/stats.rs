//! Scalar statistical functions.
//!
//! The Q-statistic detection threshold of Jackson & Mudholkar needs the
//! `1 - alpha` quantile of the standard normal distribution. We implement
//! Acklam's rational approximation for the quantile (relative error below
//! `1.15e-9` over the full open unit interval) and, for verification, the
//! normal CDF via an Abramowitz–Stegun style `erf` approximation.

/// Standard normal cumulative distribution function `P(Z <= x)`.
///
/// Accurate to about `1e-7`, which is ample for round-trip testing of
/// [`inv_norm_cdf`] and for reporting purposes.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26, |err| <= 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Inverse of the standard normal CDF (the quantile function).
///
/// Peter Acklam's rational approximation with the customary central /
/// tail split; relative error below `1.15e-9` on `(0, 1)`.
///
/// Returns `NaN` outside `(0, 1)`, `-INFINITY` at 0 and `+INFINITY` at 1,
/// mirroring the mathematical limits.
pub fn inv_norm_cdf(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    // Coefficients for the central region rational approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    // Coefficients for the tail regions.
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];

    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        // Lower tail.
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        // Central region.
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        // Upper tail, by symmetry.
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    }
}

/// Chi-square quantile via the Wilson–Hilferty approximation:
/// `χ²_p(k) ≈ k·(1 − 2/(9k) + z_p·sqrt(2/(9k)))³`.
///
/// Accurate to a few percent for `k >= 3`, which is ample for the robust
/// trimming thresholds it backs. Returns `NaN` for `k == 0` or `p`
/// outside `(0, 1)`.
pub fn chi2_quantile(dof: usize, p: f64) -> f64 {
    if dof == 0 || !(p > 0.0 && p < 1.0) {
        return f64::NAN;
    }
    let k = dof as f64;
    let z = inv_norm_cdf(p);
    let c = 2.0 / (9.0 * k);
    let base = 1.0 - c + z * c.sqrt();
    k * base * base * base
}

/// Arithmetic mean of a slice; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (denominator `n - 1`); 0.0 for fewer than two
/// elements.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    (ss / (xs.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_known_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((norm_cdf(1.96) - 0.975).abs() < 2e-4);
        assert!((norm_cdf(-1.96) - 0.025).abs() < 2e-4);
        assert!(norm_cdf(8.0) > 0.999999);
        assert!(norm_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn quantile_known_values() {
        // Classic z-scores.
        assert!((inv_norm_cdf(0.5)).abs() < 1e-12);
        assert!((inv_norm_cdf(0.975) - 1.959964).abs() < 1e-5);
        assert!((inv_norm_cdf(0.995) - 2.575829).abs() < 1e-5);
        assert!((inv_norm_cdf(0.999) - 3.090232).abs() < 1e-5);
        assert!((inv_norm_cdf(0.025) + 1.959964).abs() < 1e-5);
    }

    #[test]
    fn quantile_edge_cases() {
        assert_eq!(inv_norm_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(inv_norm_cdf(1.0), f64::INFINITY);
        assert!(inv_norm_cdf(-0.1).is_nan());
        assert!(inv_norm_cdf(1.1).is_nan());
        assert!(inv_norm_cdf(f64::NAN).is_nan());
    }

    #[test]
    fn quantile_is_symmetric() {
        for &p in &[0.001, 0.01, 0.1, 0.3, 0.49] {
            let lo = inv_norm_cdf(p);
            let hi = inv_norm_cdf(1.0 - p);
            assert!((lo + hi).abs() < 1e-9, "asymmetry at p={p}: {lo} vs {hi}");
        }
    }

    #[test]
    fn quantile_roundtrips_through_cdf() {
        for i in 1..100 {
            let p = i as f64 / 100.0;
            let x = inv_norm_cdf(p);
            let back = norm_cdf(x);
            assert!((back - p).abs() < 1e-6, "roundtrip failed at p={p}: {back}");
        }
    }

    #[test]
    fn quantile_is_monotone() {
        let mut prev = f64::NEG_INFINITY;
        for i in 1..1000 {
            let p = i as f64 / 1000.0;
            let x = inv_norm_cdf(p);
            assert!(x > prev, "not monotone at p={p}");
            prev = x;
        }
    }

    #[test]
    fn chi2_quantile_known_values() {
        // chi2 with 10 dof: median ~9.34, 0.95 ~18.31, 0.99 ~23.21.
        assert!((chi2_quantile(10, 0.5) - 9.34).abs() < 0.2);
        assert!((chi2_quantile(10, 0.95) - 18.31).abs() < 0.4);
        assert!((chi2_quantile(10, 0.99) - 23.21).abs() < 0.6);
        // 1 dof at 0.95 is z^2 ~ 3.84 (Wilson-Hilferty is rougher here).
        assert!((chi2_quantile(1, 0.95) - 3.84).abs() < 0.6);
        assert!(chi2_quantile(0, 0.5).is_nan());
        assert!(chi2_quantile(5, 0.0).is_nan());
        assert!(chi2_quantile(5, 1.0).is_nan());
    }

    #[test]
    fn chi2_quantile_monotone_in_p_and_dof() {
        assert!(chi2_quantile(5, 0.9) < chi2_quantile(5, 0.99));
        assert!(chi2_quantile(5, 0.9) < chi2_quantile(10, 0.9));
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        // Sample std of [2, 4, 4, 4, 5, 5, 7, 9] is sqrt(32/7).
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn erf_known_values() {
        // The A&S 7.1.26 polynomial has |error| <= 1.5e-7 everywhere,
        // including a ~1e-9 residual at the origin.
        assert!((erf(0.0)).abs() < 1.5e-7);
        assert!((erf(1.0) - 0.8427008).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427008).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953223).abs() < 1e-6);
    }
}
