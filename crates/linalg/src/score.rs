//! The fused scoring plane: allocation-free SPE via the norm identity.
//!
//! [`Pca::spe`](crate::Pca::spe) — the reference chain — scores one
//! observation by *project, reconstruct, residual, norm*: two full scans
//! of the axis matrix plus four heap allocations per row. The residual is
//! orthogonal to the modeled subspace, so the same statistic is
//!
//! ```text
//! SPE = ‖x − μ‖² − Σⱼ sⱼ²      (sⱼ = score along axis j)
//! ```
//!
//! — one axis-matrix pass, no `hat`/`residual` vectors at all. A
//! [`ScorePlan`] precomputes everything that pass needs (the mean, the
//! leading-`m` axes transposed into contiguous rows, optional per-column
//! normalization divisors) and runs it through the kernel tier's
//! multi-row FMA forms over thread-local scratch, so serving a row costs
//! zero allocations after warmup.
//!
//! # Cancellation guard
//!
//! The identity subtracts two nearly equal numbers when the row lies
//! almost inside the modeled subspace: `Σ sⱼ² → ‖x − μ‖²` and the
//! difference loses relative precision. Whenever the fused SPE falls
//! below [`GUARD_EPS`]`·‖x − μ‖²` (including any negative result), the
//! plan falls back to materializing the residual — the retained reference
//! computation — so the statistic stays trustworthy everywhere. Rows that
//! trip the guard are far below any detection threshold, so the fallback
//! never runs on the hot path of normal traffic.
//!
//! # The reference pin
//!
//! Setting the `ENTROMINE_FORCE_REFERENCE_SCORE` environment variable (to
//! anything but `0`/empty) latches [`reference_score_forced`] for the
//! life of the process; the subspace layer consults it and routes every
//! consumer through the retained [`Pca::spe_reference`](crate::Pca::spe_reference)
//! chain — the seam CI uses to check plan-vs-reference equivalence on
//! whole suites.

use crate::error::LinalgError;
use crate::kernel;
use crate::matrix::Mat;
use std::cell::RefCell;
use std::sync::OnceLock;

/// Guard threshold of the norm-identity cancellation check: when the
/// fused `SPE < GUARD_EPS · ‖x − μ‖²`, the plan recomputes through the
/// materialized residual. At this setting the fused path's worst-case
/// relative error stays well under the 1e-10 plan-vs-reference pin (the
/// subtraction magnifies rounding by at most `1/GUARD_EPS`).
pub const GUARD_EPS: f64 = 1e-3;

/// `true` when `ENTROMINE_FORCE_REFERENCE_SCORE` pins this process to the
/// reference project–reconstruct–residual scoring chain. Latched once on
/// first use, like the kernel tier's
/// [`forced_scalar`](crate::kernel::forced_scalar).
pub fn reference_score_forced() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("ENTROMINE_FORCE_REFERENCE_SCORE")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// Reusable buffers of the scoring plane, one set per thread. Grow-only:
/// scoring models of different widths from one thread re-slices the same
/// capacity.
#[derive(Default)]
struct ScoreScratch {
    centered: Vec<f64>,
    scores: Vec<f64>,
    hat: Vec<f64>,
}

thread_local! {
    static SCRATCH: RefCell<ScoreScratch> = RefCell::new(ScoreScratch::default());
}

/// A precomputed, allocation-free scoring artifact over a fitted PCA:
/// the mean, the leading-`m` principal axes laid out as contiguous rows
/// (transposed from the variable-major component matrix, so each score is
/// one contiguous fused dot product), and optional per-column divisors
/// that fold a fixed normalization (the multiway model's unit-energy
/// scaling) into the centering pass.
///
/// Built by [`Pca::score_plan`](crate::Pca::score_plan). One fixed
/// per-row arithmetic backs every entry point — [`spe`](Self::spe),
/// [`spe_batch`](Self::spe_batch), [`spe_t2`](Self::spe_t2) — so batch
/// and streamed scoring of the same row are bitwise identical by
/// construction.
#[derive(Debug, Clone)]
pub struct ScorePlan {
    mean: Vec<f64>,
    /// `m × n`, row `j` = principal axis `j` (contiguous).
    axes: Mat,
    /// Per-column divisors applied before centering (`c = x/d − μ`), or
    /// `None` for identity.
    divisors: Option<Vec<f64>>,
}

impl ScorePlan {
    /// A plan over `mean` and an already-transposed `m × n` axis matrix
    /// (row `j` is principal axis `j`).
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when the axis width differs from the
    /// mean length.
    pub fn new(mean: Vec<f64>, axes: Mat) -> Result<Self, LinalgError> {
        if axes.cols() != mean.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "score plan",
                lhs: (axes.rows(), axes.cols()),
                rhs: (1, mean.len()),
            });
        }
        Ok(ScorePlan {
            mean,
            axes,
            divisors: None,
        })
    }

    /// Folds fixed per-column divisors into the centering pass, so raw
    /// (un-normalized) rows can be scored directly: the centered value
    /// becomes `x[i]/divisors[i] − mean[i]`, bitwise identical to
    /// dividing first and centering after.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] on a length mismatch;
    /// [`LinalgError::Domain`] when any divisor is zero or non-finite.
    pub fn with_divisors(mut self, divisors: Vec<f64>) -> Result<Self, LinalgError> {
        if divisors.len() != self.mean.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "score plan divisors",
                lhs: (1, divisors.len()),
                rhs: (1, self.mean.len()),
            });
        }
        if divisors.iter().any(|d| !d.is_finite() || *d == 0.0) {
            return Err(LinalgError::Domain {
                what: "score-plan divisors must be finite and nonzero",
            });
        }
        self.divisors = Some(divisors);
        Ok(self)
    }

    /// Number of variables `n` a scored row must have.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Number of leading axes `m` the plan projects onto.
    pub fn n_axes(&self) -> usize {
        self.axes.rows()
    }

    fn check(&self, x: &[f64]) -> Result<(), LinalgError> {
        if x.len() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "score plan apply",
                lhs: (1, x.len()),
                rhs: (1, self.dim()),
            });
        }
        Ok(())
    }

    /// Centering pass: `c = x − μ` (or `x/d − μ` with divisors folded
    /// in). Unconditional — no zero-skip branch: dense entropy rows make
    /// the reference chain's `ci == 0.0` skip a mispredicted branch per
    /// element, and the fused dot products don't care either way.
    fn center_into(&self, x: &[f64], c: &mut [f64]) {
        match &self.divisors {
            None => {
                for ((ci, &xi), &mu) in c.iter_mut().zip(x).zip(&self.mean) {
                    *ci = xi - mu;
                }
            }
            Some(div) => {
                for (((ci, &xi), &d), &mu) in c.iter_mut().zip(x).zip(div).zip(&self.mean) {
                    *ci = xi / d - mu;
                }
            }
        }
    }

    /// Scores of the centered row along all `m` axes, tiled through the
    /// kernel tier's multi-row fused dots (8 axis rows per pass, then 4,
    /// then singles) so the centered row streams from registers/L1 while
    /// the axis panel streams once.
    fn scores_into(&self, c: &[f64], scores: &mut [f64]) {
        let m = self.n_axes();
        let mut j = 0;
        while j + 8 <= m {
            let rows: [&[f64]; 8] = std::array::from_fn(|t| self.axes.row(j + t));
            scores[j..j + 8].copy_from_slice(&kernel::dot4_fused_x8(rows, c));
            j += 8;
        }
        if j + 4 <= m {
            let rows: [&[f64]; 4] = std::array::from_fn(|t| self.axes.row(j + t));
            scores[j..j + 4].copy_from_slice(&kernel::dot4_fused_x4(rows, c));
            j += 4;
        }
        while j < m {
            scores[j] = kernel::dot4_fused(self.axes.row(j), c);
            j += 1;
        }
    }

    /// The fixed per-row arithmetic behind every public entry point.
    /// Returns `(spe, fell_back)` with `c`/`scores` left holding the
    /// centered row and its scores (the fallback overwrites `c` with the
    /// residual).
    fn spe_in_scratch(&self, x: &[f64], s: &mut ScoreScratch) -> (f64, bool) {
        let n = self.dim();
        let m = self.n_axes();
        s.centered.resize(n, 0.0);
        s.scores.resize(m, 0.0);
        self.center_into(x, &mut s.centered);
        let c2 = kernel::dot4_fused(&s.centered, &s.centered);
        self.scores_into(&s.centered, &mut s.scores);
        let energy: f64 = s.scores.iter().map(|v| v * v).sum();
        let spe = c2 - energy;
        if spe < GUARD_EPS * c2 {
            // Cancellation guard: the subtraction lost too much relative
            // precision (or went negative). Materialize the residual —
            // the retained reference computation — from the data already
            // in scratch. Exactly zero with zero scores is the genuinely
            // clean row (x == mean), not cancellation.
            if spe == 0.0 && energy == 0.0 {
                return (0.0, false);
            }
            s.hat.resize(n, 0.0);
            s.hat.fill(0.0);
            for (j, &sj) in s.scores.iter().enumerate() {
                kernel::axpy_fused(&mut s.hat, sj, self.axes.row(j));
            }
            for (ci, &hi) in s.centered.iter_mut().zip(&s.hat) {
                *ci -= hi;
            }
            return (kernel::dot4_fused(&s.centered, &s.centered), true);
        }
        (spe, false)
    }

    /// T² from the scores already in scratch: `Σ_{λⱼ > floor} sⱼ²/λⱼ`.
    fn t2_of_scores(scores: &[f64], eigenvalues: &[f64], floor: f64) -> f64 {
        scores
            .iter()
            .zip(eigenvalues)
            .filter(|(_, &l)| l > floor)
            .map(|(s, &l)| s * s / l)
            .sum()
    }

    /// Squared prediction error of one row via the norm identity —
    /// allocation-free after thread warmup.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `x.len() != dim()`.
    pub fn spe(&self, x: &[f64]) -> Result<f64, LinalgError> {
        self.spe_checked(x).map(|(spe, _)| spe)
    }

    /// Like [`spe`](Self::spe), additionally reporting whether the
    /// cancellation guard routed this row through the materialized
    /// residual fallback — the observability hook the guard tests use.
    pub fn spe_checked(&self, x: &[f64]) -> Result<(f64, bool), LinalgError> {
        self.check(x)?;
        SCRATCH.with(|s| Ok(self.spe_in_scratch(x, &mut s.borrow_mut())))
    }

    /// SPE and Hotelling's T² of one row from a single axis pass: the
    /// scores feed both statistics, so the refit-trimming gate pays one
    /// matrix scan per model instead of three. `eigenvalues` aligns with
    /// the plan's axes; entries at or below `floor` are skipped (the
    /// zero-variance convention of
    /// [`SubspaceModel::t2`]).
    ///
    /// [`SubspaceModel::t2`]: ../entromine_subspace/struct.SubspaceModel.html#method.t2
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `x.len() != dim()`.
    pub fn spe_t2(
        &self,
        x: &[f64],
        eigenvalues: &[f64],
        floor: f64,
    ) -> Result<(f64, f64), LinalgError> {
        self.check(x)?;
        SCRATCH.with(|s| {
            let s = &mut *s.borrow_mut();
            let (spe, _) = self.spe_in_scratch(x, s);
            Ok((spe, Self::t2_of_scores(&s.scores, eigenvalues, floor)))
        })
    }

    /// Hotelling's T² alone (one axis pass, no residual work at all).
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `x.len() != dim()`.
    pub fn t2(&self, x: &[f64], eigenvalues: &[f64], floor: f64) -> Result<f64, LinalgError> {
        self.check(x)?;
        SCRATCH.with(|s| {
            let s = &mut *s.borrow_mut();
            let n = self.dim();
            s.centered.resize(n, 0.0);
            s.scores.resize(self.n_axes(), 0.0);
            self.center_into(x, &mut s.centered);
            self.scores_into(&s.centered, &mut s.scores);
            Ok(Self::t2_of_scores(&s.scores, eigenvalues, floor))
        })
    }

    /// Batch entry point: pushes every row through the **same** per-row
    /// arithmetic as [`spe`](Self::spe) (so batch and streamed scores of
    /// one row are bitwise identical) over one shared scratch, appending
    /// one SPE per row to `out` (cleared first). The win over per-call
    /// scoring is the single warm scratch and the axis panel staying hot
    /// in cache across consecutive rows.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] on the first row whose length
    /// differs from `dim()`; `out` holds the SPEs of the rows before it.
    pub fn spe_batch<'r>(
        &self,
        rows: impl IntoIterator<Item = &'r [f64]>,
        out: &mut Vec<f64>,
    ) -> Result<(), LinalgError> {
        out.clear();
        SCRATCH.with(|s| {
            let s = &mut *s.borrow_mut();
            for row in rows {
                self.check(row)?;
                out.push(self.spe_in_scratch(row, s).0);
            }
            Ok(())
        })
    }

    /// Batched [`spe_t2`](Self::spe_t2): one `(SPE, T²)` pair per row
    /// appended to `out` (cleared first), single axis pass per row over
    /// one shared scratch — the refit-trimming scan.
    ///
    /// # Errors
    ///
    /// As [`spe_batch`](Self::spe_batch).
    pub fn spe_t2_batch<'r>(
        &self,
        rows: impl IntoIterator<Item = &'r [f64]>,
        eigenvalues: &[f64],
        floor: f64,
        out: &mut Vec<(f64, f64)>,
    ) -> Result<(), LinalgError> {
        out.clear();
        SCRATCH.with(|s| {
            let s = &mut *s.borrow_mut();
            for row in rows {
                self.check(row)?;
                let (spe, _) = self.spe_in_scratch(row, s);
                out.push((spe, Self::t2_of_scores(&s.scores, eigenvalues, floor)));
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_2d() -> ScorePlan {
        // One axis along (1, 0) over a 2-variable space with mean (1, 2).
        let axes = Mat::from_fn(1, 2, |_, i| if i == 0 { 1.0 } else { 0.0 });
        ScorePlan::new(vec![1.0, 2.0], axes).unwrap()
    }

    #[test]
    fn identity_matches_hand_computation() {
        let plan = plan_2d();
        // x - mean = (3, 4): score 3 along the axis, residual (0, 4).
        let spe = plan.spe(&[4.0, 6.0]).unwrap();
        assert!((spe - 16.0).abs() < 1e-12, "spe {spe}");
    }

    #[test]
    fn in_subspace_row_trips_the_guard() {
        let plan = plan_2d();
        // x - mean = (5, 0) lies exactly on the axis: SPE is pure
        // cancellation, the guard must reroute.
        let (spe, fell_back) = plan.spe_checked(&[6.0, 2.0]).unwrap();
        assert!(fell_back, "guard must trip on an in-subspace row");
        assert!((0.0..1e-20).contains(&spe), "spe {spe}");
    }

    #[test]
    fn mean_row_scores_zero_without_fallback() {
        let plan = plan_2d();
        let (spe, fell_back) = plan.spe_checked(&[1.0, 2.0]).unwrap();
        assert_eq!(spe, 0.0);
        assert!(!fell_back, "x == mean is clean, not cancellation");
    }

    #[test]
    fn divisors_fold_into_centering() {
        let axes = Mat::from_fn(1, 2, |_, i| if i == 0 { 1.0 } else { 0.0 });
        let plan = ScorePlan::new(vec![1.0, 2.0], axes)
            .unwrap()
            .with_divisors(vec![2.0, 4.0])
            .unwrap();
        // Raw (8, 24) normalizes to (4, 6): same row as the identity test.
        let spe = plan.spe(&[8.0, 24.0]).unwrap();
        assert!((spe - 16.0).abs() < 1e-12, "spe {spe}");
    }

    #[test]
    fn shapes_validated() {
        let plan = plan_2d();
        assert!(plan.spe(&[1.0]).is_err());
        assert!(plan.spe_t2(&[1.0, 2.0, 3.0], &[1.0], 0.0).is_err());
        let axes = Mat::from_fn(1, 2, |_, _| 1.0);
        assert!(ScorePlan::new(vec![0.0; 3], axes.clone()).is_err());
        assert!(ScorePlan::new(vec![0.0; 2], axes.clone())
            .unwrap()
            .with_divisors(vec![1.0])
            .is_err());
        assert!(ScorePlan::new(vec![0.0; 2], axes)
            .unwrap()
            .with_divisors(vec![1.0, 0.0])
            .is_err());
    }

    #[test]
    fn batch_equals_per_row_bitwise() {
        let n = 37;
        let m = 11;
        let mean: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let axes = Mat::from_fn(m, n, |j, i| ((i * 7 + j * 13) as f64).cos() / 10.0);
        let plan = ScorePlan::new(mean, axes).unwrap();
        let rows: Vec<Vec<f64>> = (0..9)
            .map(|r| (0..n).map(|i| ((r * n + i) as f64).sqrt()).collect())
            .collect();
        let mut batch = Vec::new();
        plan.spe_batch(rows.iter().map(Vec::as_slice), &mut batch)
            .unwrap();
        for (row, &b) in rows.iter().zip(&batch) {
            let one = plan.spe(row).unwrap();
            assert_eq!(one.to_bits(), b.to_bits(), "batch must replay per-row");
        }
    }
}
