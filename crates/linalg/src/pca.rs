//! Principal component analysis over the rows of a data matrix.
//!
//! The subspace method treats a `t x n` measurement matrix (rows =
//! timepoints, columns = variables) as samples of a correlated process,
//! finds the principal axes of variation, and splits every observation into
//! a *normal* component (projection onto the leading axes) and a *residual*
//! component (everything else). [`Pca`] packages the fitted axes plus a
//! [`Spectrum`] — the leading eigenvalues it knows exactly and the exact
//! full-spectrum power sums downstream detection thresholds need.
//!
//! # Fit engines and dispatch
//!
//! Four concrete engines produce the same model at different costs:
//!
//! * **Full** ([`Pca::fit`]) — dense QL on the `n × n` covariance,
//!   `O(n³)`: the reference oracle, and the only engine that materializes
//!   every eigenpair.
//! * **Gram** ([`Pca::fit_gram`]) — the `t × t` Gram eigenproblem,
//!   `O(t³ + t²n)`: exact (the unstored tail of the spectrum is exactly
//!   zero), and the cheap path whenever `rows < cols`.
//! * **Partial** ([`Pca::fit_partial`]) — top-`k` eigenpairs by locked
//!   subspace iteration plus trace-identity power sums, `O(k·n²)` with an
//!   embarrassingly parallel `n³/2`-flop trace kernel: the engine for
//!   tall-and-wide refits where only a thin normal subspace is needed.
//! * **Moments** ([`Pca::fit_from_moments`]) — either of the covariance
//!   engines, fed from streamed moments instead of a materialized matrix.
//!
//! [`FitStrategy`] names the engines; [`FitStrategy::Auto`] picks one from
//! the data shape and the caller's [`AxisRequest`], escalating a partial
//! fit (doubling `k`, ultimately falling back to full QL) whenever the
//! partial spectrum cannot answer the request or its iteration fails to
//! converge. Every strategy yields thresholds within round-off of the
//! full-QL oracle; the equivalence is pinned by proptests in the subspace
//! crate.

use crate::matrix::dot;
use crate::score::ScorePlan;
use crate::spectrum::{ResidualPowerSums, Spectrum};
use crate::{sym_eigen, LinalgError, Mat, MomentAccumulator};

/// Which engine fits the eigenstructure of the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FitStrategy {
    /// Choose from the data shape and the axis request: `rows < cols`
    /// dispatches to [`Gram`](Self::Gram) (when the rank bound supports
    /// the request), thin requests against wide covariances dispatch to
    /// [`Partial`](Self::Partial), everything else runs
    /// [`Full`](Self::Full).
    #[default]
    Auto,
    /// Dense QL on the full covariance — the `O(n³)` reference oracle.
    Full,
    /// Top-`k` eigenpairs + trace-identity residual power sums,
    /// `O(k·n²)`. Escalates `k` (and ultimately falls back to
    /// [`Full`](Self::Full)) if the request cannot be answered from the
    /// partial spectrum or the iteration does not converge.
    Partial,
    /// The `rows × rows` Gram eigenproblem, `O(t³ + t²n)` — exact, and
    /// the natural engine for wide matrices.
    Gram,
}

/// How many principal axes a fit must be able to deliver.
///
/// The dispatcher sizes partial fits from this: [`Components`] requests
/// come with their dimension attached, [`VarianceFraction`] requests are
/// answered adaptively (fit a thin spectrum, escalate until the cumulative
/// known variance resolves the fraction against the exact trace).
///
/// [`Components`]: Self::Components
/// [`VarianceFraction`]: Self::VarianceFraction
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AxisRequest {
    /// Exactly this many leading axes.
    Components(usize),
    /// Enough axes to capture this fraction of total variance.
    VarianceFraction(f64),
}

/// How a fit actually ran: whether the eigensolve was warm-started and
/// how many Rayleigh–Ritz cycles it took. Paired with
/// [`Pca::strategy`] (which engine produced the model, after any
/// fallback), this is what refit reports surface so an operator can see
/// the warm-start win per refit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FitDiagnostics {
    /// Whether a previous eigenbasis seeded the subspace iteration.
    /// `false` for every cold fit, including the dense and Gram engines
    /// (which have no iteration to seed) and partial fits that fell back
    /// to the oracle.
    pub warm_start: bool,
    /// Rayleigh–Ritz cycles the partial engine performed; `0` for the
    /// dense and Gram engines.
    pub cycles: usize,
}

/// Eigenpairs kept beyond the requested dimension by a partial fit: one
/// for the spectral-gap diagnostic at the cut, the rest convergence
/// headroom for clustered tails.
const PARTIAL_MARGIN: usize = 7;

/// A partial fit must be asked for at most this fraction of the spectrum
/// (as `n / PARTIAL_MIN_ADVANTAGE`) before `Auto` prefers it: below that
/// the `O(k·n²)` iteration stops beating the dense solve's constant.
const PARTIAL_MIN_ADVANTAGE: usize = 4;

/// `Auto` only answers a variance-fraction request partially when the
/// covariance is at least this wide; below it the dense solve is cheap.
const PARTIAL_VF_MIN_COLS: usize = 256;

/// Initial `k` of an adaptive variance-fraction partial fit.
const PARTIAL_VF_INITIAL_K: usize = 32;

/// Seed of the partial engine's subspace iteration: fits are deterministic.
const PARTIAL_SEED: u64 = 0x5350_4543;

/// A fitted principal component analysis.
///
/// Built by [`Pca::fit`] (covariance eigenproblem), [`Pca::fit_gram`] (the
/// equivalent `rows × rows` Gram eigenproblem, cheaper for wide matrices),
/// [`Pca::fit_partial`] (top-`k` + trace-identity power sums),
/// [`Pca::fit_from_moments`] (streaming, from an incremental
/// [`MomentAccumulator`]), or the [`FitStrategy`] dispatcher
/// ([`Pca::fit_with`]); columns of the input are centered to zero mean
/// before the covariance is formed (as in Lakhina et al., SIGCOMM 2004).
///
/// The covariance and moments paths carry one principal axis per variable;
/// the Gram path carries only the axes the data can support (at most
/// `rows`) and the partial path only the `k` it computed, which is all any
/// projection with `m ≤ k` can use. The axis count is exposed as
/// [`n_axes`](Self::n_axes).
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    spectrum: Spectrum,
    strategy: FitStrategy,
    diagnostics: FitDiagnostics,
}

impl Pca {
    /// Fits a PCA to the rows of `x` (columns are variables).
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError`] from covariance construction (fewer than
    /// two rows) or the eigensolver.
    pub fn fit(x: &Mat) -> Result<Self, LinalgError> {
        if x.cols() == 0 {
            return Err(LinalgError::Empty {
                what: "PCA of a matrix with zero columns",
            });
        }
        let mean = x.col_means();
        let cov = x.covariance()?;
        Self::full_from_cov(mean, &cov)
    }

    /// Fits the same model as [`fit`](Self::fit) by solving the `t × t`
    /// Gram eigenproblem instead of the `n × n` covariance one.
    ///
    /// For `X_c` the centered data, `X_c X_cᵀ u = μ u` implies
    /// `cov · (X_cᵀ u) = (μ / (t-1)) · (X_cᵀ u)`: the Gram spectrum is the
    /// covariance spectrum (scaled), and each covariance eigenvector is a
    /// normalized back-projection of a Gram eigenvector. When `t ≪ n` —
    /// e.g. one week of bins against the `4p ≈ 2000` unfolded entropy
    /// columns of a large network — this turns an `O(n³)` eigensolve into
    /// an `O(t³)` one. The Gram product itself runs on the same blocked
    /// scoped-thread kernel as [`Mat::covariance`].
    ///
    /// Numerically the two paths agree to round-off (axes may flip sign);
    /// they are cross-checked in proptests. The returned model carries
    /// only the data's supportable axes (`n_axes() ≤ min(t, n)`) plus the
    /// full zero-padded eigenvalue spectrum, so downstream threshold code
    /// sees the exact covariance-path spectrum. [`FitStrategy::Auto`]
    /// dispatches here whenever `rows < cols` and the rank bound supports
    /// the request.
    ///
    /// # Errors
    ///
    /// Same conditions as [`fit`](Self::fit).
    pub fn fit_gram(x: &Mat) -> Result<Self, LinalgError> {
        let (t, n) = x.shape();
        if n == 0 {
            return Err(LinalgError::Empty {
                what: "PCA of a matrix with zero columns",
            });
        }
        if t < 2 {
            return Err(LinalgError::Empty {
                what: "covariance needs at least 2 rows",
            });
        }
        let mean = x.col_means();
        let mut centered = x.clone();
        centered.center_cols(&mean);
        let gram = centered.gram();
        let geig = sym_eigen(&gram)?;
        let denom = (t - 1) as f64;

        // Numerically-zero Gram eigenvalues cannot be back-projected (the
        // division by √μ blows up); everything at or below round-off of
        // the leading one is dropped from the axis set but kept — as an
        // exact zero — in the spectrum.
        let lead = geig.values.first().copied().unwrap_or(0.0).max(0.0);
        let tol = lead * 1e-12;
        let kept: Vec<usize> = (0..t).filter(|&j| geig.values[j] > tol).collect();

        let mut values = vec![0.0; n];
        for (slot, &j) in values.iter_mut().zip(&kept) {
            *slot = geig.values[j] / denom;
        }
        let mut vectors = Mat::zeros(n, kept.len());
        for (dst, &j) in kept.iter().enumerate() {
            let u = geig.vectors.col(j);
            // v = X_cᵀ u / √μ, accumulated row-major over the data.
            let inv_norm = 1.0 / geig.values[j].sqrt();
            let mut v = vec![0.0; n];
            for (row, &ui) in centered.row_iter().zip(&u) {
                if ui == 0.0 {
                    continue;
                }
                for (slot, &xij) in v.iter_mut().zip(row) {
                    *slot += ui * xij;
                }
            }
            for (i, &vi) in v.iter().enumerate() {
                vectors[(i, dst)] = vi * inv_norm;
            }
        }
        Ok(Pca {
            mean,
            spectrum: Spectrum::complete_padded(values, vectors),
            strategy: FitStrategy::Gram,
            diagnostics: FitDiagnostics::default(),
        })
    }

    /// Fits the top-`k` principal axes plus exact trace-identity power
    /// sums, without ever diagonalizing the full covariance.
    ///
    /// The `O(n³)` dense eigensolve becomes `O(k·n²)` locked subspace
    /// iteration plus one `n³/2`-flop blocked trace pass — the difference
    /// between ~seconds and ~hundreds of milliseconds at Geant width
    /// (`4p = 1936`), and the engine behind routine large-`n` refits.
    /// Detection thresholds computed from the result agree with the
    /// full-QL oracle to round-off because the residual power sums are
    /// exact, not truncated.
    ///
    /// If the iteration fails to converge (pathological spectra), the
    /// model silently falls back to the dense oracle — correctness is
    /// never traded for speed. [`strategy`](Self::strategy) reports which
    /// engine actually produced the model.
    ///
    /// # Errors
    ///
    /// The conditions of [`fit`](Self::fit), plus [`LinalgError::Domain`]
    /// if `k == 0` or `k > cols`.
    pub fn fit_partial(x: &Mat, k: usize) -> Result<Self, LinalgError> {
        if x.cols() == 0 {
            return Err(LinalgError::Empty {
                what: "PCA of a matrix with zero columns",
            });
        }
        if k == 0 || k > x.cols() {
            return Err(LinalgError::Domain {
                what: "partial fit requires 1 <= k <= cols",
            });
        }
        let mean = x.col_means();
        let cov = x.covariance()?;
        Self::partial_from_cov(mean, &cov, k)
    }

    /// [`fit_partial`](Self::fit_partial) warm-started from a previous
    /// model's eigenbasis (an `n × c` column block; see
    /// [`top_k_eigen_detailed_warm`](crate::top_k_eigen_detailed_warm)
    /// for how stale or malformed guesses degrade). `None` is the cold
    /// fit, bit for bit.
    ///
    /// # Errors
    ///
    /// Same as [`fit_partial`](Self::fit_partial).
    pub fn fit_partial_warm(x: &Mat, k: usize, warm: Option<&Mat>) -> Result<Self, LinalgError> {
        if x.cols() == 0 {
            return Err(LinalgError::Empty {
                what: "PCA of a matrix with zero columns",
            });
        }
        if k == 0 || k > x.cols() {
            return Err(LinalgError::Domain {
                what: "partial fit requires 1 <= k <= cols",
            });
        }
        let mean = x.col_means();
        let cov = x.covariance()?;
        Self::partial_from_cov_warm(mean, &cov, k, warm)
    }

    /// Fits a PCA from streamed moments instead of a materialized matrix.
    ///
    /// This is the streaming half of the fit/score split: an ingest loop
    /// pushes finalized rows into a [`MomentAccumulator`] as they arrive,
    /// and the model is fitted from the running mean and covariance when
    /// the training window closes — the `t × n` matrix never exists.
    ///
    /// # Errors
    ///
    /// [`LinalgError::Empty`] if the accumulator has dimension zero or has
    /// absorbed fewer than two rows; otherwise propagates the eigensolver.
    pub fn fit_from_moments(moments: &MomentAccumulator) -> Result<Self, LinalgError> {
        if moments.dim() == 0 {
            return Err(LinalgError::Empty {
                what: "PCA of a matrix with zero columns",
            });
        }
        let cov = moments.covariance()?;
        Self::full_from_cov(moments.mean().to_vec(), &cov)
    }

    /// Fits with an explicit [`FitStrategy`], dispatching on the data
    /// shape and the [`AxisRequest`] when the strategy is
    /// [`Auto`](FitStrategy::Auto).
    ///
    /// The dispatch rules, in order:
    ///
    /// 1. `rows < cols` and the Gram rank bound (`rank ≤ rows − 1`) can
    ///    support the request → **Gram** (exact, `O(t³ + t²n)`).
    /// 2. The request needs only a thin slice of a wide spectrum
    ///    (`k ≤ n/4` for fixed requests; `n ≥ 256` for variance-fraction
    ///    ones) → **Partial**.
    /// 3. Otherwise → **Full**.
    ///
    /// A forced [`Partial`](FitStrategy::Partial) that cannot pay for
    /// itself (thin matrices, requests spanning most of the spectrum)
    /// degrades gracefully to the dense solve rather than failing; check
    /// [`strategy`](Self::strategy) for the engine actually used.
    ///
    /// # Errors
    ///
    /// The shape conditions of the selected engine, plus
    /// [`LinalgError::Domain`] for a non-finite or out-of-`(0, 1)`
    /// variance fraction handed to a partial fit.
    pub fn fit_with(
        x: &Mat,
        strategy: FitStrategy,
        request: AxisRequest,
    ) -> Result<Self, LinalgError> {
        let (t, n) = x.shape();
        match strategy {
            FitStrategy::Full => Self::fit(x),
            FitStrategy::Gram => Self::fit_gram(x),
            FitStrategy::Partial => {
                if n == 0 {
                    return Err(LinalgError::Empty {
                        what: "PCA of a matrix with zero columns",
                    });
                }
                let mean = x.col_means();
                let cov = x.covariance()?;
                Self::partial_for_request(mean, &cov, request)
            }
            FitStrategy::Auto => {
                if t < n && t >= 2 && gram_supports(t, request) {
                    let gram = Self::fit_gram(x)?;
                    // The row count bounded the rank a priori, but the
                    // *numerical* rank is only known after the fit: short
                    // or degenerate windows can support fewer axes than
                    // the request needs. Auto must then degrade to the
                    // dense oracle (which always carries `n` axes), not
                    // surface an error the old full path never raised.
                    if gram_delivers(&gram, request) {
                        Ok(gram)
                    } else {
                        Self::fit(x)
                    }
                } else if partial_profitable(n, request) {
                    let mean = x.col_means();
                    let cov = x.covariance()?;
                    Self::partial_for_request(mean, &cov, request)
                } else {
                    Self::fit(x)
                }
            }
        }
    }

    /// [`fit_with`](Self::fit_with) over streamed moments. The Gram engine
    /// needs raw rows and is unavailable here; [`Auto`](FitStrategy::Auto)
    /// chooses between the full and partial covariance engines.
    ///
    /// # Errors
    ///
    /// The conditions of [`fit_from_moments`](Self::fit_from_moments),
    /// plus [`LinalgError::Domain`] when the Gram strategy is forced.
    pub fn fit_from_moments_with(
        moments: &MomentAccumulator,
        strategy: FitStrategy,
        request: AxisRequest,
    ) -> Result<Self, LinalgError> {
        Self::fit_from_moments_warm(moments, strategy, request, None)
    }

    /// [`fit_from_moments_with`](Self::fit_from_moments_with) with an
    /// optional warm basis (a previous model's eigenvectors) seeding the
    /// partial engine's subspace iteration. The dispatch rules are
    /// unchanged; engines without an iteration to seed (full) ignore the
    /// guess, and `None` reproduces the cold fit bit for bit — which is
    /// what keeps warm-started refits a pure function of the push
    /// history.
    ///
    /// # Errors
    ///
    /// Same as [`fit_from_moments_with`](Self::fit_from_moments_with).
    pub fn fit_from_moments_warm(
        moments: &MomentAccumulator,
        strategy: FitStrategy,
        request: AxisRequest,
        warm: Option<&Mat>,
    ) -> Result<Self, LinalgError> {
        if moments.dim() == 0 {
            return Err(LinalgError::Empty {
                what: "PCA of a matrix with zero columns",
            });
        }
        match strategy {
            FitStrategy::Full => Self::fit_from_moments(moments),
            FitStrategy::Gram => Err(LinalgError::Domain {
                what: "gram fits need raw rows, which streamed moments do not retain",
            }),
            FitStrategy::Partial => {
                let cov = moments.covariance()?;
                Self::partial_for_request_warm(moments.mean().to_vec(), &cov, request, warm)
            }
            FitStrategy::Auto => {
                if partial_profitable(moments.dim(), request) {
                    let cov = moments.covariance()?;
                    Self::partial_for_request_warm(moments.mean().to_vec(), &cov, request, warm)
                } else {
                    Self::fit_from_moments(moments)
                }
            }
        }
    }

    /// The full-QL oracle over a prepared covariance.
    fn full_from_cov(mean: Vec<f64>, cov: &Mat) -> Result<Self, LinalgError> {
        let eigen = sym_eigen(cov)?;
        Ok(Pca {
            mean,
            spectrum: Spectrum::complete(eigen),
            strategy: FitStrategy::Full,
            diagnostics: FitDiagnostics::default(),
        })
    }

    /// A `k`-pair partial model over a prepared covariance, falling back
    /// to the oracle when the iteration does not converge or the partial
    /// spectrum would cover (nearly) everything anyway.
    fn partial_from_cov(mean: Vec<f64>, cov: &Mat, k: usize) -> Result<Self, LinalgError> {
        Self::partial_from_cov_warm(mean, cov, k, None)
    }

    /// [`partial_from_cov`](Self::partial_from_cov) with an optional warm
    /// basis seeding the subspace iteration. The fallback rules are
    /// identical — in particular a warm fit that fails to converge still
    /// degrades to the (cold) dense oracle, so warm-starting can never
    /// produce a worse model, only a faster one.
    fn partial_from_cov_warm(
        mean: Vec<f64>,
        cov: &Mat,
        k: usize,
        warm: Option<&Mat>,
    ) -> Result<Self, LinalgError> {
        let n = cov.rows();
        if k >= n {
            return Self::full_from_cov(mean, cov);
        }
        let (spectrum, info) = Spectrum::partial_of_warm(cov, k, PARTIAL_SEED, warm)?;
        if !info.converged {
            return Self::full_from_cov(mean, cov);
        }
        Ok(Pca {
            mean,
            spectrum,
            strategy: FitStrategy::Partial,
            diagnostics: FitDiagnostics {
                warm_start: warm.is_some(),
                cycles: info.iterations,
            },
        })
    }

    /// Sizes (and, for variance fractions, escalates) a partial fit until
    /// it can answer `request`, degrading to the oracle past `n/2`.
    fn partial_for_request(
        mean: Vec<f64>,
        cov: &Mat,
        request: AxisRequest,
    ) -> Result<Self, LinalgError> {
        Self::partial_for_request_warm(mean, cov, request, None)
    }

    /// [`partial_for_request`](Self::partial_for_request) with an optional
    /// warm basis, passed to every sizing attempt (including each
    /// variance-fraction escalation — the guess's leading columns stay
    /// valid however wide the block grows).
    fn partial_for_request_warm(
        mean: Vec<f64>,
        cov: &Mat,
        request: AxisRequest,
        warm: Option<&Mat>,
    ) -> Result<Self, LinalgError> {
        let n = cov.rows();
        match request {
            AxisRequest::Components(m) => {
                Self::partial_from_cov_warm(mean, cov, (m + 1 + PARTIAL_MARGIN).min(n), warm)
            }
            AxisRequest::VarianceFraction(f) => {
                if !f.is_finite() || f <= 0.0 || f >= 1.0 {
                    return Err(LinalgError::Domain {
                        what: "variance fraction must be finite and lie strictly inside (0, 1)",
                    });
                }
                let mut k = PARTIAL_VF_INITIAL_K.min(n);
                loop {
                    if k >= n / 2 || k >= n {
                        return Self::full_from_cov(mean, cov);
                    }
                    let fitted = Self::partial_from_cov_warm(mean.clone(), cov, k, warm)?;
                    // A non-convergence fallback inside partial_from_cov
                    // already produced the complete oracle spectrum —
                    // escalating further would only repeat dense solves.
                    if fitted.strategy == FitStrategy::Full {
                        return Ok(fitted);
                    }
                    match fitted.spectrum.dims_for_variance(f) {
                        // The projection needs the resolved dimension's
                        // axes; escalation re-fits when the answer sits at
                        // the very edge of the known spectrum.
                        Some(d) if d < k => return Ok(fitted),
                        _ => k *= 2,
                    }
                }
            }
        }
    }

    /// Number of variables (columns of the fitted data).
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Number of principal axes the model carries: `dim()` for the full
    /// and moments paths, the data's numerical rank for the Gram path,
    /// `k` for the partial path. Projections require `m <= n_axes()`.
    pub fn n_axes(&self) -> usize {
        self.spectrum.n_axes()
    }

    /// The per-column means removed before analysis.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The eigenvalues the model knows exactly, descending: the full
    /// spectrum for the full, moments, and Gram paths, the leading `k`
    /// for the partial path (whose *power sums* still cover the full
    /// spectrum — see [`spectrum`](Self::spectrum)).
    pub fn eigenvalues(&self) -> &[f64] {
        self.spectrum.values()
    }

    /// How the fit actually ran: warm-started or cold, and how many
    /// Rayleigh–Ritz cycles the partial engine spent. Pair with
    /// [`strategy`](Self::strategy) to see which engine produced the
    /// model after any fallback.
    pub fn diagnostics(&self) -> FitDiagnostics {
        self.diagnostics
    }

    /// The fitted [`Spectrum`]: leading eigenpairs plus exact full-spectrum
    /// power sums.
    pub fn spectrum(&self) -> &Spectrum {
        &self.spectrum
    }

    /// The engine that actually produced this model (never
    /// [`FitStrategy::Auto`]; a partial fit that fell back to the dense
    /// solve reports [`FitStrategy::Full`]).
    pub fn strategy(&self) -> FitStrategy {
        self.strategy
    }

    /// `tr C`: total variance over the full spectrum (exact on every path).
    pub fn total_variance(&self) -> f64 {
        self.spectrum.total_variance()
    }

    /// Residual power sums `φ₁, φ₂, φ₃` past the leading `m` components —
    /// the exact input of the Q-statistic threshold, on every fit path.
    ///
    /// # Errors
    ///
    /// [`LinalgError::Domain`] if `m >= dim()` or `m` exceeds a partial
    /// spectrum's known prefix.
    pub fn residual_power_sums(&self, m: usize) -> Result<ResidualPowerSums, LinalgError> {
        self.spectrum.residual_power_sums(m)
    }

    /// The orthonormal principal axes (one per column, aligned with
    /// [`eigenvalues`](Self::eigenvalues)).
    pub fn components(&self) -> &Mat {
        self.spectrum.vectors()
    }

    /// Fraction of variance explained by the leading `m` components.
    pub fn explained_variance_ratio(&self, m: usize) -> f64 {
        self.spectrum.explained(m)
    }

    /// Smallest component count capturing at least `fraction` of variance.
    ///
    /// Saturates at [`dim`](Self::dim) when the fraction is unreachable —
    /// including the partial-path case where the answer lies beyond the
    /// known spectrum (the fit dispatcher sizes partial fits so that a
    /// model it returns always resolves its own request).
    pub fn dims_for_variance(&self, fraction: f64) -> usize {
        self.spectrum
            .dims_for_variance(fraction)
            .unwrap_or_else(|| self.dim())
    }

    /// Centers `x` and projects it onto the leading `m` principal axes,
    /// returning the `m` scores.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] if `x.len() != self.dim()`;
    /// [`LinalgError::Domain`] if `m > self.n_axes()`.
    pub fn project(&self, x: &[f64], m: usize) -> Result<Vec<f64>, LinalgError> {
        self.check(x, m)?;
        let centered: Vec<f64> = x.iter().zip(&self.mean).map(|(v, mu)| v - mu).collect();
        Ok(self.scores_of_centered(&centered, m))
    }

    /// Scores of an already-centered observation against the leading `m`
    /// axes, accumulated row-major (the axis matrix stores variables as
    /// rows, so all `m` scores advance together over one contiguous scan).
    fn scores_of_centered(&self, centered: &[f64], m: usize) -> Vec<f64> {
        let mut scores = vec![0.0; m];
        for (i, &ci) in centered.iter().enumerate() {
            // The zero-skip lives only in this reference chain: it pays off
            // on the sparse synthetic fixtures it was written against, but
            // on dense entropy rows (the production workload) it is a
            // per-element branch that mispredicts almost every time. The
            // fused [`ScorePlan`](crate::ScorePlan) path deliberately drops
            // it and centers/scores unconditionally.
            if ci == 0.0 {
                continue;
            }
            for (s, &vij) in scores.iter_mut().zip(&self.spectrum.vectors().row(i)[..m]) {
                *s += ci * vij;
            }
        }
        scores
    }

    /// Splits a centered observation into its modeled (normal-subspace) part.
    ///
    /// Returns `x_hat` such that `x - mean = x_hat + x_tilde` with `x_hat`
    /// in the span of the leading `m` axes. The two passes (project, then
    /// expand) each scan the axis matrix once row-major, so scoring one
    /// observation is `O(n·m)` with contiguous access — the cost that
    /// bounds the streaming score path.
    pub fn reconstruct(&self, x: &[f64], m: usize) -> Result<Vec<f64>, LinalgError> {
        self.check(x, m)?;
        let centered: Vec<f64> = x.iter().zip(&self.mean).map(|(v, mu)| v - mu).collect();
        let scores = self.scores_of_centered(&centered, m);
        let mut hat = vec![0.0; self.dim()];
        for (i, h) in hat.iter_mut().enumerate() {
            *h = dot(&scores, &self.spectrum.vectors().row(i)[..m]);
        }
        Ok(hat)
    }

    /// The residual `x_tilde = (x - mean) - x_hat` after removing the
    /// normal-subspace component.
    pub fn residual(&self, x: &[f64], m: usize) -> Result<Vec<f64>, LinalgError> {
        let hat = self.reconstruct(x, m)?;
        Ok(x.iter()
            .zip(&self.mean)
            .zip(&hat)
            .map(|((v, mu), h)| (v - mu) - h)
            .collect())
    }

    /// Squared prediction error: `||x_tilde||^2`, the detection statistic of
    /// the subspace method. Alias of [`spe_reference`](Self::spe_reference);
    /// the serving layers score through a fused [`ScorePlan`] instead (see
    /// [`score_plan`](Self::score_plan)).
    pub fn spe(&self, x: &[f64], m: usize) -> Result<f64, LinalgError> {
        self.spe_reference(x, m)
    }

    /// The reference SPE chain — project, reconstruct, residual, norm —
    /// kept verbatim as the executable spec of the statistic. The fused
    /// [`ScorePlan`] path is pinned against it (≤1e-10 relative) and falls
    /// back to this computation shape when its cancellation guard trips;
    /// `ENTROMINE_FORCE_REFERENCE_SCORE` routes whole processes here.
    pub fn spe_reference(&self, x: &[f64], m: usize) -> Result<f64, LinalgError> {
        let r = self.residual(x, m)?;
        Ok(dot(&r, &r))
    }

    /// Builds the fused scoring plane over the leading `m` axes: the mean
    /// plus those axes transposed into contiguous rows, ready for
    /// allocation-free norm-identity scoring ([`ScorePlan::spe`],
    /// [`ScorePlan::spe_batch`]).
    ///
    /// # Errors
    ///
    /// [`LinalgError::Domain`] if `m > self.n_axes()`.
    pub fn score_plan(&self, m: usize) -> Result<ScorePlan, LinalgError> {
        if m > self.n_axes() {
            return Err(LinalgError::Domain {
                what: "requested more components than available axes",
            });
        }
        let n = self.dim();
        let vectors = self.spectrum.vectors();
        let axes = Mat::from_fn(m, n, |j, i| vectors[(i, j)]);
        ScorePlan::new(self.mean.clone(), axes)
    }

    fn check(&self, x: &[f64], m: usize) -> Result<(), LinalgError> {
        if x.len() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "pca apply",
                lhs: (1, x.len()),
                rhs: (1, self.dim()),
            });
        }
        if m > self.n_axes() {
            return Err(LinalgError::Domain {
                what: "requested more components than available axes",
            });
        }
        Ok(())
    }
}

/// Whether the Gram path's a-priori rank bound (`rank ≤ t − 1`) can
/// support the request. Fixed requests need `m` backprojectable axes;
/// variance fractions always resolve (the Gram spectrum is complete).
fn gram_supports(t: usize, request: AxisRequest) -> bool {
    match request {
        AxisRequest::Components(m) => t >= m + 2,
        AxisRequest::VarianceFraction(_) => true,
    }
}

/// Whether a *fitted* Gram model actually carries the axes the request
/// needs — the a-posteriori check behind [`gram_supports`], which only
/// knew the row count, not the data's numerical rank.
fn gram_delivers(gram: &Pca, request: AxisRequest) -> bool {
    match request {
        AxisRequest::Components(m) => gram.n_axes() >= m,
        // A complete spectrum resolves any fraction within its own rank.
        AxisRequest::VarianceFraction(_) => true,
    }
}

/// Whether a partial fit is worth dispatching to for this width/request.
fn partial_profitable(n: usize, request: AxisRequest) -> bool {
    match request {
        AxisRequest::Components(m) => {
            (m + 1 + PARTIAL_MARGIN).saturating_mul(PARTIAL_MIN_ADVANTAGE) <= n
        }
        AxisRequest::VarianceFraction(_) => n >= PARTIAL_VF_MIN_COLS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Data living (noisily) on a line in 3-space.
    fn line_data(n: usize, noise: f64, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        Mat::from_fn(n, 3, |i, j| {
            let t = i as f64 / n as f64;
            let base = match j {
                0 => 2.0 * t,
                1 => -t + 5.0,
                _ => 0.5 * t - 2.0,
            };
            base + noise * (rng.random::<f64>() - 0.5)
        })
    }

    /// Wide low-rank-plus-noise data for the partial/dispatch tests.
    fn wide_data(t: usize, n: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        let gains: Vec<f64> = (0..n).map(|_| 0.5 + rng.random::<f64>()).collect();
        Mat::from_fn(t, n, |i, j| {
            let phase = i as f64 / 50.0 * std::f64::consts::TAU;
            gains[j] * (3.0 + phase.sin()) + 0.05 * (rng.random::<f64>() - 0.5)
        })
    }

    #[test]
    fn one_dimensional_data_has_one_component() {
        let x = line_data(200, 0.0, 1);
        let pca = Pca::fit(&x).unwrap();
        assert!(pca.explained_variance_ratio(1) > 1.0 - 1e-9);
        assert_eq!(pca.dims_for_variance(0.999), 1);
    }

    #[test]
    fn noisy_line_mostly_one_component() {
        let x = line_data(500, 0.05, 2);
        let pca = Pca::fit(&x).unwrap();
        assert!(pca.explained_variance_ratio(1) > 0.98);
    }

    #[test]
    fn residual_plus_reconstruction_is_centered_x() {
        let x = line_data(100, 0.3, 3);
        let pca = Pca::fit(&x).unwrap();
        let probe = x.row(10);
        for m in [0, 1, 2, 3] {
            let hat = pca.reconstruct(probe, m).unwrap();
            let tilde = pca.residual(probe, m).unwrap();
            for j in 0..3 {
                let centered = probe[j] - pca.mean()[j];
                assert!((hat[j] + tilde[j] - centered).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn full_rank_projection_has_zero_residual() {
        let x = line_data(100, 0.3, 4);
        let pca = Pca::fit(&x).unwrap();
        let spe = pca.spe(x.row(5), 3).unwrap();
        assert!(spe < 1e-18, "full-dimensional SPE should vanish, got {spe}");
    }

    #[test]
    fn spe_decreases_with_more_components() {
        let x = line_data(300, 0.4, 5);
        let pca = Pca::fit(&x).unwrap();
        let probe = x.row(7);
        let spe0 = pca.spe(probe, 0).unwrap();
        let spe1 = pca.spe(probe, 1).unwrap();
        let spe2 = pca.spe(probe, 2).unwrap();
        assert!(spe0 >= spe1 - 1e-12);
        assert!(spe1 >= spe2 - 1e-12);
    }

    #[test]
    fn outlier_has_larger_spe_than_inliers() {
        let x = line_data(300, 0.05, 6);
        let pca = Pca::fit(&x).unwrap();
        let inlier_spe = pca.spe(x.row(50), 1).unwrap();
        // A point far off the line.
        let outlier = [0.0, 20.0, 10.0];
        let outlier_spe = pca.spe(&outlier, 1).unwrap();
        assert!(outlier_spe > 100.0 * inlier_spe);
    }

    #[test]
    fn project_scores_match_reconstruction() {
        let x = line_data(100, 0.2, 7);
        let pca = Pca::fit(&x).unwrap();
        let probe = x.row(20);
        let scores = pca.project(probe, 2).unwrap();
        // Reconstruction = sum of score_j * axis_j.
        let mut manual = [0.0; 3];
        for (j, &score) in scores.iter().enumerate() {
            for (i, m) in manual.iter_mut().enumerate() {
                *m += score * pca.components()[(i, j)];
            }
        }
        let hat = pca.reconstruct(probe, 2).unwrap();
        for i in 0..3 {
            assert!((manual[i] - hat[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn gram_path_matches_covariance_path() {
        // Wide matrix (rows < cols): the Gram path's natural habitat.
        let mut rng = StdRng::seed_from_u64(11);
        let x = Mat::from_fn(40, 90, |i, j| {
            let t = i as f64 / 40.0;
            (j % 5) as f64 * t + 0.1 * (rng.random::<f64>() - 0.5)
        });
        let cov_path = Pca::fit(&x).unwrap();
        let gram_path = Pca::fit_gram(&x).unwrap();
        assert_eq!(gram_path.dim(), 90);
        assert!(gram_path.n_axes() <= 40);
        // Spectra agree (Gram pads the rank-deficient tail with zeros).
        for (a, b) in gram_path
            .eigenvalues()
            .iter()
            .zip(cov_path.eigenvalues())
            .take(gram_path.n_axes())
        {
            assert!((a - b).abs() < 1e-8 * (1.0 + b.abs()), "{a} vs {b}");
        }
        assert_eq!(gram_path.eigenvalues().len(), 90);
        // The models score observations identically.
        for m in [1usize, 3, 8] {
            for probe in [x.row(0), x.row(17), x.row(39)] {
                let a = cov_path.spe(probe, m).unwrap();
                let b = gram_path.spe(probe, m).unwrap();
                assert!((a - b).abs() < 1e-8 * (1.0 + a), "spe {a} vs {b} at m={m}");
            }
        }
    }

    #[test]
    fn partial_path_matches_full_path() {
        // Tall-and-wide: the partial path's natural habitat.
        let x = wide_data(120, 60, 21);
        let full = Pca::fit(&x).unwrap();
        let partial = Pca::fit_partial(&x, 8).unwrap();
        assert_eq!(partial.strategy(), FitStrategy::Partial);
        assert_eq!(partial.n_axes(), 8);
        assert_eq!(partial.dim(), 60);
        for (a, b) in partial.eigenvalues().iter().zip(full.eigenvalues()) {
            assert!((a - b).abs() < 1e-8 * (1.0 + b.abs()), "{a} vs {b}");
        }
        // Exact full-spectrum invariants survive the truncation.
        assert!(
            (partial.total_variance() - full.total_variance()).abs()
                < 1e-9 * (1.0 + full.total_variance())
        );
        for m in [0usize, 3, 7] {
            let pf = full.residual_power_sums(m).unwrap();
            let pp = partial.residual_power_sums(m).unwrap();
            let scale = 1.0 + full.total_variance();
            assert!((pf.phi1 - pp.phi1).abs() < 1e-8 * scale, "m={m}");
            // Scores agree wherever both models can project.
            let a = full.spe(x.row(11), m).unwrap();
            let b = partial.spe(x.row(11), m).unwrap();
            assert!((a - b).abs() < 1e-8 * (1.0 + a), "{a} vs {b} at m={m}");
        }
        // Projections beyond the partial axes are refused, not wrong.
        assert!(partial.project(x.row(0), 9).is_err());
        assert!(full.project(x.row(0), 9).is_ok());
    }

    #[test]
    fn auto_dispatch_picks_shape_appropriate_engines() {
        // Wide: Gram.
        let wide = wide_data(30, 80, 22);
        let pca = Pca::fit_with(&wide, FitStrategy::Auto, AxisRequest::Components(5)).unwrap();
        assert_eq!(pca.strategy(), FitStrategy::Gram);
        // Tall and wide with a thin request: Partial.
        let tall = wide_data(150, 64, 23);
        let pca = Pca::fit_with(&tall, FitStrategy::Auto, AxisRequest::Components(5)).unwrap();
        assert_eq!(pca.strategy(), FitStrategy::Partial);
        // Tall and narrow: Full.
        let narrow = wide_data(150, 8, 24);
        let pca = Pca::fit_with(&narrow, FitStrategy::Auto, AxisRequest::Components(5)).unwrap();
        assert_eq!(pca.strategy(), FitStrategy::Full);
        // Wide but with too few rows to support the request: not Gram.
        let stub = wide_data(5, 80, 25);
        let pca = Pca::fit_with(&stub, FitStrategy::Auto, AxisRequest::Components(10)).unwrap();
        assert_ne!(pca.strategy(), FitStrategy::Gram);
        assert!(pca.n_axes() >= 10);
    }

    #[test]
    fn auto_falls_back_when_gram_rank_cannot_deliver() {
        // Wide but exactly rank-2 data with a 10-axis request: the row
        // count passes the a-priori Gram bound, yet the numerical rank
        // supports only 2 axes. Auto must degrade to the dense oracle
        // (which the old default path was) rather than error.
        let mut rng = StdRng::seed_from_u64(31);
        let (t, n) = (30usize, 80usize);
        let coeffs: Vec<(f64, f64)> = (0..t)
            .map(|_| (rng.random::<f64>() - 0.5, rng.random::<f64>() - 0.5))
            .collect();
        let loads: Vec<(f64, f64)> = (0..n)
            .map(|_| (2.0 * rng.random::<f64>(), 2.0 * rng.random::<f64>()))
            .collect();
        let x = Mat::from_fn(t, n, |i, j| {
            coeffs[i].0 * loads[j].0 + coeffs[i].1 * loads[j].1
        });
        let auto = Pca::fit_with(&x, FitStrategy::Auto, AxisRequest::Components(10)).unwrap();
        assert_eq!(auto.strategy(), FitStrategy::Full);
        assert!(auto.n_axes() >= 10);
        // A forced Gram fit on the same data honestly reports its rank.
        let gram = Pca::fit_gram(&x).unwrap();
        assert!(gram.n_axes() < 10, "rank-2 data has no 10 Gram axes");
    }

    #[test]
    fn forced_partial_degrades_gracefully() {
        // A request spanning most of a narrow spectrum: partial falls back
        // to the dense solve instead of a worse-than-full iteration.
        let x = wide_data(60, 6, 26);
        let pca = Pca::fit_with(&x, FitStrategy::Partial, AxisRequest::Components(4)).unwrap();
        assert_eq!(pca.strategy(), FitStrategy::Full);
        assert_eq!(pca.n_axes(), 6);
    }

    #[test]
    fn variance_fraction_request_escalates_to_an_answer() {
        let x = wide_data(200, 300, 27);
        let pca =
            Pca::fit_with(&x, FitStrategy::Partial, AxisRequest::VarianceFraction(0.9)).unwrap();
        let d = pca.dims_for_variance(0.9);
        assert!(d >= 1 && d <= pca.n_axes(), "d={d} axes={}", pca.n_axes());
        assert!(pca.explained_variance_ratio(d) >= 0.9);
        // Invalid fractions are rejected at the dispatcher.
        for bad in [0.0, 1.0, -1.0, f64::NAN] {
            assert!(
                Pca::fit_with(&x, FitStrategy::Partial, AxisRequest::VarianceFraction(bad))
                    .is_err()
            );
        }
    }

    #[test]
    fn moments_path_matches_batch_fit() {
        let x = line_data(150, 0.2, 9);
        let batch = Pca::fit(&x).unwrap();
        let streamed = Pca::fit_from_moments(&crate::MomentAccumulator::from_rows(&x)).unwrap();
        for (a, b) in streamed.mean().iter().zip(batch.mean()) {
            assert!((a - b).abs() < 1e-10);
        }
        for (a, b) in streamed.eigenvalues().iter().zip(batch.eigenvalues()) {
            assert!((a - b).abs() < 1e-8 * (1.0 + b.abs()));
        }
        let probe = x.row(75);
        for m in [0usize, 1, 2] {
            let a = batch.spe(probe, m).unwrap();
            let b = streamed.spe(probe, m).unwrap();
            assert!((a - b).abs() < 1e-8 * (1.0 + a));
        }
    }

    #[test]
    fn moments_strategy_dispatch() {
        let x = wide_data(150, 64, 28);
        let acc = crate::MomentAccumulator::from_rows(&x);
        let auto = Pca::fit_from_moments_with(&acc, FitStrategy::Auto, AxisRequest::Components(5))
            .unwrap();
        assert_eq!(auto.strategy(), FitStrategy::Partial);
        let full = Pca::fit_from_moments_with(&acc, FitStrategy::Full, AxisRequest::Components(5))
            .unwrap();
        assert_eq!(full.strategy(), FitStrategy::Full);
        for (a, b) in auto.eigenvalues().iter().zip(full.eigenvalues()) {
            assert!((a - b).abs() < 1e-8 * (1.0 + b.abs()));
        }
        // Gram needs raw rows.
        assert!(
            Pca::fit_from_moments_with(&acc, FitStrategy::Gram, AxisRequest::Components(5))
                .is_err()
        );
    }

    #[test]
    fn gram_path_rejects_degenerate_input() {
        assert!(Pca::fit_gram(&Mat::zeros(1, 3)).is_err());
        assert!(Pca::fit_gram(&Mat::zeros(5, 0)).is_err());
        // All-constant data: rank zero, no axes, but a valid model whose
        // every projection is the mean.
        let x = Mat::from_fn(10, 4, |_, _| 2.5);
        let pca = Pca::fit_gram(&x).unwrap();
        assert_eq!(pca.n_axes(), 0);
        assert!(pca.spe(x.row(0), 0).unwrap() < 1e-18);
        assert!(pca.project(x.row(0), 1).is_err(), "no axes to project on");
    }

    #[test]
    fn errors_on_bad_arguments() {
        let x = line_data(50, 0.1, 8);
        let pca = Pca::fit(&x).unwrap();
        assert!(pca.project(&[1.0, 2.0], 1).is_err());
        assert!(pca.project(&[1.0, 2.0, 3.0], 4).is_err());
        assert!(Pca::fit(&Mat::zeros(1, 3)).is_err());
        assert!(Pca::fit(&Mat::zeros(5, 0)).is_err());
        assert!(Pca::fit_partial(&x, 0).is_err());
        assert!(Pca::fit_partial(&x, 4).is_err());
        assert!(Pca::fit_partial(&Mat::zeros(5, 0), 1).is_err());
    }
}
