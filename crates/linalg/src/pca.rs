//! Principal component analysis over the rows of a data matrix.
//!
//! The subspace method treats a `t x n` measurement matrix (rows =
//! timepoints, columns = variables) as samples of a correlated process,
//! finds the principal axes of variation, and splits every observation into
//! a *normal* component (projection onto the leading axes) and a *residual*
//! component (everything else). [`Pca`] packages the fitted axes plus the
//! full eigenvalue spectrum, which downstream code needs for detection
//! thresholds.

use crate::matrix::dot;
use crate::{sym_eigen, LinalgError, Mat, SymEigen};

/// A fitted principal component analysis.
///
/// Built by [`Pca::fit`]; columns of the input are centered to zero mean
/// before the covariance is formed (as in Lakhina et al., SIGCOMM 2004).
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    eigen: SymEigen,
}

impl Pca {
    /// Fits a PCA to the rows of `x` (columns are variables).
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError`] from covariance construction (fewer than
    /// two rows) or the eigensolver.
    pub fn fit(x: &Mat) -> Result<Self, LinalgError> {
        if x.cols() == 0 {
            return Err(LinalgError::Empty {
                what: "PCA of a matrix with zero columns",
            });
        }
        let mean = x.col_means();
        let cov = x.covariance()?;
        let eigen = sym_eigen(&cov)?;
        Ok(Pca { mean, eigen })
    }

    /// Number of variables (columns of the fitted data).
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// The per-column means removed before analysis.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// All eigenvalues of the sample covariance, descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigen.values
    }

    /// The orthonormal principal axes (one per column, aligned with
    /// [`eigenvalues`](Self::eigenvalues)).
    pub fn components(&self) -> &Mat {
        &self.eigen.vectors
    }

    /// Fraction of variance explained by the leading `m` components.
    pub fn explained_variance_ratio(&self, m: usize) -> f64 {
        self.eigen.explained(m)
    }

    /// Smallest component count capturing at least `fraction` of variance.
    pub fn dims_for_variance(&self, fraction: f64) -> usize {
        self.eigen.dims_for_variance(fraction)
    }

    /// Centers `x` and projects it onto the leading `m` principal axes,
    /// returning the `m` scores.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] if `x.len() != self.dim()`;
    /// [`LinalgError::Domain`] if `m > self.dim()`.
    pub fn project(&self, x: &[f64], m: usize) -> Result<Vec<f64>, LinalgError> {
        self.check(x, m)?;
        let centered: Vec<f64> = x.iter().zip(&self.mean).map(|(v, mu)| v - mu).collect();
        let mut scores = Vec::with_capacity(m);
        for j in 0..m {
            let col: Vec<f64> = (0..self.dim())
                .map(|i| self.eigen.vectors[(i, j)])
                .collect();
            scores.push(dot(&centered, &col));
        }
        Ok(scores)
    }

    /// Splits a centered observation into its modeled (normal-subspace) part.
    ///
    /// Returns `x_hat` such that `x - mean = x_hat + x_tilde` with `x_hat`
    /// in the span of the leading `m` axes.
    pub fn reconstruct(&self, x: &[f64], m: usize) -> Result<Vec<f64>, LinalgError> {
        self.check(x, m)?;
        let centered: Vec<f64> = x.iter().zip(&self.mean).map(|(v, mu)| v - mu).collect();
        let mut hat = vec![0.0; self.dim()];
        for j in 0..m {
            let col: Vec<f64> = (0..self.dim())
                .map(|i| self.eigen.vectors[(i, j)])
                .collect();
            let score = dot(&centered, &col);
            for (h, &c) in hat.iter_mut().zip(&col) {
                *h += score * c;
            }
        }
        Ok(hat)
    }

    /// The residual `x_tilde = (x - mean) - x_hat` after removing the
    /// normal-subspace component.
    pub fn residual(&self, x: &[f64], m: usize) -> Result<Vec<f64>, LinalgError> {
        let hat = self.reconstruct(x, m)?;
        Ok(x.iter()
            .zip(&self.mean)
            .zip(&hat)
            .map(|((v, mu), h)| (v - mu) - h)
            .collect())
    }

    /// Squared prediction error: `||x_tilde||^2`, the detection statistic of
    /// the subspace method.
    pub fn spe(&self, x: &[f64], m: usize) -> Result<f64, LinalgError> {
        let r = self.residual(x, m)?;
        Ok(dot(&r, &r))
    }

    fn check(&self, x: &[f64], m: usize) -> Result<(), LinalgError> {
        if x.len() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "pca apply",
                lhs: (1, x.len()),
                rhs: (1, self.dim()),
            });
        }
        if m > self.dim() {
            return Err(LinalgError::Domain {
                what: "requested more components than variables",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Data living (noisily) on a line in 3-space.
    fn line_data(n: usize, noise: f64, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        Mat::from_fn(n, 3, |i, j| {
            let t = i as f64 / n as f64;
            let base = match j {
                0 => 2.0 * t,
                1 => -t + 5.0,
                _ => 0.5 * t - 2.0,
            };
            base + noise * (rng.random::<f64>() - 0.5)
        })
    }

    #[test]
    fn one_dimensional_data_has_one_component() {
        let x = line_data(200, 0.0, 1);
        let pca = Pca::fit(&x).unwrap();
        assert!(pca.explained_variance_ratio(1) > 1.0 - 1e-9);
        assert_eq!(pca.dims_for_variance(0.999), 1);
    }

    #[test]
    fn noisy_line_mostly_one_component() {
        let x = line_data(500, 0.05, 2);
        let pca = Pca::fit(&x).unwrap();
        assert!(pca.explained_variance_ratio(1) > 0.98);
    }

    #[test]
    fn residual_plus_reconstruction_is_centered_x() {
        let x = line_data(100, 0.3, 3);
        let pca = Pca::fit(&x).unwrap();
        let probe = x.row(10);
        for m in [0, 1, 2, 3] {
            let hat = pca.reconstruct(probe, m).unwrap();
            let tilde = pca.residual(probe, m).unwrap();
            for j in 0..3 {
                let centered = probe[j] - pca.mean()[j];
                assert!((hat[j] + tilde[j] - centered).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn full_rank_projection_has_zero_residual() {
        let x = line_data(100, 0.3, 4);
        let pca = Pca::fit(&x).unwrap();
        let spe = pca.spe(x.row(5), 3).unwrap();
        assert!(spe < 1e-18, "full-dimensional SPE should vanish, got {spe}");
    }

    #[test]
    fn spe_decreases_with_more_components() {
        let x = line_data(300, 0.4, 5);
        let pca = Pca::fit(&x).unwrap();
        let probe = x.row(7);
        let spe0 = pca.spe(probe, 0).unwrap();
        let spe1 = pca.spe(probe, 1).unwrap();
        let spe2 = pca.spe(probe, 2).unwrap();
        assert!(spe0 >= spe1 - 1e-12);
        assert!(spe1 >= spe2 - 1e-12);
    }

    #[test]
    fn outlier_has_larger_spe_than_inliers() {
        let x = line_data(300, 0.05, 6);
        let pca = Pca::fit(&x).unwrap();
        let inlier_spe = pca.spe(x.row(50), 1).unwrap();
        // A point far off the line.
        let outlier = [0.0, 20.0, 10.0];
        let outlier_spe = pca.spe(&outlier, 1).unwrap();
        assert!(outlier_spe > 100.0 * inlier_spe);
    }

    #[test]
    fn project_scores_match_reconstruction() {
        let x = line_data(100, 0.2, 7);
        let pca = Pca::fit(&x).unwrap();
        let probe = x.row(20);
        let scores = pca.project(probe, 2).unwrap();
        // Reconstruction = sum of score_j * axis_j.
        let mut manual = [0.0; 3];
        for (j, &score) in scores.iter().enumerate() {
            for (i, m) in manual.iter_mut().enumerate() {
                *m += score * pca.components()[(i, j)];
            }
        }
        let hat = pca.reconstruct(probe, 2).unwrap();
        for i in 0..3 {
            assert!((manual[i] - hat[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn errors_on_bad_arguments() {
        let x = line_data(50, 0.1, 8);
        let pca = Pca::fit(&x).unwrap();
        assert!(pca.project(&[1.0, 2.0], 1).is_err());
        assert!(pca.project(&[1.0, 2.0, 3.0], 4).is_err());
        assert!(Pca::fit(&Mat::zeros(1, 3)).is_err());
        assert!(Pca::fit(&Mat::zeros(5, 0)).is_err());
    }
}
