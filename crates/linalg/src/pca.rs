//! Principal component analysis over the rows of a data matrix.
//!
//! The subspace method treats a `t x n` measurement matrix (rows =
//! timepoints, columns = variables) as samples of a correlated process,
//! finds the principal axes of variation, and splits every observation into
//! a *normal* component (projection onto the leading axes) and a *residual*
//! component (everything else). [`Pca`] packages the fitted axes plus the
//! full eigenvalue spectrum, which downstream code needs for detection
//! thresholds.

use crate::matrix::dot;
use crate::{sym_eigen, LinalgError, Mat, MomentAccumulator, SymEigen};

/// A fitted principal component analysis.
///
/// Built by [`Pca::fit`] (covariance eigenproblem), [`Pca::fit_gram`] (the
/// equivalent `rows × rows` Gram eigenproblem, cheaper for wide matrices),
/// or [`Pca::fit_from_moments`] (streaming, from an incremental
/// [`MomentAccumulator`]); columns of the input are centered to zero mean
/// before the covariance is formed (as in Lakhina et al., SIGCOMM 2004).
///
/// The covariance and moments paths carry one principal axis per variable;
/// the Gram path carries only the axes the data can support (at most
/// `rows`), which is all any projection with `m < rank` can use. The axis
/// count is exposed as [`n_axes`](Self::n_axes).
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    eigen: SymEigen,
}

impl Pca {
    /// Fits a PCA to the rows of `x` (columns are variables).
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError`] from covariance construction (fewer than
    /// two rows) or the eigensolver.
    pub fn fit(x: &Mat) -> Result<Self, LinalgError> {
        if x.cols() == 0 {
            return Err(LinalgError::Empty {
                what: "PCA of a matrix with zero columns",
            });
        }
        let mean = x.col_means();
        let cov = x.covariance()?;
        let eigen = sym_eigen(&cov)?;
        Ok(Pca { mean, eigen })
    }

    /// Fits the same model as [`fit`](Self::fit) by solving the `t × t`
    /// Gram eigenproblem instead of the `n × n` covariance one.
    ///
    /// For `X_c` the centered data, `X_c X_cᵀ u = μ u` implies
    /// `cov · (X_cᵀ u) = (μ / (t-1)) · (X_cᵀ u)`: the Gram spectrum is the
    /// covariance spectrum (scaled), and each covariance eigenvector is a
    /// normalized back-projection of a Gram eigenvector. When `t ≪ n` —
    /// e.g. one week of bins against the `4p ≈ 2000` unfolded entropy
    /// columns of a large network — this turns an `O(n³)` eigensolve into
    /// an `O(t³)` one. The Gram product itself runs on the same blocked
    /// scoped-thread kernel as [`Mat::covariance`].
    ///
    /// Numerically the two paths agree to round-off (axes may flip sign);
    /// they are cross-checked in proptests. The returned model carries
    /// only the data's supportable axes (`n_axes() ≤ min(t, n)`) plus the
    /// full zero-padded eigenvalue spectrum, so downstream threshold code
    /// sees the exact covariance-path spectrum.
    ///
    /// The detection pipeline does **not** auto-dispatch here yet: this
    /// refactor is bit-for-bit behavior-preserving, and the Gram path's
    /// round-off-level differences could flip borderline detections.
    /// Wiring `rows < cols` dispatch into `SubspaceModel::fit` is a
    /// recorded ROADMAP follow-up.
    ///
    /// # Errors
    ///
    /// Same conditions as [`fit`](Self::fit).
    pub fn fit_gram(x: &Mat) -> Result<Self, LinalgError> {
        let (t, n) = x.shape();
        if n == 0 {
            return Err(LinalgError::Empty {
                what: "PCA of a matrix with zero columns",
            });
        }
        if t < 2 {
            return Err(LinalgError::Empty {
                what: "covariance needs at least 2 rows",
            });
        }
        let mean = x.col_means();
        let mut centered = x.clone();
        centered.center_cols(&mean);
        let gram = centered.gram();
        let geig = sym_eigen(&gram)?;
        let denom = (t - 1) as f64;

        // Numerically-zero Gram eigenvalues cannot be back-projected (the
        // division by √μ blows up); everything at or below round-off of
        // the leading one is dropped from the axis set but kept — as an
        // exact zero — in the spectrum.
        let lead = geig.values.first().copied().unwrap_or(0.0).max(0.0);
        let tol = lead * 1e-12;
        let kept: Vec<usize> = (0..t).filter(|&j| geig.values[j] > tol).collect();

        let mut values = vec![0.0; n];
        for (slot, &j) in values.iter_mut().zip(&kept) {
            *slot = geig.values[j] / denom;
        }
        let mut vectors = Mat::zeros(n, kept.len());
        for (dst, &j) in kept.iter().enumerate() {
            let u = geig.vectors.col(j);
            // v = X_cᵀ u / √μ, accumulated row-major over the data.
            let inv_norm = 1.0 / geig.values[j].sqrt();
            let mut v = vec![0.0; n];
            for (row, &ui) in centered.row_iter().zip(&u) {
                if ui == 0.0 {
                    continue;
                }
                for (slot, &xij) in v.iter_mut().zip(row) {
                    *slot += ui * xij;
                }
            }
            for (i, &vi) in v.iter().enumerate() {
                vectors[(i, dst)] = vi * inv_norm;
            }
        }
        Ok(Pca {
            mean,
            eigen: SymEigen { values, vectors },
        })
    }

    /// Fits a PCA from streamed moments instead of a materialized matrix.
    ///
    /// This is the streaming half of the fit/score split: an ingest loop
    /// pushes finalized rows into a [`MomentAccumulator`] as they arrive,
    /// and the model is fitted from the running mean and covariance when
    /// the training window closes — the `t × n` matrix never exists.
    ///
    /// # Errors
    ///
    /// [`LinalgError::Empty`] if the accumulator has dimension zero or has
    /// absorbed fewer than two rows; otherwise propagates the eigensolver.
    pub fn fit_from_moments(moments: &MomentAccumulator) -> Result<Self, LinalgError> {
        if moments.dim() == 0 {
            return Err(LinalgError::Empty {
                what: "PCA of a matrix with zero columns",
            });
        }
        let cov = moments.covariance()?;
        let eigen = sym_eigen(&cov)?;
        Ok(Pca {
            mean: moments.mean().to_vec(),
            eigen,
        })
    }

    /// Number of variables (columns of the fitted data).
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Number of principal axes the model carries: `dim()` for the
    /// covariance and moments paths, the data's numerical rank for the
    /// Gram path. Projections require `m <= n_axes()`.
    pub fn n_axes(&self) -> usize {
        self.eigen.vectors.cols()
    }

    /// The per-column means removed before analysis.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// All eigenvalues of the sample covariance, descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigen.values
    }

    /// The orthonormal principal axes (one per column, aligned with
    /// [`eigenvalues`](Self::eigenvalues)).
    pub fn components(&self) -> &Mat {
        &self.eigen.vectors
    }

    /// Fraction of variance explained by the leading `m` components.
    pub fn explained_variance_ratio(&self, m: usize) -> f64 {
        self.eigen.explained(m)
    }

    /// Smallest component count capturing at least `fraction` of variance.
    pub fn dims_for_variance(&self, fraction: f64) -> usize {
        self.eigen.dims_for_variance(fraction)
    }

    /// Centers `x` and projects it onto the leading `m` principal axes,
    /// returning the `m` scores.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] if `x.len() != self.dim()`;
    /// [`LinalgError::Domain`] if `m > self.dim()`.
    pub fn project(&self, x: &[f64], m: usize) -> Result<Vec<f64>, LinalgError> {
        self.check(x, m)?;
        let centered: Vec<f64> = x.iter().zip(&self.mean).map(|(v, mu)| v - mu).collect();
        Ok(self.scores_of_centered(&centered, m))
    }

    /// Scores of an already-centered observation against the leading `m`
    /// axes, accumulated row-major (the axis matrix stores variables as
    /// rows, so all `m` scores advance together over one contiguous scan).
    fn scores_of_centered(&self, centered: &[f64], m: usize) -> Vec<f64> {
        let mut scores = vec![0.0; m];
        for (i, &ci) in centered.iter().enumerate() {
            if ci == 0.0 {
                continue;
            }
            for (s, &vij) in scores.iter_mut().zip(&self.eigen.vectors.row(i)[..m]) {
                *s += ci * vij;
            }
        }
        scores
    }

    /// Splits a centered observation into its modeled (normal-subspace) part.
    ///
    /// Returns `x_hat` such that `x - mean = x_hat + x_tilde` with `x_hat`
    /// in the span of the leading `m` axes. The two passes (project, then
    /// expand) each scan the axis matrix once row-major, so scoring one
    /// observation is `O(n·m)` with contiguous access — the cost that
    /// bounds the streaming score path.
    pub fn reconstruct(&self, x: &[f64], m: usize) -> Result<Vec<f64>, LinalgError> {
        self.check(x, m)?;
        let centered: Vec<f64> = x.iter().zip(&self.mean).map(|(v, mu)| v - mu).collect();
        let scores = self.scores_of_centered(&centered, m);
        let mut hat = vec![0.0; self.dim()];
        for (i, h) in hat.iter_mut().enumerate() {
            *h = dot(&scores, &self.eigen.vectors.row(i)[..m]);
        }
        Ok(hat)
    }

    /// The residual `x_tilde = (x - mean) - x_hat` after removing the
    /// normal-subspace component.
    pub fn residual(&self, x: &[f64], m: usize) -> Result<Vec<f64>, LinalgError> {
        let hat = self.reconstruct(x, m)?;
        Ok(x.iter()
            .zip(&self.mean)
            .zip(&hat)
            .map(|((v, mu), h)| (v - mu) - h)
            .collect())
    }

    /// Squared prediction error: `||x_tilde||^2`, the detection statistic of
    /// the subspace method.
    pub fn spe(&self, x: &[f64], m: usize) -> Result<f64, LinalgError> {
        let r = self.residual(x, m)?;
        Ok(dot(&r, &r))
    }

    fn check(&self, x: &[f64], m: usize) -> Result<(), LinalgError> {
        if x.len() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "pca apply",
                lhs: (1, x.len()),
                rhs: (1, self.dim()),
            });
        }
        if m > self.n_axes() {
            return Err(LinalgError::Domain {
                what: "requested more components than available axes",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Data living (noisily) on a line in 3-space.
    fn line_data(n: usize, noise: f64, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        Mat::from_fn(n, 3, |i, j| {
            let t = i as f64 / n as f64;
            let base = match j {
                0 => 2.0 * t,
                1 => -t + 5.0,
                _ => 0.5 * t - 2.0,
            };
            base + noise * (rng.random::<f64>() - 0.5)
        })
    }

    #[test]
    fn one_dimensional_data_has_one_component() {
        let x = line_data(200, 0.0, 1);
        let pca = Pca::fit(&x).unwrap();
        assert!(pca.explained_variance_ratio(1) > 1.0 - 1e-9);
        assert_eq!(pca.dims_for_variance(0.999), 1);
    }

    #[test]
    fn noisy_line_mostly_one_component() {
        let x = line_data(500, 0.05, 2);
        let pca = Pca::fit(&x).unwrap();
        assert!(pca.explained_variance_ratio(1) > 0.98);
    }

    #[test]
    fn residual_plus_reconstruction_is_centered_x() {
        let x = line_data(100, 0.3, 3);
        let pca = Pca::fit(&x).unwrap();
        let probe = x.row(10);
        for m in [0, 1, 2, 3] {
            let hat = pca.reconstruct(probe, m).unwrap();
            let tilde = pca.residual(probe, m).unwrap();
            for j in 0..3 {
                let centered = probe[j] - pca.mean()[j];
                assert!((hat[j] + tilde[j] - centered).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn full_rank_projection_has_zero_residual() {
        let x = line_data(100, 0.3, 4);
        let pca = Pca::fit(&x).unwrap();
        let spe = pca.spe(x.row(5), 3).unwrap();
        assert!(spe < 1e-18, "full-dimensional SPE should vanish, got {spe}");
    }

    #[test]
    fn spe_decreases_with_more_components() {
        let x = line_data(300, 0.4, 5);
        let pca = Pca::fit(&x).unwrap();
        let probe = x.row(7);
        let spe0 = pca.spe(probe, 0).unwrap();
        let spe1 = pca.spe(probe, 1).unwrap();
        let spe2 = pca.spe(probe, 2).unwrap();
        assert!(spe0 >= spe1 - 1e-12);
        assert!(spe1 >= spe2 - 1e-12);
    }

    #[test]
    fn outlier_has_larger_spe_than_inliers() {
        let x = line_data(300, 0.05, 6);
        let pca = Pca::fit(&x).unwrap();
        let inlier_spe = pca.spe(x.row(50), 1).unwrap();
        // A point far off the line.
        let outlier = [0.0, 20.0, 10.0];
        let outlier_spe = pca.spe(&outlier, 1).unwrap();
        assert!(outlier_spe > 100.0 * inlier_spe);
    }

    #[test]
    fn project_scores_match_reconstruction() {
        let x = line_data(100, 0.2, 7);
        let pca = Pca::fit(&x).unwrap();
        let probe = x.row(20);
        let scores = pca.project(probe, 2).unwrap();
        // Reconstruction = sum of score_j * axis_j.
        let mut manual = [0.0; 3];
        for (j, &score) in scores.iter().enumerate() {
            for (i, m) in manual.iter_mut().enumerate() {
                *m += score * pca.components()[(i, j)];
            }
        }
        let hat = pca.reconstruct(probe, 2).unwrap();
        for i in 0..3 {
            assert!((manual[i] - hat[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn gram_path_matches_covariance_path() {
        // Wide matrix (rows < cols): the Gram path's natural habitat.
        let mut rng = StdRng::seed_from_u64(11);
        let x = Mat::from_fn(40, 90, |i, j| {
            let t = i as f64 / 40.0;
            (j % 5) as f64 * t + 0.1 * (rng.random::<f64>() - 0.5)
        });
        let cov_path = Pca::fit(&x).unwrap();
        let gram_path = Pca::fit_gram(&x).unwrap();
        assert_eq!(gram_path.dim(), 90);
        assert!(gram_path.n_axes() <= 40);
        // Spectra agree (Gram pads the rank-deficient tail with zeros).
        for (a, b) in gram_path
            .eigenvalues()
            .iter()
            .zip(cov_path.eigenvalues())
            .take(gram_path.n_axes())
        {
            assert!((a - b).abs() < 1e-8 * (1.0 + b.abs()), "{a} vs {b}");
        }
        assert_eq!(gram_path.eigenvalues().len(), 90);
        // The models score observations identically.
        for m in [1usize, 3, 8] {
            for probe in [x.row(0), x.row(17), x.row(39)] {
                let a = cov_path.spe(probe, m).unwrap();
                let b = gram_path.spe(probe, m).unwrap();
                assert!((a - b).abs() < 1e-8 * (1.0 + a), "spe {a} vs {b} at m={m}");
            }
        }
    }

    #[test]
    fn moments_path_matches_batch_fit() {
        let x = line_data(150, 0.2, 9);
        let batch = Pca::fit(&x).unwrap();
        let streamed = Pca::fit_from_moments(&crate::MomentAccumulator::from_rows(&x)).unwrap();
        for (a, b) in streamed.mean().iter().zip(batch.mean()) {
            assert!((a - b).abs() < 1e-10);
        }
        for (a, b) in streamed.eigenvalues().iter().zip(batch.eigenvalues()) {
            assert!((a - b).abs() < 1e-8 * (1.0 + b.abs()));
        }
        let probe = x.row(75);
        for m in [0usize, 1, 2] {
            let a = batch.spe(probe, m).unwrap();
            let b = streamed.spe(probe, m).unwrap();
            assert!((a - b).abs() < 1e-8 * (1.0 + a));
        }
    }

    #[test]
    fn gram_path_rejects_degenerate_input() {
        assert!(Pca::fit_gram(&Mat::zeros(1, 3)).is_err());
        assert!(Pca::fit_gram(&Mat::zeros(5, 0)).is_err());
        // All-constant data: rank zero, no axes, but a valid model whose
        // every projection is the mean.
        let x = Mat::from_fn(10, 4, |_, _| 2.5);
        let pca = Pca::fit_gram(&x).unwrap();
        assert_eq!(pca.n_axes(), 0);
        assert!(pca.spe(x.row(0), 0).unwrap() < 1e-18);
        assert!(pca.project(x.row(0), 1).is_err(), "no axes to project on");
    }

    #[test]
    fn errors_on_bad_arguments() {
        let x = line_data(50, 0.1, 8);
        let pca = Pca::fit(&x).unwrap();
        assert!(pca.project(&[1.0, 2.0], 1).is_err());
        assert!(pca.project(&[1.0, 2.0, 3.0], 4).is_err());
        assert!(Pca::fit(&Mat::zeros(1, 3)).is_err());
        assert!(Pca::fit(&Mat::zeros(5, 0)).is_err());
    }
}
