//! SSE2 (128-bit) kernel variants, bitwise-pinned to [`super::scalar`].
//!
//! Two 128-bit registers stand in for the scalar reference's four
//! accumulator lanes. As in the AVX2 module, multiply and add stay
//! separate instructions so rounding matches the scalar references.
#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::arch::x86_64::*;

/// `acc[i] += x * ys[i]`; bitwise identical to the scalar reference.
///
/// # Safety
/// Caller must ensure the CPU supports SSE2 (runtime-detected by the
/// dispatcher) and that `acc.len() == ys.len()`.
#[target_feature(enable = "sse2")]
pub unsafe fn axpy(acc: &mut [f64], x: f64, ys: &[f64]) {
    let n = acc.len();
    let xv = _mm_set1_pd(x);
    let chunks = n / 2;
    for k in 0..chunks {
        // SAFETY: 2*k + 2 <= n; unaligned load/store intrinsics carry no
        // alignment requirement for f64 slices.
        unsafe {
            let a = _mm_loadu_pd(acc.as_ptr().add(2 * k));
            let y = _mm_loadu_pd(ys.as_ptr().add(2 * k));
            let r = _mm_add_pd(a, _mm_mul_pd(xv, y));
            _mm_storeu_pd(acc.as_mut_ptr().add(2 * k), r);
        }
    }
    if n % 2 == 1 {
        acc[n - 1] += x * ys[n - 1];
    }
}

/// Four-lane dot product holding lanes `(0,1)` and `(2,3)` in two
/// registers; bitwise identical to [`super::scalar::dot4`].
///
/// # Safety
/// Caller must ensure the CPU supports SSE2 (runtime-detected by the
/// dispatcher) and that `a.len() == b.len()`.
#[target_feature(enable = "sse2")]
pub unsafe fn dot4(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    let chunks = n / 4;
    let mut acc01 = _mm_setzero_pd();
    let mut acc23 = _mm_setzero_pd();
    for k in 0..chunks {
        // SAFETY: 4*k + 4 <= n; unaligned loads carry no alignment
        // requirement.
        unsafe {
            let a01 = _mm_loadu_pd(a.as_ptr().add(4 * k));
            let b01 = _mm_loadu_pd(b.as_ptr().add(4 * k));
            acc01 = _mm_add_pd(acc01, _mm_mul_pd(a01, b01));
            let a23 = _mm_loadu_pd(a.as_ptr().add(4 * k + 2));
            let b23 = _mm_loadu_pd(b.as_ptr().add(4 * k + 2));
            acc23 = _mm_add_pd(acc23, _mm_mul_pd(a23, b23));
        }
    }
    let mut lo = [0.0f64; 2];
    let mut hi = [0.0f64; 2];
    // SAFETY: each store writes exactly 16 bytes into a 2-element array.
    unsafe {
        _mm_storeu_pd(lo.as_mut_ptr(), acc01);
        _mm_storeu_pd(hi.as_mut_ptr(), acc23);
    }
    let mut tail = 0.0f64;
    for i in 4 * chunks..n {
        tail += a[i] * b[i];
    }
    (lo[0] + lo[1]) + (hi[0] + hi[1]) + tail
}
