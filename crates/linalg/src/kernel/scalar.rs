//! Pinned scalar reference implementations.
//!
//! Every SIMD variant in the sibling modules is pinned — bitwise or by
//! tolerance — against these. Keep them boring: any "optimization" here
//! changes the reference the whole tier is certified against.

/// `acc[i] += x * ys[i]`, one multiply and one add per element, in index
/// order.
#[inline]
pub fn axpy(acc: &mut [f64], x: f64, ys: &[f64]) {
    for (slot, &y) in acc.iter_mut().zip(ys) {
        *slot += x * y;
    }
}

/// Dot product over four independent accumulator lanes.
///
/// This is the exact arithmetic `matrix::dot4` has always used: lane `i`
/// sums the stride-4 subsequence starting at `i`, the tail is summed
/// left-to-right, and the reduction is `(l0 + l1) + (l2 + l3) + tail`.
#[inline]
pub fn dot4(a: &[f64], b: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 4];
    let chunks = a.len() / 4;
    for k in 0..chunks {
        let ac = &a[4 * k..4 * k + 4];
        let bc = &b[4 * k..4 * k + 4];
        for i in 0..4 {
            lanes[i] += ac[i] * bc[i];
        }
    }
    let mut tail = 0.0f64;
    for i in 4 * chunks..a.len() {
        tail += a[i] * b[i];
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}
