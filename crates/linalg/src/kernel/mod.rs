//! Runtime-dispatched SIMD kernel tier.
//!
//! Every accelerated op in this module ships as a family: a **pinned
//! scalar reference** (the `scalar` submodule) plus explicit-SIMD variants
//! (`std::arch` SSE2 and AVX2) selected once per process by runtime CPU
//! feature detection. The public entry points ([`axpy`], [`dot4`])
//! dispatch through [`active_backend`]; the `*_on` variants take an
//! explicit [`Backend`] so tests and benches can pit every available
//! implementation against the scalar reference in one process.
//!
//! # Dispatch contract
//!
//! * The backend is detected **once** (first use) and latched for the
//!   life of the process, so every kernel call in a run sees the same
//!   arithmetic. Setting the `ENTROMINE_FORCE_SCALAR` environment
//!   variable (to anything but `0`/empty) pins the process to the scalar
//!   reference — that is the seam CI uses to check SIMD-vs-scalar
//!   equivalence on any host.
//! * [`axpy`] is **bitwise-pinned**: every output element performs the
//!   same single multiply-add in the same order under every backend
//!   (lanes are independent elements; no FMA contraction, no
//!   reassociation), so kernels built on it — the covariance panels, the
//!   subspace-iteration block multiply — keep their serial-vs-blocked
//!   bit-identity contracts under SIMD.
//! * [`dot4`] is **bitwise-pinned to the 4-lane scalar reference**: the
//!   four independent accumulator lanes of the scalar version map lane-
//!   for-lane onto one AVX2 register (or two SSE2 registers), and the
//!   final reduction order is identical, so the value is the same bit
//!   pattern under every backend.
//! * [`axpy_fused`]/[`dot4_fused`] are the **throughput tier**:
//!   FMA-contracted on hosts with AVX2+FMA, falling back to the bitwise
//!   kernels elsewhere. They are tolerance-pinned only and are reserved
//!   for the blocked eigensolver, whose acceptance contract is itself a
//!   tolerance pin against the QL reference.
//!
//! The hot entropy kernels (flat-histogram probe, the `Σ n·log2 n`
//! finalization) live in `entromine-entropy::kernel` and share this
//! module's backend selection, so one process always runs one backend
//! across the whole pipeline.

// The only unsafe in this module is the pair of feature-gated SIMD call
// sites in the dispatchers, each justified by runtime detection.
#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

mod scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "x86_64")]
mod sse2;

use std::sync::OnceLock;

/// Which implementation family a kernel call runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The pinned scalar reference (always available).
    Scalar,
    /// 128-bit `std::arch` SSE2 (baseline on x86-64).
    Sse2,
    /// 256-bit `std::arch` AVX2.
    Avx2,
}

impl Backend {
    /// Lower-case name for logs and the bench JSON backend table.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
        }
    }
}

/// CPU features observed at startup, recorded alongside the bench rows so
/// perf numbers are interpretable across hosts.
#[derive(Debug, Clone, Copy)]
pub struct CpuFeatures {
    /// SSE2 (baseline on x86-64).
    pub sse2: bool,
    /// SSE4.2.
    pub sse4_2: bool,
    /// AVX.
    pub avx: bool,
    /// AVX2.
    pub avx2: bool,
    /// AVX-512 Foundation (detected and reported; no kernel uses it yet).
    pub avx512f: bool,
    /// Fused multiply-add. The bitwise-pinned kernels never contract, but
    /// the throughput tier ([`axpy_fused`], [`dot4_fused`]) uses FMA when
    /// this is set.
    pub fma: bool,
}

/// Detects CPU features (all `false` off x86-64).
pub fn cpu_features() -> CpuFeatures {
    #[cfg(target_arch = "x86_64")]
    {
        CpuFeatures {
            sse2: std::arch::is_x86_feature_detected!("sse2"),
            sse4_2: std::arch::is_x86_feature_detected!("sse4.2"),
            avx: std::arch::is_x86_feature_detected!("avx"),
            avx2: std::arch::is_x86_feature_detected!("avx2"),
            avx512f: std::arch::is_x86_feature_detected!("avx512f"),
            fma: std::arch::is_x86_feature_detected!("fma"),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        CpuFeatures {
            sse2: false,
            sse4_2: false,
            avx: false,
            avx2: false,
            avx512f: false,
            fma: false,
        }
    }
}

/// `true` when `ENTROMINE_FORCE_SCALAR` pins this process to the scalar
/// reference implementations.
pub fn forced_scalar() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("ENTROMINE_FORCE_SCALAR")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// The backend every auto-dispatched kernel call uses, detected on first
/// use and latched for the life of the process.
pub fn active_backend() -> Backend {
    static ACTIVE: OnceLock<Backend> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        if forced_scalar() {
            return Backend::Scalar;
        }
        let f = cpu_features();
        if f.avx2 {
            Backend::Avx2
        } else if f.sse2 {
            Backend::Sse2
        } else {
            Backend::Scalar
        }
    })
}

/// Every backend this host can run, scalar first. Tests iterate this to
/// pin each SIMD implementation against the scalar reference regardless
/// of which backend the process latched.
pub fn available_backends() -> Vec<Backend> {
    let mut v = vec![Backend::Scalar];
    let f = cpu_features();
    if f.sse2 {
        v.push(Backend::Sse2);
    }
    if f.avx2 {
        v.push(Backend::Avx2);
    }
    v
}

/// `acc[i] += x * ys[i]` over equal-length slices, dispatched.
///
/// Lanes are independent output elements performing one multiply and one
/// add each (never FMA-contracted), so the result is **bitwise identical**
/// under every backend — this is the primitive behind the covariance
/// panel accumulation and the subspace-iteration block multiply, whose
/// serial-vs-blocked bit-identity pins must keep holding under SIMD.
#[inline]
pub fn axpy(acc: &mut [f64], x: f64, ys: &[f64]) {
    axpy_on(active_backend(), acc, x, ys);
}

/// [`axpy`] on an explicit backend (test/bench seam).
///
/// Falls back to the scalar reference if the requested SIMD backend is
/// not compiled for this architecture.
#[inline]
pub fn axpy_on(backend: Backend, acc: &mut [f64], x: f64, ys: &[f64]) {
    debug_assert_eq!(acc.len(), ys.len());
    match backend {
        Backend::Scalar => scalar::axpy(acc, x, ys),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Backend::Sse2`/`Avx2` are only reachable through
        // `active_backend`/`available_backends`, which gate them on
        // runtime feature detection.
        Backend::Sse2 => unsafe { sse2::axpy(acc, x, ys) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::axpy(acc, x, ys) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::axpy(acc, x, ys),
    }
}

/// Dot product accumulated into four independent lanes, dispatched.
///
/// The lane structure is part of the contract: lane `i` sums
/// `a[4k+i]·b[4k+i]` in index order, the tail runs strictly
/// left-to-right, and the final reduction is
/// `(l0 + l1) + (l2 + l3) + tail`. Every backend implements exactly this
/// sequence (SSE2 holds the lanes in two 128-bit registers, AVX2 in one
/// 256-bit register), so the value is **bitwise identical** across
/// backends — which keeps `sym_trace_cubed` and the Gram panels
/// deterministic per input no matter where they run.
#[inline]
pub fn dot4(a: &[f64], b: &[f64]) -> f64 {
    dot4_on(active_backend(), a, b)
}

/// [`dot4`] on an explicit backend (test/bench seam).
#[inline]
pub fn dot4_on(backend: Backend, a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    match backend {
        Backend::Scalar => scalar::dot4(a, b),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `axpy_on` — SIMD backends are feature-gated by
        // the detection in `active_backend`/`available_backends`.
        Backend::Sse2 => unsafe { sse2::dot4(a, b) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::dot4(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::dot4(a, b),
    }
}

/// `true` when the FMA-contracted throughput kernels are active: AVX2+FMA
/// detected and the process is not pinned to scalar. Latched once, like
/// [`active_backend`].
pub fn fused_active() -> bool {
    static FUSED: OnceLock<bool> = OnceLock::new();
    *FUSED.get_or_init(|| {
        if forced_scalar() {
            return false;
        }
        let f = cpu_features();
        f.avx2 && f.fma
    })
}

/// Throughput variant of [`axpy`]: FMA-contracted where the host supports
/// it, otherwise exactly [`axpy`]. **Tolerance-pinned only** — contraction
/// changes the last ulp, so this must never back a bitwise contract. Used
/// by the blocked eigensolver, whose results are pinned against the QL
/// reference by tolerance.
#[inline]
pub fn axpy_fused(acc: &mut [f64], x: f64, ys: &[f64]) {
    #[cfg(target_arch = "x86_64")]
    if fused_active() {
        debug_assert_eq!(acc.len(), ys.len());
        // SAFETY: `fused_active` gates on runtime AVX2+FMA detection.
        unsafe { avx2::axpy_fused(acc, x, ys) };
        return;
    }
    axpy(acc, x, ys);
}

/// Throughput variant of [`dot4`]: eight FMA-contracted lanes where the
/// host supports it, otherwise exactly [`dot4`]. **Tolerance-pinned
/// only** — both the lane count and the contraction change the rounding.
#[inline]
pub fn dot4_fused(a: &[f64], b: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if fused_active() {
        debug_assert_eq!(a.len(), b.len());
        // SAFETY: `fused_active` gates on runtime AVX2+FMA detection.
        return unsafe { avx2::dot4_fused(a, b) };
    }
    dot4(a, b)
}

/// Four dot products sharing one `b` stream (`out[i] = Σ a[i][j]·b[j]`),
/// FMA-contracted where available; otherwise four [`dot4_fused`] calls.
/// **Tolerance-pinned only.** All five slices must have equal length.
#[inline]
pub fn dot4_fused_x4(a: [&[f64]; 4], b: &[f64]) -> [f64; 4] {
    #[cfg(target_arch = "x86_64")]
    if fused_active() {
        debug_assert!(a.iter().all(|r| r.len() == b.len()));
        // SAFETY: `fused_active` gates on runtime AVX2+FMA detection.
        return unsafe { avx2::dot4_fused_x4(a, b) };
    }
    [
        dot4_fused(a[0], b),
        dot4_fused(a[1], b),
        dot4_fused(a[2], b),
        dot4_fused(a[3], b),
    ]
}

/// Four axpys sharing one `ys` stream (`acc[i][j] += xs[i]·ys[j]`),
/// FMA-contracted where available; otherwise four [`axpy_fused`] calls.
/// **Tolerance-pinned only.** All five slices must have equal length.
#[inline]
pub fn axpy_fused_x4(acc: [&mut [f64]; 4], xs: [f64; 4], ys: &[f64]) {
    #[cfg(target_arch = "x86_64")]
    if fused_active() {
        debug_assert!(acc.iter().all(|r| r.len() == ys.len()));
        // SAFETY: `fused_active` gates on runtime AVX2+FMA detection.
        unsafe { avx2::axpy_fused_x4(acc, xs, ys) };
        return;
    }
    for (row, &x) in acc.into_iter().zip(&xs) {
        axpy_fused(row, x, ys);
    }
}

/// Eight dot products sharing one `b` stream — [`dot4_fused_x4`] doubled;
/// otherwise eight [`dot4_fused`] calls. **Tolerance-pinned only.** All
/// nine slices must have equal length.
#[inline]
pub fn dot4_fused_x8(a: [&[f64]; 8], b: &[f64]) -> [f64; 8] {
    #[cfg(target_arch = "x86_64")]
    if fused_active() {
        debug_assert!(a.iter().all(|r| r.len() == b.len()));
        // SAFETY: `fused_active` gates on runtime AVX2+FMA detection.
        return unsafe { avx2::dot4_fused_x8(a, b) };
    }
    let mut out = [0.0f64; 8];
    for (slot, row) in out.iter_mut().zip(a) {
        *slot = dot4_fused(row, b);
    }
    out
}

/// Eight axpys sharing one `ys` stream — [`axpy_fused_x4`] doubled;
/// otherwise eight [`axpy_fused`] calls. **Tolerance-pinned only.** All
/// nine slices must have equal length.
#[inline]
pub fn axpy_fused_x8(acc: [&mut [f64]; 8], xs: [f64; 8], ys: &[f64]) {
    #[cfg(target_arch = "x86_64")]
    if fused_active() {
        debug_assert!(acc.iter().all(|r| r.len() == ys.len()));
        // SAFETY: `fused_active` gates on runtime AVX2+FMA detection.
        unsafe { avx2::axpy_fused_x8(acc, xs, ys) };
        return;
    }
    for (row, &x) in acc.into_iter().zip(&xs) {
        axpy_fused(row, x, ys);
    }
}

/// Multi-source accumulation into four rows:
/// `rows[i][j] += Σ_p coeffs[i][p]·srcs[p][j]`, one pass per row where
/// the host supports AVX2+FMA (see the rationale on the AVX2 kernel);
/// otherwise per-source [`axpy_fused`] calls. **Tolerance-pinned only.**
/// Every row and source must share one length, and each `coeffs[i]` must
/// have `srcs.len()` entries.
#[inline]
pub fn axpy_multi_fused_x4(rows: [&mut [f64]; 4], coeffs: [&[f64]; 4], srcs: &[&[f64]]) {
    for c in &coeffs {
        assert_eq!(c.len(), srcs.len(), "one coefficient per source");
    }
    #[cfg(target_arch = "x86_64")]
    if fused_active() {
        debug_assert!(srcs.iter().all(|s| s.len() == rows[0].len()));
        // SAFETY: `fused_active` gates on runtime AVX2+FMA detection, and
        // the coefficient lengths are asserted above.
        unsafe { avx2::axpy_multi_fused_x4(rows, coeffs, srcs) };
        return;
    }
    for (row, cs) in rows.into_iter().zip(coeffs) {
        for (&c, src) in cs.iter().zip(srcs) {
            axpy_fused(row, c, src);
        }
    }
}

/// Single-row multi-source accumulation
/// (`row[j] += Σ_p coeffs[p]·srcs[p][j]`) in one pass over `row`,
/// FMA-contracted where available; otherwise one [`axpy_fused`] per
/// source. **Tolerance-pinned only.** Sources must be at least as long
/// as `row`, with one coefficient per source.
#[inline]
pub fn axpy_multi_fused(row: &mut [f64], coeffs: &[f64], srcs: &[&[f64]]) {
    assert_eq!(coeffs.len(), srcs.len(), "one coefficient per source");
    assert!(
        srcs.iter().all(|s| s.len() >= row.len()),
        "every source must cover the row"
    );
    #[cfg(target_arch = "x86_64")]
    if fused_active() {
        // SAFETY: `fused_active` gates on runtime AVX2+FMA detection, and
        // the length contracts are asserted above.
        unsafe { avx2::axpy_multi_fused(row, coeffs, srcs) };
        return;
    }
    let n = row.len();
    for (&c, src) in coeffs.iter().zip(srcs) {
        axpy_fused(row, c, &src[..n]);
    }
}

/// One pass of the blocked tridiagonalization's symmetric matvec:
/// returns `Σ row[j]·v[j]` and performs `w[j] += vr·row[j]` in the same
/// sweep over `row`, so the trailing square streams through memory once
/// instead of twice. FMA-contracted where available, plain scalar
/// otherwise. **Tolerance-pinned only.** The three slices must have equal
/// length.
#[inline]
pub fn symv_fused(row: &[f64], v: &[f64], w: &mut [f64], vr: f64) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if fused_active() {
        debug_assert_eq!(row.len(), v.len());
        debug_assert_eq!(row.len(), w.len());
        // SAFETY: `fused_active` gates on runtime AVX2+FMA detection.
        return unsafe { avx2::symv_fused(row, v, w, vr) };
    }
    let mut acc = 0.0f64;
    for j in 0..row.len() {
        acc += row[j] * v[j];
        w[j] += vr * row[j];
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names() {
        assert_eq!(Backend::Scalar.name(), "scalar");
        assert_eq!(Backend::Sse2.name(), "sse2");
        assert_eq!(Backend::Avx2.name(), "avx2");
    }

    #[test]
    fn available_backends_start_with_scalar() {
        let all = available_backends();
        assert_eq!(all[0], Backend::Scalar);
        assert!(all.contains(&active_backend()) || forced_scalar());
    }

    #[test]
    fn axpy_bitwise_identical_across_backends() {
        let ys: Vec<f64> = (0..67).map(|i| (i as f64).sin() * 1e3).collect();
        for backend in available_backends() {
            let mut acc: Vec<f64> = (0..67).map(|i| (i as f64).cos() / 7.0).collect();
            let mut reference = acc.clone();
            axpy_on(backend, &mut acc, std::f64::consts::PI, &ys);
            scalar::axpy(&mut reference, std::f64::consts::PI, &ys);
            assert_eq!(acc, reference, "backend {backend:?}");
        }
    }

    #[test]
    fn dot4_bitwise_identical_across_backends() {
        for len in [0usize, 1, 3, 4, 5, 8, 17, 64, 129] {
            let a: Vec<f64> = (0..len).map(|i| ((i * 37 + 1) as f64).sqrt()).collect();
            let b: Vec<f64> = (0..len).map(|i| ((i * 11 + 3) as f64).ln()).collect();
            let reference = scalar::dot4(&a, &b);
            for backend in available_backends() {
                let got = dot4_on(backend, &a, &b);
                assert_eq!(
                    got.to_bits(),
                    reference.to_bits(),
                    "len {len} backend {backend:?}"
                );
            }
        }
    }
}
