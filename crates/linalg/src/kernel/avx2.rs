//! AVX2 (256-bit) kernel variants.
//!
//! Two tiers live here. [`axpy`]/[`dot4`] are bitwise-pinned to
//! [`super::scalar`]: the scalar references round the multiply and the
//! add separately, so those kernels never contract — every multiply-add
//! is an explicit `_mm256_mul_pd` + `_mm256_add_pd`. The `_fused`
//! variants are the throughput tier: FMA-contracted, tolerance-pinned
//! only, reserved for callers (the blocked eigensolver) whose own
//! contracts are tolerance-based.
#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::arch::x86_64::*;

/// `acc[i] += x * ys[i]`; lanes are independent elements so the result is
/// bitwise identical to the scalar reference.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 (runtime-detected by the
/// dispatcher) and that `acc.len() == ys.len()`.
#[target_feature(enable = "avx2")]
pub unsafe fn axpy(acc: &mut [f64], x: f64, ys: &[f64]) {
    let n = acc.len();
    let xv = _mm256_set1_pd(x);
    let chunks = n / 4;
    for k in 0..chunks {
        // SAFETY: 4*k + 4 <= n, and f64 slices have no alignment
        // requirement for the unaligned load/store intrinsics.
        unsafe {
            let a = _mm256_loadu_pd(acc.as_ptr().add(4 * k));
            let y = _mm256_loadu_pd(ys.as_ptr().add(4 * k));
            let r = _mm256_add_pd(a, _mm256_mul_pd(xv, y));
            _mm256_storeu_pd(acc.as_mut_ptr().add(4 * k), r);
        }
    }
    for i in 4 * chunks..n {
        acc[i] += x * ys[i];
    }
}

/// [`axpy`] with FMA contraction — the throughput variant for
/// tolerance-pinned callers (the blocked eigensolver). One rounding per
/// element instead of two, so results differ from the scalar reference in
/// the last ulp; never use this behind a bitwise contract.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 *and* FMA (runtime-detected
/// by the dispatcher) and that `acc.len() == ys.len()`.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn axpy_fused(acc: &mut [f64], x: f64, ys: &[f64]) {
    let n = acc.len();
    let xv = _mm256_set1_pd(x);
    let chunks = n / 4;
    for k in 0..chunks {
        // SAFETY: 4*k + 4 <= n; unaligned load/store intrinsics carry no
        // alignment requirement.
        unsafe {
            let a = _mm256_loadu_pd(acc.as_ptr().add(4 * k));
            let y = _mm256_loadu_pd(ys.as_ptr().add(4 * k));
            _mm256_storeu_pd(acc.as_mut_ptr().add(4 * k), _mm256_fmadd_pd(xv, y, a));
        }
    }
    for i in 4 * chunks..n {
        acc[i] = x.mul_add(ys[i], acc[i]);
    }
}

/// [`dot4`] with FMA contraction and *eight* accumulator lanes — the
/// throughput variant for tolerance-pinned callers. Lane count and
/// contraction both change the rounding, so this is never bitwise against
/// the scalar reference; it is pinned by tolerance instead.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 *and* FMA (runtime-detected
/// by the dispatcher) and that `a.len() == b.len()`.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn dot4_fused(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    let chunks = n / 8;
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    for k in 0..chunks {
        // SAFETY: 8*k + 8 <= n; unaligned loads carry no alignment
        // requirement.
        unsafe {
            let a0 = _mm256_loadu_pd(a.as_ptr().add(8 * k));
            let b0 = _mm256_loadu_pd(b.as_ptr().add(8 * k));
            acc0 = _mm256_fmadd_pd(a0, b0, acc0);
            let a1 = _mm256_loadu_pd(a.as_ptr().add(8 * k + 4));
            let b1 = _mm256_loadu_pd(b.as_ptr().add(8 * k + 4));
            acc1 = _mm256_fmadd_pd(a1, b1, acc1);
        }
    }
    let sum = _mm256_add_pd(acc0, acc1);
    let mut lanes = [0.0f64; 4];
    // SAFETY: `lanes` is 4 f64s; the unaligned store writes exactly 32 bytes.
    unsafe { _mm256_storeu_pd(lanes.as_mut_ptr(), sum) };
    let mut tail = 0.0f64;
    for i in 8 * chunks..n {
        tail = a[i].mul_add(b[i], tail);
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

/// Four simultaneous FMA dot products sharing one `b` stream: row `i` of
/// the result is `Σ a[i][j]·b[j]`. Streaming `b` once for four rows is
/// the point — it quarters both the call overhead and the `b` traffic of
/// four separate [`dot4_fused`] calls. Tolerance-pinned only.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 *and* FMA and that all five
/// slices have equal length.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn dot4_fused_x4(a: [&[f64]; 4], b: &[f64]) -> [f64; 4] {
    let n = b.len();
    let chunks = n / 4;
    let mut acc = [_mm256_setzero_pd(); 4];
    for k in 0..chunks {
        // SAFETY: 4*k + 4 <= n and every slice has length n.
        unsafe {
            let bv = _mm256_loadu_pd(b.as_ptr().add(4 * k));
            for i in 0..4 {
                let av = _mm256_loadu_pd(a[i].as_ptr().add(4 * k));
                acc[i] = _mm256_fmadd_pd(av, bv, acc[i]);
            }
        }
    }
    let mut out = [0.0f64; 4];
    for i in 0..4 {
        let mut lanes = [0.0f64; 4];
        // SAFETY: `lanes` is 4 f64s; the store writes exactly 32 bytes.
        unsafe { _mm256_storeu_pd(lanes.as_mut_ptr(), acc[i]) };
        let mut tail = 0.0f64;
        for j in 4 * chunks..n {
            tail = a[i][j].mul_add(b[j], tail);
        }
        out[i] = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail;
    }
    out
}

/// Four simultaneous FMA axpys sharing one `ys` stream:
/// `acc[i][j] += xs[i]·ys[j]`. Same rationale as [`dot4_fused_x4`]:
/// one `ys` stream feeds four output rows. Tolerance-pinned only.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 *and* FMA and that all five
/// slices have equal length.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn axpy_fused_x4(acc: [&mut [f64]; 4], xs: [f64; 4], ys: &[f64]) {
    let n = ys.len();
    let chunks = n / 4;
    let xv = [
        _mm256_set1_pd(xs[0]),
        _mm256_set1_pd(xs[1]),
        _mm256_set1_pd(xs[2]),
        _mm256_set1_pd(xs[3]),
    ];
    for k in 0..chunks {
        // SAFETY: 4*k + 4 <= n and every slice has length n; the four acc
        // slices are disjoint by the borrow rules of the signature.
        unsafe {
            let yv = _mm256_loadu_pd(ys.as_ptr().add(4 * k));
            for i in 0..4 {
                let p = acc[i].as_mut_ptr().add(4 * k);
                _mm256_storeu_pd(p, _mm256_fmadd_pd(xv[i], yv, _mm256_loadu_pd(p)));
            }
        }
    }
    for (row, &x) in acc.into_iter().zip(&xs) {
        for j in 4 * chunks..n {
            row[j] = x.mul_add(ys[j], row[j]);
        }
    }
}

/// Eight simultaneous FMA dot products sharing one `b` stream — the
/// widest profitable tile: 8 accumulators + the shared `b` register still
/// fit the 16 `ymm` registers. Tolerance-pinned only.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 *and* FMA and that all nine
/// slices have equal length.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn dot4_fused_x8(a: [&[f64]; 8], b: &[f64]) -> [f64; 8] {
    let n = b.len();
    let chunks = n / 4;
    let mut acc = [_mm256_setzero_pd(); 8];
    for k in 0..chunks {
        // SAFETY: 4*k + 4 <= n and every slice has length n.
        unsafe {
            let bv = _mm256_loadu_pd(b.as_ptr().add(4 * k));
            for i in 0..8 {
                let av = _mm256_loadu_pd(a[i].as_ptr().add(4 * k));
                acc[i] = _mm256_fmadd_pd(av, bv, acc[i]);
            }
        }
    }
    let mut out = [0.0f64; 8];
    for i in 0..8 {
        let mut lanes = [0.0f64; 4];
        // SAFETY: `lanes` is 4 f64s; the store writes exactly 32 bytes.
        unsafe { _mm256_storeu_pd(lanes.as_mut_ptr(), acc[i]) };
        let mut tail = 0.0f64;
        for j in 4 * chunks..n {
            tail = a[i][j].mul_add(b[j], tail);
        }
        out[i] = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail;
    }
    out
}

/// Eight simultaneous FMA axpys sharing one `ys` stream. Tolerance-pinned
/// only.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 *and* FMA and that all nine
/// slices have equal length.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn axpy_fused_x8(acc: [&mut [f64]; 8], xs: [f64; 8], ys: &[f64]) {
    let n = ys.len();
    let chunks = n / 4;
    let mut xv = [_mm256_setzero_pd(); 8];
    for i in 0..8 {
        xv[i] = _mm256_set1_pd(xs[i]);
    }
    for k in 0..chunks {
        // SAFETY: 4*k + 4 <= n and every slice has length n; the eight
        // acc slices are disjoint by the borrow rules of the signature.
        unsafe {
            let yv = _mm256_loadu_pd(ys.as_ptr().add(4 * k));
            for i in 0..8 {
                let p = acc[i].as_mut_ptr().add(4 * k);
                _mm256_storeu_pd(p, _mm256_fmadd_pd(xv[i], yv, _mm256_loadu_pd(p)));
            }
        }
    }
    for (row, &x) in acc.into_iter().zip(&xs) {
        for j in 4 * chunks..n {
            row[j] = x.mul_add(ys[j], row[j]);
        }
    }
}

/// Multi-source accumulation into four rows:
/// `rows[i][j] += Σ_p coeffs[i][p]·srcs[p][j]` in **one pass** over each
/// row — the per-source axpy form re-loads and re-stores the row once per
/// source, which makes rank-`k` updates store-port-bound. Eight
/// accumulator registers (two per row) hold 8 row elements across the
/// whole source scan, so each row element is loaded and stored exactly
/// once per call. Tolerance-pinned only.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 *and* FMA, that every row,
/// every source, and every `coeffs[i]` have consistent lengths
/// (`rows[i].len() == srcs[p].len()`, `coeffs[i].len() == srcs.len()`).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn axpy_multi_fused_x4(rows: [&mut [f64]; 4], coeffs: [&[f64]; 4], srcs: &[&[f64]]) {
    let n = rows[0].len();
    let chunks = n / 8;
    for k in 0..chunks {
        let o = 8 * k;
        // SAFETY: o + 8 <= n and all slices have length n; the four rows
        // are disjoint by the borrow rules of the signature.
        unsafe {
            let mut acc = [_mm256_setzero_pd(); 8];
            for i in 0..4 {
                let p = rows[i].as_ptr().add(o);
                acc[2 * i] = _mm256_loadu_pd(p);
                acc[2 * i + 1] = _mm256_loadu_pd(p.add(4));
            }
            for (p, src) in srcs.iter().enumerate() {
                let s0 = _mm256_loadu_pd(src.as_ptr().add(o));
                let s1 = _mm256_loadu_pd(src.as_ptr().add(o + 4));
                for i in 0..4 {
                    let c = _mm256_set1_pd(*coeffs[i].get_unchecked(p));
                    acc[2 * i] = _mm256_fmadd_pd(c, s0, acc[2 * i]);
                    acc[2 * i + 1] = _mm256_fmadd_pd(c, s1, acc[2 * i + 1]);
                }
            }
            for i in 0..4 {
                let p = rows[i].as_mut_ptr().add(o);
                _mm256_storeu_pd(p, acc[2 * i]);
                _mm256_storeu_pd(p.add(4), acc[2 * i + 1]);
            }
        }
    }
    for j in 8 * chunks..n {
        for i in 0..4 {
            let mut v = rows[i][j];
            for (p, src) in srcs.iter().enumerate() {
                v = coeffs[i][p].mul_add(src[j], v);
            }
            rows[i][j] = v;
        }
    }
}

/// Single-row variant of [`axpy_multi_fused_x4`]:
/// `row[j] += Σ_p coeffs[p]·srcs[p][j]` with each 8-element block of
/// `row` held in two registers across the whole source scan, so the row
/// is loaded and stored once per call instead of once per source.
/// Tolerance-pinned only.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 *and* FMA, that every source
/// is at least as long as `row`, and that `coeffs.len() == srcs.len()`.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn axpy_multi_fused(row: &mut [f64], coeffs: &[f64], srcs: &[&[f64]]) {
    let n = row.len();
    let chunks = n / 8;
    for k in 0..chunks {
        let o = 8 * k;
        // SAFETY: o + 8 <= n, every source has length >= n, and
        // `coeffs[p]` exists for every source index by the caller's
        // length contract.
        unsafe {
            let rp = row.as_mut_ptr().add(o);
            let mut a0 = _mm256_loadu_pd(rp);
            let mut a1 = _mm256_loadu_pd(rp.add(4));
            for (p, src) in srcs.iter().enumerate() {
                let c = _mm256_set1_pd(*coeffs.get_unchecked(p));
                a0 = _mm256_fmadd_pd(c, _mm256_loadu_pd(src.as_ptr().add(o)), a0);
                a1 = _mm256_fmadd_pd(c, _mm256_loadu_pd(src.as_ptr().add(o + 4)), a1);
            }
            _mm256_storeu_pd(rp, a0);
            _mm256_storeu_pd(rp.add(4), a1);
        }
    }
    for j in 8 * chunks..n {
        let mut v = row[j];
        for (p, src) in srcs.iter().enumerate() {
            v = coeffs[p].mul_add(src[j], v);
        }
        row[j] = v;
    }
}

/// One fused pass of the symmetric matvec: returns `Σ row[j]·v[j]` and
/// performs `w[j] += vr·row[j]` while `row` is in registers — the
/// unfused dot-then-axpy form streams `row` (the trailing square of the
/// tridiagonalization, far bigger than cache) twice. Tolerance-pinned
/// only.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 *and* FMA and that `row`,
/// `v`, and `w` have equal length.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn symv_fused(row: &[f64], v: &[f64], w: &mut [f64], vr: f64) -> f64 {
    let n = row.len();
    let chunks = n / 8;
    let vrv = _mm256_set1_pd(vr);
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    for k in 0..chunks {
        // SAFETY: 8*k + 8 <= n and the three slices have equal length.
        unsafe {
            let r0 = _mm256_loadu_pd(row.as_ptr().add(8 * k));
            let v0 = _mm256_loadu_pd(v.as_ptr().add(8 * k));
            let w0 = _mm256_loadu_pd(w.as_ptr().add(8 * k));
            acc0 = _mm256_fmadd_pd(r0, v0, acc0);
            _mm256_storeu_pd(w.as_mut_ptr().add(8 * k), _mm256_fmadd_pd(vrv, r0, w0));
            let r1 = _mm256_loadu_pd(row.as_ptr().add(8 * k + 4));
            let v1 = _mm256_loadu_pd(v.as_ptr().add(8 * k + 4));
            let w1 = _mm256_loadu_pd(w.as_ptr().add(8 * k + 4));
            acc1 = _mm256_fmadd_pd(r1, v1, acc1);
            _mm256_storeu_pd(w.as_mut_ptr().add(8 * k + 4), _mm256_fmadd_pd(vrv, r1, w1));
        }
    }
    let sum = _mm256_add_pd(acc0, acc1);
    let mut lanes = [0.0f64; 4];
    // SAFETY: `lanes` is 4 f64s; the store writes exactly 32 bytes.
    unsafe { _mm256_storeu_pd(lanes.as_mut_ptr(), sum) };
    let mut tail = 0.0f64;
    for j in 8 * chunks..n {
        tail = row[j].mul_add(v[j], tail);
        w[j] = vr.mul_add(row[j], w[j]);
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

/// Four-lane dot product; the register lanes reproduce the scalar
/// reference's four accumulators exactly, and the reduction order
/// `(l0 + l1) + (l2 + l3) + tail` is replayed scalar, so the value is
/// bitwise identical to [`super::scalar::dot4`].
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 (runtime-detected by the
/// dispatcher) and that `a.len() == b.len()`.
#[target_feature(enable = "avx2")]
pub unsafe fn dot4(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    let chunks = n / 4;
    let mut acc = _mm256_setzero_pd();
    for k in 0..chunks {
        // SAFETY: 4*k + 4 <= n; unaligned loads carry no alignment
        // requirement.
        unsafe {
            let av = _mm256_loadu_pd(a.as_ptr().add(4 * k));
            let bv = _mm256_loadu_pd(b.as_ptr().add(4 * k));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(av, bv));
        }
    }
    let mut lanes = [0.0f64; 4];
    // SAFETY: `lanes` is 4 f64s; the unaligned store writes exactly 32 bytes.
    unsafe { _mm256_storeu_pd(lanes.as_mut_ptr(), acc) };
    let mut tail = 0.0f64;
    for i in 4 * chunks..n {
        tail += a[i] * b[i];
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}
