//! Dense linear algebra for the `entromine` workspace.
//!
//! This crate provides exactly the numerical machinery the subspace method of
//! Lakhina, Crovella & Diot (SIGCOMM 2004/2005) needs, implemented from
//! scratch with no external numerics dependencies:
//!
//! * [`Mat`] — a dense, row-major, `f64` matrix with the usual algebraic
//!   operations (multiply, transpose, column statistics, norms).
//! * [`sym_eigen`] — a full symmetric eigendecomposition (Householder
//!   tridiagonalization followed by implicit-shift QL iteration), the
//!   reference oracle behind principal component analysis.
//! * [`top_k_eigen`] / [`top_k_eigen_detailed`] — blocked subspace
//!   iteration with Ritz locking, residual-norm convergence, and
//!   oversampling for the leading `k` eigenpairs: the production engine of
//!   partial-spectrum fits. Its block multiply ([`block_matvec`]) fans
//!   output rows over the scoped-thread worker pool, bitwise-pinned
//!   against [`block_matvec_serial`].
//! * [`par`] — the shared worker-sizing policy (`workers_for`, ≤16
//!   threads) and range partitioners behind every scoped-thread kernel,
//!   public so other layers (the sharded ingest plane) share one fan-out
//!   discipline.
//! * [`Spectrum`] — a partial eigenspectrum plus *exact* full-spectrum
//!   power sums via trace identities (`tr C`, `‖C‖²_F`, `tr C³` — the
//!   latter by a blocked scoped-thread kernel, [`sym_trace_cubed`]), which
//!   is everything the Jackson–Mudholkar threshold needs from the
//!   residual eigenvalues.
//! * [`Pca`] — principal component analysis over the rows of a data matrix
//!   (columns are variables), as used to split traffic into normal and
//!   residual subspaces. Four fit engines behind the [`FitStrategy`]
//!   dispatcher ([`Pca::fit_with`]): the dense covariance eigenproblem
//!   ([`Pca::fit`]), the `rows × rows` Gram eigenproblem for wide matrices
//!   ([`Pca::fit_gram`]), the partial-spectrum engine for thin requests
//!   against wide covariances ([`Pca::fit_partial`]), and a streaming fit
//!   from incremental moments ([`Pca::fit_from_moments`]).
//! * [`MomentAccumulator`] — Welford-style online mean + covariance over a
//!   row stream, the substrate of the streaming fit phase: rows are
//!   absorbed as they are finalized and the `t × n` training matrix never
//!   materializes.
//! * [`ScorePlan`] — the fused scoring plane: allocation-free SPE via the
//!   norm identity `‖x−μ‖² − Σⱼ sⱼ²` with a cancellation guard and a
//!   batch entry point, built from a fitted model by [`Pca::score_plan`].
//!   The project–reconstruct–residual chain stays as
//!   [`Pca::spe_reference`] (executable spec, automatic fallback, and the
//!   `ENTROMINE_FORCE_REFERENCE_SCORE` pin — [`reference_score_forced`]).
//! * [`stats`] — the standard-normal quantile function (needed by the
//!   Jackson–Mudholkar Q-statistic threshold) and friends.
//!
//! The matrices that appear in the paper are modest — the widest is the
//! unfolded Geant entropy matrix with `4p = 1936` columns — so clear,
//! well-tested dense kernels are the right tool. The symmetric products
//! (`Mat::covariance`, `Mat::gram`) are the exception: they dominate fit
//! time, so they run blocked — workers own balanced row-blocks of the
//! output triangle under `std::thread::scope` (capped at 16 threads), and
//! data rows are consumed in cache-sized panels — while remaining
//! bitwise-identical to the serial reference kernel at any thread count.
//!
//! # Example
//!
//! ```
//! use entromine_linalg::{Mat, Pca};
//!
//! // Three observations of two correlated variables.
//! let x = Mat::from_rows(&[
//!     &[1.0, 2.0],
//!     &[2.0, 4.1],
//!     &[3.0, 5.9],
//! ]);
//! let pca = Pca::fit(&x).unwrap();
//! // Almost all variance is captured by the first principal axis.
//! assert!(pca.explained_variance_ratio(1) > 0.99);
//! ```

// `deny`, not `forbid`: the SIMD modules under `kernel/` opt back in with
// a module-local `#![allow(unsafe_code)]` + `#![deny(unsafe_op_in_unsafe_fn)]`.
// Everything else in the crate stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod eigen;
mod error;
pub mod kernel;
mod matrix;
mod moments;
pub mod par;
mod pca;
pub mod score;
mod solve;
mod spectrum;
pub mod stats;

pub use eigen::{
    block_matvec, block_matvec_serial, sym_eigen, sym_eigen_ql, top_k_eigen, top_k_eigen_detailed,
    top_k_eigen_detailed_warm, SymEigen, TopKInfo,
};
pub use error::LinalgError;
pub use matrix::Mat;
pub use moments::MomentAccumulator;
pub use pca::{AxisRequest, FitDiagnostics, FitStrategy, Pca};
pub use score::{reference_score_forced, ScorePlan, GUARD_EPS};
pub use solve::{solve, solve_regularized};
pub use spectrum::{sym_trace_cubed, ResidualPowerSums, Spectrum};
