//! Dense linear algebra for the `entromine` workspace.
//!
//! This crate provides exactly the numerical machinery the subspace method of
//! Lakhina, Crovella & Diot (SIGCOMM 2004/2005) needs, implemented from
//! scratch with no external numerics dependencies:
//!
//! * [`Mat`] — a dense, row-major, `f64` matrix with the usual algebraic
//!   operations (multiply, transpose, column statistics, norms).
//! * [`sym_eigen`] — a full symmetric eigendecomposition (Householder
//!   tridiagonalization followed by implicit-shift QL iteration), the
//!   workhorse behind principal component analysis.
//! * [`top_k_eigen`] — block orthogonal iteration for the leading `k`
//!   eigenpairs; used as an independent cross-check of [`sym_eigen`] and as a
//!   fast path when only the normal subspace is required.
//! * [`Pca`] — principal component analysis over the rows of a data matrix
//!   (columns are variables), as used to split traffic into normal and
//!   residual subspaces.
//! * [`stats`] — the standard-normal quantile function (needed by the
//!   Jackson–Mudholkar Q-statistic threshold) and friends.
//!
//! The matrices that appear in the paper are modest — the widest is the
//! unfolded Geant entropy matrix with `4p = 1936` columns — so a clear,
//! well-tested `O(n^3)` dense implementation is the right tool; sparse or
//! blocked kernels would add complexity without changing any experimental
//! outcome.
//!
//! # Example
//!
//! ```
//! use entromine_linalg::{Mat, Pca};
//!
//! // Three observations of two correlated variables.
//! let x = Mat::from_rows(&[
//!     &[1.0, 2.0],
//!     &[2.0, 4.1],
//!     &[3.0, 5.9],
//! ]);
//! let pca = Pca::fit(&x).unwrap();
//! // Almost all variance is captured by the first principal axis.
//! assert!(pca.explained_variance_ratio(1) > 0.99);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eigen;
mod error;
mod matrix;
mod pca;
mod solve;
pub mod stats;

pub use eigen::{sym_eigen, top_k_eigen, SymEigen};
pub use error::LinalgError;
pub use matrix::Mat;
pub use pca::Pca;
pub use solve::{solve, solve_regularized};
