//! Dense linear algebra for the `entromine` workspace.
//!
//! This crate provides exactly the numerical machinery the subspace method of
//! Lakhina, Crovella & Diot (SIGCOMM 2004/2005) needs, implemented from
//! scratch with no external numerics dependencies:
//!
//! * [`Mat`] — a dense, row-major, `f64` matrix with the usual algebraic
//!   operations (multiply, transpose, column statistics, norms).
//! * [`sym_eigen`] — a full symmetric eigendecomposition (Householder
//!   tridiagonalization followed by implicit-shift QL iteration), the
//!   workhorse behind principal component analysis.
//! * [`top_k_eigen`] — block orthogonal iteration for the leading `k`
//!   eigenpairs; used as an independent cross-check of [`sym_eigen`] and as a
//!   fast path when only the normal subspace is required.
//! * [`Pca`] — principal component analysis over the rows of a data matrix
//!   (columns are variables), as used to split traffic into normal and
//!   residual subspaces. Three fit paths: the covariance eigenproblem
//!   ([`Pca::fit`]), the `rows × rows` Gram eigenproblem for wide matrices
//!   ([`Pca::fit_gram`]), and a streaming fit from incremental moments
//!   ([`Pca::fit_from_moments`]).
//! * [`MomentAccumulator`] — Welford-style online mean + covariance over a
//!   row stream, the substrate of the streaming fit phase: rows are
//!   absorbed as they are finalized and the `t × n` training matrix never
//!   materializes.
//! * [`stats`] — the standard-normal quantile function (needed by the
//!   Jackson–Mudholkar Q-statistic threshold) and friends.
//!
//! The matrices that appear in the paper are modest — the widest is the
//! unfolded Geant entropy matrix with `4p = 1936` columns — so clear,
//! well-tested dense kernels are the right tool. The symmetric products
//! (`Mat::covariance`, `Mat::gram`) are the exception: they dominate fit
//! time, so they run blocked — workers own balanced row-blocks of the
//! output triangle under `std::thread::scope` (capped at 16 threads), and
//! data rows are consumed in cache-sized panels — while remaining
//! bitwise-identical to the serial reference kernel at any thread count.
//!
//! # Example
//!
//! ```
//! use entromine_linalg::{Mat, Pca};
//!
//! // Three observations of two correlated variables.
//! let x = Mat::from_rows(&[
//!     &[1.0, 2.0],
//!     &[2.0, 4.1],
//!     &[3.0, 5.9],
//! ]);
//! let pca = Pca::fit(&x).unwrap();
//! // Almost all variance is captured by the first principal axis.
//! assert!(pca.explained_variance_ratio(1) > 0.99);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eigen;
mod error;
mod matrix;
mod moments;
mod par;
mod pca;
mod solve;
pub mod stats;

pub use eigen::{sym_eigen, top_k_eigen, SymEigen};
pub use error::LinalgError;
pub use matrix::Mat;
pub use moments::MomentAccumulator;
pub use pca::Pca;
pub use solve::{solve, solve_regularized};
