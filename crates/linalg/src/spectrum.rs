//! Partial eigenspectra with exact residual power sums.
//!
//! The Jackson–Mudholkar Q-statistic threshold — the detection test of the
//! whole pipeline — depends on the residual eigenvalues `λ_{m+1} … λ_n` of
//! the sample covariance **only** through the three power sums
//!
//! ```text
//! φ_i = Σ_{j>m} λ_j^i ,   i = 1, 2, 3.
//! ```
//!
//! Diagonalizing all of a `4p × 4p` covariance to obtain them is therefore
//! pure over-computation: for a symmetric matrix `C` the full-spectrum
//! power sums are classical **trace identities**,
//!
//! ```text
//! S₁ = Σ_j λ_j  = tr C            (the diagonal)
//! S₂ = Σ_j λ_j² = tr C² = ‖C‖²_F  (the squared Frobenius norm)
//! S₃ = Σ_j λ_j³ = tr C³           (one blocked pass over the triangle)
//! ```
//!
//! so after computing only the **top-k eigenpairs** (`k ≥ m`, via
//! [`top_k_eigen_detailed`]) the residual sums follow exactly.
//!
//! Numerically, though, the naive subtraction `S_i − Σ_{j≤m} λ_j^i` is a
//! catastrophic cancellation whenever the residual spectrum is orders of
//! magnitude below `λ₁` (precisely the low-rank-plus-noise structure the
//! subspace method assumes): the difference of two `O(λ₁³)` quantities
//! carries `ε_mach·λ₁³` of round-off, which can dwarf a tiny `φ₃`
//! entirely. The identities are therefore evaluated on the **deflated
//! matrix** instead:
//!
//! ```text
//! D = C − Σ_{j≤k} λ_j v_j v_jᵀ        (‖D‖ ~ residual scale)
//! T_i = tr Dⁱ                          (computed at that scale — stable)
//! φ_i(m) = Σ_{m<j≤k} λ_j^i + T_i       (a sum of nonnegative terms)
//! ```
//!
//! Every term now lives at its own magnitude and the cancellation never
//! happens. The result replaces the `O(n³)` dense eigensolve with
//! `O(k·n²)` iteration plus one `O(n³/2)`-flop — but branch-free,
//! SIMD-friendly, and thread-parallel — trace kernel over `D`, which is
//! what makes Geant-width (`4p = 1936`) refits routine. [`Spectrum`]
//! packages the two halves: the leading eigenpairs a projection actually
//! uses, and the exact tail power sums the threshold needs.
//!
//! [`top_k_eigen_detailed`]: crate::top_k_eigen_detailed

use crate::eigen::{top_k_eigen_detailed, top_k_eigen_detailed_warm, SymEigen, TopKInfo};
use crate::{LinalgError, Mat};

/// The residual power sums `φ₁, φ₂, φ₃` of a covariance spectrum past a
/// normal subspace of dimension `m` — the complete input of the
/// Jackson–Mudholkar threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidualPowerSums {
    /// `φ₁ = Σ_{j>m} λ_j` — the residual variance.
    pub phi1: f64,
    /// `φ₂ = Σ_{j>m} λ_j²`.
    pub phi2: f64,
    /// `φ₃ = Σ_{j>m} λ_j³`.
    pub phi3: f64,
}

impl ResidualPowerSums {
    /// Power sums of an explicit residual eigenvalue slice, with each
    /// eigenvalue clamped at zero against solver round-off — the single
    /// definition of the clamping convention, shared by the
    /// slice-adapter threshold entry point and [`Spectrum`]'s complete
    /// branch.
    pub fn from_slice(residual: &[f64]) -> Self {
        ResidualPowerSums {
            phi1: residual.iter().map(|&l| l.max(0.0)).sum(),
            phi2: residual.iter().map(|&l| l.max(0.0).powi(2)).sum(),
            phi3: residual.iter().map(|&l| l.max(0.0).powi(3)).sum(),
        }
    }
}

/// `tr C³` of a symmetric matrix, without forming `C²` or `C³`.
///
/// Uses `(C³)_{ii} = Σ_j (C²)_{ij} C_{ij}` with `(C²)_{ij} = c_i · c_j`
/// (rows of a symmetric matrix are its columns), summing the upper
/// triangle once with off-diagonal weight 2:
///
/// ```text
/// tr C³ = Σ_i (c_i·c_i) C_ii + 2 Σ_{i<j} (c_i·c_j) C_ij .
/// ```
///
/// The kernel is blocked two ways: output rows are split across scoped
/// worker threads in triangle-balanced ranges (the ≤16-worker panel
/// machinery shared with [`Mat::covariance`]), and the `j` rows are
/// consumed in cache-sized panels so each worker's row block streams the
/// matrix once per panel instead of once per row. Per-row partial sums
/// accumulate in a fixed global `j` order and reduce in row order, so the
/// result is identical at any worker count.
///
/// # Errors
///
/// [`LinalgError::NotSquare`] for non-square input. Symmetry is the
/// caller's contract (covariances are symmetric by construction), matching
/// [`Mat::gram`]'s treatment.
///
/// [`Mat::covariance`]: crate::Mat::covariance
pub fn sym_trace_cubed(c: &Mat) -> Result<f64, LinalgError> {
    if c.rows() != c.cols() {
        return Err(LinalgError::NotSquare { shape: c.shape() });
    }
    let n = c.rows();
    if n == 0 {
        return Ok(0.0);
    }
    let mut row_sums = vec![0.0f64; n];
    // ~n³/2 multiply-adds over the triangle.
    let flops = n.saturating_mul(n + 1).saturating_mul(n) / 2;
    let ranges = crate::par::triangle_ranges(n, crate::par::workers_for(flops));
    if ranges.len() <= 1 {
        trace_cubed_rows(c, 0..n, &mut row_sums);
    } else {
        std::thread::scope(|s| {
            let mut rest: &mut [f64] = &mut row_sums;
            for range in ranges {
                let (head, tail) = rest.split_at_mut(range.len());
                rest = tail;
                s.spawn(move || trace_cubed_rows(c, range, head));
            }
        });
    }
    Ok(row_sums.iter().sum())
}

/// Fills `out[i - range.start] = Σ_{j≥i} w_ij (c_i·c_j) C_ij` for the rows
/// in `range`, with `w` = 1 on the diagonal and 2 off it.
fn trace_cubed_rows(c: &Mat, range: std::ops::Range<usize>, out: &mut [f64]) {
    /// `j` rows per panel: 32 rows of a 2000-column matrix is ~500 KiB,
    /// sized to stay cache-resident while every `i` row scans the panel.
    const PANEL: usize = 32;
    let n = c.rows();
    let base = range.start;
    let mut panel_start = range.start;
    while panel_start < n {
        let panel_end = (panel_start + PANEL).min(n);
        for i in range.clone() {
            if i >= panel_end {
                break;
            }
            let row_i = c.row(i);
            let acc = &mut out[i - base];
            for j in panel_start.max(i)..panel_end {
                let cij = row_i[j];
                if cij == 0.0 {
                    continue;
                }
                let weight = if i == j { 1.0 } else { 2.0 };
                *acc += weight * crate::matrix::dot4(row_i, c.row(j)) * cij;
            }
        }
        panel_start = panel_end;
    }
}

/// An eigenspectrum that knows its leading eigenpairs exactly and its
/// *entire* spectrum through the power sums `S₁, S₂, S₃`.
///
/// Two flavours share the type:
///
/// * **complete** — every eigenvalue is stored (the full QL path, and the
///   Gram path whose unstored tail is exactly zero). Residual power sums
///   are computed from the stored residual slice, so this flavour is
///   bit-for-bit the reference oracle.
/// * **partial** — only the top `k` eigenvalues (and axes) are stored;
///   the power sums come from the trace identities, and residual sums for
///   any `m ≤ k` follow by subtraction, exact up to round-off.
///
/// The eigenvector matrix may carry fewer columns than there are stored
/// eigenvalues (the Gram path keeps only the axes the data's rank
/// supports); [`n_axes`](Self::n_axes) is the projectable count.
#[derive(Debug, Clone)]
pub struct Spectrum {
    /// Known leading eigenvalues, descending.
    values: Vec<f64>,
    /// Orthonormal eigenvectors, one column per axis, aligned with the
    /// leading `values`.
    vectors: Mat,
    /// Full dimension `n` of the underlying matrix.
    dim: usize,
    /// Whether `values` covers the entire spectrum.
    complete: bool,
    /// Exact power sums `[T₁, T₂, T₃]` of the spectrum **beyond** the
    /// known part, from trace identities on the deflated matrix
    /// (all-zero for complete spectra).
    tail_sums: [f64; 3],
}

impl Spectrum {
    /// A complete spectrum from a full eigendecomposition.
    pub fn complete(eigen: SymEigen) -> Self {
        let dim = eigen.vectors.rows();
        Spectrum {
            values: eigen.values,
            vectors: eigen.vectors,
            dim,
            complete: true,
            tail_sums: [0.0; 3],
        }
    }

    /// A complete spectrum whose axis matrix carries fewer columns than
    /// eigenvalues (the Gram path: the zero tail has no backprojectable
    /// axes but its eigenvalues — exact zeros — are known).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != vectors.rows()` or if `vectors` has more
    /// columns than `values` entries.
    pub fn complete_padded(values: Vec<f64>, vectors: Mat) -> Self {
        assert_eq!(values.len(), vectors.rows(), "one eigenvalue per row dim");
        assert!(vectors.cols() <= values.len(), "more axes than eigenvalues");
        let dim = vectors.rows();
        Spectrum {
            values,
            vectors,
            dim,
            complete: true,
            tail_sums: [0.0; 3],
        }
    }

    /// The top-`k` partial spectrum of a symmetric PSD matrix, with exact
    /// tail power sums from trace identities on the deflated matrix.
    ///
    /// Returns the spectrum together with the eigensolver's convergence
    /// diagnostics; callers that need certainty (the fit dispatcher) check
    /// [`TopKInfo::converged`] and fall back to the dense oracle when the
    /// iteration did not land.
    ///
    /// # Errors
    ///
    /// Shape and domain errors from [`top_k_eigen_detailed`].
    pub fn partial_of(cov: &Mat, k: usize, seed: u64) -> Result<(Self, TopKInfo), LinalgError> {
        Self::partial_of_warm(cov, k, seed, None)
    }

    /// [`partial_of`](Self::partial_of) with an optional **warm start**:
    /// `warm` columns (a previous spectrum's eigenbasis, typically) seed
    /// the subspace iteration's block via [`top_k_eigen_detailed_warm`],
    /// so a few percent of drift converges in 1–2 Rayleigh–Ritz cycles.
    /// `None` is the cold start, bit for bit. Deflation and the exact
    /// tail power sums are identical either way.
    ///
    /// # Errors
    ///
    /// Shape and domain errors from [`top_k_eigen_detailed`].
    pub fn partial_of_warm(
        cov: &Mat,
        k: usize,
        seed: u64,
        warm: Option<&Mat>,
    ) -> Result<(Self, TopKInfo), LinalgError> {
        let n = cov.rows();
        let (top, info) = match warm {
            Some(guess) => top_k_eigen_detailed_warm(cov, k, seed, guess)?,
            None => top_k_eigen_detailed(cov, k, seed)?,
        };
        // Deflate: D = C − Σ_j λ_j v_j v_jᵀ. Entries of D live at the
        // residual scale, so the tail traces computed from it never
        // suffer the S_i − Σλ^i cancellation.
        let mut d = cov.clone();
        for (j, &lambda) in top.values.iter().enumerate() {
            if lambda == 0.0 {
                continue;
            }
            let v = top.vectors.col(j);
            for (i, &vi) in v.iter().enumerate() {
                let scale = lambda * vi;
                if scale == 0.0 {
                    continue;
                }
                let row = d.row_mut(i);
                for (slot, &vj) in row.iter_mut().zip(&v) {
                    *slot -= scale * vj;
                }
            }
        }
        let t1 = (0..n).map(|i| d[(i, i)]).sum();
        let t2 = d.energy();
        let t3 = sym_trace_cubed(&d)?;
        Ok((
            Spectrum {
                values: top.values,
                vectors: top.vectors,
                dim: n,
                complete: k == n,
                tail_sums: [t1, t2, t3],
            },
            info,
        ))
    }

    /// Known leading eigenvalues, descending (all of them iff
    /// [`is_complete`](Self::is_complete)).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The orthonormal axis matrix (one column per projectable axis).
    pub fn vectors(&self) -> &Mat {
        &self.vectors
    }

    /// Full dimension `n` of the decomposed matrix.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of projectable axes carried.
    pub fn n_axes(&self) -> usize {
        self.vectors.cols()
    }

    /// Number of eigenvalues known exactly.
    pub fn n_known(&self) -> usize {
        self.values.len()
    }

    /// Whether every eigenvalue is known.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// `S₁ = tr C`: the total variance, over the *full* spectrum (known
    /// eigenvalues plus the exact tail trace).
    pub fn total_variance(&self) -> f64 {
        self.values.iter().sum::<f64>() + self.tail_sums[0]
    }

    /// The exact power sums `[T₁, T₂, T₃]` of the spectrum beyond the
    /// known part (all-zero for complete spectra).
    pub fn tail_power_sums(&self) -> [f64; 3] {
        self.tail_sums
    }

    /// Fraction of total variance captured by the leading `m` eigenvalues
    /// (1.0 for a zero-variance spectrum, as in [`SymEigen::explained`]).
    pub fn explained(&self, m: usize) -> f64 {
        let total = self.total_variance();
        if total <= 0.0 {
            return 1.0;
        }
        self.values.iter().take(m).sum::<f64>() / total
    }

    /// Smallest `m` whose leading eigenvalues capture at least `fraction`
    /// of total variance — `None` when the answer is not determined by the
    /// known part of a partial spectrum (the caller escalates `k`).
    ///
    /// Zero-variance spectra answer `Some(0)`; a complete spectrum that
    /// never reaches `fraction` answers its own length, both matching
    /// [`SymEigen::dims_for_variance`].
    pub fn dims_for_variance(&self, fraction: f64) -> Option<usize> {
        let total = self.total_variance();
        if total <= 0.0 {
            return Some(0);
        }
        let mut acc = 0.0;
        for (i, v) in self.values.iter().enumerate() {
            acc += v;
            if acc / total >= fraction {
                return Some(i + 1);
            }
        }
        self.complete.then_some(self.values.len())
    }

    /// The residual power sums `φ₁, φ₂, φ₃` past a normal subspace of
    /// dimension `m`.
    ///
    /// Complete spectra sum the stored residual slice directly (each
    /// eigenvalue clamped at zero against solver round-off) — bit-for-bit
    /// the historical slice arithmetic. Partial spectra **add** the known
    /// eigenvalues between `m` and `k` (clamped the same way) to the
    /// exact deflated tail sums: a sum of nonnegative terms, each at its
    /// own magnitude, with none of the `S_i − Σλ^i` cancellation. The two
    /// flavours agree to round-off, which the threshold-equivalence
    /// proptests pin at `1e-8` relative.
    ///
    /// # Errors
    ///
    /// [`LinalgError::Domain`] if `m >= dim()` (no residual space) or if
    /// `m` exceeds the known part of a partial spectrum.
    pub fn residual_power_sums(&self, m: usize) -> Result<ResidualPowerSums, LinalgError> {
        if m >= self.dim {
            return Err(LinalgError::Domain {
                what: "residual power sums need a non-empty residual space (m < n)",
            });
        }
        if self.complete {
            return Ok(ResidualPowerSums::from_slice(&self.values[m..]));
        }
        if m > self.values.len() {
            return Err(LinalgError::Domain {
                what: "partial spectrum knows fewer leading eigenvalues than m",
            });
        }
        // The deflated traces can carry tiny negative round-off (D has
        // eigenvalues at ±deflation-error around zero past the rank).
        let mut sums = ResidualPowerSums::from_slice(&self.values[m..]);
        sums.phi1 += self.tail_sums[0].max(0.0);
        sums.phi2 += self.tail_sums[1].max(0.0);
        sums.phi3 += self.tail_sums[2].max(0.0);
        Ok(sums)
    }

    /// Relative spectral gap `(λ_m − λ_{m+1}) / λ₁` at the normal/residual
    /// cut, when both sides of the cut are known and the spectrum is not
    /// degenerate. A vanishing gap warns that the cut slices a cluster —
    /// the subspace is well-defined but its individual trailing axes are
    /// not.
    pub fn spectral_gap(&self, m: usize) -> Option<f64> {
        if m == 0 || m >= self.values.len() {
            return None;
        }
        let lead = self.values[0];
        (lead > 0.0).then(|| ((self.values[m - 1] - self.values[m]) / lead).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym_eigen;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_psd(n: usize, rank: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = Mat::from_fn(n, rank, |_, _| rng.random::<f64>() - 0.5);
        b.matmul(&b.transpose()).unwrap()
    }

    #[test]
    fn trace_cubed_matches_eigenvalue_cubes() {
        for (n, rank, seed) in [(5usize, 5usize, 1u64), (20, 12, 2), (37, 37, 3)] {
            let a = random_psd(n, rank, seed);
            let s3 = sym_trace_cubed(&a).unwrap();
            let reference: f64 = sym_eigen(&a)
                .unwrap()
                .values
                .iter()
                .map(|l| l * l * l)
                .sum();
            assert!(
                (s3 - reference).abs() < 1e-9 * (1.0 + reference.abs()),
                "n={n}: {s3} vs {reference}"
            );
        }
    }

    #[test]
    fn trace_cubed_rejects_non_square_and_handles_empty() {
        assert!(sym_trace_cubed(&Mat::zeros(2, 3)).is_err());
        assert_eq!(sym_trace_cubed(&Mat::zeros(0, 0)).unwrap(), 0.0);
        assert_eq!(sym_trace_cubed(&Mat::zeros(4, 4)).unwrap(), 0.0);
    }

    #[test]
    fn partial_power_sums_match_full_subtraction() {
        let a = random_psd(24, 24, 7);
        let full = Spectrum::complete(sym_eigen(&a).unwrap());
        let (partial, info) = Spectrum::partial_of(&a, 6, 11).unwrap();
        assert!(info.converged, "top-k must converge on a benign spectrum");
        let scale = full.total_variance();
        for m in [0usize, 2, 5] {
            let f = full.residual_power_sums(m).unwrap();
            let p = partial.residual_power_sums(m).unwrap();
            assert!((f.phi1 - p.phi1).abs() < 1e-9 * (1.0 + scale), "m={m}");
            assert!((f.phi2 - p.phi2).abs() < 1e-9 * (1.0 + scale * scale));
            assert!((f.phi3 - p.phi3).abs() < 1e-8 * (1.0 + scale.powi(3)));
        }
        // m beyond the known part is refused, as is an empty residual.
        assert!(partial.residual_power_sums(7).is_err());
        assert!(full.residual_power_sums(24).is_err());
    }

    #[test]
    fn zero_residual_spectrum_clamps_to_zero() {
        // Rank-2 matrix: residual past m=2 is exactly zero and the
        // subtraction path must clamp round-off rather than go negative.
        let a = random_psd(12, 2, 9);
        let (partial, _) = Spectrum::partial_of(&a, 4, 5).unwrap();
        let sums = partial.residual_power_sums(2).unwrap();
        assert!(sums.phi1 >= 0.0 && sums.phi1 < 1e-9);
        assert!(sums.phi2 >= 0.0 && sums.phi2 < 1e-9);
        assert!(sums.phi3 >= 0.0 && sums.phi3 < 1e-9);
    }

    #[test]
    fn dims_for_variance_partial_vs_complete() {
        let a = random_psd(16, 16, 13);
        let full = Spectrum::complete(sym_eigen(&a).unwrap());
        let (partial, _) = Spectrum::partial_of(&a, 5, 3).unwrap();
        // A fraction resolvable within 5 axes agrees with the oracle...
        let easy = 0.3;
        assert_eq!(
            partial.dims_for_variance(easy),
            full.dims_for_variance(easy)
        );
        // ...an unresolvable one is honestly refused, not guessed.
        assert_eq!(partial.dims_for_variance(0.999999), None);
        assert!(full.dims_for_variance(0.999999).is_some());
        // Zero-variance spectra need no axes at all.
        let zero = Spectrum::complete(sym_eigen(&Mat::zeros(3, 3)).unwrap());
        assert_eq!(zero.dims_for_variance(0.9), Some(0));
    }

    #[test]
    fn spectral_gap_reports_the_cut() {
        let full = Spectrum::complete(SymEigen {
            values: vec![10.0, 6.0, 1.0, 0.9],
            vectors: Mat::identity(4),
        });
        let gap = full.spectral_gap(2).unwrap();
        assert!((gap - 0.5).abs() < 1e-12, "gap {gap}");
        assert!(full.spectral_gap(0).is_none());
        assert!(full.spectral_gap(4).is_none());
    }
}
