//! Direct solution of small dense linear systems.
//!
//! Multi-attribute identification (paper §4.2) repeatedly solves 4x4
//! normal-equation systems `G f = b`; this module provides a
//! partial-pivoting Gaussian elimination for exactly that job.

use crate::{LinalgError, Mat};

/// Solves the square system `a * x = b` by Gaussian elimination with
/// partial pivoting.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] / [`LinalgError::ShapeMismatch`] on bad
///   shapes.
/// * [`LinalgError::Domain`] if the matrix is singular to working
///   precision.
pub fn solve(a: &Mat, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "solve",
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    if n == 0 {
        return Ok(Vec::new());
    }

    // Augmented working copy.
    let mut m = a.clone();
    let mut x: Vec<f64> = b.to_vec();

    for col in 0..n {
        // Partial pivot: largest magnitude entry in this column.
        let mut pivot_row = col;
        let mut pivot_val = m[(col, col)].abs();
        for row in (col + 1)..n {
            let v = m[(row, col)].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = row;
            }
        }
        if pivot_val < 1e-300 {
            return Err(LinalgError::Domain {
                what: "singular matrix in solve",
            });
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = m[(col, j)];
                m[(col, j)] = m[(pivot_row, j)];
                m[(pivot_row, j)] = tmp;
            }
            x.swap(col, pivot_row);
        }
        // Eliminate below.
        let pivot = m[(col, col)];
        for row in (col + 1)..n {
            let factor = m[(row, col)] / pivot;
            if factor == 0.0 {
                continue;
            }
            m[(row, col)] = 0.0;
            for j in (col + 1)..n {
                let delta = factor * m[(col, j)];
                m[(row, j)] -= delta;
            }
            x[row] -= factor * x[col];
        }
    }

    // Back substitution.
    for col in (0..n).rev() {
        let mut acc = x[col];
        for j in (col + 1)..n {
            acc -= m[(col, j)] * x[j];
        }
        x[col] = acc / m[(col, col)];
    }
    Ok(x)
}

/// Solves `(a + ridge*I) x = b` — a Tikhonov-regularized variant used when
/// the normal equations can be singular (e.g. an OD flow whose entropy
/// columns lie entirely inside the normal subspace).
pub fn solve_regularized(a: &Mat, b: &[f64], ridge: f64) -> Result<Vec<f64>, LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    let mut reg = a.clone();
    for i in 0..n {
        reg[(i, i)] += ridge;
    }
    solve(&reg, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = Mat::identity(3);
        let x = solve(&a, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_known_system() {
        // 2x + y = 5; x + 3y = 10 => x = 1, y = 3.
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn residual_is_small_for_random_systems() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let n = 6;
            let a = Mat::from_fn(n, n, |_, _| rng.random::<f64>() - 0.5);
            let b: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
            match solve(&a, &b) {
                Ok(x) => {
                    let ax = a.matvec(&x).unwrap();
                    for (av, bv) in ax.iter().zip(&b) {
                        assert!((av - bv).abs() < 1e-8, "residual too large");
                    }
                }
                Err(_) => {
                    // Singular draws are possible but astronomically rare.
                }
            }
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            solve(&a, &[1.0, 2.0]),
            Err(LinalgError::Domain { .. })
        ));
    }

    #[test]
    fn regularized_handles_singular() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let x = solve_regularized(&a, &[1.0, 2.0], 1e-6).unwrap();
        // Solution approximately satisfies the (consistent) system.
        let ax = a.matvec(&x).unwrap();
        assert!((ax[0] - 1.0).abs() < 1e-3);
        assert!((ax[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn shape_errors() {
        let a = Mat::zeros(2, 3);
        assert!(solve(&a, &[1.0, 2.0]).is_err());
        let sq = Mat::identity(2);
        assert!(solve(&sq, &[1.0]).is_err());
    }

    #[test]
    fn empty_system() {
        let a = Mat::zeros(0, 0);
        assert!(solve(&a, &[]).unwrap().is_empty());
    }
}
