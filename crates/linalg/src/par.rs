//! Scoped-thread partitioning for the blocked kernels.
//!
//! The symmetric kernels in this crate — [`Mat::covariance`] (`XᵀX` over
//! centered columns) and the Gram product behind [`Pca::fit_gram`]
//! (`XXᵀ` over centered rows) — fill only the upper triangle of their
//! output and mirror it afterwards. Parallelizing them is therefore a
//! matter of handing each worker a contiguous block of output rows whose
//! triangle rows it owns exclusively; no locks, no atomics, and — because
//! every output element is still accumulated over data rows in the same
//! order as the serial kernel — bitwise-identical results at any worker
//! count.
//!
//! The triangle makes equal-width blocks badly imbalanced (row `i` of an
//! `n×n` upper triangle holds `n - i` elements), so [`triangle_ranges`]
//! chooses block boundaries that equalize the *element* count per worker
//! instead of the row count. Rectangular kernels ([`block_matvec`] in the
//! subspace iteration) split plain row ranges via [`even_ranges`].
//!
//! The sizing policy ([`workers_for`], [`MAX_THREADS`]) is exported so
//! other layers with the same shape of problem — notably the sharded
//! streaming ingest plane in `entromine-entropy` — share one fan-out
//! discipline instead of inventing their own.
//!
//! [`Mat::covariance`]: crate::Mat::covariance
//! [`Pca::fit_gram`]: crate::Pca::fit_gram
//! [`block_matvec`]: crate::block_matvec

use std::ops::Range;

/// Worker cap, matching the fan-out cap used by the synthetic generator.
pub const MAX_THREADS: usize = 16;

/// Number of workers for a kernel with `work` accumulation flops (or an
/// equivalent per-element cost unit): the machine's available parallelism,
/// capped at [`MAX_THREADS`], and 1 when the problem is too small for
/// spawn overhead to pay off.
pub fn workers_for(work: usize) -> usize {
    // Spawning a thread costs on the order of tens of microseconds; only
    // fan out when each worker gets millions of flops to chew on.
    const MIN_WORK_PER_THREAD: usize = 4_000_000;
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_THREADS);
    hw.min(work / MIN_WORK_PER_THREAD).max(1)
}

/// Splits the row indices `0..n` of an `n×n` upper triangle into at most
/// `workers` contiguous ranges with approximately equal element counts
/// `Σ (n - i)`.
pub fn triangle_ranges(n: usize, workers: usize) -> Vec<Range<usize>> {
    let workers = workers.max(1).min(n.max(1));
    let total = n * (n + 1) / 2;
    let per_worker = total.div_ceil(workers.max(1)).max(1);
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0usize;
    let mut acc = 0usize;
    for i in 0..n {
        acc += n - i;
        if acc >= per_worker || i + 1 == n {
            ranges.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < n {
        ranges.push(start..n);
    }
    ranges
}

/// Splits `0..n` into at most `workers` contiguous ranges of nearly equal
/// length (the first `n % workers` ranges carry one extra element). Every
/// index is covered exactly once; empty ranges are never emitted.
pub fn even_ranges(n: usize, workers: usize) -> Vec<Range<usize>> {
    let workers = workers.clamp(1, n.max(1));
    let base = n / workers;
    let extra = n % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        if len == 0 {
            break;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_exactly_once() {
        for n in [0usize, 1, 2, 7, 64, 481] {
            for workers in [1usize, 2, 3, 8, 16] {
                let ranges = triangle_ranges(n, workers);
                let mut covered = vec![false; n];
                for r in &ranges {
                    for i in r.clone() {
                        assert!(!covered[i], "row {i} covered twice (n={n})");
                        covered[i] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "gap in coverage (n={n})");
            }
        }
    }

    #[test]
    fn ranges_are_balanced_by_elements() {
        let n = 400;
        let ranges = triangle_ranges(n, 4);
        let loads: Vec<usize> = ranges
            .iter()
            .map(|r| r.clone().map(|i| n - i).sum())
            .collect();
        let total: usize = loads.iter().sum();
        assert_eq!(total, n * (n + 1) / 2);
        let per = total / loads.len();
        for &l in &loads {
            // Within 2x of the ideal share: the triangle prevents perfect
            // splits but the imbalance must stay bounded.
            assert!(l < 2 * per + n, "load {l} vs ideal {per}");
        }
    }

    #[test]
    fn worker_count_scales_with_work() {
        assert_eq!(workers_for(0), 1);
        assert_eq!(workers_for(1000), 1);
        assert!(workers_for(usize::MAX / 2) <= MAX_THREADS);
    }

    #[test]
    fn even_ranges_cover_exactly_once() {
        for n in [0usize, 1, 2, 7, 64, 481] {
            for workers in [1usize, 2, 3, 8, 16] {
                let ranges = even_ranges(n, workers);
                let mut covered = vec![false; n];
                for r in &ranges {
                    assert!(!r.is_empty(), "empty range emitted (n={n})");
                    for i in r.clone() {
                        assert!(!covered[i], "index {i} covered twice (n={n})");
                        covered[i] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "gap in coverage (n={n})");
                // Balanced to within one element.
                if let (Some(max), Some(min)) = (
                    ranges.iter().map(Range::len).max(),
                    ranges.iter().map(Range::len).min(),
                ) {
                    assert!(max - min <= 1, "imbalanced: {max} vs {min}");
                }
            }
        }
    }
}
