//! Incremental first and second moments of a row stream.
//!
//! The batch pipeline forms a `t × n` matrix and re-scans it to build the
//! column means and sample covariance. [`MomentAccumulator`] computes the
//! same two statistics **one row at a time** — Welford's online mean update
//! plus a rank-one update of the centered co-moment matrix — so a model can
//! be fitted from a stream of finalized bins without the `t × n` matrix
//! ever existing. Memory is `O(n²)` for the co-moment triangle, independent
//! of how many rows flow through.
//!
//! Two accumulators over disjoint row sets can be [`merge`]d (Chan's
//! pairwise combination), which is what a sharded ingest path needs.
//!
//! The streamed covariance is algebraically identical to
//! [`Mat::covariance`] but not bitwise so (the update order differs);
//! proptests pin the two together to a tight relative tolerance.
//!
//! [`merge`]: MomentAccumulator::merge
//! [`Mat::covariance`]: crate::Mat::covariance

use crate::{LinalgError, Mat};

/// Streaming mean + covariance over rows of dimension `n`.
///
/// ```
/// use entromine_linalg::{Mat, MomentAccumulator};
///
/// let x = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
/// let mut acc = MomentAccumulator::new(2);
/// for row in x.row_iter() {
///     acc.push(row).unwrap();
/// }
/// assert_eq!(acc.mean(), &[2.0, 4.0]);
/// let cov = acc.covariance().unwrap();
/// assert!((cov[(0, 1)] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct MomentAccumulator {
    count: usize,
    mean: Vec<f64>,
    /// Upper triangle of `Σ (x - μ)(x - μ)ᵀ`, maintained incrementally.
    comoment: Mat,
    /// Scratch for the per-row deviation (avoids an allocation per push).
    delta: Vec<f64>,
}

impl MomentAccumulator {
    /// An empty accumulator for rows of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        MomentAccumulator {
            count: 0,
            mean: vec![0.0; dim],
            comoment: Mat::zeros(dim, dim),
            delta: vec![0.0; dim],
        }
    }

    /// Builds an accumulator by pushing every row of `x`.
    ///
    /// # Panics
    ///
    /// On a non-finite value in `x` — the streaming [`push`](Self::push)
    /// surfaces that as an error; this eager convenience has no error
    /// channel, and silently skipping the row would be worse.
    pub fn from_rows(x: &Mat) -> Self {
        let mut acc = MomentAccumulator::new(x.cols());
        for row in x.row_iter() {
            // Width always matches `x.cols()`; only a non-finite value
            // can be rejected.
            acc.push(row).expect("non-finite value in row");
        }
        acc
    }

    /// Row dimension `n`.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Number of rows absorbed so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Running column means (all zeros before the first push).
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Absorbs one observation row.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] if `row.len() != self.dim()`;
    /// [`LinalgError::Domain`] if the row carries a NaN or infinite
    /// value. The rejection happens before any state is touched: one
    /// absorbed NaN would make the mean, the comoment, and **every later
    /// Chan [`merge`](Self::merge) of this accumulator** non-finite, with
    /// nothing downstream able to tell when the poisoning happened.
    pub fn push(&mut self, row: &[f64]) -> Result<(), LinalgError> {
        let n = self.dim();
        if row.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "moment push",
                lhs: (1, row.len()),
                rhs: (1, n),
            });
        }
        if !row.iter().all(|v| v.is_finite()) {
            return Err(LinalgError::Domain {
                what: "non-finite value in moment push",
            });
        }
        self.count += 1;
        let k = self.count as f64;
        for ((d, m), &x) in self.delta.iter_mut().zip(&self.mean).zip(row) {
            *d = x - m;
        }
        for (m, &d) in self.mean.iter_mut().zip(&self.delta) {
            *m += d / k;
        }
        // (x - μ_old)(x - μ_new)ᵀ = ((k-1)/k) · δδᵀ — symmetric, so only
        // the upper triangle is touched.
        let scale = (k - 1.0) / k;
        for i in 0..n {
            let di = self.delta[i] * scale;
            if di == 0.0 {
                continue;
            }
            let out_row = &mut self.comoment.row_mut(i)[i..];
            for (o, &dj) in out_row.iter_mut().zip(&self.delta[i..]) {
                *o += di * dj;
            }
        }
        Ok(())
    }

    /// Merges another accumulator over a **disjoint** row set into this one
    /// (Chan et al.'s pairwise update).
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] if the dimensions differ.
    pub fn merge(&mut self, other: &MomentAccumulator) -> Result<(), LinalgError> {
        let n = self.dim();
        if other.dim() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "moment merge",
                lhs: (1, n),
                rhs: (1, other.dim()),
            });
        }
        if other.count == 0 {
            return Ok(());
        }
        if self.count == 0 {
            *self = other.clone();
            return Ok(());
        }
        let (na, nb) = (self.count as f64, other.count as f64);
        let total = na + nb;
        for ((d, m), &mb) in self.delta.iter_mut().zip(&self.mean).zip(&other.mean) {
            *d = mb - m;
        }
        for (m, &d) in self.mean.iter_mut().zip(&self.delta) {
            *m += d * nb / total;
        }
        let scale = na * nb / total;
        for i in 0..n {
            let di = self.delta[i];
            let out_row = &mut self.comoment.row_mut(i)[i..];
            for ((o, &mb), &dj) in out_row
                .iter_mut()
                .zip(&other.comoment.row(i)[i..])
                .zip(&self.delta[i..])
            {
                *o += mb + di * dj * scale;
            }
        }
        self.count += other.count;
        Ok(())
    }

    /// Removes another accumulator's rows from this one — the inverse of
    /// [`merge`](Self::merge), Chan's pairwise update run backwards.
    /// `removed` must cover rows that were previously pushed (or merged)
    /// into `self`; the surviving moments are recovered in `O(n²)` no
    /// matter how many rows survive, which is what makes trimming-round
    /// refits cheap when only a handful of bins are flagged.
    ///
    /// Downdating subtracts large nearly-equal quantities, so it is only
    /// numerically safe while the surviving rows keep most of the
    /// accumulated signal. The method **refuses** — returning
    /// `Ok(false)` with `self` untouched — when
    ///
    /// * the removed rows are more than
    ///   [`DOWNDATE_MAX_FRACTION`](Self::DOWNDATE_MAX_FRACTION) of the
    ///   total, or
    /// * any downdated diagonal co-moment would come out negative or
    ///   retain less than `2⁻³⁰` of its pre-downdate magnitude — the
    ///   subtraction would cancel away too many significant bits to
    ///   trust the survivors.
    ///
    /// On refusal the caller re-accumulates the surviving rows from
    /// scratch (the fallback `TrainingWindow::fit` takes); the refusal
    /// itself is cheap — one `O(n)` candidate pass, no state change.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] if dimensions differ;
    /// [`LinalgError::Domain`] if `removed` holds at least every row
    /// (downdating everything leaves no moments to stand on).
    pub fn try_downdate(&mut self, removed: &MomentAccumulator) -> Result<bool, LinalgError> {
        let n = self.dim();
        if removed.dim() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "moment downdate",
                lhs: (1, n),
                rhs: (1, removed.dim()),
            });
        }
        if removed.count == 0 {
            return Ok(true);
        }
        if removed.count >= self.count {
            return Err(LinalgError::Domain {
                what: "downdate must leave at least one row",
            });
        }
        let (total, nb) = (self.count as f64, removed.count as f64);
        let na = total - nb;
        if nb > total * Self::DOWNDATE_MAX_FRACTION {
            return Ok(false);
        }
        // δ = μ_removed − μ_survivors, with the survivor mean recovered
        // from μ = (na·μa + nb·μb) / total. `delta` is pure scratch, so
        // writing it before the guard decides is not a state change.
        for ((d, m), &mb) in self.delta.iter_mut().zip(&self.mean).zip(&removed.mean) {
            *d = (mb - m) * (total / na);
        }
        let scale = na * nb / total;
        // Guard pass before any mutation: every downdated variance must
        // stay nonnegative and keep enough significant bits.
        for i in 0..n {
            let before = self.comoment[(i, i)];
            let di = self.delta[i];
            let after = before - removed.comoment[(i, i)] - scale * di * di;
            if after < 0.0 || (before > 0.0 && after < before * Self::DOWNDATE_REL_FLOOR) {
                return Ok(false);
            }
        }
        for (m, &d) in self.mean.iter_mut().zip(&self.delta) {
            // μa = μ − (nb/total)·(total/na)·(μb − μa) = μ − δ·nb/total.
            *m -= d * nb / total;
        }
        for i in 0..n {
            let di = self.delta[i];
            let out_row = &mut self.comoment.row_mut(i)[i..];
            for ((o, &mb), &dj) in out_row
                .iter_mut()
                .zip(&removed.comoment.row(i)[i..])
                .zip(&self.delta[i..])
            {
                *o -= mb + di * dj * scale;
            }
        }
        self.count -= removed.count;
        Ok(true)
    }

    /// Largest fraction of rows [`try_downdate`](Self::try_downdate)
    /// will remove; past this the surviving moments are reconstructed
    /// from a minority of the signal and re-accumulation is both safer
    /// and barely slower.
    pub const DOWNDATE_MAX_FRACTION: f64 = 0.5;

    /// A downdated variance must keep at least this fraction of its
    /// pre-downdate magnitude (`2⁻³⁰`: at most 30 of the 52 mantissa
    /// bits cancelled) or the downdate refuses.
    const DOWNDATE_REL_FLOOR: f64 = 1.0 / (1u64 << 30) as f64;

    /// Rescales variable `i` by `scales[i]`, as if every absorbed row had
    /// been multiplied elementwise by `scales` before pushing: the mean
    /// scales linearly, the co-moments bilinearly.
    ///
    /// The multiway subspace method uses this to apply its unit-energy
    /// feature normalization *after* streaming raw rows — the divisors are
    /// only known once the training window closes.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] if `scales.len() != self.dim()`.
    pub fn scale_cols(&mut self, scales: &[f64]) -> Result<(), LinalgError> {
        let n = self.dim();
        if scales.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "moment scale",
                lhs: (1, scales.len()),
                rhs: (1, n),
            });
        }
        for (m, &s) in self.mean.iter_mut().zip(scales) {
            *m *= s;
        }
        for i in 0..n {
            let si = scales[i];
            for (o, &sj) in self.comoment.row_mut(i)[i..].iter_mut().zip(&scales[i..]) {
                *o *= si * sj;
            }
        }
        Ok(())
    }

    /// The sample covariance `Σ (x - μ)(x - μ)ᵀ / (count - 1)` of
    /// everything pushed so far.
    ///
    /// # Errors
    ///
    /// [`LinalgError::Empty`] with fewer than two rows, matching
    /// [`Mat::covariance`](crate::Mat::covariance) semantics.
    pub fn covariance(&self) -> Result<Mat, LinalgError> {
        if self.count < 2 {
            return Err(LinalgError::Empty {
                what: "covariance needs at least 2 rows",
            });
        }
        let n = self.dim();
        let denom = (self.count - 1) as f64;
        let mut cov = Mat::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = self.comoment[(i, j)] / denom;
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }
        Ok(cov)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_mat(t: usize, n: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        Mat::from_fn(t, n, |_, j| {
            (j as f64 + 1.0) * rng.random::<f64>() + if j % 2 == 0 { 10.0 } else { -3.0 }
        })
    }

    #[test]
    fn streamed_moments_match_batch() {
        let x = random_mat(257, 19, 1);
        let acc = MomentAccumulator::from_rows(&x);
        assert_eq!(acc.count(), 257);
        let batch_mean = x.col_means();
        for (a, b) in acc.mean().iter().zip(&batch_mean) {
            assert!((a - b).abs() < 1e-10, "mean diverged: {a} vs {b}");
        }
        let streamed = acc.covariance().unwrap();
        let batch = x.covariance().unwrap();
        assert!(streamed.max_abs_diff(&batch).unwrap() < 1e-9);
    }

    #[test]
    fn merge_of_disjoint_halves_matches_joint() {
        let x = random_mat(100, 7, 2);
        let mut left = MomentAccumulator::new(7);
        let mut right = MomentAccumulator::new(7);
        for (i, row) in x.row_iter().enumerate() {
            if i < 37 {
                left.push(row).unwrap();
            } else {
                right.push(row).unwrap();
            }
        }
        left.merge(&right).unwrap();
        let joint = MomentAccumulator::from_rows(&x);
        assert_eq!(left.count(), joint.count());
        for (a, b) in left.mean().iter().zip(joint.mean()) {
            assert!((a - b).abs() < 1e-10);
        }
        let merged_cov = left.covariance().unwrap();
        let joint_cov = joint.covariance().unwrap();
        assert!(merged_cov.max_abs_diff(&joint_cov).unwrap() < 1e-9);
    }

    #[test]
    fn merge_into_empty_and_of_empty() {
        let x = random_mat(20, 3, 3);
        let full = MomentAccumulator::from_rows(&x);
        let mut empty = MomentAccumulator::new(3);
        empty.merge(&full).unwrap();
        assert_eq!(empty.count(), 20);
        let mut with_empty = full.clone();
        with_empty.merge(&MomentAccumulator::new(3)).unwrap();
        assert_eq!(with_empty.count(), 20);
        assert!(
            with_empty
                .covariance()
                .unwrap()
                .max_abs_diff(&full.covariance().unwrap())
                .unwrap()
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn merge_then_downdate_round_trips() {
        let x = random_mat(120, 9, 7);
        let mut survivors = MomentAccumulator::new(9);
        let mut removed = MomentAccumulator::new(9);
        for (i, row) in x.row_iter().enumerate() {
            if i < 100 {
                survivors.push(row).unwrap();
            } else {
                removed.push(row).unwrap();
            }
        }
        let mut merged = survivors.clone();
        merged.merge(&removed).unwrap();
        assert!(merged.try_downdate(&removed).unwrap());
        assert_eq!(merged.count(), survivors.count());
        for (a, b) in merged.mean().iter().zip(survivors.mean()) {
            assert!((a - b).abs() < 1e-9, "downdated mean diverged: {a} vs {b}");
        }
        let down_cov = merged.covariance().unwrap();
        let ref_cov = survivors.covariance().unwrap();
        assert!(down_cov.max_abs_diff(&ref_cov).unwrap() < 1e-7);
    }

    #[test]
    fn downdate_of_empty_is_a_noop() {
        let x = random_mat(30, 4, 8);
        let mut acc = MomentAccumulator::from_rows(&x);
        let before = acc.covariance().unwrap();
        assert!(acc.try_downdate(&MomentAccumulator::new(4)).unwrap());
        assert_eq!(acc.count(), 30);
        assert_eq!(acc.covariance().unwrap(), before);
    }

    #[test]
    fn downdate_everything_is_an_error() {
        let x = random_mat(10, 3, 9);
        let mut acc = MomentAccumulator::from_rows(&x);
        let all = acc.clone();
        assert!(acc.try_downdate(&all).is_err());
        let mut more = MomentAccumulator::from_rows(&x);
        more.push(&[1.0, 2.0, 3.0]).unwrap();
        assert!(
            acc.try_downdate(&more).is_err(),
            "removing more rows than held"
        );
        assert!(
            acc.try_downdate(&MomentAccumulator::new(2)).is_err(),
            "shape mismatch"
        );
        assert_eq!(acc.count(), 10, "failed downdates must not mutate");
    }

    #[test]
    fn downdate_to_one_row_trips_the_bit_loss_guard() {
        // Two rows, remove one: the surviving co-moment is exactly zero,
        // i.e. total cancellation — the guard must refuse, untouched.
        let mut acc = MomentAccumulator::new(2);
        acc.push(&[1.0, 5.0]).unwrap();
        acc.push(&[3.0, -2.0]).unwrap();
        let mut removed = MomentAccumulator::new(2);
        removed.push(&[3.0, -2.0]).unwrap();
        assert!(!acc.try_downdate(&removed).unwrap());
        assert_eq!(acc.count(), 2);
        assert_eq!(acc.mean(), &[2.0, 1.5]);
    }

    #[test]
    fn downdate_refuses_past_the_fraction_cap() {
        let x = random_mat(100, 5, 10);
        let mut majority = MomentAccumulator::new(5);
        let mut acc = MomentAccumulator::new(5);
        for (i, row) in x.row_iter().enumerate() {
            acc.push(row).unwrap();
            if i < 60 {
                majority.push(row).unwrap();
            }
        }
        let before = acc.covariance().unwrap();
        assert!(!acc.try_downdate(&majority).unwrap());
        assert_eq!(acc.count(), 100);
        assert_eq!(acc.covariance().unwrap(), before, "refusal must not mutate");
    }

    #[test]
    fn errors_on_misuse() {
        let mut acc = MomentAccumulator::new(3);
        assert!(acc.push(&[1.0, 2.0]).is_err());
        assert!(acc.covariance().is_err());
        acc.push(&[1.0, 2.0, 3.0]).unwrap();
        assert!(acc.covariance().is_err(), "one row has no covariance");
        assert!(acc.merge(&MomentAccumulator::new(2)).is_err());
    }

    #[test]
    fn scaling_moments_equals_scaling_rows() {
        let x = random_mat(60, 4, 5);
        let scales = [2.0, 0.5, -1.0, 3.0];
        let mut scaled_moments = MomentAccumulator::from_rows(&x);
        scaled_moments.scale_cols(&scales).unwrap();

        let mut scaled_rows = MomentAccumulator::new(4);
        for row in x.row_iter() {
            let scaled: Vec<f64> = row.iter().zip(&scales).map(|(v, s)| v * s).collect();
            scaled_rows.push(&scaled).unwrap();
        }
        for (a, b) in scaled_moments.mean().iter().zip(scaled_rows.mean()) {
            assert!((a - b).abs() < 1e-10);
        }
        let ca = scaled_moments.covariance().unwrap();
        let cb = scaled_rows.covariance().unwrap();
        assert!(ca.max_abs_diff(&cb).unwrap() < 1e-8);

        assert!(scaled_moments.scale_cols(&[1.0]).is_err());
    }

    #[test]
    fn constant_stream_has_zero_covariance() {
        let mut acc = MomentAccumulator::new(2);
        for _ in 0..50 {
            acc.push(&[4.0, -1.0]).unwrap();
        }
        assert_eq!(acc.mean(), &[4.0, -1.0]);
        let cov = acc.covariance().unwrap();
        assert!(cov.as_slice().iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn non_finite_rows_are_rejected_without_touching_state() {
        let mut acc = MomentAccumulator::new(2);
        acc.push(&[1.0, 2.0]).unwrap();
        let before_mean = acc.mean().to_vec();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                acc.push(&[bad, 0.0]),
                Err(LinalgError::Domain { .. })
            ));
        }
        // The rejected rows left count, mean, and comoment untouched —
        // the accumulator keeps working as if they were never offered.
        assert_eq!(acc.count(), 1);
        assert_eq!(acc.mean(), before_mean.as_slice());
        acc.push(&[3.0, 4.0]).unwrap();
        assert_eq!(acc.mean(), &[2.0, 3.0]);
        assert!(acc
            .covariance()
            .unwrap()
            .as_slice()
            .iter()
            .all(|v| v.is_finite()));
    }
}
