//! Property-based tests for the dense linear-algebra kernels.
//!
//! These check algebraic identities on randomly generated inputs rather
//! than hand-picked cases: transpose involution, (AB)^T = B^T A^T,
//! eigen reconstruction, orthonormality, PCA residual orthogonality, and
//! monotonicity/symmetry of the normal quantile.

use entromine_linalg::{
    stats, sym_eigen, sym_trace_cubed, top_k_eigen_detailed, top_k_eigen_detailed_warm, Mat,
    MomentAccumulator, Pca,
};
use proptest::prelude::*;

/// Strategy: a rows x cols matrix with entries in [-10, 10].
fn mat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Mat::from_vec(rows, cols, data))
}

/// Strategy: a symmetric PSD matrix B^T B with B of shape (rows, n).
fn psd_strategy(n: usize, rows: usize) -> impl Strategy<Value = Mat> {
    mat_strategy(rows, n).prop_map(|b| {
        b.transpose()
            .matmul(&b)
            .expect("shapes match by construction")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(m in mat_strategy(4, 7)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_transpose_identity(a in mat_strategy(3, 4), b in mat_strategy(4, 5)) {
        let ab_t = a.matmul(&b).unwrap().transpose();
        let bt_at = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(ab_t.max_abs_diff(&bt_at).unwrap() < 1e-9);
    }

    #[test]
    fn matmul_associates_with_vectors(a in mat_strategy(4, 4), v in proptest::collection::vec(-5.0f64..5.0, 4)) {
        // (A A) v == A (A v)
        let lhs = a.matmul(&a).unwrap().matvec(&v).unwrap();
        let av = a.matvec(&v).unwrap();
        let rhs = a.matvec(&av).unwrap();
        for (l, r) in lhs.iter().zip(&rhs) {
            prop_assert!((l - r).abs() < 1e-7);
        }
    }

    #[test]
    fn covariance_is_symmetric_psd_diag(m in mat_strategy(12, 5)) {
        let c = m.covariance().unwrap();
        prop_assert!(c.is_symmetric(1e-9));
        for i in 0..5 {
            prop_assert!(c[(i, i)] >= -1e-12, "variance must be nonnegative");
        }
    }

    #[test]
    fn eigen_reconstructs(a in psd_strategy(5, 8)) {
        let e = sym_eigen(&a).unwrap();
        let n = a.rows();
        let mut lam = Mat::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = e.values[i];
        }
        let recon = e.vectors.matmul(&lam).unwrap().matmul(&e.vectors.transpose()).unwrap();
        let scale = a.frobenius_norm().max(1.0);
        prop_assert!(recon.max_abs_diff(&a).unwrap() < 1e-8 * scale);
    }

    #[test]
    fn eigenvalues_sorted_and_nonnegative_for_psd(a in psd_strategy(6, 9)) {
        let e = sym_eigen(&a).unwrap();
        for w in e.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-10, "eigenvalues must be descending");
        }
        let scale = a.frobenius_norm().max(1.0);
        for v in &e.values {
            prop_assert!(*v >= -1e-9 * scale, "PSD eigenvalue negative: {}", v);
        }
    }

    #[test]
    fn eigenvectors_orthonormal(a in psd_strategy(5, 7)) {
        let e = sym_eigen(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        prop_assert!(vtv.max_abs_diff(&Mat::identity(a.rows())).unwrap() < 1e-8);
    }

    #[test]
    fn pca_residual_orthogonal_to_normal_part(m in mat_strategy(20, 4), row in 0usize..20) {
        let pca = Pca::fit(&m).unwrap();
        let x = m.row(row);
        let hat = pca.reconstruct(x, 2).unwrap();
        let tilde = pca.residual(x, 2).unwrap();
        let dot: f64 = hat.iter().zip(&tilde).map(|(a, b)| a * b).sum();
        let scale = (hat.iter().map(|v| v * v).sum::<f64>()
            * tilde.iter().map(|v| v * v).sum::<f64>()).sqrt().max(1.0);
        prop_assert!(dot.abs() < 1e-8 * scale, "normal and residual parts must be orthogonal");
    }

    #[test]
    fn pca_spe_monotone_in_components(m in mat_strategy(25, 5), row in 0usize..25) {
        let pca = Pca::fit(&m).unwrap();
        let x = m.row(row);
        let mut prev = f64::INFINITY;
        for k in 0..=5 {
            let spe = pca.spe(x, k).unwrap();
            prop_assert!(spe <= prev + 1e-9, "SPE must not grow with more components");
            prev = spe;
        }
    }

    #[test]
    fn quantile_monotone(p1 in 0.001f64..0.999, p2 in 0.001f64..0.999) {
        let (lo, hi) = if p1 < p2 { (p1, p2) } else { (p2, p1) };
        prop_assume!(hi - lo > 1e-12);
        prop_assert!(stats::inv_norm_cdf(lo) < stats::inv_norm_cdf(hi));
    }

    #[test]
    fn quantile_roundtrip(p in 0.001f64..0.999) {
        let x = stats::inv_norm_cdf(p);
        prop_assert!((stats::norm_cdf(x) - p).abs() < 1e-5);
    }

    #[test]
    fn quantile_antisymmetric(p in 0.001f64..0.5) {
        let a = stats::inv_norm_cdf(p);
        let b = stats::inv_norm_cdf(1.0 - p);
        prop_assert!((a + b).abs() < 1e-8);
    }

    #[test]
    fn blocked_covariance_equals_serial(m in mat_strategy(70, 9)) {
        // The blocked scoped-thread kernel must agree with the serial
        // reference *bitwise*, not just to tolerance.
        let blocked = m.covariance_blocked().unwrap();
        let serial = m.covariance_serial().unwrap();
        let adaptive = m.covariance().unwrap();
        prop_assert_eq!(blocked.as_slice(), serial.as_slice());
        prop_assert_eq!(adaptive.as_slice(), serial.as_slice());
    }

    #[test]
    fn streamed_moments_match_batch_covariance(m in mat_strategy(40, 6)) {
        let acc = MomentAccumulator::from_rows(&m);
        let streamed = acc.covariance().unwrap();
        let batch = m.covariance().unwrap();
        // Welford vs. two-pass differ only by round-off.
        prop_assert!(streamed.max_abs_diff(&batch).unwrap() < 1e-8);
        for (a, b) in acc.mean().iter().zip(m.col_means()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn moment_merge_is_order_insensitive(m in mat_strategy(30, 5), split in 1usize..29) {
        let mut left = MomentAccumulator::new(5);
        let mut right = MomentAccumulator::new(5);
        for (i, row) in m.row_iter().enumerate() {
            if i < split { left.push(row).unwrap() } else { right.push(row).unwrap() }
        }
        left.merge(&right).unwrap();
        let joint = MomentAccumulator::from_rows(&m);
        prop_assert!(
            left.covariance().unwrap().max_abs_diff(&joint.covariance().unwrap()).unwrap() < 1e-8
        );
    }

    #[test]
    fn trace_cubed_is_the_eigenvalue_cube_sum(a in psd_strategy(9, 12)) {
        let s3 = sym_trace_cubed(&a).unwrap();
        let reference: f64 = sym_eigen(&a).unwrap().values.iter().map(|l| l * l * l).sum();
        let scale = reference.abs().max(1.0);
        prop_assert!((s3 - reference).abs() < 1e-9 * scale, "{} vs {}", s3, reference);
    }

    #[test]
    fn hardened_top_k_certifies_its_pairs(a in psd_strategy(14, 20), k in 1usize..7) {
        let (top, info) = top_k_eigen_detailed(&a, k, 99).unwrap();
        prop_assert!(info.converged, "{:?}", info);
        let full = sym_eigen(&a).unwrap();
        let lead = full.values[0].max(1e-12);
        // Residual-norm certificate honored, values match the oracle.
        prop_assert!(info.max_residual <= 1e-10 * lead, "{:?}", info);
        for i in 0..k {
            prop_assert!(
                (top.values[i] - full.values[i]).abs() < 1e-8 * lead,
                "pair {}: {} vs {}", i, top.values[i], full.values[i]
            );
        }
        // Returned axes are orthonormal.
        let vtv = top.vectors.transpose().matmul(&top.vectors).unwrap();
        prop_assert!(vtv.max_abs_diff(&Mat::identity(k)).unwrap() < 1e-8);
    }

    #[test]
    fn partial_fit_spectrum_sums_are_exact(m in mat_strategy(40, 24), mm in 0usize..6) {
        // Residual power sums from the deflated-tail identities must match
        // the full spectrum's, at every admissible cut.
        let full = Pca::fit(&m).unwrap();
        let partial = Pca::fit_partial(&m, 8).unwrap();
        let trace = full.total_variance();
        prop_assert!((partial.total_variance() - trace).abs() < 1e-9 * (1.0 + trace.abs()));
        let a = full.residual_power_sums(mm).unwrap();
        let b = partial.residual_power_sums(mm).unwrap();
        let scale = 1.0 + trace.abs();
        prop_assert!((a.phi1 - b.phi1).abs() < 1e-8 * scale, "{} vs {}", a.phi1, b.phi1);
        prop_assert!((a.phi2 - b.phi2).abs() < 1e-8 * scale * scale, "{} vs {}", a.phi2, b.phi2);
        prop_assert!(
            (a.phi3 - b.phi3).abs() < 1e-8 * scale * scale * scale,
            "{} vs {}", a.phi3, b.phi3
        );
    }

    #[test]
    fn warm_started_top_k_matches_cold(a in psd_strategy(14, 20), k in 1usize..7) {
        let (cold, _) = top_k_eigen_detailed(&a, k, 99).unwrap();
        // Seeding with the answer itself must converge almost immediately
        // and land on the same eigenvalues.
        let (warm, info) = top_k_eigen_detailed_warm(&a, k, 99, &cold.vectors).unwrap();
        prop_assert!(info.converged, "{:?}", info);
        prop_assert!(info.iterations <= 3, "perfect guess took {} cycles", info.iterations);
        let lead = cold.values[0].max(1e-12);
        for i in 0..k {
            prop_assert!(
                (warm.values[i] - cold.values[i]).abs() < 1e-8 * lead,
                "pair {}: warm {} vs cold {}", i, warm.values[i], cold.values[i]
            );
        }
        let vtv = warm.vectors.transpose().matmul(&warm.vectors).unwrap();
        prop_assert!(vtv.max_abs_diff(&Mat::identity(k)).unwrap() < 1e-8);
    }

    #[test]
    fn downdate_inverts_merge_or_refuses_cleanly(m in mat_strategy(40, 5), nb in 1usize..20) {
        // Moment downdate is merge run backwards: removing the merged-in
        // rows must land back on the never-merged survivors — or, when the
        // numerical-safety guard trips, refuse without touching anything.
        let mut survivors = MomentAccumulator::new(5);
        let mut removed = MomentAccumulator::new(5);
        for (i, row) in m.row_iter().enumerate() {
            if i < 40 - nb { survivors.push(row).unwrap() } else { removed.push(row).unwrap() }
        }
        let mut merged = survivors.clone();
        merged.merge(&removed).unwrap();
        let before = merged.covariance().unwrap();
        if merged.try_downdate(&removed).unwrap() {
            prop_assert_eq!(merged.count(), survivors.count());
            for (a, b) in merged.mean().iter().zip(survivors.mean()) {
                prop_assert!((a - b).abs() < 1e-8, "mean {} vs {}", a, b);
            }
            let down = merged.covariance().unwrap();
            let reference = survivors.covariance().unwrap();
            prop_assert!(down.max_abs_diff(&reference).unwrap() < 1e-6);
        } else {
            prop_assert_eq!(merged.count(), 40);
            let untouched = merged.covariance().unwrap();
            prop_assert_eq!(untouched.as_slice(), before.as_slice());
        }
    }

    #[test]
    fn gram_fit_scores_like_covariance_fit(m in mat_strategy(12, 20), k in 0usize..6) {
        // Wide matrix: Gram path carries at most 12 axes; both models must
        // assign every row the same residual magnitude.
        let cov_path = Pca::fit(&m).unwrap();
        let gram_path = Pca::fit_gram(&m).unwrap();
        prop_assume!(k <= gram_path.n_axes());
        for row in m.row_iter() {
            let a = cov_path.spe(row, k).unwrap();
            let b = gram_path.spe(row, k).unwrap();
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "spe {} vs {}", a, b);
        }
    }
}
