//! Equivalence pins for the dispatched kernel tier and the blocked
//! tridiagonal eigensolver.
//!
//! Two families of contracts:
//!
//! * **Kernel pins** — `axpy` and `dot4` must be *bitwise* identical on
//!   every backend this host can run (scalar, SSE2, AVX2), asserted
//!   through the explicit `*_on` seam so one process certifies every
//!   implementation. CI additionally runs this suite under
//!   `ENTROMINE_FORCE_SCALAR=1`, which pins the auto-dispatch seam itself.
//! * **Eigensolver pins** — `sym_eigen` (blocked tridiagonal pipeline)
//!   against `sym_eigen_ql` (the retained QL spec) at sizes where the fast
//!   path actually engages (n ≥ 32): eigenvalues to 1e-8 relative,
//!   orthonormal vectors, and matching reconstructions, including the
//!   adversarial spectra (clusters, exact repeats, rank deficiency) that
//!   inverse iteration finds hardest.

use entromine_linalg::kernel::{available_backends, axpy_on, dot4_on, Backend};
use entromine_linalg::{sym_eigen, sym_eigen_ql, Mat};
use proptest::prelude::*;

/// Strategy: a rows x cols matrix with entries in [-10, 10].
fn mat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Mat::from_vec(rows, cols, data))
}

/// Strategy: a symmetric PSD matrix B^T B with B of shape (rows, n).
fn psd_strategy(n: usize, rows: usize) -> impl Strategy<Value = Mat> {
    mat_strategy(rows, n).prop_map(|b| {
        b.transpose()
            .matmul(&b)
            .expect("shapes match by construction")
    })
}

/// Asserts the two solvers agree on a symmetric input: same eigenvalues to
/// 1e-8 relative, orthonormal fast-path vectors, and reconstructions that
/// match the input equally well.
fn assert_solvers_agree(a: &Mat, what: &str) {
    let fast = sym_eigen(a).expect("fast path");
    let oracle = sym_eigen_ql(a).expect("ql oracle");
    let n = a.rows();
    let scale = oracle.values.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    for (i, (f, q)) in fast.values.iter().zip(&oracle.values).enumerate() {
        assert!(
            (f - q).abs() <= 1e-8 * scale.max(1.0),
            "{what}: eigenvalue {i} disagrees: fast {f} vs ql {q} (scale {scale})"
        );
    }
    // Orthonormality of the fast path's vectors.
    let vt_v = fast
        .vectors
        .transpose()
        .matmul(&fast.vectors)
        .expect("square");
    let id = Mat::identity(n);
    let ortho = vt_v.max_abs_diff(&id).expect("same shape");
    assert!(ortho <= 1e-8, "{what}: VᵀV deviates from I by {ortho}");
    // Reconstruction: V Λ Vᵀ must reproduce the input as well as the
    // oracle does (clusters make per-vector comparison meaningless; the
    // reconstruction is basis-free).
    let mut lam = Mat::zeros(n, n);
    for i in 0..n {
        lam[(i, i)] = fast.values[i];
    }
    let recon = fast
        .vectors
        .matmul(&lam)
        .expect("square")
        .matmul(&fast.vectors.transpose())
        .expect("square");
    let err = recon.max_abs_diff(a).expect("same shape");
    assert!(
        err <= 1e-8 * scale.max(1.0),
        "{what}: reconstruction error {err} (scale {scale})"
    );
}

/// A symmetric matrix with a prescribed spectrum: Q Λ Qᵀ for a fixed
/// orthonormal Q built by QR-free Householder chaining from a seeded
/// start (deterministic — no RNG state shared with anything else).
fn matrix_with_spectrum(values: &[f64], seed: u64) -> Mat {
    let n = values.len();
    // Build an orthonormal Q by Gram–Schmidt on a deterministic
    // pseudo-random basis.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let mut q = Mat::zeros(n, n);
    for j in 0..n {
        let mut col: Vec<f64> = (0..n).map(|_| next()).collect();
        for p in 0..j {
            let mut proj = 0.0;
            for r in 0..n {
                proj += col[r] * q[(r, p)];
            }
            for r in 0..n {
                col[r] -= proj * q[(r, p)];
            }
        }
        let norm = col.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm > 1e-8, "degenerate basis draw");
        for r in 0..n {
            q[(r, j)] = col[r] / norm;
        }
    }
    let mut lam = Mat::zeros(n, n);
    for i in 0..n {
        lam[(i, i)] = values[i];
    }
    let a = q
        .matmul(&lam)
        .expect("square")
        .matmul(&q.transpose())
        .expect("square");
    // Symmetrize away the last-bit asymmetry from forming the product.
    let mut s = a.clone();
    for i in 0..n {
        for j in 0..n {
            s[(i, j)] = 0.5 * (a[(i, j)] + a[(j, i)]);
        }
    }
    s
}

#[test]
fn eigen_agrees_on_clustered_spectrum() {
    // Tight cluster, exact repeats, and a slowly decaying tail — the
    // stress shape for shifted inverse iteration.
    let mut values = vec![10.0, 10.0, 10.0, 7.0, 7.0 - 1e-9, 4.0];
    values.extend((0..42).map(|i| 0.5 - 1e-3 * i as f64));
    let a = matrix_with_spectrum(&values, 0x5eed);
    assert_solvers_agree(&a, "clustered spectrum n=48");
}

#[test]
fn eigen_agrees_on_scaled_identity() {
    // Fully degenerate spectrum: any orthonormal basis is correct.
    let mut a = Mat::identity(40);
    a.scale(2.0);
    assert_solvers_agree(&a, "2·I n=40");
}

#[test]
fn eigen_agrees_on_zero_matrix() {
    assert_solvers_agree(&Mat::zeros(40, 40), "zero matrix n=40");
}

#[test]
fn eigen_agrees_on_rank_deficient() {
    // Rank 6 in a 40-dimensional space: a 34-fold zero eigenvalue.
    let b = matrix_with_spectrum(
        &[9.0, 5.0, 3.0, 2.0, 1.0, 0.5]
            .iter()
            .copied()
            .chain(std::iter::repeat_n(0.0, 34))
            .collect::<Vec<_>>(),
        0xfeed,
    );
    assert_solvers_agree(&b, "rank-deficient n=40");
}

#[test]
fn eigen_agrees_on_wide_dynamic_range() {
    let values: Vec<f64> = (0..36).map(|i| 1e6 * (0.5f64).powi(i)).collect();
    let a = matrix_with_spectrum(&values, 0xabcd);
    assert_solvers_agree(&a, "wide dynamic range n=36");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn eigen_agrees_on_random_psd(a in psd_strategy(33, 40)) {
        assert_solvers_agree(&a, "random psd n=33");
    }

    #[test]
    fn axpy_bitwise_on_every_backend(
        acc in proptest::collection::vec(-1e6f64..1e6, 0..97),
        x in -1e3f64..1e3,
        seed in any::<u64>(),
    ) {
        // ys derived from the seed so lengths always match acc.
        let mut state = seed | 1;
        let ys: Vec<f64> = (0..acc.len()).map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        }).collect();
        let mut reference = acc.clone();
        axpy_on(Backend::Scalar, &mut reference, x, &ys);
        for backend in available_backends() {
            let mut got = acc.clone();
            axpy_on(backend, &mut got, x, &ys);
            for (i, (g, r)) in got.iter().zip(&reference).enumerate() {
                prop_assert_eq!(
                    g.to_bits(), r.to_bits(),
                    "axpy lane {} differs on {:?}", i, backend
                );
            }
        }
    }

    #[test]
    fn dot4_bitwise_on_every_backend(
        a in proptest::collection::vec(-1e6f64..1e6, 0..97),
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let b: Vec<f64> = (0..a.len()).map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        }).collect();
        let reference = dot4_on(Backend::Scalar, &a, &b);
        for backend in available_backends() {
            let got = dot4_on(backend, &a, &b);
            prop_assert_eq!(
                got.to_bits(), reference.to_bits(),
                "dot4 differs on {:?}: {} vs {}", backend, got, reference
            );
        }
    }
}

/// Manual perf probe (not a CI assertion): `cargo test --release -p
/// entromine-linalg --test kernel_equivalence -- --ignored --nocapture`.
#[test]
#[ignore = "timing probe, run manually"]
fn eigen_speed_probe() {
    let n = 300;
    let values: Vec<f64> = (0..n).map(|i| 1e3 / (1.0 + i as f64)).collect();
    let a = matrix_with_spectrum(&values, 0x9a5e);
    let mut best_fast = f64::INFINITY;
    let mut best_ql = f64::INFINITY;
    for rep in 0..5 {
        let t0 = std::time::Instant::now();
        let fast = sym_eigen(&a).expect("fast");
        let t_fast = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let oracle = sym_eigen_ql(&a).expect("ql");
        let t_ql = t1.elapsed().as_secs_f64();
        best_fast = best_fast.min(t_fast);
        best_ql = best_ql.min(t_ql);
        println!(
            "n={n} rep {rep}: fast {:.3}ms ql {:.3}ms ratio {:.2} (lead fast {:.6} ql {:.6})",
            t_fast * 1e3,
            t_ql * 1e3,
            t_ql / t_fast,
            fast.values[0],
            oracle.values[0],
        );
    }
    println!(
        "n={n} best-of-5: fast {:.3}ms ql {:.3}ms ratio {:.2}",
        best_fast * 1e3,
        best_ql * 1e3,
        best_ql / best_fast
    );
}
