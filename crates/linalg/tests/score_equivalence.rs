//! Pins the fused scoring plane ([`ScorePlan`]) against the reference
//! project–reconstruct–residual chain ([`Pca::spe_reference`]):
//!
//! * random models × random probe rows agree to ≤1e-10 relative SPE
//!   (plus a rounding floor proportional to the centered energy, which is
//!   what the norm identity's subtraction is conditioned on);
//! * rows lying inside the modeled subspace provably take the
//!   cancellation-guard fallback and still score ≈0;
//! * the guard threshold itself behaves as documented (fallback SPE is
//!   never negative).
//!
//! CI runs this suite under auto dispatch, `ENTROMINE_FORCE_SCALAR`, and
//! `ENTROMINE_FORCE_REFERENCE_SCORE`, so the agreement holds on every
//! kernel tier and the pin seam stays exercised.

use entromine_linalg::{Mat, Pca};
use proptest::prelude::*;

/// Fits a PCA over `rows × cols` data packed row-major.
fn fit(rows: usize, cols: usize, data: &[f64]) -> Pca {
    let x = Mat::from_fn(rows, cols, |i, j| data[i * cols + j]);
    Pca::fit(&x).expect("random matrix fits")
}

/// Centered energy `‖x − μ‖²` — the quantity the norm identity subtracts
/// from, and therefore the natural scale of its rounding error.
fn centered_energy(pca: &Pca, probe: &[f64]) -> f64 {
    probe
        .iter()
        .zip(pca.mean())
        .map(|(v, mu)| (v - mu) * (v - mu))
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plan_matches_reference_spe(
        data in proptest::collection::vec(-10.0f64..10.0, 40 * 7),
        probe in proptest::collection::vec(-10.0f64..10.0, 7),
    ) {
        let pca = fit(40, 7, &data);
        for m in [1usize, 3, 5] {
            let plan = pca.score_plan(m).unwrap();
            let reference = pca.spe_reference(&probe, m).unwrap();
            let fused = plan.spe(&probe).unwrap();
            let c2 = centered_energy(&pca, &probe);
            // ≤1e-10 relative, plus a c2-scaled floor: when the row sits
            // (nearly) inside the subspace both paths compute rounding
            // noise of scale eps·c2, and only the floor is meaningful.
            let tol = 1e-10 * reference.abs() + 1e-13 * c2;
            prop_assert!(
                (fused - reference).abs() <= tol,
                "m={m}: fused {fused} vs reference {reference} (c2 {c2})"
            );
            prop_assert!(fused >= 0.0, "SPE must stay nonnegative: {fused}");
        }
    }

    #[test]
    fn wide_models_agree_too(
        data in proptest::collection::vec(-3.0f64..3.0, 30 * 24),
        probe in proptest::collection::vec(-3.0f64..3.0, 24),
    ) {
        // Wider than the kernel tier's 8/4-row tiles, so every tile shape
        // (x8, x4, singles) participates in the score pass.
        let pca = fit(30, 24, &data);
        for m in [2usize, 9, 13] {
            let plan = pca.score_plan(m).unwrap();
            let reference = pca.spe_reference(&probe, m).unwrap();
            let fused = plan.spe(&probe).unwrap();
            let c2 = centered_energy(&pca, &probe);
            let tol = 1e-10 * reference.abs() + 1e-13 * c2;
            prop_assert!(
                (fused - reference).abs() <= tol,
                "m={m}: fused {fused} vs reference {reference} (c2 {c2})"
            );
        }
    }

    #[test]
    fn in_subspace_rows_take_the_guard(
        data in proptest::collection::vec(-5.0f64..5.0, 50 * 9),
        coeffs in proptest::collection::vec(0.5f64..4.0, 3),
    ) {
        let pca = fit(50, 9, &data);
        let m = 3;
        let plan = pca.score_plan(m).unwrap();
        // x = μ + Σⱼ aⱼ·vⱼ lies exactly in the modeled subspace: the
        // fused SPE is pure cancellation and the guard MUST reroute to
        // the materialized-residual fallback.
        let axes = pca.components();
        let x: Vec<f64> = (0..9)
            .map(|i| {
                let mut v = pca.mean()[i];
                for (j, &a) in coeffs.iter().enumerate().take(m) {
                    v += a * axes[(i, j)];
                }
                v
            })
            .collect();
        let (spe, fell_back) = plan.spe_checked(&x).unwrap();
        prop_assert!(fell_back, "in-subspace row must trip the guard");
        let c2 = centered_energy(&pca, &x);
        prop_assert!(c2 > 0.1, "coefficients keep the row off the mean");
        prop_assert!(
            spe >= 0.0 && spe <= 1e-10 * c2,
            "guarded SPE must be ~0: {spe} (c2 {c2})"
        );
        // And the reference chain agrees it is ~0.
        let reference = pca.spe_reference(&x, m).unwrap();
        prop_assert!(reference <= 1e-10 * c2);
    }

    #[test]
    fn batch_replays_per_row_bitwise(
        data in proptest::collection::vec(-4.0f64..4.0, 35 * 11),
        probes in proptest::collection::vec(-4.0f64..4.0, 11 * 6),
    ) {
        let pca = fit(35, 11, &data);
        let plan = pca.score_plan(4).unwrap();
        let rows: Vec<&[f64]> = probes.chunks(11).collect();
        let mut batch = Vec::new();
        plan.spe_batch(rows.iter().copied(), &mut batch).unwrap();
        prop_assert_eq!(batch.len(), rows.len());
        for (row, &b) in rows.iter().zip(&batch) {
            let one = plan.spe(row).unwrap();
            prop_assert_eq!(
                one.to_bits(),
                b.to_bits(),
                "batch and per-row scoring must be the same arithmetic"
            );
        }
    }
}

#[test]
fn guard_fallback_is_observable_and_clean_rows_are_not_fallbacks() {
    // Deterministic complement of the proptests: a mean row scores
    // exactly 0 without the fallback, an in-subspace row with it.
    let data: Vec<f64> = (0..40 * 6)
        .map(|i| ((i * 31 % 17) as f64) - 8.0 + 0.01 * i as f64)
        .collect();
    let pca = fit(40, 6, &data);
    let plan = pca.score_plan(2).unwrap();

    let (spe, fell_back) = plan.spe_checked(pca.mean()).unwrap();
    assert_eq!(spe, 0.0);
    assert!(!fell_back, "x == mean is a clean zero, not cancellation");

    let axes = pca.components();
    let x: Vec<f64> = (0..6)
        .map(|i| pca.mean()[i] + 2.5 * axes[(i, 0)] - 1.5 * axes[(i, 1)])
        .collect();
    let (spe, fell_back) = plan.spe_checked(&x).unwrap();
    assert!(fell_back, "in-subspace row must trip the guard");
    assert!((0.0..1e-10).contains(&spe), "guarded SPE ~0: {spe}");
}

#[test]
fn t2_matches_reference_projection() {
    let data: Vec<f64> = (0..60 * 8)
        .map(|i| ((i * 13 % 29) as f64 / 7.0) - 2.0)
        .collect();
    let pca = fit(60, 8, &data);
    let m = 4;
    let plan = pca.score_plan(m).unwrap();
    let floor = 1e-12 * pca.total_variance().max(1e-300);
    let probe: Vec<f64> = (0..8).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();

    let scores = pca.project(&probe, m).unwrap();
    let reference: f64 = scores
        .iter()
        .zip(pca.eigenvalues())
        .filter(|(_, &l)| l > floor)
        .map(|(s, &l)| s * s / l)
        .sum();
    let fused = plan.t2(&probe, pca.eigenvalues(), floor).unwrap();
    assert!(
        (fused - reference).abs() <= 1e-10 * (1.0 + reference.abs()),
        "{fused} vs {reference}"
    );
    let (spe, t2) = plan.spe_t2(&probe, pca.eigenvalues(), floor).unwrap();
    assert_eq!(
        t2.to_bits(),
        fused.to_bits(),
        "spe_t2 shares the score pass"
    );
    assert_eq!(
        spe.to_bits(),
        plan.spe(&probe).unwrap().to_bits(),
        "spe_t2's SPE is the plan SPE"
    );
}
