//! PoP-level backbone topologies.
//!
//! The paper evaluates on two networks: **Abilene**, the Internet2 backbone
//! (11 PoPs across the continental US), and **Geant**, the European research
//! network (22 PoPs, "twice as large as Abilene"). The OD-flow analysis
//! itself only needs the PoP count, but the topology (links, shortest
//! paths) grounds the synthetic generator — e.g. outage anomalies shift
//! traffic between OD pairs that share links.
//!
//! The Abilene adjacency below is the real 2003-era 14-link backbone. The
//! Geant adjacency is an approximation of the 2004 topology (the OD-level
//! experiments depend only on the PoP count; see DESIGN.md).

use std::collections::VecDeque;

/// Index of a Point of Presence within a [`Topology`].
pub type PopId = usize;

/// A Point of Presence: one city-level router site of the backbone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pop {
    /// Short router code, e.g. `"IPLS"`.
    pub code: &'static str,
    /// City the PoP serves.
    pub city: &'static str,
}

/// A PoP-level backbone topology: nodes plus bidirectional links.
#[derive(Debug, Clone)]
pub struct Topology {
    name: &'static str,
    pops: Vec<Pop>,
    links: Vec<(PopId, PopId)>,
    adjacency: Vec<Vec<PopId>>,
}

impl Topology {
    /// Builds a topology from a PoP list and a bidirectional link list.
    ///
    /// # Panics
    ///
    /// Panics if a link endpoint is out of range or a link is a self-loop.
    pub fn new(name: &'static str, pops: Vec<Pop>, links: Vec<(PopId, PopId)>) -> Self {
        let n = pops.len();
        let mut adjacency = vec![Vec::new(); n];
        for &(a, b) in &links {
            assert!(a < n && b < n, "link endpoint out of range");
            assert_ne!(a, b, "self-loop links are not allowed");
            adjacency[a].push(b);
            adjacency[b].push(a);
        }
        for adj in &mut adjacency {
            adj.sort_unstable();
            adj.dedup();
        }
        Topology {
            name,
            pops,
            links,
            adjacency,
        }
    }

    /// Human-readable network name (`"abilene"`, `"geant"`, ...).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of PoPs (`p` in the paper's notation).
    pub fn n_pops(&self) -> usize {
        self.pops.len()
    }

    /// Number of OD flows: `p^2`, counting self-pairs, matching the paper's
    /// 121 (Abilene) and 484 (Geant).
    pub fn n_od_flows(&self) -> usize {
        self.pops.len() * self.pops.len()
    }

    /// The PoP records.
    pub fn pops(&self) -> &[Pop] {
        &self.pops
    }

    /// The bidirectional backbone links.
    pub fn links(&self) -> &[(PopId, PopId)] {
        &self.links
    }

    /// PoPs directly connected to `pop`.
    pub fn neighbors(&self, pop: PopId) -> &[PopId] {
        &self.adjacency[pop]
    }

    /// Looks up a PoP by its router code.
    pub fn pop_by_code(&self, code: &str) -> Option<PopId> {
        self.pops.iter().position(|p| p.code == code)
    }

    /// Shortest path (fewest hops) between two PoPs, inclusive of both
    /// endpoints. Returns `None` if the graph is disconnected between them.
    ///
    /// Ties are broken deterministically by neighbor order.
    pub fn shortest_path(&self, from: PopId, to: PopId) -> Option<Vec<PopId>> {
        if from == to {
            return Some(vec![from]);
        }
        let n = self.pops.len();
        let mut prev: Vec<Option<PopId>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[from] = true;
        queue.push_back(from);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adjacency[u] {
                if !seen[v] {
                    seen[v] = true;
                    prev[v] = Some(u);
                    if v == to {
                        // Reconstruct.
                        let mut path = vec![to];
                        let mut cur = to;
                        while let Some(p) = prev[cur] {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// `true` if every PoP can reach every other PoP.
    pub fn is_connected(&self) -> bool {
        if self.pops.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.pops.len()];
        let mut queue = VecDeque::new();
        seen[0] = true;
        queue.push_back(0);
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &v in &self.adjacency[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count == self.pops.len()
    }

    /// The 2003-era Abilene backbone: 11 PoPs, 14 links.
    pub fn abilene() -> Self {
        let pops = vec![
            Pop {
                code: "ATLA",
                city: "Atlanta",
            },
            Pop {
                code: "CHIN",
                city: "Chicago",
            },
            Pop {
                code: "DNVR",
                city: "Denver",
            },
            Pop {
                code: "HSTN",
                city: "Houston",
            },
            Pop {
                code: "IPLS",
                city: "Indianapolis",
            },
            Pop {
                code: "KSCY",
                city: "Kansas City",
            },
            Pop {
                code: "LOSA",
                city: "Los Angeles",
            },
            Pop {
                code: "NYCM",
                city: "New York",
            },
            Pop {
                code: "SNVA",
                city: "Sunnyvale",
            },
            Pop {
                code: "STTL",
                city: "Seattle",
            },
            Pop {
                code: "WASH",
                city: "Washington DC",
            },
        ];
        // Codes:    ATLA=0 CHIN=1 DNVR=2 HSTN=3 IPLS=4 KSCY=5
        //           LOSA=6 NYCM=7 SNVA=8 STTL=9 WASH=10
        let links = vec![
            (0, 3),  // ATLA-HSTN
            (0, 4),  // ATLA-IPLS
            (0, 10), // ATLA-WASH
            (1, 4),  // CHIN-IPLS
            (1, 7),  // CHIN-NYCM
            (2, 5),  // DNVR-KSCY
            (2, 8),  // DNVR-SNVA
            (2, 9),  // DNVR-STTL
            (3, 5),  // HSTN-KSCY
            (3, 6),  // HSTN-LOSA
            (4, 5),  // IPLS-KSCY
            (6, 8),  // LOSA-SNVA
            (7, 10), // NYCM-WASH
            (8, 9),  // SNVA-STTL
        ];
        Topology::new("abilene", pops, links)
    }

    /// A 22-PoP model of the 2004-era Geant network.
    ///
    /// PoP set matches the national research networks Geant connected at the
    /// time; the link set is an approximation of the public topology maps
    /// (the paper's experiments depend only on the PoP count `p = 22`,
    /// giving `484` OD flows).
    pub fn geant() -> Self {
        let pops = vec![
            Pop {
                code: "AT",
                city: "Vienna",
            },
            Pop {
                code: "BE",
                city: "Brussels",
            },
            Pop {
                code: "CH",
                city: "Geneva",
            },
            Pop {
                code: "CZ",
                city: "Prague",
            },
            Pop {
                code: "DE",
                city: "Frankfurt",
            },
            Pop {
                code: "ES",
                city: "Madrid",
            },
            Pop {
                code: "FR",
                city: "Paris",
            },
            Pop {
                code: "GR",
                city: "Athens",
            },
            Pop {
                code: "HR",
                city: "Zagreb",
            },
            Pop {
                code: "HU",
                city: "Budapest",
            },
            Pop {
                code: "IE",
                city: "Dublin",
            },
            Pop {
                code: "IL",
                city: "Tel Aviv",
            },
            Pop {
                code: "IT",
                city: "Milan",
            },
            Pop {
                code: "LU",
                city: "Luxembourg",
            },
            Pop {
                code: "NL",
                city: "Amsterdam",
            },
            Pop {
                code: "PL",
                city: "Poznan",
            },
            Pop {
                code: "PT",
                city: "Lisbon",
            },
            Pop {
                code: "SE",
                city: "Stockholm",
            },
            Pop {
                code: "SI",
                city: "Ljubljana",
            },
            Pop {
                code: "SK",
                city: "Bratislava",
            },
            Pop {
                code: "UK",
                city: "London",
            },
            Pop {
                code: "RO",
                city: "Bucharest",
            },
        ];
        // Index key: AT=0 BE=1 CH=2 CZ=3 DE=4 ES=5 FR=6 GR=7 HR=8 HU=9 IE=10
        //            IL=11 IT=12 LU=13 NL=14 PL=15 PT=16 SE=17 SI=18 SK=19
        //            UK=20 RO=21
        let links = vec![
            (0, 3),   // AT-CZ
            (0, 4),   // AT-DE
            (0, 9),   // AT-HU
            (0, 18),  // AT-SI
            (0, 19),  // AT-SK
            (1, 6),   // BE-FR
            (1, 14),  // BE-NL
            (2, 4),   // CH-DE
            (2, 6),   // CH-FR
            (2, 12),  // CH-IT
            (3, 4),   // CZ-DE
            (3, 15),  // CZ-PL
            (3, 19),  // CZ-SK
            (4, 6),   // DE-FR
            (4, 14),  // DE-NL
            (4, 17),  // DE-SE
            (4, 11),  // DE-IL
            (5, 6),   // ES-FR
            (5, 16),  // ES-PT
            (5, 12),  // ES-IT
            (6, 20),  // FR-UK
            (6, 13),  // FR-LU
            (7, 12),  // GR-IT
            (7, 11),  // GR-IL
            (8, 18),  // HR-SI
            (8, 9),   // HR-HU
            (9, 19),  // HU-SK
            (9, 21),  // HU-RO
            (10, 20), // IE-UK
            (12, 18), // IT-SI
            (14, 20), // NL-UK
            (14, 17), // NL-SE
            (15, 17), // PL-SE
            (16, 20), // PT-UK
            (21, 7),  // RO-GR
        ];
        Topology::new("geant", pops, links)
    }

    /// A tiny synthetic line topology for tests: `n` PoPs named `P0..Pn-1`
    /// connected in a path.
    pub fn line(n: usize) -> Self {
        const CODES: [&str; 8] = ["P0", "P1", "P2", "P3", "P4", "P5", "P6", "P7"];
        assert!(
            n >= 1 && n <= CODES.len(),
            "line topology supports 1..=8 PoPs"
        );
        let pops = (0..n)
            .map(|i| Pop {
                code: CODES[i],
                city: "testville",
            })
            .collect();
        let links = (1..n).map(|i| (i - 1, i)).collect();
        Topology::new("line", pops, links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abilene_matches_paper_dimensions() {
        let t = Topology::abilene();
        assert_eq!(t.n_pops(), 11);
        assert_eq!(t.n_od_flows(), 121);
        assert_eq!(t.links().len(), 14);
        assert!(t.is_connected());
    }

    #[test]
    fn geant_matches_paper_dimensions() {
        let t = Topology::geant();
        assert_eq!(t.n_pops(), 22);
        assert_eq!(t.n_od_flows(), 484);
        assert!(t.is_connected());
    }

    #[test]
    fn geant_is_twice_abilene() {
        // The paper: "twice as large as Abilene, with 22 PoPs ... four times
        // the number of OD flows".
        let a = Topology::abilene();
        let g = Topology::geant();
        assert_eq!(g.n_pops(), 2 * a.n_pops());
        assert_eq!(g.n_od_flows(), 4 * a.n_od_flows());
    }

    #[test]
    fn pop_lookup_by_code() {
        let t = Topology::abilene();
        let ipls = t.pop_by_code("IPLS").unwrap();
        assert_eq!(t.pops()[ipls].city, "Indianapolis");
        assert!(t.pop_by_code("NOPE").is_none());
    }

    #[test]
    fn shortest_path_endpoints_and_connectivity() {
        let t = Topology::abilene();
        let sttl = t.pop_by_code("STTL").unwrap();
        let atla = t.pop_by_code("ATLA").unwrap();
        let path = t.shortest_path(sttl, atla).unwrap();
        assert_eq!(*path.first().unwrap(), sttl);
        assert_eq!(*path.last().unwrap(), atla);
        // Each consecutive pair must be a real link.
        for w in path.windows(2) {
            assert!(t.neighbors(w[0]).contains(&w[1]));
        }
    }

    #[test]
    fn shortest_path_to_self_is_trivial() {
        let t = Topology::abilene();
        assert_eq!(t.shortest_path(3, 3), Some(vec![3]));
    }

    #[test]
    fn disconnected_graph_detected() {
        let pops = vec![
            Pop {
                code: "A",
                city: "a",
            },
            Pop {
                code: "B",
                city: "b",
            },
            Pop {
                code: "C",
                city: "c",
            },
        ];
        let t = Topology::new("disc", pops, vec![(0, 1)]);
        assert!(!t.is_connected());
        assert!(t.shortest_path(0, 2).is_none());
    }

    #[test]
    fn line_topology() {
        let t = Topology::line(4);
        assert_eq!(t.n_pops(), 4);
        let path = t.shortest_path(0, 3).unwrap();
        assert_eq!(path, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let pops = vec![Pop {
            code: "A",
            city: "a",
        }];
        let _ = Topology::new("bad", pops, vec![(0, 0)]);
    }

    #[test]
    fn abilene_shortest_paths_all_reachable() {
        let t = Topology::abilene();
        for a in 0..t.n_pops() {
            for b in 0..t.n_pops() {
                let p = t.shortest_path(a, b).unwrap();
                assert!(!p.is_empty());
                // Abilene's diameter is small.
                assert!(p.len() <= 6, "path {a}->{b} too long: {p:?}");
            }
        }
    }
}
