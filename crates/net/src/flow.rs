//! NetFlow-style flow aggregation.
//!
//! The paper's data source is *sampled flow data* exported by routers
//! (Cisco NetFlow / Juniper traffic sampling). [`FlowCache`] reproduces the
//! relevant router behaviour: packets sharing a five-tuple accumulate into a
//! [`FlowRecord`]; records are exported when the flow goes idle (inactive
//! timeout), when it has been open too long (active timeout), or when the
//! cache is flushed.

use crate::ip::Ipv4;
use crate::packet::{PacketHeader, Protocol};
use std::collections::HashMap;

/// The five-tuple identifying an IP flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Source address.
    pub src_ip: Ipv4,
    /// Destination address.
    pub dst_ip: Ipv4,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: Protocol,
}

impl FlowKey {
    /// The five-tuple of a packet.
    pub fn of(pkt: &PacketHeader) -> Self {
        FlowKey {
            src_ip: pkt.src_ip,
            dst_ip: pkt.dst_ip,
            src_port: pkt.src_port,
            dst_port: pkt.dst_port,
            proto: pkt.proto,
        }
    }
}

/// An aggregated flow record, as a router would export it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRecord {
    /// The five-tuple.
    pub key: FlowKey,
    /// Number of (sampled) packets in the flow.
    pub packets: u64,
    /// Total bytes across those packets.
    pub bytes: u64,
    /// Timestamp of the first packet (seconds).
    pub first: u64,
    /// Timestamp of the last packet (seconds).
    pub last: u64,
}

impl FlowRecord {
    fn from_packet(pkt: &PacketHeader) -> Self {
        FlowRecord {
            key: FlowKey::of(pkt),
            packets: 1,
            bytes: pkt.bytes as u64,
            first: pkt.timestamp,
            last: pkt.timestamp,
        }
    }

    fn absorb(&mut self, pkt: &PacketHeader) {
        self.packets += 1;
        self.bytes += pkt.bytes as u64;
        self.first = self.first.min(pkt.timestamp);
        self.last = self.last.max(pkt.timestamp);
    }

    /// Duration of the flow in seconds (zero for single-packet flows).
    pub fn duration(&self) -> u64 {
        self.last - self.first
    }
}

/// Timeouts governing when the cache exports a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowCacheConfig {
    /// Export a flow that has seen no packet for this many seconds.
    pub inactive_timeout: u64,
    /// Export (and restart) a flow that has been open this long, as routers
    /// do to bound record latency.
    pub active_timeout: u64,
}

impl Default for FlowCacheConfig {
    /// Cisco NetFlow's traditional defaults: 15 s inactive, 30 min active.
    fn default() -> Self {
        FlowCacheConfig {
            inactive_timeout: 15,
            active_timeout: 1800,
        }
    }
}

/// A router flow cache: aggregates packets into flow records and exports
/// them on timeout.
///
/// Packets must be offered in non-decreasing timestamp order (as they are
/// observed on a link). Call [`FlowCache::offer`] per packet and collect
/// any records it expires; call [`FlowCache::flush`] at end of stream.
#[derive(Debug)]
pub struct FlowCache {
    config: FlowCacheConfig,
    active: HashMap<FlowKey, FlowRecord>,
    last_sweep: u64,
    /// How often (seconds of stream time) to sweep for inactive flows.
    sweep_interval: u64,
    exported: Vec<FlowRecord>,
}

impl FlowCache {
    /// Creates an empty cache with the given timeouts.
    pub fn new(config: FlowCacheConfig) -> Self {
        FlowCache {
            config,
            active: HashMap::new(),
            last_sweep: 0,
            sweep_interval: config.inactive_timeout.max(1),
            exported: Vec::new(),
        }
    }

    /// Number of flows currently open in the cache.
    pub fn open_flows(&self) -> usize {
        self.active.len()
    }

    /// Offers one packet to the cache; expired records accumulate
    /// internally and are returned by [`take_exported`](Self::take_exported).
    pub fn offer(&mut self, pkt: &PacketHeader) {
        let now = pkt.timestamp;
        // Periodic sweep of inactive flows, emulating the router's timer.
        if now >= self.last_sweep + self.sweep_interval {
            self.sweep(now);
            self.last_sweep = now;
        }
        let key = FlowKey::of(pkt);
        match self.active.get_mut(&key) {
            Some(rec) => {
                // Active timeout: export the long-lived flow and restart it.
                if now.saturating_sub(rec.first) >= self.config.active_timeout {
                    self.exported.push(*rec);
                    *rec = FlowRecord::from_packet(pkt);
                } else {
                    rec.absorb(pkt);
                }
            }
            None => {
                self.active.insert(key, FlowRecord::from_packet(pkt));
            }
        }
    }

    /// Exports every flow idle since before `now - inactive_timeout`.
    fn sweep(&mut self, now: u64) {
        let deadline = now.saturating_sub(self.config.inactive_timeout);
        let expired: Vec<FlowKey> = self
            .active
            .iter()
            .filter(|(_, rec)| rec.last < deadline)
            .map(|(k, _)| *k)
            .collect();
        for key in expired {
            if let Some(rec) = self.active.remove(&key) {
                self.exported.push(rec);
            }
        }
    }

    /// Takes all records exported so far.
    pub fn take_exported(&mut self) -> Vec<FlowRecord> {
        std::mem::take(&mut self.exported)
    }

    /// Exports everything still open and returns all pending records.
    pub fn flush(&mut self) -> Vec<FlowRecord> {
        let mut out = std::mem::take(&mut self.exported);
        out.extend(self.active.drain().map(|(_, rec)| rec));
        out
    }
}

/// One-shot helper: aggregate a packet slice into flow records with no
/// timeout subtleties (each distinct five-tuple yields exactly one record).
///
/// This is what per-bin analysis uses, where flows are already delimited by
/// the 5-minute bin boundary.
pub fn aggregate_bin(packets: &[PacketHeader]) -> Vec<FlowRecord> {
    let mut map: HashMap<FlowKey, FlowRecord> = HashMap::with_capacity(packets.len() / 4 + 1);
    for pkt in packets {
        match map.get_mut(&FlowKey::of(pkt)) {
            Some(rec) => rec.absorb(pkt),
            None => {
                map.insert(FlowKey::of(pkt), FlowRecord::from_packet(pkt));
            }
        }
    }
    let mut records: Vec<FlowRecord> = map.into_values().collect();
    // Deterministic output order for reproducibility.
    records.sort_by_key(|r| {
        (
            r.key.src_ip,
            r.key.dst_ip,
            r.key.src_port,
            r.key.dst_port,
            r.key.proto.number(),
        )
    });
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(src: u32, sport: u16, dst: u32, dport: u16, ts: u64) -> PacketHeader {
        PacketHeader::tcp(Ipv4(src), sport, Ipv4(dst), dport, 100, ts)
    }

    #[test]
    fn same_five_tuple_aggregates() {
        let mut cache = FlowCache::new(FlowCacheConfig::default());
        cache.offer(&pkt(1, 10, 2, 80, 0));
        cache.offer(&pkt(1, 10, 2, 80, 5));
        cache.offer(&pkt(1, 10, 2, 80, 9));
        assert_eq!(cache.open_flows(), 1);
        let recs = cache.flush();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].packets, 3);
        assert_eq!(recs[0].bytes, 300);
        assert_eq!(recs[0].first, 0);
        assert_eq!(recs[0].last, 9);
        assert_eq!(recs[0].duration(), 9);
    }

    #[test]
    fn different_tuples_do_not_merge() {
        let mut cache = FlowCache::new(FlowCacheConfig::default());
        cache.offer(&pkt(1, 10, 2, 80, 0));
        cache.offer(&pkt(1, 11, 2, 80, 0)); // different src port
        cache.offer(&pkt(3, 10, 2, 80, 0)); // different src ip
        assert_eq!(cache.open_flows(), 3);
    }

    #[test]
    fn inactive_timeout_exports() {
        let mut cache = FlowCache::new(FlowCacheConfig {
            inactive_timeout: 10,
            active_timeout: 1000,
        });
        cache.offer(&pkt(1, 10, 2, 80, 0));
        // A packet from another flow far in the future triggers the sweep.
        cache.offer(&pkt(5, 10, 6, 80, 100));
        let exported = cache.take_exported();
        assert_eq!(exported.len(), 1);
        assert_eq!(exported[0].key.src_ip, Ipv4(1));
        assert_eq!(cache.open_flows(), 1);
    }

    #[test]
    fn active_timeout_restarts_flow() {
        let mut cache = FlowCache::new(FlowCacheConfig {
            inactive_timeout: 1000,
            active_timeout: 60,
        });
        cache.offer(&pkt(1, 10, 2, 80, 0));
        cache.offer(&pkt(1, 10, 2, 80, 30));
        cache.offer(&pkt(1, 10, 2, 80, 61)); // crosses the active timeout
        let exported = cache.take_exported();
        assert_eq!(exported.len(), 1);
        assert_eq!(exported[0].packets, 2);
        let rest = cache.flush();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].packets, 1);
        assert_eq!(rest[0].first, 61);
    }

    #[test]
    fn flush_drains_everything() {
        let mut cache = FlowCache::new(FlowCacheConfig::default());
        cache.offer(&pkt(1, 10, 2, 80, 0));
        cache.offer(&pkt(3, 10, 4, 80, 0));
        let recs = cache.flush();
        assert_eq!(recs.len(), 2);
        assert_eq!(cache.open_flows(), 0);
        assert!(cache.flush().is_empty());
    }

    #[test]
    fn aggregate_bin_is_deterministic_and_complete() {
        let packets = vec![
            pkt(2, 10, 3, 80, 0),
            pkt(1, 10, 3, 80, 1),
            pkt(2, 10, 3, 80, 2),
            pkt(1, 10, 3, 80, 3),
        ];
        let recs = aggregate_bin(&packets);
        assert_eq!(recs.len(), 2);
        // Sorted by src ip.
        assert_eq!(recs[0].key.src_ip, Ipv4(1));
        assert_eq!(recs[1].key.src_ip, Ipv4(2));
        assert_eq!(recs[0].packets, 2);
        assert_eq!(recs[1].packets, 2);
        let total_bytes: u64 = recs.iter().map(|r| r.bytes).sum();
        assert_eq!(total_bytes, 400);
    }

    #[test]
    fn aggregate_empty_bin() {
        assert!(aggregate_bin(&[]).is_empty());
    }
}
