//! Network substrate for the `entromine` workspace.
//!
//! The paper's pipeline consumes *sampled flow data collected from all
//! access links of two backbone networks* (Abilene and Geant). This crate
//! rebuilds that measurement plane from scratch:
//!
//! * [`Ipv4`] / [`Prefix`] — address arithmetic, parsing, formatting, and
//!   the 11-bit anonymization mask Abilene applied to its archives.
//! * [`PacketHeader`] — the four header fields the paper calls *traffic
//!   features* (addresses, ports) plus protocol, size and timestamp.
//! * [`FlowKey`] / [`FlowRecord`] / [`FlowCache`] — NetFlow-style flow
//!   aggregation with active/inactive timeouts.
//! * [`Topology`] — PoP-level models of the Abilene (11 PoPs) and Geant
//!   (22 PoPs) backbones, including backbone links and shortest paths.
//! * [`PrefixTable`] / [`AddressPlan`] — longest-prefix-match routing used
//!   to resolve the egress PoP of every flow (the paper does this with BGP
//!   and ISIS tables, per Feldmann et al.).
//! * [`OdPair`] / [`OdIndexer`] — origin–destination flow indexing
//!   (`p^2` OD flows for a `p`-PoP network; 121 for Abilene, 484 for Geant).
//! * [`sample`] — periodic 1-in-N packet sampling (as router-embedded
//!   NetFlow does) and random thinning (used by the paper's §6.3 injection
//!   methodology).
//!
//! Everything here is deterministic and allocation-conscious; the synthetic
//! traffic generator in `entromine-synth` drives millions of packets through
//! these types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flow;
pub mod ip;
pub mod od;
pub mod packet;
pub mod routing;
pub mod sample;
pub mod topology;

pub use flow::{FlowCache, FlowCacheConfig, FlowKey, FlowRecord};
pub use ip::{Ipv4, Prefix, ABILENE_ANON_BITS};
pub use od::{OdIndexer, OdPair};
pub use packet::{PacketHeader, Protocol};
pub use routing::{AddressPlan, PrefixTable};
pub use topology::{PopId, Topology};
