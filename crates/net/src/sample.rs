//! Packet sampling and trace thinning.
//!
//! Two distinct mechanisms from the paper:
//!
//! * **Periodic sampling** — routers export 1 out of every N packets
//!   (Abilene: N = 100, Geant: N = 1000). [`PeriodicSampler`] reproduces
//!   the deterministic count-based scheme of router-embedded NetFlow.
//! * **Thinning** — the injection methodology of §6.3 dilutes a labelled
//!   attack trace "by selecting 1 out of every N packets" to sweep the
//!   anomaly intensity. [`thin_periodic`] and [`thin_random`] provide the
//!   deterministic and randomized variants.

use crate::packet::PacketHeader;
use rand::Rng;

/// Deterministic count-based 1-in-N packet sampler.
///
/// The first packet of every group of `n` is selected (phase configurable),
/// matching periodic NetFlow sampling. `n = 1` selects everything.
#[derive(Debug, Clone)]
pub struct PeriodicSampler {
    n: u64,
    counter: u64,
}

impl PeriodicSampler {
    /// A sampler selecting 1 out of every `n` packets.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "sampling rate must be at least 1");
        PeriodicSampler { n, counter: 0 }
    }

    /// A sampler with an initial phase offset (the first selected packet is
    /// the `phase`-th one).
    pub fn with_phase(n: u64, phase: u64) -> Self {
        assert!(n > 0, "sampling rate must be at least 1");
        PeriodicSampler {
            n,
            counter: phase % n,
        }
    }

    /// The sampling modulus N.
    pub fn rate(&self) -> u64 {
        self.n
    }

    /// Decides whether the next packet in the stream is selected.
    #[inline]
    pub fn select(&mut self) -> bool {
        let hit = self.counter == 0;
        self.counter += 1;
        if self.counter == self.n {
            self.counter = 0;
        }
        hit
    }

    /// Filters a packet slice, keeping the selected ones.
    pub fn sample(&mut self, packets: &[PacketHeader]) -> Vec<PacketHeader> {
        packets.iter().copied().filter(|_| self.select()).collect()
    }
}

/// Thins a trace deterministically: keeps packets `0, n, 2n, ...`.
///
/// A thinning factor of 0 or 1 keeps the whole trace (matching the paper's
/// Table 5 where factor 0 denotes the unthinned trace).
pub fn thin_periodic(packets: &[PacketHeader], factor: u64) -> Vec<PacketHeader> {
    if factor <= 1 {
        return packets.to_vec();
    }
    packets
        .iter()
        .copied()
        .enumerate()
        .filter(|(i, _)| (*i as u64).is_multiple_of(factor))
        .map(|(_, p)| p)
        .collect()
}

/// Thins a trace randomly: keeps each packet independently with
/// probability `1/factor`.
///
/// A factor of 0 or 1 keeps the whole trace.
pub fn thin_random<R: Rng>(
    packets: &[PacketHeader],
    factor: u64,
    rng: &mut R,
) -> Vec<PacketHeader> {
    if factor <= 1 {
        return packets.to_vec();
    }
    let p = 1.0 / factor as f64;
    packets
        .iter()
        .copied()
        .filter(|_| rng.random_bool(p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::Ipv4;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mk(n: usize) -> Vec<PacketHeader> {
        (0..n)
            .map(|i| PacketHeader::udp(Ipv4(i as u32), 53, Ipv4(99), 53, 100, i as u64))
            .collect()
    }

    #[test]
    fn periodic_exact_fraction() {
        let packets = mk(1000);
        let mut s = PeriodicSampler::new(100);
        let kept = s.sample(&packets);
        assert_eq!(kept.len(), 10);
        // Every 100th packet starting from the first.
        assert_eq!(kept[0].src_ip, Ipv4(0));
        assert_eq!(kept[1].src_ip, Ipv4(100));
    }

    #[test]
    fn periodic_state_carries_across_calls() {
        let packets = mk(150);
        let mut s = PeriodicSampler::new(100);
        let first = s.sample(&packets[..50]);
        let second = s.sample(&packets[50..]);
        assert_eq!(first.len(), 1);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].src_ip, Ipv4(100));
    }

    #[test]
    fn periodic_rate_one_keeps_all() {
        let packets = mk(17);
        let mut s = PeriodicSampler::new(1);
        assert_eq!(s.sample(&packets).len(), 17);
    }

    #[test]
    fn phase_offsets_selection() {
        let packets = mk(10);
        // phase 3 of rate 5: counter starts at 3, so selection happens when
        // the counter wraps to 0, i.e. at index 2 and 7.
        let mut s = PeriodicSampler::with_phase(5, 3);
        let kept = s.sample(&packets);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].src_ip, Ipv4(2));
        assert_eq!(kept[1].src_ip, Ipv4(7));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_rate_rejected() {
        let _ = PeriodicSampler::new(0);
    }

    #[test]
    fn thin_periodic_factors() {
        let packets = mk(100);
        assert_eq!(thin_periodic(&packets, 0).len(), 100);
        assert_eq!(thin_periodic(&packets, 1).len(), 100);
        assert_eq!(thin_periodic(&packets, 10).len(), 10);
        assert_eq!(thin_periodic(&packets, 100).len(), 1);
        assert_eq!(thin_periodic(&packets, 1000).len(), 1);
    }

    #[test]
    fn thin_random_statistics() {
        let packets = mk(100_000);
        let mut rng = StdRng::seed_from_u64(1);
        let kept = thin_random(&packets, 10, &mut rng);
        // Expect ~10_000; allow generous slack (±5 sigma ~ ±475).
        assert!((9_500..10_500).contains(&kept.len()), "kept {}", kept.len());
        // Factor 1 keeps all.
        assert_eq!(thin_random(&packets, 1, &mut rng).len(), 100_000);
    }

    #[test]
    fn thinning_preserves_packet_contents() {
        let packets = mk(50);
        let kept = thin_periodic(&packets, 7);
        for p in &kept {
            assert!(packets.contains(p));
        }
    }
}
