//! Longest-prefix-match routing and PoP address plans.
//!
//! The paper aggregates IP flows into OD flows by resolving, for every flow
//! sampled at an ingress PoP, the *egress* PoP it will leave the backbone
//! from; the authors do this with BGP and ISIS tables (Feldmann et al.).
//! Here the same role is played by a [`PrefixTable`] — a binary-trie
//! longest-prefix-match structure mapping customer prefixes to the PoP that
//! announces them — plus an [`AddressPlan`] that deterministically carves
//! address space into per-PoP customer blocks.

use crate::ip::{Ipv4, Prefix};
use crate::topology::{PopId, Topology};

/// A longest-prefix-match table from IPv4 prefixes to PoP identifiers.
///
/// Implemented as a binary trie over address bits; inserting a duplicate
/// prefix replaces the previous entry (as a routing update would).
#[derive(Debug, Clone, Default)]
pub struct PrefixTable {
    nodes: Vec<TrieNode>,
}

#[derive(Debug, Clone, Default)]
struct TrieNode {
    children: [Option<u32>; 2],
    /// PoP announced at exactly this prefix, if any.
    value: Option<PopId>,
}

impl PrefixTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        PrefixTable {
            nodes: vec![TrieNode::default()],
        }
    }

    /// Number of prefixes installed.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.value.is_some()).count()
    }

    /// `true` if no prefix is installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Installs (or replaces) a prefix announcement.
    pub fn insert(&mut self, prefix: Prefix, pop: PopId) {
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let bit = ((prefix.addr().0 >> (31 - depth as u32)) & 1) as usize;
            let next = match self.nodes[node].children[bit] {
                Some(idx) => idx as usize,
                None => {
                    let idx = self.nodes.len();
                    self.nodes.push(TrieNode::default());
                    self.nodes[node].children[bit] = Some(idx as u32);
                    idx
                }
            };
            node = next;
        }
        self.nodes[node].value = Some(pop);
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, ip: Ipv4) -> Option<PopId> {
        let mut node = 0usize;
        let mut best = self.nodes[0].value;
        for depth in 0..32u32 {
            let bit = ((ip.0 >> (31 - depth)) & 1) as usize;
            match self.nodes[node].children[bit] {
                Some(next) => {
                    node = next as usize;
                    if let Some(v) = self.nodes[node].value {
                        best = Some(v);
                    }
                }
                None => break,
            }
        }
        best
    }
}

/// A deterministic allocation of customer address space to PoPs.
///
/// Each PoP receives an equal-size block carved out of `base`; inside each
/// block, a handful of more-specific customer subnets are also announced so
/// that longest-prefix matching is genuinely exercised (as it is against
/// real BGP tables).
#[derive(Debug, Clone)]
pub struct AddressPlan {
    base: Prefix,
    bits: u8,
    n_pops: usize,
    table: PrefixTable,
}

impl AddressPlan {
    /// Number of more-specific customer subnets announced inside each PoP
    /// block (in addition to the covering block itself).
    const CUSTOMER_SUBNETS: u64 = 4;

    /// Builds a plan for `topology` out of `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` cannot be split into enough per-PoP blocks.
    pub fn new(topology: &Topology, base: Prefix) -> Self {
        let n = topology.n_pops();
        // Smallest power of two >= n.
        let mut bits = 0u8;
        while (1usize << bits) < n {
            bits += 1;
        }
        assert!(
            base.len() + bits <= 24,
            "base prefix too small for {n} PoP blocks with room for hosts"
        );
        let mut table = PrefixTable::new();
        for pop in 0..n {
            let block = base.subnet(bits, pop as u64);
            table.insert(block, pop);
            // Announce a few more-specific customer subnets of the block,
            // mapping to the same PoP: LPM must still resolve correctly.
            for c in 0..Self::CUSTOMER_SUBNETS {
                table.insert(block.subnet(3, c), pop);
            }
        }
        AddressPlan {
            base,
            bits,
            n_pops: n,
            table,
        }
    }

    /// The standard plan used throughout the workspace: per-PoP blocks out
    /// of `10.0.0.0/8`.
    pub fn standard(topology: &Topology) -> Self {
        AddressPlan::new(topology, Prefix::new(Ipv4::new(10, 0, 0, 0), 8))
    }

    /// The covering customer block of a PoP.
    pub fn pop_block(&self, pop: PopId) -> Prefix {
        assert!(pop < self.n_pops, "PoP out of range");
        self.base.subnet(self.bits, pop as u64)
    }

    /// A deterministic host address inside a PoP's block.
    ///
    /// Hosts come in groups of 8 sharing one /21 (the 11-bit
    /// anonymization granularity), with groups strided across the block.
    /// This mirrors real customer space — many hosts per anonymization
    /// bucket, buckets spread over the PoP's announcements — so that
    /// masking genuinely coarsens distributions (the §5 anonymization
    /// ablation depends on it) without collapsing them to one value.
    pub fn host(&self, pop: PopId, i: u64) -> Ipv4 {
        let block = self.pop_block(pop);
        let span = block.size();
        // 8 hosts per /21 group; groups strided by a prime > 2^11.
        let offset = (i % 8) + (i / 8) * 2657;
        block.host(offset % span)
    }

    /// Resolves the PoP that announces `ip`'s longest matching prefix.
    pub fn resolve(&self, ip: Ipv4) -> Option<PopId> {
        self.table.lookup(ip)
    }

    /// The underlying routing table.
    pub fn table(&self) -> &PrefixTable {
        &self.table
    }

    /// Number of PoPs covered by the plan.
    pub fn n_pops(&self) -> usize {
        self.n_pops
    }

    /// An address guaranteed to be outside every PoP block (useful for
    /// modeling off-net/spoofed sources).
    pub fn external_host(&self, i: u64) -> Ipv4 {
        // 172.16.0.0/12 is disjoint from the 10/8 standard base.
        let ext = Prefix::new(Ipv4::new(172, 16, 0, 0), 12);
        debug_assert!(!self.base.contains(ext.addr()));
        ext.host(i * 9973)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_returns_none() {
        let t = PrefixTable::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup(Ipv4::new(1, 2, 3, 4)), None);
    }

    #[test]
    fn exact_and_longest_match() {
        let mut t = PrefixTable::new();
        t.insert("10.0.0.0/8".parse().unwrap(), 0);
        t.insert("10.1.0.0/16".parse().unwrap(), 1);
        t.insert("10.1.2.0/24".parse().unwrap(), 2);
        assert_eq!(t.lookup(Ipv4::new(10, 200, 0, 1)), Some(0));
        assert_eq!(t.lookup(Ipv4::new(10, 1, 200, 1)), Some(1));
        assert_eq!(t.lookup(Ipv4::new(10, 1, 2, 3)), Some(2));
        assert_eq!(t.lookup(Ipv4::new(11, 0, 0, 1)), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTable::new();
        t.insert("0.0.0.0/0".parse().unwrap(), 7);
        assert_eq!(t.lookup(Ipv4::new(255, 255, 255, 255)), Some(7));
        assert_eq!(t.lookup(Ipv4::new(0, 0, 0, 0)), Some(7));
    }

    #[test]
    fn insert_replaces() {
        let mut t = PrefixTable::new();
        t.insert("10.0.0.0/8".parse().unwrap(), 0);
        t.insert("10.0.0.0/8".parse().unwrap(), 3);
        assert_eq!(t.lookup(Ipv4::new(10, 1, 1, 1)), Some(3));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn host_route_wins() {
        let mut t = PrefixTable::new();
        t.insert("10.0.0.0/8".parse().unwrap(), 0);
        t.insert("10.0.0.1/32".parse().unwrap(), 9);
        assert_eq!(t.lookup(Ipv4::new(10, 0, 0, 1)), Some(9));
        assert_eq!(t.lookup(Ipv4::new(10, 0, 0, 2)), Some(0));
    }

    #[test]
    fn plan_blocks_are_disjoint_and_resolve() {
        let topo = Topology::abilene();
        let plan = AddressPlan::standard(&topo);
        for pop in 0..topo.n_pops() {
            let block = plan.pop_block(pop);
            // Block resolves to its own PoP.
            assert_eq!(plan.resolve(block.first()), Some(pop));
            assert_eq!(plan.resolve(block.last()), Some(pop));
            // Hosts resolve to their PoP.
            for i in [0u64, 1, 17, 1000] {
                assert_eq!(plan.resolve(plan.host(pop, i)), Some(pop));
            }
            // Blocks of different PoPs are disjoint.
            for other in 0..topo.n_pops() {
                if other != pop {
                    assert!(!block.contains(plan.pop_block(other).first()));
                }
            }
        }
    }

    #[test]
    fn plan_works_for_geant_size() {
        let topo = Topology::geant();
        let plan = AddressPlan::standard(&topo);
        assert_eq!(plan.n_pops(), 22);
        for pop in 0..22 {
            assert_eq!(plan.resolve(plan.host(pop, 42)), Some(pop));
        }
    }

    #[test]
    fn hosts_group_within_and_spread_across_anonymization_buckets() {
        let topo = Topology::abilene();
        let plan = AddressPlan::standard(&topo);
        // Hosts 0..8 share a /21: anonymization collapses them.
        let a = plan.host(0, 0).anonymize();
        let b = plan.host(0, 1).anonymize();
        assert_eq!(a, b, "same group must share an anonymization bucket");
        // Different groups land in different /21s: anonymized entropy is
        // coarsened, not destroyed.
        let c = plan.host(0, 8).anonymize();
        assert_ne!(a, c, "different groups must stay distinguishable");
        // Many groups: at least dozens of distinct anonymized values.
        let distinct: std::collections::HashSet<Ipv4> =
            (0..256).map(|i| plan.host(0, i).anonymize()).collect();
        assert!(distinct.len() >= 30, "only {} buckets", distinct.len());
    }

    #[test]
    fn external_hosts_are_off_net() {
        let topo = Topology::abilene();
        let plan = AddressPlan::standard(&topo);
        for i in 0..100 {
            assert_eq!(plan.resolve(plan.external_host(i)), None);
        }
    }

    #[test]
    fn distinct_host_indices_give_distinct_addresses() {
        let topo = Topology::abilene();
        let plan = AddressPlan::standard(&topo);
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(plan.host(3, i)), "host collision at {i}");
        }
    }
}
