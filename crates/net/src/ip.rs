//! IPv4 addresses and prefixes.
//!
//! A thin `u32` wrapper keeps address arithmetic explicit and cheap; the
//! synthetic generator allocates customer address space to PoPs as
//! [`Prefix`] blocks and the router substrate matches against them with
//! longest-prefix match.
//!
//! The Abilene archives used by the paper anonymize addresses by masking
//! out their last 11 bits; [`Ipv4::anonymize`] reproduces that exactly so
//! the anonymization ablation (§5 of the paper) can be run.

use std::fmt;
use std::str::FromStr;

/// Number of low-order bits Abilene's anonymization masks out.
pub const ABILENE_ANON_BITS: u32 = 11;

/// An IPv4 address.
///
/// Stored as the host-order `u32`; ordering and hashing follow numeric
/// order, which makes prefix arithmetic straightforward.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// Builds an address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | (d as u32))
    }

    /// The four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// Masks out the lowest `bits` bits (sets them to zero).
    ///
    /// `mask_low_bits(11)` is exactly the Abilene anonymization transform.
    pub const fn mask_low_bits(self, bits: u32) -> Self {
        if bits >= 32 {
            Ipv4(0)
        } else {
            Ipv4(self.0 & (u32::MAX << bits))
        }
    }

    /// Applies the Abilene anonymization (mask the last 11 bits).
    pub const fn anonymize(self) -> Self {
        self.mask_low_bits(ABILENE_ANON_BITS)
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl fmt::Debug for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ipv4({self})")
    }
}

impl From<u32> for Ipv4 {
    fn from(v: u32) -> Self {
        Ipv4(v)
    }
}

impl From<Ipv4> for u32 {
    fn from(ip: Ipv4) -> u32 {
        ip.0
    }
}

/// Error returned when parsing an address or prefix from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrParseError(String);

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address or prefix: {}", self.0)
    }
}

impl std::error::Error for AddrParseError {}

impl FromStr for Ipv4 {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 4 {
            return Err(AddrParseError(s.to_string()));
        }
        let mut octets = [0u8; 4];
        for (slot, part) in octets.iter_mut().zip(&parts) {
            *slot = part
                .parse::<u8>()
                .map_err(|_| AddrParseError(s.to_string()))?;
        }
        Ok(Ipv4::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

/// An IPv4 prefix in CIDR form: a network address plus a mask length.
///
/// The network address is always kept in canonical form (host bits zero).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    addr: Ipv4,
    len: u8,
}

impl Prefix {
    /// Builds a prefix, canonicalizing the address (host bits are cleared).
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4, len: u8) -> Self {
        assert!(len <= 32, "prefix length must be at most 32");
        Prefix {
            addr: addr.mask_low_bits(32 - len as u32),
            len,
        }
    }

    /// The canonical network address.
    pub const fn addr(self) -> Ipv4 {
        self.addr
    }

    /// The mask length in bits.
    #[allow(clippy::len_without_is_empty)] // a mask length, not a container
    pub const fn len(self) -> u8 {
        self.len
    }

    /// `true` only for the zero-length (default-route) prefix.
    pub const fn is_default_route(self) -> bool {
        self.len == 0
    }

    /// `true` if `ip` falls inside this prefix.
    pub const fn contains(self, ip: Ipv4) -> bool {
        if self.len == 0 {
            return true;
        }
        let shift = 32 - self.len as u32;
        (ip.0 >> shift) == (self.addr.0 >> shift)
    }

    /// Number of addresses covered by the prefix.
    pub const fn size(self) -> u64 {
        1u64 << (32 - self.len as u32)
    }

    /// The first address of the prefix (the network address itself).
    pub const fn first(self) -> Ipv4 {
        self.addr
    }

    /// The last address of the prefix.
    pub const fn last(self) -> Ipv4 {
        Ipv4(self.addr.0 + (self.size() - 1) as u32)
    }

    /// The `i`-th address inside the prefix (wrapping within the block).
    ///
    /// Useful for deterministically enumerating hosts of a customer block.
    pub const fn host(self, i: u64) -> Ipv4 {
        Ipv4(self.addr.0 + (i % self.size()) as u32)
    }

    /// Splits this prefix into `2^extra_bits` equal sub-prefixes and returns
    /// the `i`-th one.
    ///
    /// # Panics
    ///
    /// Panics if the resulting length would exceed 32 bits or `i` is out of
    /// range.
    pub fn subnet(self, extra_bits: u8, i: u64) -> Prefix {
        let new_len = self.len + extra_bits;
        assert!(new_len <= 32, "subnet length exceeds 32 bits");
        assert!(i < (1u64 << extra_bits), "subnet index out of range");
        let step = 1u64 << (32 - new_len as u32);
        Prefix::new(Ipv4(self.addr.0 + (i * step) as u32), new_len)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix({}/{})", self.addr, self.len)
    }
}

impl FromStr for Prefix {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_s, len_s) = s
            .split_once('/')
            .ok_or_else(|| AddrParseError(s.to_string()))?;
        let addr: Ipv4 = addr_s.parse()?;
        let len: u8 = len_s.parse().map_err(|_| AddrParseError(s.to_string()))?;
        if len > 32 {
            return Err(AddrParseError(s.to_string()));
        }
        Ok(Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_roundtrip_display_parse() {
        let ip = Ipv4::new(10, 1, 2, 3);
        assert_eq!(ip.to_string(), "10.1.2.3");
        assert_eq!("10.1.2.3".parse::<Ipv4>().unwrap(), ip);
        assert_eq!(ip.octets(), [10, 1, 2, 3]);
    }

    #[test]
    fn address_parse_rejects_garbage() {
        assert!("10.1.2".parse::<Ipv4>().is_err());
        assert!("10.1.2.3.4".parse::<Ipv4>().is_err());
        assert!("10.1.2.256".parse::<Ipv4>().is_err());
        assert!("a.b.c.d".parse::<Ipv4>().is_err());
        assert!("".parse::<Ipv4>().is_err());
    }

    #[test]
    fn anonymize_masks_11_bits() {
        // 11 bits span the last octet and 3 bits of the third octet.
        let ip = Ipv4::new(192, 168, 0b0000_0111, 0xFF);
        let anon = ip.anonymize();
        assert_eq!(anon, Ipv4::new(192, 168, 0, 0));
        // Addresses in the same /21 anonymize identically.
        let a = Ipv4::new(10, 0, 0, 1).anonymize();
        let b = Ipv4::new(10, 0, 7, 250).anonymize();
        assert_eq!(a, b);
        // Addresses in different /21s stay distinct.
        let c = Ipv4::new(10, 0, 8, 1).anonymize();
        assert_ne!(a, c);
    }

    #[test]
    fn mask_low_bits_extremes() {
        let ip = Ipv4::new(255, 255, 255, 255);
        assert_eq!(ip.mask_low_bits(0), ip);
        assert_eq!(ip.mask_low_bits(32), Ipv4(0));
        assert_eq!(ip.mask_low_bits(33), Ipv4(0));
        assert_eq!(ip.mask_low_bits(8), Ipv4::new(255, 255, 255, 0));
    }

    #[test]
    fn prefix_canonicalizes() {
        let p = Prefix::new(Ipv4::new(10, 1, 2, 3), 16);
        assert_eq!(p.addr(), Ipv4::new(10, 1, 0, 0));
        assert_eq!(p.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn prefix_contains() {
        let p: Prefix = "10.1.0.0/16".parse().unwrap();
        assert!(p.contains(Ipv4::new(10, 1, 200, 7)));
        assert!(!p.contains(Ipv4::new(10, 2, 0, 0)));
        let default: Prefix = "0.0.0.0/0".parse().unwrap();
        assert!(default.contains(Ipv4::new(1, 2, 3, 4)));
        assert!(default.is_default_route());
        let host: Prefix = "10.1.2.3/32".parse().unwrap();
        assert!(host.contains(Ipv4::new(10, 1, 2, 3)));
        assert!(!host.contains(Ipv4::new(10, 1, 2, 4)));
    }

    #[test]
    fn prefix_size_first_last() {
        let p: Prefix = "10.1.2.0/24".parse().unwrap();
        assert_eq!(p.size(), 256);
        assert_eq!(p.first(), Ipv4::new(10, 1, 2, 0));
        assert_eq!(p.last(), Ipv4::new(10, 1, 2, 255));
        assert_eq!(p.host(5), Ipv4::new(10, 1, 2, 5));
        assert_eq!(p.host(256), Ipv4::new(10, 1, 2, 0)); // wraps
    }

    #[test]
    fn prefix_subnetting() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let s0 = p.subnet(4, 0);
        let s1 = p.subnet(4, 1);
        assert_eq!(s0.to_string(), "10.0.0.0/12");
        assert_eq!(s1.to_string(), "10.16.0.0/12");
        assert!(!s0.contains(s1.addr()));
    }

    #[test]
    #[should_panic(expected = "subnet index out of range")]
    fn prefix_subnet_index_checked() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let _ = p.subnet(2, 4);
    }

    #[test]
    fn prefix_parse_rejects_garbage() {
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0.0/8".parse::<Prefix>().is_err());
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Ipv4::new(10, 0, 0, 1) < Ipv4::new(10, 0, 0, 2));
        assert!(Ipv4::new(9, 255, 255, 255) < Ipv4::new(10, 0, 0, 0));
    }
}
