//! Origin–destination flow indexing.
//!
//! An OD flow is all traffic entering the backbone at one PoP (the origin)
//! and leaving at another (the destination). A `p`-PoP network has `p^2`
//! OD flows including self-pairs — 121 for Abilene, 484 for Geant, exactly
//! the `p` dimension of the paper's three-way matrix `H(t, p, k)`.

use crate::routing::AddressPlan;
use crate::topology::PopId;

/// An origin–destination PoP pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OdPair {
    /// Ingress PoP.
    pub origin: PopId,
    /// Egress PoP.
    pub dest: PopId,
}

impl OdPair {
    /// Builds a pair.
    pub const fn new(origin: PopId, dest: PopId) -> Self {
        OdPair { origin, dest }
    }
}

impl std::fmt::Display for OdPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}->{}", self.origin, self.dest)
    }
}

/// Maps between [`OdPair`]s and dense indices `0..p^2`.
///
/// The dense index is `origin * p + dest`; all matrices in the workspace
/// use this column order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OdIndexer {
    n_pops: usize,
}

impl OdIndexer {
    /// An indexer for a `p`-PoP network.
    pub const fn new(n_pops: usize) -> Self {
        OdIndexer { n_pops }
    }

    /// Number of PoPs.
    pub const fn n_pops(&self) -> usize {
        self.n_pops
    }

    /// Number of OD flows (`p^2`).
    pub const fn n_flows(&self) -> usize {
        self.n_pops * self.n_pops
    }

    /// Dense index of a pair.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if either PoP is out of range.
    pub fn index(&self, od: OdPair) -> usize {
        debug_assert!(od.origin < self.n_pops && od.dest < self.n_pops);
        od.origin * self.n_pops + od.dest
    }

    /// The pair at a dense index.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `idx >= p^2`.
    pub fn pair(&self, idx: usize) -> OdPair {
        debug_assert!(idx < self.n_flows());
        OdPair::new(idx / self.n_pops, idx % self.n_pops)
    }

    /// Iterates over all OD pairs in dense-index order.
    pub fn iter(&self) -> impl Iterator<Item = OdPair> + '_ {
        (0..self.n_flows()).map(move |i| self.pair(i))
    }

    /// Resolves a packet's OD pair from its addresses via the address plan:
    /// the origin is the PoP announcing the source prefix, the destination
    /// the PoP announcing the destination prefix.
    ///
    /// Returns `None` when either address is off-net (e.g. spoofed sources
    /// from outside the customer space); real collection would attribute
    /// the flow to the observation PoP, which callers can do explicitly.
    pub fn resolve(
        &self,
        plan: &AddressPlan,
        src: crate::ip::Ipv4,
        dst: crate::ip::Ipv4,
    ) -> Option<OdPair> {
        let origin = plan.resolve(src)?;
        let dest = plan.resolve(dst)?;
        Some(OdPair::new(origin, dest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn index_roundtrip() {
        let ix = OdIndexer::new(11);
        assert_eq!(ix.n_flows(), 121);
        for i in 0..121 {
            assert_eq!(ix.index(ix.pair(i)), i);
        }
        assert_eq!(ix.index(OdPair::new(0, 0)), 0);
        assert_eq!(ix.index(OdPair::new(10, 10)), 120);
        assert_eq!(ix.index(OdPair::new(1, 0)), 11);
    }

    #[test]
    fn iteration_covers_all_pairs_once() {
        let ix = OdIndexer::new(4);
        let pairs: Vec<OdPair> = ix.iter().collect();
        assert_eq!(pairs.len(), 16);
        let unique: std::collections::HashSet<_> = pairs.iter().collect();
        assert_eq!(unique.len(), 16);
        assert_eq!(pairs[0], OdPair::new(0, 0));
        assert_eq!(pairs[15], OdPair::new(3, 3));
    }

    #[test]
    fn resolve_via_plan() {
        let topo = Topology::abilene();
        let plan = AddressPlan::standard(&topo);
        let ix = OdIndexer::new(topo.n_pops());
        let src = plan.host(2, 5);
        let dst = plan.host(7, 9);
        let od = ix.resolve(&plan, src, dst).unwrap();
        assert_eq!(od, OdPair::new(2, 7));
        // Off-net source resolves to None.
        assert!(ix.resolve(&plan, plan.external_host(1), dst).is_none());
    }

    #[test]
    fn display_formatting() {
        assert_eq!(OdPair::new(3, 9).to_string(), "3->9");
    }
}
