//! Packet headers: the unit of observation for feature distributions.
//!
//! The paper's analysis rests on exactly four header fields — source and
//! destination address, source and destination port — observed in sampled
//! packet streams. [`PacketHeader`] carries those four *traffic features*
//! plus the protocol, packet size (for byte counts) and a timestamp (for
//! 5-minute binning).

use crate::ip::Ipv4;
use std::fmt;

/// Transport protocol of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Transmission Control Protocol.
    Tcp,
    /// User Datagram Protocol.
    Udp,
    /// Internet Control Message Protocol (ports are zero by convention).
    Icmp,
    /// Any other IP protocol number.
    Other(u8),
}

impl Protocol {
    /// The IANA protocol number.
    pub const fn number(self) -> u8 {
        match self {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(n) => n,
        }
    }

    /// Builds a protocol from its IANA number.
    pub const fn from_number(n: u8) -> Self {
        match n {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => write!(f, "tcp"),
            Protocol::Udp => write!(f, "udp"),
            Protocol::Icmp => write!(f, "icmp"),
            Protocol::Other(n) => write!(f, "proto{n}"),
        }
    }
}

/// A sampled packet header.
///
/// `timestamp` is in seconds from the start of the measurement epoch;
/// `bytes` is the IP length of the packet. The struct is `Copy` and small
/// (24 bytes) because the generator and samplers stream millions of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketHeader {
    /// Source IP address.
    pub src_ip: Ipv4,
    /// Destination IP address.
    pub dst_ip: Ipv4,
    /// Source transport port (0 for port-less protocols).
    pub src_port: u16,
    /// Destination transport port (0 for port-less protocols).
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: Protocol,
    /// IP packet length in bytes.
    pub bytes: u32,
    /// Seconds from the start of the measurement epoch.
    pub timestamp: u64,
}

impl PacketHeader {
    /// Convenience constructor for a TCP packet.
    pub fn tcp(
        src_ip: Ipv4,
        src_port: u16,
        dst_ip: Ipv4,
        dst_port: u16,
        bytes: u32,
        timestamp: u64,
    ) -> Self {
        PacketHeader {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: Protocol::Tcp,
            bytes,
            timestamp,
        }
    }

    /// Convenience constructor for a UDP packet.
    pub fn udp(
        src_ip: Ipv4,
        src_port: u16,
        dst_ip: Ipv4,
        dst_port: u16,
        bytes: u32,
        timestamp: u64,
    ) -> Self {
        PacketHeader {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: Protocol::Udp,
            bytes,
            timestamp,
        }
    }

    /// Returns a copy with both addresses anonymized (Abilene's 11-bit mask).
    pub fn anonymized(mut self) -> Self {
        self.src_ip = self.src_ip.anonymize();
        self.dst_ip = self.dst_ip.anonymize();
        self
    }

    /// The 5-minute bin index of this packet for a given bin width.
    pub fn bin(&self, bin_seconds: u64) -> u64 {
        debug_assert!(bin_seconds > 0);
        self.timestamp / bin_seconds
    }
}

/// The four traffic features examined by the paper, in the column order of
/// the unfolded multiway matrix `H = [srcIP | srcPort | dstIP | dstPort]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Feature {
    /// Source IP address.
    SrcIp,
    /// Source transport port.
    SrcPort,
    /// Destination IP address.
    DstIp,
    /// Destination transport port.
    DstPort,
}

/// All four features in canonical (unfolding) order.
pub const FEATURES: [Feature; 4] = [
    Feature::SrcIp,
    Feature::SrcPort,
    Feature::DstIp,
    Feature::DstPort,
];

impl Feature {
    /// Index of this feature in [`FEATURES`] order.
    pub const fn index(self) -> usize {
        match self {
            Feature::SrcIp => 0,
            Feature::SrcPort => 1,
            Feature::DstIp => 2,
            Feature::DstPort => 3,
        }
    }

    /// Extracts this feature's value from a packet as a `u32` key.
    ///
    /// Ports are widened; addresses use their numeric value. The histogram
    /// layer only needs a hashable key, not the semantic type.
    pub fn extract(self, pkt: &PacketHeader) -> u32 {
        match self {
            Feature::SrcIp => pkt.src_ip.0,
            Feature::SrcPort => pkt.src_port as u32,
            Feature::DstIp => pkt.dst_ip.0,
            Feature::DstPort => pkt.dst_port as u32,
        }
    }

    /// Short human-readable name matching the paper's notation.
    pub const fn name(self) -> &'static str {
        match self {
            Feature::SrcIp => "srcIP",
            Feature::SrcPort => "srcPort",
            Feature::DstIp => "dstIP",
            Feature::DstPort => "dstPort",
        }
    }
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_numbers_roundtrip() {
        for p in [
            Protocol::Tcp,
            Protocol::Udp,
            Protocol::Icmp,
            Protocol::Other(47),
        ] {
            assert_eq!(Protocol::from_number(p.number()), p);
        }
        assert_eq!(Protocol::from_number(6), Protocol::Tcp);
        assert_eq!(Protocol::from_number(17), Protocol::Udp);
        assert_eq!(Protocol::from_number(1), Protocol::Icmp);
    }

    #[test]
    fn header_is_small() {
        // The generator streams millions of these; keep them lean.
        assert!(std::mem::size_of::<PacketHeader>() <= 32);
    }

    #[test]
    fn binning() {
        let p = PacketHeader::udp(
            Ipv4::new(1, 2, 3, 4),
            53,
            Ipv4::new(5, 6, 7, 8),
            53,
            64,
            601,
        );
        assert_eq!(p.bin(300), 2);
        assert_eq!(p.bin(600), 1);
        assert_eq!(p.bin(602), 0);
    }

    #[test]
    fn anonymization_applies_to_both_addresses() {
        let p = PacketHeader::tcp(
            Ipv4::new(10, 0, 5, 77),
            1234,
            Ipv4::new(10, 8, 3, 200),
            80,
            1500,
            0,
        );
        let a = p.anonymized();
        assert_eq!(a.src_ip, Ipv4::new(10, 0, 0, 0));
        assert_eq!(a.dst_ip, Ipv4::new(10, 8, 0, 0));
        assert_eq!(a.src_port, 1234);
        assert_eq!(a.dst_port, 80);
    }

    #[test]
    fn feature_extraction() {
        let p = PacketHeader::tcp(
            Ipv4::new(10, 0, 0, 1),
            1234,
            Ipv4::new(10, 0, 0, 2),
            80,
            1500,
            0,
        );
        assert_eq!(Feature::SrcIp.extract(&p), Ipv4::new(10, 0, 0, 1).0);
        assert_eq!(Feature::SrcPort.extract(&p), 1234);
        assert_eq!(Feature::DstIp.extract(&p), Ipv4::new(10, 0, 0, 2).0);
        assert_eq!(Feature::DstPort.extract(&p), 80);
    }

    #[test]
    fn feature_order_matches_unfolding() {
        assert_eq!(FEATURES[0], Feature::SrcIp);
        assert_eq!(FEATURES[1], Feature::SrcPort);
        assert_eq!(FEATURES[2], Feature::DstIp);
        assert_eq!(FEATURES[3], Feature::DstPort);
        for (i, f) in FEATURES.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
    }

    #[test]
    fn feature_names() {
        assert_eq!(Feature::SrcIp.name(), "srcIP");
        assert_eq!(Feature::DstPort.to_string(), "dstPort");
    }
}
