//! Property-based tests for the network substrate.

use entromine_net::sample::{thin_periodic, PeriodicSampler};
use entromine_net::{
    AddressPlan, Ipv4, OdIndexer, OdPair, PacketHeader, Prefix, PrefixTable, Topology,
};
use proptest::prelude::*;

fn arb_ip() -> impl Strategy<Value = Ipv4> {
    any::<u32>().prop_map(Ipv4)
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Prefix::new(Ipv4(addr), len))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ip_display_parse_roundtrip(ip in arb_ip()) {
        let s = ip.to_string();
        let back: Ipv4 = s.parse().unwrap();
        prop_assert_eq!(back, ip);
    }

    #[test]
    fn prefix_contains_its_bounds(p in arb_prefix()) {
        prop_assert!(p.contains(p.first()));
        prop_assert!(p.contains(p.last()));
    }

    #[test]
    fn prefix_display_parse_roundtrip(p in arb_prefix()) {
        let s = p.to_string();
        let back: Prefix = s.parse().unwrap();
        prop_assert_eq!(back, p);
    }

    #[test]
    fn anonymization_is_idempotent_and_coarsens(ip in arb_ip()) {
        let once = ip.anonymize();
        prop_assert_eq!(once.anonymize(), once);
        // Anonymized address shares the /21 of the original.
        let p21 = Prefix::new(ip, 21);
        prop_assert!(p21.contains(once));
    }

    #[test]
    fn lpm_most_specific_wins(ip in arb_ip(), l1 in 1u8..=16, l2 in 17u8..=32) {
        // Install a covering short prefix and a longer prefix containing ip;
        // lookup must return the longer one.
        let mut t = PrefixTable::new();
        t.insert(Prefix::new(ip, l1), 1);
        t.insert(Prefix::new(ip, l2), 2);
        prop_assert_eq!(t.lookup(ip), Some(2));
    }

    #[test]
    fn lpm_agrees_with_linear_scan(ip in arb_ip(), prefixes in proptest::collection::vec((any::<u32>(), 0u8..=32), 1..20)) {
        let mut t = PrefixTable::new();
        let mut entries = Vec::new();
        for (i, (addr, len)) in prefixes.iter().enumerate() {
            let p = Prefix::new(Ipv4(*addr), *len);
            t.insert(p, i);
            entries.push((p, i));
        }
        // Linear reference: longest prefix containing ip; among duplicate
        // installs of the same prefix the most recent wins, which
        // max_by_key provides (it returns the last of equal keys, and two
        // distinct equal-length prefixes cannot both contain one address).
        let expected = entries
            .iter()
            .filter(|(p, _)| p.contains(ip))
            .max_by_key(|(p, _)| p.len())
            .map(|(_, v)| *v);
        prop_assert_eq!(t.lookup(ip), expected);
    }

    #[test]
    fn od_index_bijection(n in 1usize..30, o in 0usize..30, d in 0usize..30) {
        prop_assume!(o < n && d < n);
        let ix = OdIndexer::new(n);
        let idx = ix.index(OdPair::new(o, d));
        prop_assert!(idx < ix.n_flows());
        prop_assert_eq!(ix.pair(idx), OdPair::new(o, d));
    }

    #[test]
    fn periodic_sampler_count_is_exact(len in 0usize..5000, n in 1u64..500) {
        let packets: Vec<PacketHeader> = (0..len)
            .map(|i| PacketHeader::udp(Ipv4(i as u32), 1, Ipv4(2), 2, 10, i as u64))
            .collect();
        let mut s = PeriodicSampler::new(n);
        let kept = s.sample(&packets);
        // ceil(len / n) packets are selected.
        let expected = (len as u64).div_ceil(n);
        prop_assert_eq!(kept.len() as u64, expected);
    }

    #[test]
    fn thinning_never_grows(len in 0usize..2000, f in 0u64..50) {
        let packets: Vec<PacketHeader> = (0..len)
            .map(|i| PacketHeader::udp(Ipv4(i as u32), 1, Ipv4(2), 2, 10, i as u64))
            .collect();
        let thinned = thin_periodic(&packets, f);
        prop_assert!(thinned.len() <= packets.len());
        if f <= 1 {
            prop_assert_eq!(thinned.len(), packets.len());
        }
    }

    #[test]
    fn plan_hosts_always_resolve_home(pop in 0usize..11, i in 0u64..100_000) {
        let topo = Topology::abilene();
        let plan = AddressPlan::standard(&topo);
        prop_assert_eq!(plan.resolve(plan.host(pop, i)), Some(pop));
    }
}
