//! Tables 2 and 3: detection counts by method and by anomaly type.
//!
//! Table 2 counts bins detected by volume only / entropy only / both, for
//! both networks. Table 3 breaks the Abilene detections down by manually
//! inspected anomaly label — here, by ground-truth label of the injected
//! events, with unmatched detections as the false-alarm row.
//!
//! Absolute counts depend on the injection schedule (we control it; the
//! authors' networks experienced whatever they experienced), so the
//! *shape* to compare is: entropy contributes a large set of additional
//! detections disjoint from volume's; scans and point-to-multipoint events
//! are found only by entropy; alpha flows dominate volume detections.

use entromine::net::Topology;
use entromine::synth::AnomalyLabel;
use entromine::{label_breakdown, match_truth, MatchOutcome};
use entromine_repro::{
    abilene_config, banner, csv, diagnose, geant_config, scheduled_dataset, Scale,
};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Tables 2 & 3 — detections by method and label",
        "§6.1 Table 2, §6.2 Table 3",
        scale,
    );

    let mut table2 = Vec::new();
    let mut out2 = csv::create("table2_detections.csv");
    csv::row(
        &mut out2,
        &["network,volume_only,entropy_only,both,total,false_alarms".into()],
    );

    for (name, topology, config) in [
        ("Abilene", Topology::abilene(), abilene_config(23, scale)),
        ("Geant", Topology::geant(), geant_config(24, scale)),
    ] {
        eprintln!("== generating {name}-like dataset ...");
        let dataset = scheduled_dataset(topology, config, 23);
        let (_fitted, report) = diagnose(&dataset);
        let outcomes = match_truth(&report, &dataset.truth);
        let fas = outcomes
            .iter()
            .filter(|o| matches!(o, MatchOutcome::FalseAlarm))
            .count();
        csv::row(
            &mut out2,
            &[format!(
                "{name},{},{},{},{},{}",
                report.volume_only(),
                report.entropy_only(),
                report.both(),
                report.total(),
                fas
            )],
        );
        table2.push((name, report, dataset, fas));
    }

    println!("\n== Table 2: number of detections in entropy and volume metrics");
    println!(
        "{:>9} {:>13} {:>14} {:>6} {:>7} {:>13}",
        "network", "volume only", "entropy only", "both", "total", "false alarms"
    );
    for (name, report, dataset, fas) in &table2 {
        println!(
            "{:>9} {:>13} {:>14} {:>6} {:>7} {:>13}",
            name,
            report.volume_only(),
            report.entropy_only(),
            report.both(),
            report.total(),
            fas
        );
        let _ = dataset;
    }
    println!(
        "(paper, 3 weeks: Geant 464/461/86, Abilene 152/258/34 — the shape to\n\
         match is a large disjoint entropy-only set in both networks)"
    );

    // Table 3 over the Abilene dataset.
    let (_, report, dataset, fas) = &table2[0];
    println!("\n== Table 3: range of anomalies found in Abilene by label");
    println!(
        "{:>18} {:>9} {:>16} {:>21} {:>7}",
        "label", "injected", "found in volume", "additional in entropy", "missed"
    );
    let mut out3 = csv::create("table3_labels.csv");
    csv::row(
        &mut out3,
        &["label,injected,found_in_volume,additional_in_entropy,missed".into()],
    );
    for row in label_breakdown(report, &dataset.truth) {
        println!(
            "{:>18} {:>9} {:>16} {:>21} {:>7}",
            row.label.name(),
            row.injected,
            row.found_in_volume,
            row.additional_in_entropy,
            row.missed
        );
        csv::row(
            &mut out3,
            &[format!(
                "{},{},{},{},{}",
                row.label.name(),
                row.injected,
                row.found_in_volume,
                row.additional_in_entropy,
                row.missed
            )],
        );
    }
    println!(
        "{:>18} {:>9} {:>16} {:>21} {:>7}",
        "False Alarm", "-", "-", "-", fas
    );

    // The paper's headline claim from Table 3.
    let rows = label_breakdown(report, &dataset.truth);
    let scan_rows: Vec<_> = rows
        .iter()
        .filter(|r| {
            matches!(
                r.label,
                AnomalyLabel::PortScan
                    | AnomalyLabel::NetworkScan
                    | AnomalyLabel::PointToMultipoint
            )
        })
        .collect();
    let scans_in_volume: usize = scan_rows.iter().map(|r| r.found_in_volume).sum();
    let scans_in_entropy: usize = scan_rows.iter().map(|r| r.additional_in_entropy).sum();
    println!(
        "\nscans + point-to-multipoint: {scans_in_volume} in volume vs {scans_in_entropy} \
         additional in entropy\n(paper: NONE of these were detected via volume metrics)"
    );
    println!("wrote results/table2_detections.csv and results/table3_labels.csv");
}
