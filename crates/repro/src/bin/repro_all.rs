//! Runs every reproduction binary in sequence (quick scale by default).
//!
//! ```sh
//! cargo run --release -p entromine-repro --bin repro_all [-- --full]
//! ```
//!
//! Equivalent to invoking each experiment binary yourself; exists so a
//! single command regenerates every table and figure into `results/`.

use std::process::Command;

const BINARIES: [&str; 12] = [
    "table5_intensity",
    "fig1_histograms",
    "fig2_timeseries",
    "fig4_scatter",
    "table23_detections",
    "fig5_detection_rate",
    "fig6_multiflow",
    "fig7_known_clusters",
    "classify_abilene",
    "classify_geant",
    "anon_ablation",
    "ablations",
];

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let mut failures = Vec::new();
    for bin in BINARIES {
        println!("\n########## {bin} ##########");
        let mut cmd = Command::new(
            std::env::current_exe()
                .expect("self path")
                .parent()
                .expect("bin dir")
                .join(bin),
        );
        if full {
            cmd.arg("--full");
        }
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("{bin} exited with {status}");
                failures.push(bin);
            }
            Err(e) => {
                eprintln!("{bin} failed to launch: {e}");
                failures.push(bin);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall experiments complete; outputs in results/");
    } else {
        eprintln!("\nexperiments FAILED: {failures:?}");
        std::process::exit(1);
    }
}
