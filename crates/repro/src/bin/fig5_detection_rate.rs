//! Figure 5: detection rate vs thinning factor for the three traces.
//!
//! §6.3.2: each trace is injected in turn into every OD flow of a clean
//! bin; the detection rate over OD flows is reported per thinning factor,
//! for volume-alone vs volume+entropy, at α = 0.999 and α = 0.995.
//!
//! Expected shape (paper Figure 5): all methods catch the unthinned
//! attacks; as thinning grows, volume detection collapses first while
//! entropy holds on — e.g. 80% detection for worm scans at a fraction of
//! a percent of flow traffic.

use entromine::net::Topology;
use entromine::synth::distr::poisson;
use entromine::synth::traces::{sampled_attack_packets, sampled_count};
use entromine::synth::TraceKind;
use entromine_repro::{abilene_config, banner, csv, InjectionBench, Scale};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 5 — detection rate vs thinning",
        "§6.3.2, Figure 5(a)-(c)",
        scale,
    );

    let mut config = abilene_config(5, scale);
    // The clean model only needs a solid training window.
    config.n_bins = config.n_bins.min(2 * 288);
    eprintln!("building the injection bench (clean dataset + fitted model) ...");
    let bench = InjectionBench::new(Topology::abilene(), config.clone(), 200);
    let alphas = [0.999, 0.995];
    let cases: [(TraceKind, &[u64]); 3] = [
        (TraceKind::DosSingle, &[0, 10, 100, 1000, 10_000, 100_000]),
        (TraceKind::DosMulti, &[0, 10, 100, 1000, 10_000, 100_000]),
        (TraceKind::WormScan, &[0, 10, 100, 500, 1000]),
    ];

    let mut out = csv::create("fig5_detection_rate.csv");
    csv::row(
        &mut out,
        &["trace,thinning,alpha,volume_rate,volume_plus_entropy_rate,mean_pkts_per_bin".into()],
    );

    let n_flows = bench.dataset.n_flows();
    let mut rng = SmallRng::seed_from_u64(0xF195);
    for (kind, factors) in cases {
        println!(
            "\n== {} ({:.3e} pps raw)",
            kind.name(),
            kind.intensity_pps()
        );
        println!(
            "{:>9} {:>13} | {:>11} {:>13} | {:>11} {:>13}",
            "thinning", "pkts/bin", "vol@.999", "vol+ent@.999", "vol@.995", "vol+ent@.995"
        );
        for &factor in factors {
            let mean = sampled_count(kind, factor, config.sample_rate, 300, config.traffic_scale);
            let mut rates = Vec::new();
            for &alpha in &alphas {
                let (tb, tp, te) = bench.thresholds(alpha);
                let mut vol_hits = 0usize;
                let mut any_hits = 0usize;
                for flow in 0..n_flows {
                    let od = bench.dataset.net.indexer().pair(flow);
                    let n = poisson(&mut rng, mean);
                    let pkts = sampled_attack_packets(
                        kind,
                        bench.dataset.net.plan(),
                        od,
                        n,
                        bench.bin as u64 * 300,
                        0x5EED ^ (flow as u64) << 7 ^ factor,
                    );
                    let (b, p, e) = bench.evaluate(&[(flow, &pkts)]);
                    let vol = b > tb || p > tp;
                    if vol {
                        vol_hits += 1;
                    }
                    if vol || e > te {
                        any_hits += 1;
                    }
                }
                let vol_rate = vol_hits as f64 / n_flows as f64;
                let any_rate = any_hits as f64 / n_flows as f64;
                rates.push((vol_rate, any_rate));
                csv::row(
                    &mut out,
                    &[format!(
                        "{},{},{},{:.4},{:.4},{:.1}",
                        kind.name(),
                        factor,
                        alpha,
                        vol_rate,
                        any_rate,
                        mean
                    )],
                );
            }
            println!(
                "{:>9} {:>13.1} | {:>10.0}% {:>12.0}% | {:>10.0}% {:>12.0}%",
                factor,
                mean,
                100.0 * rates[0].0,
                100.0 * rates[0].1,
                100.0 * rates[1].0,
                100.0 * rates[1].1
            );
        }
    }
    println!(
        "\nexpected shape: volume+entropy dominates volume-alone at every thinning,\n\
         with the gap widest in the low-intensity tail (paper Figure 5).\n\
         wrote results/fig5_detection_rate.csv"
    );
}
