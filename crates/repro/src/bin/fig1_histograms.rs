//! Figure 1: distribution changes induced by a port scan anomaly.
//!
//! The paper's Figure 1 shows rank-ordered histograms of destination ports
//! (dispersed by the scan) and destination addresses (concentrated on the
//! victim) for a typical 5-minute bin vs the bin containing the scan.
//! This binary regenerates both panels as CSV series plus a textual
//! summary of the headline numbers the figure conveys.

use entromine::entropy::{sample_entropy, Feature};
use entromine::net::Topology;
use entromine::synth::anomaly::anomaly_packets;
use entromine::synth::{AnomalyLabel, Dataset};
use entromine_repro::{abilene_config, banner, csv, Scale};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 1 — port-scan feature histograms",
        "§3, Figure 1",
        scale,
    );

    let mut config = abilene_config(1, scale);
    config.n_bins = 288; // one day is plenty for two histograms
    let dataset = Dataset::clean(Topology::abilene(), config);
    // Target a small OD flow, as the paper's Figure 1 anomaly does: the
    // scan must dominate its bin for the concentration to be visible
    // (the paper's victim address outnumbers the normal top address 500
    // to 30).
    let flow = (0..dataset.n_flows())
        .min_by_key(|&f| (dataset.net.rates().base_rate(f) - 1500.0).abs() as u64)
        .unwrap();
    let scan_size = (1.5 * dataset.net.rates().base_rate(flow)) as u64;
    let normal_bin = 150;
    let scan_bin = 200;

    // Normal bin: baseline histograms.
    let normal = dataset.net.baseline_cell(normal_bin, flow);

    // Scan bin: baseline plus the scan's packets.
    let mut scanned = dataset.net.baseline_cell(scan_bin, flow);
    let od = dataset.net.indexer().pair(flow);
    let scan_packets = anomaly_packets(
        AnomalyLabel::PortScan,
        dataset.net.plan(),
        od,
        scan_size,
        scan_bin as u64 * 300,
        77,
    );
    scanned.add_packets(&scan_packets);

    let mut out = csv::create("fig1_histograms.csv");
    csv::row(&mut out, &["panel,rank,count".into()]);
    let panels = [
        ("dstPort_normal", normal.histogram(Feature::DstPort)),
        ("dstPort_scan", scanned.histogram(Feature::DstPort)),
        ("dstIP_normal", normal.histogram(Feature::DstIp)),
        ("dstIP_scan", scanned.histogram(Feature::DstIp)),
    ];
    for (name, hist) in panels {
        for (rank, count) in hist.rank_ordered_counts().iter().take(500).enumerate() {
            csv::row(&mut out, &[format!("{name},{},{}", rank + 1, count)]);
        }
    }

    println!("\nheadline numbers (paper: ports disperse, addresses concentrate):");
    println!(
        "{:>22} {:>14} {:>14} {:>16} {:>12}",
        "panel", "distinct", "top count", "total packets", "entropy"
    );
    for (name, hist) in [
        ("dstPort normal", normal.histogram(Feature::DstPort)),
        ("dstPort during scan", scanned.histogram(Feature::DstPort)),
        ("dstIP normal", normal.histogram(Feature::DstIp)),
        ("dstIP during scan", scanned.histogram(Feature::DstIp)),
    ] {
        println!(
            "{:>22} {:>14} {:>14} {:>16} {:>12.3}",
            name,
            hist.distinct(),
            hist.heavy_hitter().map(|(_, c)| c).unwrap_or(0),
            hist.total(),
            sample_entropy(hist)
        );
    }
    println!("\nwrote results/fig1_histograms.csv");
    println!(
        "expected shape: dstPort distinct count explodes during the scan while\n\
         its top count stays flat; dstIP gains a single dominant value (the\n\
         victim) — matching the paper's upper/lower panels."
    );
}
