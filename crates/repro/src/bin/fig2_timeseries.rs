//! Figure 2: a port scan viewed in volume vs entropy timeseries.
//!
//! The paper's Figure 2 plots, for the OD flow containing a port scan, the
//! byte and packet counts (where the scan is invisible) against the
//! destination-IP and destination-port entropies (where it stands out as a
//! sharp dip and spike respectively).

use entromine::entropy::Feature;
use entromine::net::Topology;
use entromine::synth::{AnomalyEvent, AnomalyLabel, Dataset};
use entromine_repro::{abilene_config, banner, csv, Scale};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 2 — volume vs entropy timeseries",
        "§3, Figure 2",
        scale,
    );

    let mut config = abilene_config(2, scale);
    config.n_bins = 2 * 288; // two days, like the paper's 12/19–12/20 window
                             // Target a small OD flow so the scan reshapes its distributions while
                             // staying invisible in volume — exactly the paper's Figure 2 setting.
    let net = entromine::synth::SyntheticNetwork::new(Topology::abilene(), config.clone());
    let flow = (0..net.indexer().n_flows())
        .min_by_key(|&f| (net.rates().base_rate(f) - 1500.0).abs() as u64)
        .unwrap();
    let scan_bin = 350;
    let scan = AnomalyEvent {
        label: AnomalyLabel::PortScan,
        start_bin: scan_bin,
        duration: 1,
        flows: vec![flow],
        packets_per_cell: 1.2 * net.rates().base_rate(flow),
        seed: 42,
    };
    eprintln!("generating two days of traffic with one injected port scan ...");
    let dataset = Dataset::generate(Topology::abilene(), config, vec![scan]);

    let bytes = dataset.volumes.bytes().col(flow);
    let packets = dataset.volumes.packets().col(flow);
    let h_dst_ip = dataset.tensor.series(flow, Feature::DstIp);
    let h_dst_port = dataset.tensor.series(flow, Feature::DstPort);

    let mut out = csv::create("fig2_timeseries.csv");
    csv::row(&mut out, &["bin,bytes,packets,h_dst_ip,h_dst_port".into()]);
    for bin in 0..dataset.n_bins() {
        csv::row(
            &mut out,
            &[format!(
                "{bin},{},{},{:.4},{:.4}",
                bytes[bin], packets[bin], h_dst_ip[bin], h_dst_port[bin]
            )],
        );
    }

    // The figure's claim, quantified: how far outside the typical range is
    // the scan bin in each series?
    let z = |series: &[f64], bin: usize| -> f64 {
        let clean: Vec<f64> = series
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != bin)
            .map(|(_, &v)| v)
            .collect();
        let m = entromine::linalg::stats::mean(&clean);
        let s = entromine::linalg::stats::std_dev(&clean).max(1e-12);
        (series[bin] - m) / s
    };
    println!(
        "\nanomaly bin {} deviation from the rest of the series (z-score):",
        scan_bin
    );
    println!(
        "  # bytes     : {:+6.1} sigma (volume: scan invisible)",
        z(&bytes, scan_bin)
    );
    println!("  # packets   : {:+6.1} sigma", z(&packets, scan_bin));
    println!(
        "  H(dstIP)    : {:+6.1} sigma (entropy: sharp dip expected)",
        z(&h_dst_ip, scan_bin)
    );
    println!(
        "  H(dstPort)  : {:+6.1} sigma (entropy: sharp spike expected)",
        z(&h_dst_port, scan_bin)
    );
    println!("\nwrote results/fig2_timeseries.csv");
}
