//! §5 anonymization ablation: detection counts with and without the
//! 11-bit address mask.
//!
//! The paper: "we anonymized one week of Geant data, applied our detection
//! methods, and compared ... in the anonymized data, we detected 128
//! anomalies, whereas in the unanonymized data, we found 132" — i.e.
//! anonymization costs only a handful of detections. This binary runs the
//! same experiment on a Geant-like dataset generated twice from one seed,
//! differing only in the anonymization flag.

use entromine::net::Topology;
use entromine_repro::{banner, csv, diagnose, geant_config, scheduled_dataset, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("§5 — anonymization ablation", "§5 (Data)", scale);

    let mut results = Vec::new();
    for anonymize in [true, false] {
        let mut config = geant_config(55, scale);
        config.n_bins = config.n_bins.min(2 * 288);
        config.anonymize = anonymize;
        eprintln!(
            "== generating Geant-like dataset ({}) ...",
            if anonymize {
                "anonymized /21"
            } else {
                "raw addresses"
            }
        );
        let dataset = scheduled_dataset(Topology::geant(), config, 55);
        let (_f, report) = diagnose(&dataset);
        results.push((
            anonymize,
            report.total(),
            report.entropy_only(),
            report.volume_only(),
            report.both(),
        ));
    }

    let mut out = csv::create("anon_ablation.csv");
    csv::row(
        &mut out,
        &["anonymized,total,entropy_only,volume_only,both".into()],
    );
    println!(
        "\n{:>12} {:>7} {:>13} {:>12} {:>6}",
        "addresses", "total", "entropy-only", "volume-only", "both"
    );
    for (anon, total, e, v, b) in &results {
        println!(
            "{:>12} {:>7} {:>13} {:>12} {:>6}",
            if *anon { "anonymized" } else { "raw" },
            total,
            e,
            v,
            b
        );
        csv::row(&mut out, &[format!("{anon},{total},{e},{v},{b}")]);
    }
    let (_, anon_total, ..) = results[0];
    let (_, raw_total, ..) = results[1];
    println!(
        "\nanonymized {anon_total} vs raw {raw_total}   [paper: 128 vs 132 — \
         a difference of a few detections]\nwrote results/anon_ablation.csv"
    );
}
