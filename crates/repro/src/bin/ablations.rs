//! Ablations: the design choices DESIGN.md §7 calls out, quantified.
//!
//! 1. **Normal-subspace dimension** m ∈ {5, 10, 15}: detection counts and
//!    injected-anomaly recall (the paper fixes m = 10 at the variance
//!    knee).
//! 2. **Dispersion metric**: sample entropy vs Simpson index vs distinct
//!    count as the per-feature summary (the paper: "entropy is not the
//!    only metric ... we find that entropy works well in practice").
//! 3. **Unit-energy normalization** on/off (§4.2: "so that no one feature
//!    dominates our analysis").
//! 4. **HAC linkage** and **k-means seeding** on recovery of known
//!    anomaly-type clusters.

use entromine::cluster::{agglomerative, KMeans, Linkage, Seeding};
use entromine::entropy::{
    distinct_count, sample_entropy, simpson_index, BinSummary, TensorBuilder,
};
use entromine::linalg::Mat;
use entromine::net::Topology;
use entromine::subspace::{DimSelection, MultiwayModel};
use entromine::synth::{Dataset, Schedule, SyntheticNetwork};
use entromine::{match_truth, Diagnoser, DiagnoserConfig, MatchOutcome};
use entromine_repro::{abilene_config, banner, csv, Scale};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Ablations — design-choice sensitivity",
        "DESIGN.md §7",
        scale,
    );

    let mut config = abilene_config(99, scale);
    config.n_bins = config.n_bins.min(2 * 288);
    eprintln!("generating the shared ablation dataset ...");
    let net = SyntheticNetwork::new(Topology::abilene(), config.clone());
    let events = Schedule::paper_mix(0xAB1A, 40).materialize(&net);
    let n_events = events.len();
    let dataset = Dataset::generate(Topology::abilene(), config.clone(), events);

    let mut out = csv::create("ablations.csv");
    csv::row(&mut out, &["ablation,setting,metric,value".into()]);

    // ---- 1. Normal subspace dimension.
    println!("\n== ablation 1: normal-subspace dimension m (paper: 10)");
    println!(
        "{:>4} {:>12} {:>12} {:>14} {:>13}",
        "m", "detections", "recall", "false alarms", "expl. var."
    );
    for m in [5usize, 10, 15] {
        let cfg = DiagnoserConfig {
            dim: DimSelection::Fixed(m),
            ..Default::default()
        };
        let fitted = Diagnoser::new(cfg).fit(&dataset).expect("fit");
        let report = fitted.diagnose(&dataset).expect("diagnose");
        let outcomes = match_truth(&report, &dataset.truth);
        let matched_events: std::collections::HashSet<usize> = outcomes
            .iter()
            .filter_map(|o| match o {
                MatchOutcome::Truth(i) => Some(*i),
                _ => None,
            })
            .collect();
        let fas = outcomes
            .iter()
            .filter(|o| matches!(o, MatchOutcome::FalseAlarm))
            .count();
        let recall = matched_events.len() as f64 / n_events as f64;
        println!(
            "{:>4} {:>12} {:>11.0}% {:>14} {:>12.1}%",
            m,
            report.total(),
            100.0 * recall,
            fas,
            100.0 * fitted.entropy_model().inner().explained_variance()
        );
        csv::row(&mut out, &[format!("dimension,m={m},recall,{recall:.4}")]);
        csv::row(&mut out, &[format!("dimension,m={m},false_alarms,{fas}")]);
    }

    // ---- 2. Dispersion metric. Rebuild the tensor under each metric and
    // compare how well each separates the injected anomaly bins.
    println!("\n== ablation 2: dispersion metric (paper: sample entropy)");
    println!("{:>16} {:>12} {:>14}", "metric", "recall", "false alarms");
    type Metric = (
        &'static str,
        fn(&entromine::entropy::FeatureHistogram) -> f64,
    );
    let metrics: [Metric; 3] = [
        ("entropy", sample_entropy),
        ("simpson", simpson_index),
        ("distinct", distinct_count),
    ];
    let truth_bins: std::collections::HashSet<usize> =
        dataset.truth.iter().flat_map(|ev| ev.bins()).collect();
    for (name, metric) in metrics {
        // Rebuild a tensor whose "entropy" slots hold the chosen metric.
        let mut builder = TensorBuilder::new(dataset.n_bins(), dataset.n_flows());
        for bin in 0..dataset.n_bins() {
            for flow in 0..dataset.n_flows() {
                // Regenerate the cell's histograms with events applied via
                // baseline + stored volumes. Rebuilding exactly (with
                // anomaly packets) would need event replay; the baseline
                // regeneration plus stored entropy for volume suffices for
                // the metric comparison on *clean* cells, so instead we
                // replay through the generator's cell accumulator when the
                // cell is covered by an event.
                let acc = dataset.net.baseline_cell(bin, flow);
                let mut summary = BinSummary {
                    packets: acc.packets(),
                    bytes: acc.bytes(),
                    entropy: [0.0; 4],
                };
                for f in entromine::entropy::FEATURES {
                    summary.entropy[f.index()] = metric(acc.histogram(f));
                }
                builder.set(bin, flow, &summary);
            }
        }
        // Overwrite covered cells from the real (anomaly-carrying) tensor
        // is impossible for non-entropy metrics, so instead: score each
        // metric on how anomalous the *injected* rows look relative to the
        // clean baseline distribution it produces. We approximate by
        // fitting on the rebuilt clean tensor and scoring the dataset's
        // true rows — for entropy they coincide with the real pipeline.
        let (tensor, _) = builder.finish();
        let model = match MultiwayModel::fit(&tensor, DimSelection::Fixed(10)) {
            Ok(m) => m,
            Err(e) => {
                println!("{:>16} {:>12} {:>14}  (fit failed: {e})", name, "-", "-");
                continue;
            }
        };
        let threshold = model.threshold(0.999).expect("threshold");
        // Score the dataset's actual tensor rows (which carry anomalies).
        let mut hits = 0usize;
        let mut fas = 0usize;
        let mut detected_bins = std::collections::HashSet::new();
        for bin in 0..dataset.n_bins() {
            // The dataset tensor holds sample entropy; only the entropy
            // metric can consume it directly. For the others we recompute
            // the metric over the anomalous cells.
            let spe = if name == "entropy" {
                model.spe(&dataset.tensor.unfolded_row(bin)).expect("spe")
            } else {
                let mut row = tensor.unfolded_row(bin);
                if truth_bins.contains(&bin) {
                    // Replay anomaly cells through the generator.
                    for ev in &dataset.truth {
                        if !ev.bins().contains(&bin) {
                            continue;
                        }
                        for &flow in &ev.event.flows {
                            let mut acc = dataset.net.baseline_cell(bin, flow);
                            let od = dataset.net.indexer().pair(flow);
                            let n = ev.event.packets_per_cell as u64;
                            let pkts = entromine::synth::anomaly::anomaly_packets(
                                ev.event.label,
                                dataset.net.plan(),
                                od,
                                n,
                                bin as u64 * 300,
                                ev.event.seed,
                            );
                            acc.add_packets(&pkts);
                            let p = dataset.n_flows();
                            for f in entromine::entropy::FEATURES {
                                row[f.index() * p + flow] = metric(acc.histogram(f));
                            }
                        }
                    }
                }
                model.spe(&row).expect("spe")
            };
            if spe > threshold {
                if truth_bins.contains(&bin) {
                    hits += 1;
                    detected_bins.insert(bin);
                } else {
                    fas += 1;
                }
            }
        }
        let recall = detected_bins.len() as f64 / truth_bins.len().max(1) as f64;
        println!("{:>16} {:>11.0}% {:>14}", name, 100.0 * recall, fas);
        csv::row(&mut out, &[format!("metric,{name},recall,{recall:.4}")]);
        csv::row(&mut out, &[format!("metric,{name},false_alarms,{fas}")]);
        let _ = hits;
    }

    // ---- 3. Unit-energy normalization on/off.
    println!("\n== ablation 3: unit-energy normalization (paper: on)");
    {
        let with = MultiwayModel::fit(&dataset.tensor, DimSelection::Fixed(10)).expect("fit");
        // "Off" = fit the plain subspace model on the raw unfolding.
        let raw = dataset.tensor.unfold();
        let without =
            entromine::subspace::SubspaceModel::fit(&raw, DimSelection::Fixed(10)).expect("fit");
        // Compare how much of the residual energy lives in each feature
        // block: without normalization one feature can dominate.
        let p = dataset.n_flows();
        let mut with_energy = [0.0f64; 4];
        let mut without_energy = [0.0f64; 4];
        for bin in 0..dataset.n_bins() {
            let row = dataset.tensor.unfolded_row(bin);
            let rw = with.residual(&row).expect("residual");
            let ro = without.residual(&row).expect("residual");
            for k in 0..4 {
                with_energy[k] += rw[k * p..(k + 1) * p].iter().map(|v| v * v).sum::<f64>();
                without_energy[k] += ro[k * p..(k + 1) * p].iter().map(|v| v * v).sum::<f64>();
            }
        }
        let share = |e: &[f64; 4]| -> Vec<f64> {
            let total: f64 = e.iter().sum();
            e.iter().map(|v| v / total.max(1e-300)).collect()
        };
        let sw = share(&with_energy);
        let so = share(&without_energy);
        println!("residual energy share per feature [srcIP srcPort dstIP dstPort]:");
        println!(
            "  normalized  : [{:.2} {:.2} {:.2} {:.2}]  (max share {:.2})",
            sw[0],
            sw[1],
            sw[2],
            sw[3],
            sw.iter().cloned().fold(0.0, f64::max)
        );
        println!(
            "  raw         : [{:.2} {:.2} {:.2} {:.2}]  (max share {:.2})",
            so[0],
            so[1],
            so[2],
            so[3],
            so.iter().cloned().fold(0.0, f64::max)
        );
        csv::row(
            &mut out,
            &[format!(
                "normalization,on,max_feature_share,{:.4}",
                sw.iter().cloned().fold(0.0, f64::max)
            )],
        );
        csv::row(
            &mut out,
            &[format!(
                "normalization,off,max_feature_share,{:.4}",
                so.iter().cloned().fold(0.0, f64::max)
            )],
        );
    }

    // ---- 4. Clustering algorithm choices on synthetic archetypes.
    println!("\n== ablation 4: clustering choices (paper: results insensitive)");
    let archetypes = [
        [-0.5f64, -0.5, -0.5, -0.5],
        [0.0, 0.9, 0.3, -0.3],
        [-0.3, 0.0, -0.4, 0.85],
        [0.9, -0.2, -0.35, -0.1],
    ];
    let mut rng_state = 0x5EEDu64;
    let mut next_noise = move || {
        // xorshift for a tiny deterministic jitter stream
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        (rng_state % 1000) as f64 / 1000.0 - 0.5
    };
    let n_per = 40;
    let mut pts = Mat::zeros(archetypes.len() * n_per, 4);
    let mut truth_type = Vec::new();
    for (a, arch) in archetypes.iter().enumerate() {
        for i in 0..n_per {
            for j in 0..4 {
                pts[(a * n_per + i, j)] = arch[j] + 0.08 * next_noise();
            }
            truth_type.push(a);
        }
    }
    let rand_index = |assignments: &[usize]| -> f64 {
        let n = assignments.len();
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                if (assignments[i] == assignments[j]) == (truth_type[i] == truth_type[j]) {
                    agree += 1;
                }
                total += 1;
            }
        }
        agree as f64 / total as f64
    };
    println!("{:>28} {:>12}", "algorithm", "Rand index");
    for (name, assignments) in [
        (
            "HAC single",
            agglomerative(&pts, 4, Linkage::Single).assignments,
        ),
        (
            "HAC complete",
            agglomerative(&pts, 4, Linkage::Complete).assignments,
        ),
        (
            "HAC average",
            agglomerative(&pts, 4, Linkage::Average).assignments,
        ),
        (
            "k-means random",
            KMeans::new(4).with_seed(5).fit(&pts).assignments,
        ),
        (
            "k-means random (8 restarts)",
            KMeans::new(4)
                .with_seed(5)
                .fit_restarts(&pts, 8)
                .assignments,
        ),
        (
            "k-means++",
            KMeans::new(4)
                .with_seed(5)
                .with_seeding(Seeding::PlusPlus)
                .fit(&pts)
                .assignments,
        ),
    ] {
        let ri = rand_index(&assignments);
        println!("{:>28} {:>12.4}", name, ri);
        csv::row(&mut out, &[format!("clustering,{name},rand_index,{ri:.4}")]);
    }
    println!(
        "\n(paper §4.3: 'our results are not sensitive to the choice of\n\
         algorithm used' — every variant should score near 1.0)\n\
         wrote results/ablations.csv"
    );
}
