//! Figure 9, Figure 10 (right), Table 8: Geant classification.
//!
//! The Geant counterpart of `classify_abilene`: detects and clusters
//! anomalies on a Geant-shaped network (22 PoPs, 484 OD flows, 1/1000
//! sampling, unanonymized), emits the 3-D-plottable entropy-space points
//! (Figure 9), the variation curves (Figure 10 right), and Table 8 —
//! including the cross-network cluster correspondence column, computed by
//! matching cluster signatures against the Abilene run's clusters.

use entromine::cluster::validity::{knee, CurveAlgorithm};
use entromine::cluster::{variation_curve, Linkage, Signature};
use entromine::net::Topology;
use entromine::synth::AnomalyLabel;
use entromine::{anomaly_point_matrix, cluster_rows, ClassifierConfig, ClusterAlgorithm};
use entromine_repro::{
    abilene_config, banner, csv, diagnose, geant_config, scheduled_dataset, truth_labels, Scale,
};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figures 9 & 10, Table 8 — Geant classification",
        "§7.3.4",
        scale,
    );

    eprintln!("generating Geant-like dataset with anomaly schedule ...");
    let dataset = scheduled_dataset(Topology::geant(), geant_config(9, scale), 9);
    let (_fitted, report) = diagnose(&dataset);
    let (points, origin) = anomaly_point_matrix(&report);
    let all_labels = truth_labels(&report, &dataset);
    let labels: Vec<Option<AnomalyLabel>> = origin.iter().map(|&i| all_labels[i]).collect();
    println!("\n{} detections carry entropy-space points", points.rows());
    if points.rows() < 12 {
        println!("too few anomalies for the classification tables; rerun with --full");
        return;
    }

    // ---- Figure 10 (right).
    let ks: Vec<usize> = (2..=25.min(points.rows() - 1)).collect();
    let hac_curve = variation_curve(
        &points,
        ks.iter().copied(),
        CurveAlgorithm::Hierarchical(Linkage::Single),
    );
    let km_curve = variation_curve(
        &points,
        ks.iter().copied(),
        CurveAlgorithm::KMeans { seed: 9 },
    );
    let mut out10 = csv::create("fig10_geant.csv");
    csv::row(
        &mut out10,
        &["k,hac_within,hac_between,kmeans_within,kmeans_between".into()],
    );
    for (h, k) in hac_curve.iter().zip(&km_curve) {
        csv::row(
            &mut out10,
            &[format!(
                "{},{:.6},{:.6},{:.6},{:.6}",
                h.k, h.within, h.between, k.within, k.between
            )],
        );
    }
    println!(
        "Figure 10 (Geant) knee (HAC, 5% rule): k = {:?}   [paper: 8-12]",
        knee(&hac_curve, 0.05)
    );

    // ---- Cluster at k = 10.
    let k = 10.min(points.rows());
    let clustering = ClassifierConfig {
        k,
        algorithm: ClusterAlgorithm::Hierarchical(Linkage::Single),
    }
    .classify(&points)
    .expect("classify");

    // ---- Figure 9 points CSV.
    let mut out9 = csv::create("fig9_geant_space.csv");
    csv::row(
        &mut out9,
        &["h_src_ip,h_src_port,h_dst_ip,h_dst_port,label,cluster".into()],
    );
    for (i, label) in labels.iter().enumerate() {
        let r = points.row(i);
        csv::row(
            &mut out9,
            &[format!(
                "{:.4},{:.4},{:.4},{:.4},{},{}",
                r[0],
                r[1],
                r[2],
                r[3],
                label.map(|l| l.name()).unwrap_or("unmatched"),
                clustering.assignments[i]
            )],
        );
    }

    // ---- Abilene correspondence: rerun the Abilene pipeline (quick) and
    // match Geant clusters to the nearest Abilene cluster signature.
    eprintln!("\nbuilding the Abilene reference clusters for the correspondence column ...");
    let abilene = scheduled_dataset(Topology::abilene(), abilene_config(8, Scale::Quick), 8);
    let (_af, areport) = diagnose(&abilene);
    let (apoints, _aorigin) = anomaly_point_matrix(&areport);
    let acluster = ClassifierConfig {
        k: 10.min(apoints.rows()),
        algorithm: ClusterAlgorithm::Hierarchical(Linkage::Single),
    }
    .classify(&apoints)
    .expect("classify abilene");
    let asignatures: Vec<(usize, Signature)> = acluster
        .by_size_desc()
        .into_iter()
        .filter(|&c| !acluster.members(c).is_empty())
        .map(|c| (c, Signature::of(&apoints, &acluster.members(c), 2.0)))
        .collect();

    // ---- Table 8 (signs at 2σ as in the paper's Geant table).
    println!("\n== Table 8: Geant anomaly clusters (signs at 2σ)");
    println!(
        "{:>8} {:>6}   {:<38} {:>18}",
        "cluster", "size", "sign [srcIP srcPort dstIP dstPort]", "abilene match"
    );
    let mut out8 = csv::create("table8_geant_clusters.csv");
    csv::row(
        &mut out8,
        &["cluster,size,signature,corresponding_abilene_cluster".into()],
    );
    for row in cluster_rows(&points, &clustering, &labels, 2.0) {
        // Match: nearest Abilene cluster by signature-mean distance; "none"
        // if no Abilene cluster shares the same sign region.
        let nearest = asignatures
            .iter()
            .min_by(|(_, a), (_, b)| {
                row.signature
                    .mean_distance_sq(a)
                    .partial_cmp(&row.signature.mean_distance_sq(b))
                    .expect("finite distances")
            })
            .map(|(c, sig)| {
                if sig.same_region(&row.signature) {
                    format!("{c}")
                } else {
                    "none".to_string()
                }
            })
            .unwrap_or("none".into());
        println!(
            "{:>8} {:>6}   {:<38} {:>18}",
            row.cluster,
            row.size,
            row.signature.sign_string(),
            nearest
        );
        csv::row(
            &mut out8,
            &[format!(
                "{},{},{},{}",
                row.cluster,
                row.size,
                row.signature.sign_string(),
                nearest
            )],
        );
    }
    println!(
        "\nexpected shape (paper Table 8): most Geant clusters occupy regions an\n\
         Abilene cluster also occupies, with a few Geant-specific regions (the\n\
         paper found new outage and point-to-multipoint clusters).\n\
         wrote results/fig9_geant_space.csv, fig10_geant.csv, table8_geant_clusters.csv"
    );
}
