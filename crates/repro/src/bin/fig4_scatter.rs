//! Figure 4: residual multiway entropy vs residual volume, per bin.
//!
//! The paper's Figure 4 scatter-plots `||h̃||²` against `||b̃||²` (bytes)
//! and `||p̃||²` (packets) for a week of Abilene, with the α = 0.999
//! thresholds drawn in: the upper-left and lower-right quadrants —
//! anomalies caught by exactly one method — hold most detections,
//! demonstrating that volume and entropy find largely disjoint anomaly
//! sets.

use entromine::net::Topology;
use entromine_repro::{abilene_config, banner, csv, diagnose, scheduled_dataset, Scale};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 4 — entropy vs volume residuals",
        "§6.1, Figure 4(a)/(b)",
        scale,
    );

    eprintln!("generating Abilene-like traffic with a Table 3 anomaly mix ...");
    let dataset = scheduled_dataset(Topology::abilene(), abilene_config(4, scale), 4);
    let (fitted, report) = diagnose(&dataset);
    let (b, p, e) = fitted.spe_series(&dataset).expect("spe series");
    let (t_bytes, t_packets, t_entropy) = report.thresholds;

    let mut out = csv::create("fig4_scatter.csv");
    csv::row(
        &mut out,
        &["bin,bytes_spe,packets_spe,entropy_spe,bytes_thr,packets_thr,entropy_thr".into()],
    );
    for bin in 0..dataset.n_bins() {
        csv::row(
            &mut out,
            &[format!(
                "{bin},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e}",
                b[bin], p[bin], e[bin], t_bytes, t_packets, t_entropy
            )],
        );
    }

    // Quadrant counts, per panel.
    let quadrants = |vol: &[f64], t_vol: f64| -> (usize, usize, usize, usize) {
        let mut none = 0;
        let mut vol_only = 0;
        let mut ent_only = 0;
        let mut both = 0;
        for bin in 0..e.len() {
            match (vol[bin] > t_vol, e[bin] > t_entropy) {
                (false, false) => none += 1,
                (true, false) => vol_only += 1,
                (false, true) => ent_only += 1,
                (true, true) => both += 1,
            }
        }
        (none, vol_only, ent_only, both)
    };

    println!("\nquadrant counts at alpha = 0.999 (paper: methods largely disjoint):");
    println!(
        "{:>22} {:>10} {:>12} {:>13} {:>7}",
        "panel", "clean", "volume-only", "entropy-only", "both"
    );
    let (n, v, en, bo) = quadrants(&b, t_bytes);
    println!(
        "{:>22} {:>10} {:>12} {:>13} {:>7}",
        "entropy vs bytes", n, v, en, bo
    );
    let byte_overlap = bo as f64 / (en + bo).max(1) as f64;
    let (n, v, en2, bo2) = quadrants(&p, t_packets);
    println!(
        "{:>22} {:>10} {:>12} {:>13} {:>7}",
        "entropy vs packets", n, v, en2, bo2
    );
    let pkt_overlap = bo2 as f64 / (en2 + bo2).max(1) as f64;
    println!(
        "\noverlap of entropy detections with volume: bytes {:.0}%, packets {:.0}%",
        100.0 * byte_overlap,
        100.0 * pkt_overlap
    );
    println!(
        "expected shape: small overlaps, packets overlapping more than bytes\n\
         (the paper's 4(a) is almost fully disjoint; 4(b) shares a number of\n\
         detections). wrote results/fig4_scatter.csv"
    );
}
