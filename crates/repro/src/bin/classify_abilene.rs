//! Figure 8, Figure 10 (left), Table 6, Table 7: Abilene classification.
//!
//! Runs the full pipeline on an Abilene-like dataset with a Table 3-style
//! anomaly mix, then:
//!
//! * emits every detected anomaly's position in entropy space with its
//!   cluster (Figure 8's 2-D projections come straight from the CSV);
//! * sweeps cluster counts for the intra/inter-cluster variation curves
//!   (Figure 10, left panel; knee expected at ~8-12);
//! * prints Table 6 (per-label mean ± std per entropy axis, with the
//!   paper's significance asterisks);
//! * prints Table 7 (10 clusters: size, plurality label, unknowns, and
//!   the `+ / 0 / -` signature at 3 standard deviations).

use entromine::cluster::validity::{knee, CurveAlgorithm};
use entromine::cluster::{variation_curve, Linkage, Signature};
use entromine::net::Topology;
use entromine::synth::AnomalyLabel;
use entromine::{anomaly_point_matrix, cluster_rows, ClassifierConfig, ClusterAlgorithm};
use entromine_repro::{
    abilene_config, banner, csv, diagnose, scheduled_dataset, truth_labels, Scale,
};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figures 8 & 10, Tables 6 & 7 — Abilene classification",
        "§7.2–7.3",
        scale,
    );

    eprintln!("generating Abilene-like dataset with anomaly schedule ...");
    let dataset = scheduled_dataset(Topology::abilene(), abilene_config(8, scale), 8);
    let (_fitted, report) = diagnose(&dataset);
    let (points, origin) = anomaly_point_matrix(&report);
    let all_labels = truth_labels(&report, &dataset);
    let labels: Vec<Option<AnomalyLabel>> = origin.iter().map(|&i| all_labels[i]).collect();
    println!("\n{} detections carry entropy-space points", points.rows());
    if points.rows() < 12 {
        println!("too few anomalies for the classification tables; rerun with --full");
        return;
    }

    // ---- Figure 10 (left): variation curves.
    println!("\n== Figure 10 (Abilene): cluster-count selection");
    println!(
        "{:>4} {:>16} {:>16} {:>16} {:>16}",
        "k", "HAC within", "HAC between", "kmeans within", "kmeans between"
    );
    let ks: Vec<usize> = (2..=25.min(points.rows() - 1)).collect();
    let hac_curve = variation_curve(
        &points,
        ks.iter().copied(),
        CurveAlgorithm::Hierarchical(Linkage::Single),
    );
    let km_curve = variation_curve(
        &points,
        ks.iter().copied(),
        CurveAlgorithm::KMeans { seed: 8 },
    );
    let mut out10 = csv::create("fig10_abilene.csv");
    csv::row(
        &mut out10,
        &["k,hac_within,hac_between,kmeans_within,kmeans_between".into()],
    );
    for (h, k) in hac_curve.iter().zip(&km_curve) {
        println!(
            "{:>4} {:>16.5} {:>16.5} {:>16.5} {:>16.5}",
            h.k, h.within, h.between, k.within, k.between
        );
        csv::row(
            &mut out10,
            &[format!(
                "{},{:.6},{:.6},{:.6},{:.6}",
                h.k, h.within, h.between, k.within, k.between
            )],
        );
    }
    println!(
        "knee (HAC, 5% rule): k = {:?}   [paper: 8-12, fixed at 10]",
        knee(&hac_curve, 0.05)
    );

    // ---- Clustering at k = 10 (the paper's choice).
    let k = 10.min(points.rows());
    let clustering = ClassifierConfig {
        k,
        algorithm: ClusterAlgorithm::Hierarchical(Linkage::Single),
    }
    .classify(&points)
    .expect("classify");

    // ---- Figure 8: the points + clusters CSV.
    let mut out8 = csv::create("fig8_abilene_space.csv");
    csv::row(
        &mut out8,
        &["h_src_ip,h_src_port,h_dst_ip,h_dst_port,label,cluster".into()],
    );
    for (i, label) in labels.iter().enumerate() {
        let r = points.row(i);
        csv::row(
            &mut out8,
            &[format!(
                "{:.4},{:.4},{:.4},{:.4},{},{}",
                r[0],
                r[1],
                r[2],
                r[3],
                label.map(|l| l.name()).unwrap_or("unmatched"),
                clustering.assignments[i]
            )],
        );
    }

    // ---- Table 6: per-label distributions in entropy space.
    println!("\n== Table 6: labels in entropy space (mean ± std, * > 1σ, ** > 2σ)");
    println!(
        "{:>18} {:>6} {:>18} {:>18} {:>18} {:>18}",
        "label", "found", "H(srcIP)", "H(srcPort)", "H(dstIP)", "H(dstPort)"
    );
    let mut label_set: Vec<AnomalyLabel> = labels.iter().flatten().copied().collect();
    label_set.sort();
    label_set.dedup();
    for label in label_set {
        let members: Vec<usize> = (0..points.rows())
            .filter(|&i| labels[i] == Some(label))
            .collect();
        if members.is_empty() {
            continue;
        }
        let sig = Signature::of(&points, &members, 3.0);
        println!(
            "{:>18} {:>6} {:>18} {:>18} {:>18} {:>18}",
            label.name(),
            members.len(),
            sig.axis_display(0),
            sig.axis_display(1),
            sig.axis_display(2),
            sig.axis_display(3)
        );
    }
    let fa_members: Vec<usize> = (0..points.rows())
        .filter(|&i| labels[i].is_none())
        .collect();
    if !fa_members.is_empty() {
        let sig = Signature::of(&points, &fa_members, 3.0);
        println!(
            "{:>18} {:>6} {:>18} {:>18} {:>18} {:>18}",
            "False Alarm",
            fa_members.len(),
            sig.axis_display(0),
            sig.axis_display(1),
            sig.axis_display(2),
            sig.axis_display(3)
        );
    }

    // ---- Table 7: the clusters.
    println!("\n== Table 7: anomaly clusters (k = {k}, single-linkage HAC, signs at 3σ)");
    println!(
        "{:>8} {:>6} {:>18} {:>9} {:>9}   sign [srcIP srcPort dstIP dstPort]",
        "cluster", "size", "plurality", "in plur.", "unknowns"
    );
    let mut out7 = csv::create("table7_abilene_clusters.csv");
    csv::row(
        &mut out7,
        &["cluster,size,plurality,plurality_count,unknowns,signature".into()],
    );
    for row in cluster_rows(&points, &clustering, &labels, 3.0) {
        let (pl, pc) = row
            .plurality
            .map(|(l, c)| (l.name().to_string(), c))
            .unwrap_or(("-".into(), 0));
        println!(
            "{:>8} {:>6} {:>18} {:>9} {:>9}   {}",
            row.cluster,
            row.size,
            pl,
            pc,
            row.unknowns,
            row.signature.sign_string()
        );
        csv::row(
            &mut out7,
            &[format!(
                "{},{},{},{},{},{}",
                row.cluster,
                row.size,
                pl,
                pc,
                row.unknowns,
                row.signature.sign_string()
            )],
        );
    }
    println!(
        "\nexpected shape (paper Table 7): the largest cluster is alpha flows in\n\
         the all-concentrated corner; scan clusters show +dstPort with -dstIP;\n\
         network scans show +srcPort; clusters are internally consistent.\n\
         wrote results/fig8_abilene_space.csv, fig10_abilene.csv, table7_abilene_clusters.csv"
    );
}
