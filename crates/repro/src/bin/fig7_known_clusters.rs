//! Figure 7: clustering known (injected) anomalies in entropy space.
//!
//! §7.1: ~300 known anomalies — single-source DOS, multi-source DDOS, and
//! worm scans — are injected, their unit-norm residual entropy 4-vectors
//! computed, and hierarchical agglomerative clustering with k = 3 applied.
//! The paper reports the three types separate almost perfectly: "only 4
//! cases out of 296 where an anomaly is placed in the wrong cluster".

use entromine::cluster::Linkage;
use entromine::linalg::Mat;
use entromine::net::Topology;
use entromine::synth::distr::poisson;
use entromine::synth::traces::{sampled_attack_packets, sampled_count};
use entromine::synth::TraceKind;
use entromine::{unit_norm, ClassifierConfig, ClusterAlgorithm};
use entromine_repro::{abilene_config, banner, csv, InjectionBench, Scale};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 7 — clusters of known anomaly types",
        "§7.1, Figure 7",
        scale,
    );

    let mut config = abilene_config(7, scale);
    config.n_bins = config.n_bins.min(2 * 288);
    eprintln!("building the injection bench ...");
    let bench = InjectionBench::new(Topology::abilene(), config.clone(), 180);
    let n_flows = bench.dataset.n_flows();
    let per_type = 100usize; // ~300 anomalies total, like the paper's 296

    // Thinning factors chosen so every injection stays detectable but the
    // intensities vary (the paper's set mixes all the Figure 5 runs).
    let cases = [
        (TraceKind::DosSingle, 1000u64),
        (TraceKind::DosMulti, 100),
        (TraceKind::WormScan, 1),
    ];

    let mut rng = SmallRng::seed_from_u64(0xF7);
    let mut points_raw: Vec<[f64; 4]> = Vec::new();
    let mut truth: Vec<usize> = Vec::new();
    for (type_idx, (kind, thinning)) in cases.iter().enumerate() {
        let mean = sampled_count(
            *kind,
            *thinning,
            config.sample_rate,
            300,
            config.traffic_scale,
        );
        for i in 0..per_type {
            let flow = rng.random_range(0..n_flows);
            let od = bench.dataset.net.indexer().pair(flow);
            let n = poisson(&mut rng, mean).max(20);
            let pkts = sampled_attack_packets(
                *kind,
                bench.dataset.net.plan(),
                od,
                n,
                bench.bin as u64 * 300,
                0x7AB1E ^ (i as u64) << 9 ^ (type_idx as u64),
            );
            // Residual entropy 4-vector of the injected flow, unit-norm.
            let what = bench.dataset.whatif_rows(bench.bin, &[(flow, &pkts)]);
            let v = bench
                .fitted
                .entropy_model()
                .anomaly_vector(&what.entropy, flow)
                .expect("anomaly vector");
            points_raw.push(unit_norm(v));
            truth.push(type_idx);
        }
    }

    let mut points = Mat::zeros(points_raw.len(), 4);
    for (i, p) in points_raw.iter().enumerate() {
        points.row_mut(i).copy_from_slice(p);
    }

    eprintln!(
        "clustering {} anomalies with k = 3 (single-linkage HAC) ...",
        points.rows()
    );
    let clustering = ClassifierConfig {
        k: 3,
        algorithm: ClusterAlgorithm::Hierarchical(Linkage::Single),
    }
    .classify(&points)
    .expect("classify");

    // Confusion: assign each cluster its majority type, count mismatches.
    let mut majority: HashMap<usize, usize> = HashMap::new();
    for cluster in 0..3 {
        let members = clustering.members(cluster);
        let mut counts = [0usize; 3];
        for &m in &members {
            counts[truth[m]] += 1;
        }
        let best = (0..3).max_by_key(|&t| counts[t]).unwrap();
        majority.insert(cluster, best);
    }
    let misassigned = (0..points.rows())
        .filter(|&i| majority[&clustering.assignments[i]] != truth[i])
        .count();

    let mut out = csv::create("fig7_known_clusters.csv");
    csv::row(
        &mut out,
        &["h_src_ip,h_src_port,h_dst_ip,h_dst_port,true_type,cluster".into()],
    );
    let names = ["single-DOS", "multi-DOS", "worm-scan"];
    for i in 0..points.rows() {
        let r = points.row(i);
        csv::row(
            &mut out,
            &[format!(
                "{:.4},{:.4},{:.4},{:.4},{},{}",
                r[0], r[1], r[2], r[3], names[truth[i]], clustering.assignments[i]
            )],
        );
    }

    println!("\ncluster composition (rows = true type, cols = cluster):");
    print!("{:>12}", "");
    for c in 0..3 {
        print!(" {:>9}", format!("cluster{c}"));
    }
    println!();
    for (t, name) in names.iter().enumerate() {
        print!("{:>12}", name);
        for c in 0..3 {
            let n = (0..points.rows())
                .filter(|&i| truth[i] == t && clustering.assignments[i] == c)
                .count();
            print!(" {:>9}", n);
        }
        println!();
    }
    println!(
        "\nmisassigned: {misassigned} of {} ({:.1}%)   [paper: 4 of 296 = 1.4%]",
        points.rows(),
        100.0 * misassigned as f64 / points.rows() as f64
    );

    // The region each type occupies (paper's qualitative description).
    println!("\nmean position per type [srcIP srcPort dstIP dstPort]:");
    for (t, name) in names.iter().enumerate() {
        let mut mean = [0.0f64; 4];
        let mut n = 0.0;
        for (i, &tr) in truth.iter().enumerate() {
            if tr == t {
                for (m, &v) in mean.iter_mut().zip(points.row(i)) {
                    *m += v;
                }
                n += 1.0;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        println!(
            "{:>12}: [{:+.2} {:+.2} {:+.2} {:+.2}]",
            name, mean[0], mean[1], mean[2], mean[3]
        );
    }
    println!(
        "(paper: single-source in low srcIP/dstIP entropy; multi-source in high\n\
         srcIP, low dstIP; worms in low srcIP, high dstIP, low dstPort)\n\
         wrote results/fig7_known_clusters.csv"
    );
}
